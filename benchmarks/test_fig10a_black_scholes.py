"""Figure 10a: Black-Scholes weak scaling (Fused vs Unfused)."""

from repro.experiments.figures import figure10a_black_scholes
from repro.experiments.weak_scaling import format_series_table, geo_mean


def test_figure10a_black_scholes(benchmark, gpu_counts):
    """The fully-fusible micro-benchmark: fusion wins by a large factor."""

    def run():
        return figure10a_black_scholes(gpu_counts=gpu_counts)

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_series_table(series, "Figure 10a: Black-Scholes (iterations / second)"))
    speedups = series["Fused"].speedup_over(series["Unfused"])
    print(f"speedups: {[round(s, 2) for s in speedups]} (geo-mean {geo_mean(speedups):.2f})")
    # Paper: up to 10.7x; the shape requirement is a large (>3x) win everywhere.
    assert all(speedup > 3.0 for speedup in speedups)
