"""Figure 11b: BiCGSTAB weak scaling (Fused / PETSc / Unfused)."""

from repro.experiments.figures import figure11b_bicgstab
from repro.experiments.weak_scaling import format_series_table, geo_mean


def test_figure11b_bicgstab(benchmark, gpu_counts):
    """Diffuse accelerates naturally-written BiCGSTAB (paper: 1.31x geo-mean)."""

    def run():
        return figure11b_bicgstab(gpu_counts=gpu_counts)

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_series_table(series, "Figure 11b: BiCGSTAB (iterations / second)"))
    vs_unfused = geo_mean(series["Fused"].speedup_over(series["Unfused"]))
    vs_petsc = geo_mean(series["Fused"].speedup_over(series["PETSc"]))
    print(f"geo-mean speedups: vs unfused {vs_unfused:.2f}, vs PETSc {vs_petsc:.2f}")
    assert vs_unfused > 1.1
    assert vs_petsc > 0.8
