"""Figure 12b: Navier-Stokes channel flow weak scaling (Fused vs Unfused)."""

from repro.experiments.figures import figure12b_cfd
from repro.experiments.weak_scaling import format_series_table, geo_mean


def test_figure12b_cfd(benchmark, gpu_counts):
    """Element-wise updates over aliasing views: fusion wins 1.8x-2.3x (paper)."""

    def run():
        return figure12b_cfd(gpu_counts=gpu_counts)

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_series_table(series, "Figure 12b: CFD channel flow (iterations / second)"))
    speedups = series["Fused"].speedup_over(series["Unfused"])
    print(f"speedups: {[round(s, 2) for s in speedups]} (geo-mean {geo_mean(speedups):.2f})")
    assert geo_mean(speedups) > 1.2
    # Single-GPU fusion is at least as effective as multi-GPU fusion, since
    # partitioned aliasing views reduce fusion opportunities (paper Sec 7.1).
    assert speedups[0] >= 0.9 * max(speedups)
