"""Figure 12a: geometric multigrid weak scaling (Fused vs Unfused)."""

from repro.experiments.figures import figure12a_gmg
from repro.experiments.weak_scaling import format_series_table, geo_mean


def test_figure12a_gmg(benchmark, gpu_counts):
    """The V-cycle preconditioned CG gains about 1.2x from fusion (paper)."""

    def run():
        return figure12a_gmg(gpu_counts=gpu_counts)

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_series_table(series, "Figure 12a: Geometric Multigrid (iterations / second)"))
    speedups = series["Fused"].speedup_over(series["Unfused"])
    print(f"speedups: {[round(s, 2) for s in speedups]} (geo-mean {geo_mean(speedups):.2f})")
    assert geo_mean(speedups) > 1.05
