"""Figure 13: warm-up times with and without compilation, break-even counts."""

from repro.experiments.figures import FIGURE9_APPS, figure13_compile_time, format_figure13


def test_figure13_compile_time(benchmark):
    """JIT compilation is amortised after a modest number of iterations."""

    def run():
        return figure13_compile_time(num_gpus=8, apps=FIGURE9_APPS)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_figure13(rows))

    by_name = {row.benchmark: row for row in rows}
    # Compilation adds warm-up time to every application.
    for row in rows:
        assert row.compiled_seconds >= row.standard_seconds * 0.9
    # Applications that benefit from fusion amortise the compile overhead in
    # a bounded number of iterations (paper: between 1 and ~120 iterations).
    for name in ("black-scholes", "cg", "bicgstab", "gmg", "cfd", "torchswe"):
        row = by_name[name]
        if row.breakeven_iterations is not None:
            assert row.breakeven_iterations < 1000
    assert by_name["black-scholes"].breakeven_iterations is not None
    assert by_name["black-scholes"].breakeven_iterations < 20
