"""Figure 9: index tasks per iteration with and without fusion.

Regenerates the table's four data columns — tasks per iteration, tasks per
iteration after fusion, average task length, and the adaptively-chosen
window size — for every benchmark application on one GPU.
"""

from repro.experiments.figures import FIGURE9_APPS, figure9_task_counts, format_figure9


def test_figure9_task_counts(benchmark):
    """Regenerate the Figure 9 table and check the fusion reductions."""

    def run():
        return figure9_task_counts(num_gpus=1, apps=FIGURE9_APPS)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_figure9(rows))

    by_name = {row.benchmark: row for row in rows}
    # Black-Scholes collapses to a handful of fused launches (paper: 67 -> 1).
    assert by_name["black-scholes"].fused_tasks_per_iteration <= 3
    # Every application launches no more tasks than it did without fusion.
    for row in rows:
        assert row.fused_tasks_per_iteration <= row.tasks_per_iteration
    # The applications with long fusible chains get larger adaptive windows.
    assert by_name["black-scholes"].window_size > by_name["jacobi"].window_size
