"""Headline claims: geo-mean speedups over unfused, PETSc and hand-optimised code.

Paper abstract: 1.86x geo-mean over unmodified applications, 1.4x over
PETSc for the Krylov solvers, and 1.23x over already hand-optimised code.
"""

from repro.experiments.figures import headline_summary


def test_headline_geomeans(benchmark):
    """The three headline geo-means point in the paper's direction."""

    def run():
        return headline_summary(num_gpus=4)

    summary = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("Headline geo-mean speedups (paper -> measured):")
    print(f"  vs unfused applications: 1.86x -> {summary.speedup_vs_unfused:.2f}x")
    print(f"  vs PETSc (CG, BiCGSTAB): 1.40x -> {summary.speedup_vs_petsc:.2f}x")
    print(f"  vs hand-optimised code:  1.23x -> {summary.speedup_vs_manual:.2f}x")
    print("  per-application speedups vs unfused:")
    for app, speedup in sorted(summary.per_app_speedups.items()):
        print(f"    {app:>14}: {speedup:.2f}x")

    assert summary.speedup_vs_unfused > 1.2
    assert summary.speedup_vs_manual > 1.0
    assert summary.speedup_vs_petsc > 0.85
