"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
(Section 7) and prints the corresponding rows/series, so running

    pytest benchmarks/ --benchmark-only -s

produces the full set of reproduction artifacts.  The GPU counts and
problem sizes default to a reduced sweep that completes in a few minutes
of wall-clock time; set ``REPRO_FULL_SWEEP=1`` in the environment to run
the paper's full 1-128 GPU x-axis.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.weak_scaling import DEFAULT_GPU_COUNTS, PAPER_GPU_COUNTS


def benchmark_gpu_counts():
    """GPU counts used by the weak-scaling benchmarks."""
    if os.environ.get("REPRO_FULL_SWEEP"):
        return PAPER_GPU_COUNTS
    return DEFAULT_GPU_COUNTS


@pytest.fixture
def gpu_counts():
    """The GPU-count sweep for weak-scaling benchmarks."""
    return benchmark_gpu_counts()
