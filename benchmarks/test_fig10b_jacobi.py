"""Figure 10b: dense Jacobi iteration weak scaling (Fused vs Unfused)."""

from repro.experiments.figures import figure10b_jacobi
from repro.experiments.weak_scaling import format_series_table, geo_mean


def test_figure10b_jacobi(benchmark, gpu_counts):
    """Jacobi has almost nothing to fuse: Diffuse must not hurt."""

    def run():
        return figure10b_jacobi(gpu_counts=gpu_counts)

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_series_table(series, "Figure 10b: Jacobi iteration (iterations / second)"))
    speedups = series["Fused"].speedup_over(series["Unfused"])
    print(f"speedups: {[round(s, 2) for s in speedups]} (geo-mean {geo_mean(speedups):.2f})")
    # Paper: 0.93x - 1.08x.  Allow a slightly wider band for the simulator,
    # but fusion must stay roughly performance neutral.
    assert all(0.8 < speedup < 1.6 for speedup in speedups)
