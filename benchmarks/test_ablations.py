"""Ablation benchmarks for the design choices called out in DESIGN.md.

The paper argues (Section 7, overview) that task fusion alone gives no
speedup at these task granularities, that temporary elimination is
essential for the benefit of kernel fusion, and that memoization is a
requirement for a practical implementation.  These benchmarks measure each
claim on the Black-Scholes and CG workloads.
"""

from repro.experiments.harness import ExperimentScale, run_application_experiment
from repro.fusion.engine import FusionConfig

SCALE = ExperimentScale({"elements_per_gpu": 8192}, 2e-5, 3, 3)


def _run(fusion_config=None, fusion=True):
    return run_application_experiment(
        "black-scholes", num_gpus=2, fusion=fusion, scale=SCALE, fusion_config=fusion_config
    )


def test_ablation_task_fusion_only(benchmark):
    """Task fusion without kernel fusion only removes launch overheads."""

    def run():
        full = _run()
        task_only = _run(FusionConfig(enable_kernel_fusion=False, enable_temporary_elimination=False))
        unfused = _run(fusion=False)
        return full, task_only, unfused

    full, task_only, unfused = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("Ablation: task fusion only (Black-Scholes, 2 GPUs)")
    print(f"  full Diffuse      : {full.throughput:10.2f} it/s")
    print(f"  task fusion only  : {task_only.throughput:10.2f} it/s")
    print(f"  unfused           : {unfused.throughput:10.2f} it/s")
    # Task fusion alone helps a little (overhead removal) but kernel fusion
    # provides the bulk of the speedup, as the paper reports.
    assert full.throughput > 1.5 * task_only.throughput
    assert task_only.throughput > 0.9 * unfused.throughput


def test_ablation_temporary_elimination(benchmark):
    """Disabling temporary elimination forfeits most of the memory-traffic win."""

    def run():
        full = _run()
        no_temporaries = _run(FusionConfig(enable_temporary_elimination=False))
        return full, no_temporaries

    full, no_temporaries = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("Ablation: temporary store elimination (Black-Scholes, 2 GPUs)")
    print(f"  with elimination   : {full.throughput:10.2f} it/s")
    print(f"  without elimination: {no_temporaries.throughput:10.2f} it/s")
    assert full.throughput > no_temporaries.throughput


def test_ablation_memoization(benchmark):
    """Without memoization the fusion analysis and compilation repeat every window."""

    def run():
        with_memo = _run()
        without_memo = _run(FusionConfig(enable_memoization=False))
        return with_memo, without_memo

    with_memo, without_memo = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("Ablation: memoization of the fusion analysis (Black-Scholes, 2 GPUs)")
    print(f"  with memoization   : {with_memo.throughput:10.2f} it/s "
          f"(compile {with_memo.compile_seconds:.3f}s)")
    print(f"  without memoization: {without_memo.throughput:10.2f} it/s "
          f"(compile {without_memo.compile_seconds:.3f}s)")
    assert without_memo.compile_seconds > with_memo.compile_seconds
    assert with_memo.throughput >= 0.95 * without_memo.throughput


def test_ablation_window_size(benchmark):
    """A window too small to hold the fusible chain limits the speedup."""

    def run():
        adaptive = _run()
        tiny_window = _run(FusionConfig(initial_window_size=4, max_window_size=4, adaptive_window=False))
        return adaptive, tiny_window

    adaptive, tiny_window = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("Ablation: task-window size (Black-Scholes, 2 GPUs)")
    print(f"  adaptive window    : {adaptive.throughput:10.2f} it/s "
          f"(window {adaptive.window_size})")
    print(f"  fixed window of 4  : {tiny_window.throughput:10.2f} it/s "
          f"(window {tiny_window.window_size})")
    print(f"  launched tasks/iter: {adaptive.launched_tasks_per_iteration:.1f} vs "
          f"{tiny_window.launched_tasks_per_iteration:.1f}")
    assert adaptive.throughput > tiny_window.throughput
    assert adaptive.launched_tasks_per_iteration < tiny_window.launched_tasks_per_iteration
