"""Figure 11a: CG weak scaling (Fused / PETSc / Manually Fused / Unfused)."""

from repro.experiments.figures import figure11a_cg
from repro.experiments.weak_scaling import format_series_table, geo_mean


def test_figure11a_cg(benchmark, gpu_counts):
    """Diffuse lets naturally-written CG match hand-optimised baselines."""

    def run():
        return figure11a_cg(gpu_counts=gpu_counts)

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_series_table(series, "Figure 11a: Conjugate Gradient (iterations / second)"))
    vs_unfused = geo_mean(series["Fused"].speedup_over(series["Unfused"]))
    vs_manual = geo_mean(series["Fused"].speedup_over(series["Manually Fused"]))
    vs_petsc = geo_mean(series["Fused"].speedup_over(series["PETSc"]))
    print(f"geo-mean speedups: vs unfused {vs_unfused:.2f}, vs manual {vs_manual:.2f}, vs PETSc {vs_petsc:.2f}")
    # Shape requirements: fused beats unfused, and is at least competitive
    # with the hand-optimised and PETSc baselines (paper: slightly ahead).
    assert vs_unfused > 1.05
    assert vs_manual > 0.9
    assert vs_petsc > 0.85
