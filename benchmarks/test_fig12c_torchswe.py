"""Figure 12c: TorchSWE weak scaling (Fused / Manually Fused / Unfused)."""

from repro.experiments.figures import figure12c_torchswe
from repro.experiments.weak_scaling import format_series_table, geo_mean


def test_figure12c_torchswe(benchmark, gpu_counts):
    """Diffuse beats both the natural and the hand-vectorised TorchSWE."""

    def run():
        return figure12c_torchswe(gpu_counts=gpu_counts)

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_series_table(series, "Figure 12c: TorchSWE (iterations / second)"))
    vs_unfused = geo_mean(series["Fused"].speedup_over(series["Unfused"]))
    vs_manual = geo_mean(series["Fused"].speedup_over(series["Manually Fused"]))
    print(f"geo-mean speedups: vs unfused {vs_unfused:.2f}, vs manually fused {vs_manual:.2f}")
    # Paper: 1.61x over unfused and 1.35x over the manually vectorised port.
    assert vs_unfused > 1.2
    assert vs_manual > 1.05
