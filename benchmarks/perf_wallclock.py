#!/usr/bin/env python
"""Wall-clock performance harness: seed interpreter vs codegen vs trace.

Unlike the ``benchmarks/test_*`` suite — which reproduces the paper's
*simulated* figures — this harness measures the reproduction's own
**real wall-clock** execution speed, establishing the perf trajectory of
the repository.  It runs CG, Jacobi, Black-Scholes, two-mat-vec, GMG,
BiCGSTAB, CFD and TorchSWE (natural and manually-vectorised)
end-to-end (fusion enabled) under these configurations:

``baseline``
    ``REPRO_KERNEL_BACKEND=interpreter`` + ``REPRO_HOTPATH_CACHE=0`` +
    ``REPRO_TRACE=0``: the seed execution path — tree-walking kernel
    interpretation, no submit→fuse→execute caching, eager submission.

``codegen``
    ``REPRO_KERNEL_BACKEND=codegen`` + ``REPRO_HOTPATH_CACHE=1`` +
    ``REPRO_TRACE=0``: the PR-1 path — kernels compiled once to NumPy
    closures, sub-store rect/view caching, partition interning and
    memoized canonical signatures, but every task still resolved through
    the full pipeline every iteration.

``trace``
    ``codegen`` plus ``REPRO_TRACE=1`` with ``REPRO_WORKERS=1`` and
    ``REPRO_NORMALIZE=0``: the PR-2 path — repeated epochs bypass window
    buffering, fusion analysis, memoization lookups and per-task
    coherence recomputation and replay a captured execution plan, step
    by step with the PR-2 kernel shapes.

``scheduler``
    ``trace`` plus the PR-3 plan scheduler: ``REPRO_WORKERS=4`` executes
    each captured plan through its dependence partition (independent
    steps overlap on the worker pool) and ``REPRO_NORMALIZE=1`` enables
    the algebraic-normalisation/CSE improvements (bit-exact erf/negation
    rewrites, value-deduplicated scalar parameters) that ship with it.

``point``
    ``scheduler`` plus intra-launch point dispatch:
    ``REPRO_POINT_WORKERS=4`` partitions the per-rank point tasks of
    each multi-rank launch into contiguous chunks executed across the
    shared worker pool (the PR-4 tentpole) — the first mode whose
    speedup comes from filling the machine *inside* a single launch.

``process``
    ``point`` plus ``REPRO_DISPATCH_BACKEND=process``: rank chunks of
    compiled launches execute on a persistent pool of worker processes
    over zero-copy shared-memory region fields (the PR-5 tentpole),
    removing the GIL ceiling that bounds the thread substrate on
    interpreter-heavy and small-tile kernels.

``superkernel``
    ``scheduler`` plus ``REPRO_SUPERKERNEL=1``: captured plans are
    lowered to epoch super-kernels at capture time (the PR-6 tentpole) —
    producer→consumer compiled steps splice into one generated function
    and independent same-shape steps merge horizontally, so a steady
    replay epoch runs a handful of fused closure calls instead of one
    per step per rank.  Every legacy mode pins ``REPRO_SUPERKERNEL=0``
    (the flag defaults to on) so they keep measuring their own layer.

``resident``
    ``process`` plus ``REPRO_RESIDENT_PLANS=1``: captured plans are
    shipped to the worker processes once (kernel specs, step geometry,
    shared-memory descriptors) and every subsequent replay dispatch
    sends only ``(plan id, epoch scalars, rank ranges)`` — the PR-7
    tentpole, which removes the per-epoch serialization of chunk
    requests from the process substrate's steady state.  Every legacy
    mode pins ``REPRO_RESIDENT_PLANS=0`` (the flag defaults to on under
    the process backend) so ``process`` keeps measuring the per-chunk
    protocol.

The ``scheduler`` mode is additionally timed against ``trace`` on a
kernel-dominated gate configuration (Black-Scholes with a large batch,
where the deduplicated transcendentals dominate); full mode enforces a
>= 1.2x scheduler-over-trace speedup there.  The ``point`` mode has its
own gate: a multi-rank, kernel-dominated Jacobi configuration (the
opaque GEMV dominates and its 8 rank tiles parallelise across the
pool), where full mode enforces a >= 1.3x point-over-scheduler speedup
— on hosts with at least two CPUs.  The ``process`` mode's gate is an
interpreter-heavy small-tile Black-Scholes configuration where thread
dispatch is GIL-bound: the worker-process substrate must beat it by
>= 1.3x, again enforced on multi-core hosts only.  Dispatch is machine
parallelism, so on a single-core host the dispatch-gate measurements
are recorded (and checksum equality still enforced) but the speedup
thresholds are reported as not enforceable.  The ``superkernel`` mode
has its own gate: a steady-epoch CG configuration at high rank count,
where per-step closure dispatch dominates replay — full mode enforces a
>= 1.2x superkernel-over-scheduler paired speedup there (no core
requirement: the win is single-thread overhead elimination), plus a
>= 3x drop in compiled-closure calls per replay epoch on the CG sweep,
asserted on the deterministic profiler counters.  The ``resident`` mode
has a two-part gate on a steady-epoch, many-rank CG configuration:
``wire_bytes_per_epoch`` must drop >= 10x vs the per-chunk protocol —
the counters size the actual pickled pipe payloads, so this is
deterministic and enforced regardless of core count — and the paired
resident-over-chunked wall-clock speedup must reach >= 1.2x on hosts
with at least two CPUs (``host_cpus`` is recorded either way).
The opaque-chunk gate (PR-8) compares per-rank vs chunk-level opaque
operator execution on the two-mat-vec GEMV app at 8 ranks — the two
legs differ only in ``REPRO_OPAQUE_CHUNKS`` — and enforces a >= 4x
drop in opaque operator calls per steady epoch on the deterministic
profiler counters (full mode, regardless of core count).
The wide-dispatch gate (PR-9) runs torchswe-manual — whose three
independent opaque update operators form width-3 dependence levels —
on the full stack under both dispatch substrates: the thread leg's
nested-dispatch guard forces every step of a wide level onto serial
thread chunks, the process leg ships all in-flight steps' chunks to
the worker-process pool concurrently.  ``plan_width_max >= 2``, a
width>=2 entry in the level-width histogram and nonzero
process-substrate chunk counts are deterministic and enforced in every
mode; the >= 1.2x paired process-over-thread wall-clock threshold is
enforced on multi-core hosts in full mode.  The sweep itself also
fails if a promoted wide app records ``plan_width_max < 2`` in
scheduler mode (the silent-width blind spot).
``--gates-only`` runs just the gate measurements at full scale (the CI
gate job).

Before timing, a differential pass (``REPRO_KERNEL_BACKEND=differential``
with tracing, the scheduler, point dispatch AND the process dispatch
backend enabled, so replayed, scheduled and process-chunked epochs are
all checked) runs every application once with both backends on every
kernel invocation and aborts on any bitwise divergence; checksum
equality between all timed runs is asserted as well.  Trace hit counts, hit rates, plan-scheduler
statistics (DAG width, worker utilisation), point-dispatch statistics
(width, chunk counts, utilisation) and scalar-pattern-flip counts are
recorded, and every iterative app must report >0 trace hits.
Results are written to ``BENCH_wallclock.json``.

Usage::

    PYTHONPATH=src python benchmarks/perf_wallclock.py [--smoke] [--output PATH]

``--smoke`` shrinks repeats/iterations for CI (``make bench``); the
speedup gates are only enforced in full mode, divergence and missing
trace hits fail both modes.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import time
from typing import Dict, List, Optional, Tuple

from repro import config
from repro.experiments.harness import (
    ExperimentScale,
    default_scale_for,
    run_application_experiment,
)

#: Per-application measurement configurations.  Problem sizes sit in the
#: paper's operating regime — many small point tasks, where launch and
#: analysis overheads (the thing this harness measures) dominate.
APP_CONFIGS = {
    "cg": dict(num_gpus=8, iterations=64, warmup=2, app_kwargs={"grid_points_per_gpu": 24}),
    "jacobi": dict(num_gpus=8, iterations=48, warmup=2, app_kwargs={"rows_per_gpu": 96}),
    "black-scholes": dict(num_gpus=8, iterations=120, warmup=3, app_kwargs={"elements_per_gpu": 512}),
    # Width-2 dependence DAG: two independent mat-vec recurrences per
    # epoch, so the sweep exercises wide plan levels (plan_width_max > 1)
    # and the super-kernel pass's opaque-step fallback (GEMV stays
    # opaque) on every mode.
    "two-matvec": dict(num_gpus=8, iterations=48, warmup=2, app_kwargs={"rows_per_gpu": 48}),
    # Interleaves fusible smoother chains with three distinct opaque
    # operator families (SpMV, restriction, prolongation), so the sweep —
    # and in particular the differential pass with chunked opaque
    # execution on the process backend — covers every registered chunk
    # implementation end to end.  No perf gate yet: the V-cycle's task
    # mix is too varied for a stable paired ratio at smoke scale.
    "gmg": dict(num_gpus=8, iterations=12, warmup=2, app_kwargs={"grid_points_per_gpu": 16}),
    # Promoted first-class perf citizens (PR-9): the three remaining
    # paper apps.  BiCGSTAB is a two-SpMV Krylov chain; CFD interleaves
    # one opaque stencil with a long fusible pressure/velocity stream;
    # torchswe-manual's three independent opaque update operators give
    # the sweep its genuinely *wide* (width-3) dependence levels — the
    # regime the wide-dispatch gate below measures.
    "bicgstab": dict(num_gpus=8, iterations=24, warmup=2, app_kwargs={"grid_points_per_gpu": 24}),
    "cfd": dict(num_gpus=4, iterations=12, warmup=2, app_kwargs={"points_per_gpu": 48, "pressure_iterations": 4}),
    "torchswe": dict(num_gpus=4, iterations=12, warmup=2, app_kwargs={"points_per_gpu": 48}),
    "torchswe-manual": dict(num_gpus=4, iterations=12, warmup=2, app_kwargs={"points_per_gpu": 64}),
}

SMOKE_CONFIGS = {
    "cg": dict(num_gpus=4, iterations=10, warmup=2, app_kwargs={"grid_points_per_gpu": 24}),
    "jacobi": dict(num_gpus=4, iterations=8, warmup=2, app_kwargs={"rows_per_gpu": 64}),
    "black-scholes": dict(num_gpus=4, iterations=10, warmup=2, app_kwargs={"elements_per_gpu": 512}),
    "two-matvec": dict(num_gpus=4, iterations=8, warmup=2, app_kwargs={"rows_per_gpu": 32}),
    "gmg": dict(num_gpus=4, iterations=4, warmup=2, app_kwargs={"grid_points_per_gpu": 12}),
    "bicgstab": dict(num_gpus=4, iterations=6, warmup=2, app_kwargs={"grid_points_per_gpu": 24}),
    "cfd": dict(num_gpus=4, iterations=4, warmup=2, app_kwargs={"points_per_gpu": 24, "pressure_iterations": 2}),
    "torchswe": dict(num_gpus=4, iterations=4, warmup=2, app_kwargs={"points_per_gpu": 24}),
    # The smoke size keeps the interior exactly at the dispatch-volume
    # floor (64^2 * 4 ranks -> a 128^2 interior = 16384 elements), so
    # the wide levels still *dispatch* — and therefore still exercise
    # the process substrate — in CI.
    "torchswe-manual": dict(num_gpus=4, iterations=4, warmup=2, app_kwargs={"points_per_gpu": 64}),
}

#: Promoted wide-plan apps whose scheduler-mode run must record
#: width >= 2 dependence levels (``plan_width_max``): the wide-dispatch
#: machinery only engages on such levels, so a width-1 record means the
#: config silently stopped exercising it.  Deterministic (the captured
#: schedule's shape), so this is enforced in smoke and full mode alike.
WIDTH_REQUIRED_APPS = ("torchswe-manual",)

MODES = {
    "baseline": {
        "REPRO_KERNEL_BACKEND": "interpreter",
        "REPRO_HOTPATH_CACHE": "0",
        "REPRO_TRACE": "0",
        "REPRO_WORKERS": "1",
        "REPRO_POINT_WORKERS": "1",
        "REPRO_NORMALIZE": "0",
        "REPRO_DISPATCH_BACKEND": "thread",
        "REPRO_SUPERKERNEL": "0",
        "REPRO_RESIDENT_PLANS": "0",
        "REPRO_OPAQUE_CHUNKS": "0",
    },
    "codegen": {
        "REPRO_KERNEL_BACKEND": "codegen",
        "REPRO_HOTPATH_CACHE": "1",
        "REPRO_TRACE": "0",
        "REPRO_WORKERS": "1",
        "REPRO_POINT_WORKERS": "1",
        "REPRO_NORMALIZE": "0",
        "REPRO_DISPATCH_BACKEND": "thread",
        "REPRO_SUPERKERNEL": "0",
        "REPRO_RESIDENT_PLANS": "0",
        "REPRO_OPAQUE_CHUNKS": "0",
    },
    "trace": {
        "REPRO_KERNEL_BACKEND": "codegen",
        "REPRO_HOTPATH_CACHE": "1",
        "REPRO_TRACE": "1",
        "REPRO_WORKERS": "1",
        "REPRO_POINT_WORKERS": "1",
        "REPRO_NORMALIZE": "0",
        "REPRO_DISPATCH_BACKEND": "thread",
        "REPRO_SUPERKERNEL": "0",
        "REPRO_RESIDENT_PLANS": "0",
        "REPRO_OPAQUE_CHUNKS": "0",
    },
    "scheduler": {
        "REPRO_KERNEL_BACKEND": "codegen",
        "REPRO_HOTPATH_CACHE": "1",
        "REPRO_TRACE": "1",
        "REPRO_WORKERS": "4",
        "REPRO_POINT_WORKERS": "1",
        "REPRO_NORMALIZE": "1",
        "REPRO_DISPATCH_BACKEND": "thread",
        "REPRO_SUPERKERNEL": "0",
        "REPRO_RESIDENT_PLANS": "0",
        "REPRO_OPAQUE_CHUNKS": "0",
    },
    # The PR-6 tentpole: identical to ``scheduler`` except that captured
    # plans are lowered to epoch super-kernels, so the paired gate below
    # isolates exactly the fused-closure effect.
    "superkernel": {
        "REPRO_KERNEL_BACKEND": "codegen",
        "REPRO_HOTPATH_CACHE": "1",
        "REPRO_TRACE": "1",
        "REPRO_WORKERS": "4",
        "REPRO_POINT_WORKERS": "1",
        "REPRO_NORMALIZE": "1",
        "REPRO_DISPATCH_BACKEND": "thread",
        "REPRO_SUPERKERNEL": "1",
        "REPRO_RESIDENT_PLANS": "0",
        "REPRO_OPAQUE_CHUNKS": "0",
    },
    "point": {
        "REPRO_KERNEL_BACKEND": "codegen",
        "REPRO_HOTPATH_CACHE": "1",
        "REPRO_TRACE": "1",
        "REPRO_WORKERS": "4",
        "REPRO_POINT_WORKERS": "4",
        "REPRO_NORMALIZE": "1",
        "REPRO_DISPATCH_BACKEND": "thread",
        "REPRO_SUPERKERNEL": "0",
        "REPRO_RESIDENT_PLANS": "0",
        "REPRO_OPAQUE_CHUNKS": "0",
    },
    "process": {
        "REPRO_KERNEL_BACKEND": "codegen",
        "REPRO_HOTPATH_CACHE": "1",
        "REPRO_TRACE": "1",
        "REPRO_WORKERS": "4",
        "REPRO_POINT_WORKERS": "4",
        "REPRO_NORMALIZE": "1",
        "REPRO_DISPATCH_BACKEND": "process",
        "REPRO_SUPERKERNEL": "0",
        "REPRO_RESIDENT_PLANS": "0",
        "REPRO_OPAQUE_CHUNKS": "0",
    },
    # The PR-7 tentpole: identical to ``process`` except that captured
    # plans live in the worker processes, so the paired gate below
    # isolates exactly the plan-residency effect.
    "resident": {
        "REPRO_KERNEL_BACKEND": "codegen",
        "REPRO_HOTPATH_CACHE": "1",
        "REPRO_TRACE": "1",
        "REPRO_WORKERS": "4",
        "REPRO_POINT_WORKERS": "4",
        "REPRO_NORMALIZE": "1",
        "REPRO_DISPATCH_BACKEND": "process",
        "REPRO_SUPERKERNEL": "0",
        "REPRO_RESIDENT_PLANS": "1",
        "REPRO_OPAQUE_CHUNKS": "0",
    },
    # The resident gate's two legs: the process substrate at a wider
    # point-dispatch fan-out (many chunks per step, so the per-chunk
    # protocol re-serializes many requests per epoch), chunked vs
    # plan-resident.
    "process-wide": {
        "REPRO_KERNEL_BACKEND": "codegen",
        "REPRO_HOTPATH_CACHE": "1",
        "REPRO_TRACE": "1",
        "REPRO_WORKERS": "4",
        "REPRO_POINT_WORKERS": "16",
        "REPRO_NORMALIZE": "1",
        "REPRO_DISPATCH_BACKEND": "process",
        "REPRO_SUPERKERNEL": "0",
        "REPRO_RESIDENT_PLANS": "0",
        "REPRO_OPAQUE_CHUNKS": "0",
    },
    "resident-wide": {
        "REPRO_KERNEL_BACKEND": "codegen",
        "REPRO_HOTPATH_CACHE": "1",
        "REPRO_TRACE": "1",
        "REPRO_WORKERS": "4",
        "REPRO_POINT_WORKERS": "16",
        "REPRO_NORMALIZE": "1",
        "REPRO_DISPATCH_BACKEND": "process",
        "REPRO_SUPERKERNEL": "0",
        "REPRO_RESIDENT_PLANS": "1",
        "REPRO_OPAQUE_CHUNKS": "0",
    },
    # The wide-dispatch gate's two legs (PR-9): the full stack — trace,
    # scheduler, point dispatch, resident plans, opaque chunks — on the
    # two dispatch substrates.  Only ``REPRO_DISPATCH_BACKEND`` differs
    # (resident plans and the wide-level guard lift are no-ops under the
    # thread backend), so the paired ratio isolates what shipping the
    # chunks of width>1 levels to the worker-process pool buys over the
    # serial thread chunks the nested-dispatch guard forces.
    "wide-thread": {
        "REPRO_KERNEL_BACKEND": "codegen",
        "REPRO_HOTPATH_CACHE": "1",
        "REPRO_TRACE": "1",
        "REPRO_WORKERS": "4",
        "REPRO_POINT_WORKERS": "4",
        "REPRO_NORMALIZE": "1",
        "REPRO_DISPATCH_BACKEND": "thread",
        "REPRO_SUPERKERNEL": "0",
        "REPRO_RESIDENT_PLANS": "1",
        "REPRO_OPAQUE_CHUNKS": "1",
    },
    "wide-process": {
        "REPRO_KERNEL_BACKEND": "codegen",
        "REPRO_HOTPATH_CACHE": "1",
        "REPRO_TRACE": "1",
        "REPRO_WORKERS": "4",
        "REPRO_POINT_WORKERS": "4",
        "REPRO_NORMALIZE": "1",
        "REPRO_DISPATCH_BACKEND": "process",
        "REPRO_SUPERKERNEL": "0",
        "REPRO_RESIDENT_PLANS": "1",
        "REPRO_OPAQUE_CHUNKS": "1",
    },
    # The process gate compares the two dispatch substrates on an
    # interpreter-heavy, small-tile configuration: the tree-walking
    # kernel backend holds the GIL between its many small NumPy calls,
    # so thread point dispatch cannot scale there while worker processes
    # can (the PR-5 tentpole's target regime).
    "point-gil": {
        "REPRO_KERNEL_BACKEND": "interpreter",
        "REPRO_HOTPATH_CACHE": "1",
        "REPRO_TRACE": "1",
        "REPRO_WORKERS": "4",
        "REPRO_POINT_WORKERS": "4",
        "REPRO_NORMALIZE": "1",
        "REPRO_DISPATCH_BACKEND": "thread",
        "REPRO_SUPERKERNEL": "0",
        "REPRO_RESIDENT_PLANS": "0",
        "REPRO_OPAQUE_CHUNKS": "0",
    },
    "process-gil": {
        "REPRO_KERNEL_BACKEND": "interpreter",
        "REPRO_HOTPATH_CACHE": "1",
        "REPRO_TRACE": "1",
        "REPRO_WORKERS": "4",
        "REPRO_POINT_WORKERS": "4",
        "REPRO_NORMALIZE": "1",
        "REPRO_DISPATCH_BACKEND": "process",
        "REPRO_SUPERKERNEL": "0",
        "REPRO_RESIDENT_PLANS": "0",
        "REPRO_OPAQUE_CHUNKS": "0",
    },
    "differential": {
        "REPRO_KERNEL_BACKEND": "differential",
        "REPRO_HOTPATH_CACHE": "1",
        "REPRO_TRACE": "1",
        "REPRO_WORKERS": "4",
        "REPRO_POINT_WORKERS": "4",
        "REPRO_NORMALIZE": "1",
        # The differential pass certifies the *process* substrate too:
        # every replayed, scheduled and process-chunked epoch is checked
        # kernel by kernel, so ``make bench`` smoke fails on any process
        # backend divergence.
        "REPRO_DISPATCH_BACKEND": "process",
        # Super-kernels run in verify mode under the differential
        # backend: every fused call is checked bitwise against its
        # constituent steps, so the pass certifies the PR-6 lowering too.
        "REPRO_SUPERKERNEL": "1",
        # Resident replay runs under the differential executor as well:
        # every chunk a worker serves from a resident template is
        # cross-checked bitwise, so ``make bench`` smoke fails on any
        # resident-path divergence.
        "REPRO_RESIDENT_PLANS": "1",
        # Chunked opaque execution rides the same pass: every merged
        # chunk-level operator call is checked bitwise against the seed
        # kernels, so the PR-8 chunk implementations are certified on
        # every app too.  Every legacy mode pins the flag off (it
        # defaults to on) so each keeps measuring its own layer.
        "REPRO_OPAQUE_CHUNKS": "1",
    },
    # The opaque gate's two legs: serial single-chunk replay (one chunk
    # spans the whole launch at point width 1), per-rank vs chunk-level
    # opaque execution.  Everything else is pinned identical, so the
    # deterministic opaque-call counters isolate exactly the PR-8
    # call-collapsing effect.
    "opaque-off": {
        "REPRO_KERNEL_BACKEND": "codegen",
        "REPRO_HOTPATH_CACHE": "1",
        "REPRO_TRACE": "1",
        "REPRO_WORKERS": "1",
        "REPRO_POINT_WORKERS": "1",
        "REPRO_NORMALIZE": "1",
        "REPRO_DISPATCH_BACKEND": "thread",
        "REPRO_SUPERKERNEL": "0",
        "REPRO_RESIDENT_PLANS": "0",
        "REPRO_OPAQUE_CHUNKS": "0",
    },
    "opaque-chunks": {
        "REPRO_KERNEL_BACKEND": "codegen",
        "REPRO_HOTPATH_CACHE": "1",
        "REPRO_TRACE": "1",
        "REPRO_WORKERS": "1",
        "REPRO_POINT_WORKERS": "1",
        "REPRO_NORMALIZE": "1",
        "REPRO_DISPATCH_BACKEND": "thread",
        "REPRO_SUPERKERNEL": "0",
        "REPRO_RESIDENT_PLANS": "0",
        "REPRO_OPAQUE_CHUNKS": "1",
    },
}

#: Acceptance thresholds on the trace-mode end-to-end speedup over the
#: seed baseline (full mode only).
SPEEDUP_THRESHOLDS = {"cg": 3.0, "black-scholes": 2.5}

#: Scheduler gate: a kernel-dominated configuration where the plan
#: scheduler's dispatch path plus the normalisation satellite must beat
#: the PR-2 trace path end to end (full mode only).
SCHEDULER_GATE_APP = "black-scholes"
SCHEDULER_GATE_CONFIG = dict(
    num_gpus=8, iterations=24, warmup=3, app_kwargs={"elements_per_gpu": 16384}
)
SCHEDULER_GATE_SMOKE_CONFIG = dict(
    num_gpus=4, iterations=6, warmup=2, app_kwargs={"elements_per_gpu": 4096}
)
SCHEDULER_SPEEDUP_THRESHOLD = 1.2

#: Point-dispatch gate: a multi-rank, kernel-dominated configuration —
#: Jacobi's opaque GEMV dominates wall-clock and its per-rank tiles are
#: large NumPy matvecs that release the GIL, so chunking the 8 ranks
#: across 4 pool workers must beat the PR-3 scheduler path end to end.
POINT_GATE_APP = "jacobi"
POINT_GATE_CONFIG = dict(
    num_gpus=8, iterations=16, warmup=2, app_kwargs={"rows_per_gpu": 768}
)
POINT_GATE_SMOKE_CONFIG = dict(
    num_gpus=4, iterations=4, warmup=2, app_kwargs={"rows_per_gpu": 192}
)
POINT_SPEEDUP_THRESHOLD = 1.3

#: Process-dispatch gate: an interpreter-heavy small-tile configuration —
#: Black-Scholes under the tree-walking kernel backend, whose many small
#: NumPy calls hold the GIL, so thread point dispatch is GIL-bound and
#: the worker-process substrate must beat it end to end on multi-core
#: hosts.  Enforced only there, like the point gate.
PROCESS_GATE_APP = "black-scholes"
PROCESS_GATE_CONFIG = dict(
    num_gpus=8, iterations=20, warmup=2, app_kwargs={"elements_per_gpu": 4096}
)
PROCESS_GATE_SMOKE_CONFIG = dict(
    num_gpus=4, iterations=5, warmup=2, app_kwargs={"elements_per_gpu": 4096}
)
PROCESS_SPEEDUP_THRESHOLD = 1.3

#: Super-kernel gate: a steady-epoch CG configuration at high rank count
#: with tiny tiles — per-step closure dispatch (per-rank view binding,
#: partial folding, per-step accounting) dominates replay wall-clock
#: there, which is exactly the overhead the PR-6 fused units eliminate.
#: Unlike the dispatch gates this is a single-thread effect, so the
#: threshold is enforced regardless of core count (full mode only).
SUPERKERNEL_GATE_APP = "cg"
SUPERKERNEL_GATE_CONFIG = dict(
    num_gpus=64, iterations=96, warmup=2, app_kwargs={"grid_points_per_gpu": 4}
)
SUPERKERNEL_GATE_SMOKE_CONFIG = dict(
    num_gpus=8, iterations=10, warmup=2, app_kwargs={"grid_points_per_gpu": 6}
)
SUPERKERNEL_SPEEDUP_THRESHOLD = 1.2

#: Resident-plan gate: a steady-epoch CG replay at high rank count with
#: a wide point-dispatch fan-out — every epoch the per-chunk protocol
#: re-pickles one request per chunk per step (names, descriptors,
#: scalar dicts, rank bounds) while plan-resident replay references the
#: worker-held templates by id.  Two thresholds: the wire-traffic drop
#: is measured on the deterministic payload-size counters (enforced in
#: full mode regardless of core count) and the paired wall-clock
#: speedup needs real cores (enforced on multi-core hosts, like the
#: other dispatch gates).
RESIDENT_GATE_APP = "cg"
#: The wire comparison uses the *steady* per-epoch counters (measured
#: iterations only), and the warm-up is long enough that the one-time
#: spec/geometry/plan ships *and* the descriptor-interning ramp (the
#: arena's recycled-offset set is fully sighted after a few epochs)
#: both land inside it.
RESIDENT_GATE_CONFIG = dict(
    num_gpus=64, iterations=96, warmup=24, app_kwargs={"grid_points_per_gpu": 24}
)
RESIDENT_GATE_SMOKE_CONFIG = dict(
    num_gpus=16, iterations=10, warmup=6, app_kwargs={"grid_points_per_gpu": 32}
)
RESIDENT_SPEEDUP_THRESHOLD = 1.2
RESIDENT_WIRE_DROP_THRESHOLD = 10.0

#: Closure-call drop the super-kernel pass must deliver on the CG sweep
#: configuration: compiled-closure calls per steady replay epoch with the
#: pass off vs on, asserted on the deterministic profiler counters (full
#: mode; the smoke configuration's 4-GPU plans sit exactly at 3x).
SUPERKERNEL_CLOSURE_DROP_THRESHOLD = 3.0

#: Opaque-chunk gate: the two-mat-vec app at 8 ranks runs two opaque
#: GEMV launches per epoch — 16 per-rank operator calls with chunking
#: off, 2 chunk-level calls with it on (point width 1, so each launch
#: collapses to a single merged-row-block GEMV): an 8x drop, asserted
#: on the deterministic opaque-call counters.  Like the super-kernel
#: closure gate this is independent of machine load, so the threshold
#: is enforced in full mode regardless of core count.
OPAQUE_GATE_APP = "two-matvec"
OPAQUE_GATE_CONFIG = dict(
    num_gpus=8, iterations=16, warmup=2, app_kwargs={"rows_per_gpu": 48}
)
OPAQUE_GATE_SMOKE_CONFIG = dict(
    num_gpus=8, iterations=4, warmup=2, app_kwargs={"rows_per_gpu": 32}
)
OPAQUE_CALL_DROP_THRESHOLD = 4.0

#: Wide-dispatch gate (PR-9): torchswe-manual's three independent
#: opaque Lax-Friedrichs updates form a width-3 dependence level whose
#: steps each carry a dispatchable rank fan-out.  Under the thread
#: backend the nested-dispatch guard forces every such step onto serial
#: thread chunks; under the process backend the lifted guard ships the
#: chunks of all in-flight steps to the worker-process pool
#: concurrently over the multiplexed pipe protocol.  The two legs
#: differ only in ``REPRO_DISPATCH_BACKEND``, so the paired ratio
#: isolates exactly that.  Width and process-chunk usage are
#: deterministic counters (enforced everywhere, smoke included); the
#: wall-clock threshold needs real cores (multi-core hosts, full mode).
WIDE_GATE_APP = "torchswe-manual"
WIDE_GATE_CONFIG = dict(
    num_gpus=4, iterations=12, warmup=2, app_kwargs={"points_per_gpu": 96}
)
WIDE_GATE_SMOKE_CONFIG = dict(
    num_gpus=4, iterations=4, warmup=2, app_kwargs={"points_per_gpu": 64}
)
WIDE_SPEEDUP_THRESHOLD = 1.2


def _host_cpus() -> int:
    """CPUs actually available to this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _set_mode(mode: str) -> None:
    for key, value in MODES[mode].items():
        os.environ[key] = value
    config.reload_flags()


def _run_once(app: str, spec: dict):
    """One end-to-end run; returns (wall seconds, RunResult)."""
    base_scale = default_scale_for(app)
    scale = ExperimentScale(
        app_kwargs=dict(base_scale.app_kwargs, **spec["app_kwargs"]),
        bandwidth_scale=base_scale.bandwidth_scale,
        iterations=spec["iterations"],
        warmup_iterations=spec["warmup"],
    )
    start = time.perf_counter()
    result = run_application_experiment(
        app, num_gpus=spec["num_gpus"], fusion=True, scale=scale
    )
    elapsed = time.perf_counter() - start
    return elapsed, result


def _measure(app: str, spec: dict, mode: str, repeats: int):
    """Median wall seconds (and the last RunResult) of ``repeats`` runs."""
    _set_mode(mode)
    _run_once(app, spec)  # warm the process (imports, codegen cache, numpy)
    times: List[float] = []
    result = None
    for _ in range(repeats):
        elapsed, result = _run_once(app, spec)
        times.append(elapsed)
    return statistics.median(times), result


def _measure_pair(app: str, spec: dict, mode_a: str, mode_b: str, repeats: int):
    """Paired comparison of two modes: interleaved runs, per-pair ratios.

    The gate measurements compare two configurations of the *same*
    workload, and a full harness run takes many minutes on a shared
    host — two legs measured back-to-back-but-minutes-apart can land in
    different machine-load regimes, which dominates the ~1.2–1.3×
    effects the gates assert.  Alternating the legs and taking the
    median of the per-pair ``a/b`` ratios cancels that slow drift
    (each ratio compares runs executed adjacently); the per-leg median
    times are still reported for the record.
    """
    _set_mode(mode_a)
    _run_once(app, spec)  # warm both modes before timing anything
    _set_mode(mode_b)
    _run_once(app, spec)
    times_a: List[float] = []
    times_b: List[float] = []
    ratios: List[float] = []
    result_a = result_b = None
    for _ in range(repeats):
        _set_mode(mode_a)
        elapsed_a, result_a = _run_once(app, spec)
        _set_mode(mode_b)
        elapsed_b, result_b = _run_once(app, spec)
        times_a.append(elapsed_a)
        times_b.append(elapsed_b)
        ratios.append(elapsed_a / elapsed_b if elapsed_b > 0 else float("inf"))
    return (
        statistics.median(times_a),
        result_a,
        statistics.median(times_b),
        result_b,
        statistics.median(ratios),
    )


#: The run every ``--trace-out`` export uses: a short steady-replay CG
#: configuration, big enough that capture, replay, scheduling, point
#: dispatch and (on the process modes) the wire protocol all appear in
#: the exported timeline.
TRACE_EXPORT_CONFIG = dict(
    num_gpus=8, iterations=12, warmup=2, app_kwargs={"grid_points_per_gpu": 24}
)
TRACE_EXPORT_SMOKE_CONFIG = dict(
    num_gpus=4, iterations=6, warmup=2, app_kwargs={"grid_points_per_gpu": 16}
)


def _export_traces(trace_dir: str, smoke: bool) -> List[str]:
    """One Perfetto-loadable Chrome trace per mode in ``trace_dir``.

    Each mode's environment is applied as in the timed sweeps, with the
    telemetry flight recorder armed on top; the ring is reset between
    modes so every file covers exactly one CG run.
    """
    from repro.runtime import telemetry

    os.makedirs(trace_dir, exist_ok=True)
    spec = TRACE_EXPORT_SMOKE_CONFIG if smoke else TRACE_EXPORT_CONFIG
    written: List[str] = []
    for mode in MODES:
        _set_mode(mode)
        os.environ["REPRO_TELEMETRY"] = "1"
        config.reload_flags()
        telemetry.reset()
        _run_once("cg", spec)
        path = os.path.join(trace_dir, f"{mode}.trace.json")
        trace = telemetry.write_chrome_trace(path)
        written.append(path)
        print(
            f"[trace] wrote {path} ({len(trace['traceEvents'])} events)",
            flush=True,
        )
    os.environ["REPRO_TELEMETRY"] = "0"
    config.reload_flags()
    return written


def run_harness(
    smoke: bool,
    output: str,
    apps: Optional[List[str]] = None,
    gates_only: bool = False,
    trace_out: Optional[str] = None,
) -> int:
    configs = SMOKE_CONFIGS if smoke else APP_CONFIGS
    if apps:
        configs = {app: configs[app] for app in apps}
    if gates_only:
        # CI gate mode: skip the per-app sweeps, run the gate
        # measurements at full scale and enforce their thresholds where
        # the host allows (multi-core for the dispatch gates).
        configs = {}
    repeats = 1 if smoke else 3
    # The gates assert ~1.2–1.3× effects whose per-pair measurements
    # spread widely on shared hosts; a larger paired sample concentrates
    # the median near the true effect (each extra pair costs well under
    # a second at the gate configurations).
    gate_repeats = 1 if smoke else 7
    report: Dict[str, dict] = {}
    failures: List[str] = []

    for app, spec in configs.items():
        print(f"[{app}] differential check (trace replay included) ...", flush=True)
        _set_mode("differential")
        diff_spec = dict(spec, iterations=min(spec["iterations"], 8))
        try:
            _, diff_result = _run_once(app, diff_spec)
        except Exception as error:  # noqa: BLE001 - report and fail
            failures.append(f"{app}: differential check failed: {error}")
            print(f"[{app}] DIVERGENCE: {error}", flush=True)
            continue
        if diff_result.trace_hits == 0:
            failures.append(f"{app}: differential run replayed no trace epochs")

        print(f"[{app}] timing baseline (seed interpreter) ...", flush=True)
        baseline_seconds, baseline = _measure(app, spec, "baseline", repeats)
        print(f"[{app}] timing codegen backend (trace off) ...", flush=True)
        codegen_seconds, codegen = _measure(app, spec, "codegen", repeats)
        print(f"[{app}] timing trace replay (PR-2 serial path) ...", flush=True)
        trace_seconds, trace = _measure(app, spec, "trace", repeats)
        print(f"[{app}] timing plan scheduler ...", flush=True)
        scheduler_seconds, scheduler = _measure(app, spec, "scheduler", repeats)
        print(f"[{app}] timing epoch super-kernels ...", flush=True)
        superkernel_seconds, superkernel = _measure(app, spec, "superkernel", repeats)
        print(f"[{app}] timing point dispatch ...", flush=True)
        point_seconds, point = _measure(app, spec, "point", repeats)
        print(f"[{app}] timing process dispatch ...", flush=True)
        process_seconds, process = _measure(app, spec, "process", repeats)
        print(f"[{app}] timing plan-resident process replay ...", flush=True)
        resident_seconds, resident = _measure(app, spec, "resident", repeats)

        if baseline.checksum != resident.checksum:
            failures.append(
                f"{app}: checksum mismatch (baseline {baseline.checksum!r} "
                f"vs resident {resident.checksum!r})"
            )
        if baseline.checksum != process.checksum:
            failures.append(
                f"{app}: checksum mismatch (baseline {baseline.checksum!r} "
                f"vs process {process.checksum!r})"
            )
        if baseline.checksum != point.checksum:
            failures.append(
                f"{app}: checksum mismatch (baseline {baseline.checksum!r} "
                f"vs point {point.checksum!r})"
            )
        if baseline.checksum != codegen.checksum:
            failures.append(
                f"{app}: checksum mismatch (baseline {baseline.checksum!r} "
                f"vs codegen {codegen.checksum!r})"
            )
        if baseline.checksum != trace.checksum:
            failures.append(
                f"{app}: checksum mismatch (baseline {baseline.checksum!r} "
                f"vs trace {trace.checksum!r})"
            )
        if baseline.checksum != scheduler.checksum:
            failures.append(
                f"{app}: checksum mismatch (baseline {baseline.checksum!r} "
                f"vs scheduler {scheduler.checksum!r})"
            )
        if baseline.checksum != superkernel.checksum:
            failures.append(
                f"{app}: checksum mismatch (baseline {baseline.checksum!r} "
                f"vs superkernel {superkernel.checksum!r})"
            )
        if trace.trace_hits == 0:
            failures.append(f"{app}: trace mode reported zero trace hits")
        if scheduler.trace_hits == 0:
            failures.append(f"{app}: scheduler mode reported zero trace hits")
        if scheduler.plan_replays == 0:
            failures.append(f"{app}: scheduler mode never used the plan scheduler")
        if superkernel.trace_hits == 0:
            failures.append(f"{app}: superkernel mode reported zero trace hits")
        if app == "cg":
            if superkernel.superkernel_fusions == 0:
                failures.append("cg: superkernel mode built no fused units")
            closure_drop = (
                scheduler.closure_calls_per_epoch
                / superkernel.closure_calls_per_epoch
                if superkernel.closure_calls_per_epoch > 0
                else float("inf")
            )
            if not smoke and closure_drop < SUPERKERNEL_CLOSURE_DROP_THRESHOLD:
                failures.append(
                    f"cg: closure calls per epoch dropped only "
                    f"{closure_drop:.2f}x ({scheduler.closure_calls_per_epoch:.2f} "
                    f"-> {superkernel.closure_calls_per_epoch:.2f}), below the "
                    f"{SUPERKERNEL_CLOSURE_DROP_THRESHOLD}x acceptance threshold"
                )
        if app == "two-matvec" and superkernel.plan_width_max < 2:
            failures.append(
                "two-matvec: captured plans never reached width 2 (the wide "
                "dependence levels the app exists to exercise)"
            )
        if app in WIDTH_REQUIRED_APPS and scheduler.plan_width_max < 2:
            failures.append(
                f"{app}: promoted wide app recorded plan_width_max "
                f"{scheduler.plan_width_max} < 2 — the wide-dispatch "
                "machinery was silently unexercised"
            )

        speedup = baseline_seconds / trace_seconds if trace_seconds > 0 else float("inf")
        codegen_speedup = (
            baseline_seconds / codegen_seconds if codegen_seconds > 0 else float("inf")
        )
        scheduler_speedup = (
            baseline_seconds / scheduler_seconds if scheduler_seconds > 0 else float("inf")
        )
        superkernel_speedup = (
            baseline_seconds / superkernel_seconds
            if superkernel_seconds > 0
            else float("inf")
        )
        point_speedup = (
            baseline_seconds / point_seconds if point_seconds > 0 else float("inf")
        )
        process_speedup = (
            baseline_seconds / process_seconds if process_seconds > 0 else float("inf")
        )
        resident_speedup = (
            baseline_seconds / resident_seconds if resident_seconds > 0 else float("inf")
        )
        all_checksums_equal = (
            baseline.checksum
            == codegen.checksum
            == trace.checksum
            == scheduler.checksum
            == superkernel.checksum
            == point.checksum
            == process.checksum
            == resident.checksum
        )
        report[app] = {
            "config": {
                "num_gpus": spec["num_gpus"],
                "iterations": spec["iterations"],
                "warmup_iterations": spec["warmup"],
                **spec["app_kwargs"],
            },
            "baseline_seconds": round(baseline_seconds, 6),
            "codegen_seconds": round(codegen_seconds, 6),
            "trace_seconds": round(trace_seconds, 6),
            "scheduler_seconds": round(scheduler_seconds, 6),
            "superkernel_seconds": round(superkernel_seconds, 6),
            "point_seconds": round(point_seconds, 6),
            "process_seconds": round(process_seconds, 6),
            "resident_seconds": round(resident_seconds, 6),
            "codegen_speedup": round(codegen_speedup, 3),
            "speedup": round(speedup, 3),
            "scheduler_speedup": round(scheduler_speedup, 3),
            "superkernel_speedup": round(superkernel_speedup, 3),
            "point_speedup": round(point_speedup, 3),
            "process_speedup": round(process_speedup, 3),
            "resident_speedup": round(resident_speedup, 3),
            "process_vs_point": round(
                point_seconds / process_seconds if process_seconds > 0 else float("inf"),
                3,
            ),
            "resident_vs_process": round(
                process_seconds / resident_seconds
                if resident_seconds > 0
                else float("inf"),
                3,
            ),
            "trace_vs_codegen": round(
                codegen_seconds / trace_seconds if trace_seconds > 0 else float("inf"), 3
            ),
            "scheduler_vs_trace": round(
                trace_seconds / scheduler_seconds if scheduler_seconds > 0 else float("inf"),
                3,
            ),
            "point_vs_scheduler": round(
                scheduler_seconds / point_seconds if point_seconds > 0 else float("inf"),
                3,
            ),
            "superkernel_vs_scheduler": round(
                scheduler_seconds / superkernel_seconds
                if superkernel_seconds > 0
                else float("inf"),
                3,
            ),
            "trace_hits": trace.trace_hits,
            "trace_misses": trace.trace_misses,
            "trace_hit_rate": round(trace.trace_hit_rate, 4),
            "trace_replayed_tasks": trace.trace_replayed_tasks,
            "scalar_pattern_flips": trace.scalar_pattern_flips,
            "plan_replays": scheduler.plan_replays,
            "plan_width_max": scheduler.plan_width_max,
            "plan_average_width": round(scheduler.plan_average_width, 3),
            # Level-width histogram of the scheduler-mode run (level step
            # count -> levels replayed at that width): the silent-width
            # blind spot this records is what WIDTH_REQUIRED_APPS gates.
            "plan_level_widths": {
                str(width): count
                for width, count in sorted(scheduler.plan_level_widths.items())
            },
            "worker_utilization": round(scheduler.worker_utilization, 4),
            "point_dispatch_width": point.point_dispatch_width,
            "point_launches": point.point_launches,
            "point_chunks": point.point_chunks,
            "point_width_max": point.point_width_max,
            "point_chunks_per_launch": round(point.point_chunks_per_launch, 3),
            "point_utilization": round(point.point_utilization, 4),
            "process_launches": process.point_launches,
            "process_chunks": process.point_process_chunks,
            "process_thread_fallback_chunks": process.point_thread_chunks,
            "resident_chunks": resident.point_process_chunks,
            # Wire traffic both protocols actually put on the worker
            # pipes (sizes of the pickled payloads, deterministic).
            "process_wire_bytes_per_epoch": round(process.wire_bytes_per_epoch, 1),
            "resident_wire_bytes_per_epoch": round(resident.wire_bytes_per_epoch, 1),
            "process_wire_requests_per_epoch": round(
                process.wire_requests_per_epoch, 3
            ),
            "resident_wire_requests_per_epoch": round(
                resident.wire_requests_per_epoch, 3
            ),
            "batched_launches": point.batched_launches,
            "batched_calls": point.batched_calls,
            "superkernel_fusions": superkernel.superkernel_fusions,
            "superkernel_fused_steps": superkernel.superkernel_fused_steps,
            "superkernel_calls": superkernel.superkernel_calls,
            "scheduler_closure_calls_per_epoch": round(
                scheduler.closure_calls_per_epoch, 3
            ),
            "superkernel_closure_calls_per_epoch": round(
                superkernel.closure_calls_per_epoch, 3
            ),
            "checksum": trace.checksum,
            "checksums_equal": all_checksums_equal,
            "differential_check": "passed",
            # Opaque-operator counters from the differential run (chunked
            # opaque execution on the process backend): deterministic, and
            # nonzero only for apps that launch opaque tasks.
            "opaque_rank_calls": diff_result.opaque_rank_calls,
            "opaque_chunk_calls": diff_result.opaque_chunk_calls,
            "opaque_process_chunks": diff_result.opaque_process_chunks,
            "opaque_calls_per_epoch": round(
                diff_result.steady_opaque_calls_per_epoch, 3
            ),
        }
        print(
            f"[{app}] baseline {baseline_seconds:.4f}s  codegen "
            f"{codegen_seconds:.4f}s ({codegen_speedup:.2f}x)  trace "
            f"{trace_seconds:.4f}s ({speedup:.2f}x, hit rate "
            f"{trace.trace_hit_rate:.2f})  scheduler "
            f"{scheduler_seconds:.4f}s ({scheduler_speedup:.2f}x)  "
            f"superkernel {superkernel_seconds:.4f}s "
            f"({superkernel_speedup:.2f}x, {superkernel.superkernel_fusions} "
            f"fusions, closures/epoch "
            f"{scheduler.closure_calls_per_epoch:.2f}->"
            f"{superkernel.closure_calls_per_epoch:.2f})  point "
            f"{point_seconds:.4f}s ({point_speedup:.2f}x)  process "
            f"{process_seconds:.4f}s ({process_speedup:.2f}x)  resident "
            f"{resident_seconds:.4f}s ({resident_speedup:.2f}x, "
            f"wire/epoch {process.wire_bytes_per_epoch:.0f}->"
            f"{resident.wire_bytes_per_epoch:.0f}B)",
            flush=True,
        )

    # ------------------------------------------------------------------
    # Scheduler gate: PR-3 vs the PR-2 trace path on a kernel-dominated
    # configuration (where the scheduler's dispatch + the normalisation
    # satellite carry the win).
    # ------------------------------------------------------------------
    gate_spec = SCHEDULER_GATE_SMOKE_CONFIG if smoke else SCHEDULER_GATE_CONFIG
    gate_report = None
    if apps is None or SCHEDULER_GATE_APP in (apps or []):
        app = SCHEDULER_GATE_APP
        print(f"[scheduler-gate] timing {app} {gate_spec['app_kwargs']} ...", flush=True)
        (
            gate_trace_seconds,
            gate_trace,
            gate_sched_seconds,
            gate_sched,
            gate_speedup,
        ) = _measure_pair(app, gate_spec, "trace", "scheduler", gate_repeats)
        if gate_trace.checksum != gate_sched.checksum:
            failures.append(
                f"scheduler-gate: checksum mismatch (trace {gate_trace.checksum!r} "
                f"vs scheduler {gate_sched.checksum!r})"
            )
        gate_report = {
            "app": app,
            "config": {
                "num_gpus": gate_spec["num_gpus"],
                "iterations": gate_spec["iterations"],
                "warmup_iterations": gate_spec["warmup"],
                **gate_spec["app_kwargs"],
            },
            "trace_seconds": round(gate_trace_seconds, 6),
            "scheduler_seconds": round(gate_sched_seconds, 6),
            "scheduler_vs_trace": round(gate_speedup, 3),
            "threshold": SCHEDULER_SPEEDUP_THRESHOLD,
            "checksums_equal": gate_trace.checksum == gate_sched.checksum,
        }
        print(
            f"[scheduler-gate] trace {gate_trace_seconds:.4f}s  scheduler "
            f"{gate_sched_seconds:.4f}s ({gate_speedup:.2f}x)",
            flush=True,
        )
        if not smoke and gate_speedup < SCHEDULER_SPEEDUP_THRESHOLD:
            failures.append(
                f"scheduler-gate: {gate_speedup:.3f}x below the "
                f"{SCHEDULER_SPEEDUP_THRESHOLD}x acceptance threshold"
            )

    # ------------------------------------------------------------------
    # Point-dispatch gate: PR-4 intra-launch point parallelism vs the
    # PR-3 scheduler path on a multi-rank kernel-dominated configuration.
    # The speedup comes from running rank chunks on multiple CPUs, so
    # the threshold is only enforceable on multi-core hosts; checksum
    # equality (and the differential pass above) is enforced everywhere.
    # ------------------------------------------------------------------
    point_gate_spec = POINT_GATE_SMOKE_CONFIG if smoke else POINT_GATE_CONFIG
    point_gate_report = None
    host_cpus = _host_cpus()
    if apps is None or POINT_GATE_APP in (apps or []):
        app = POINT_GATE_APP
        print(
            f"[point-gate] timing {app} {point_gate_spec['app_kwargs']} ...",
            flush=True,
        )
        (
            gate_sched_seconds,
            gate_sched,
            gate_point_seconds,
            gate_point,
            point_gate_speedup,
        ) = _measure_pair(app, point_gate_spec, "scheduler", "point", gate_repeats)
        if gate_sched.checksum != gate_point.checksum:
            failures.append(
                f"point-gate: checksum mismatch (scheduler {gate_sched.checksum!r} "
                f"vs point {gate_point.checksum!r})"
            )
        if gate_point.point_launches == 0:
            failures.append("point-gate: point mode never dispatched rank chunks")
        enforced = not smoke and host_cpus >= 2
        point_gate_report = {
            "app": app,
            "config": {
                "num_gpus": point_gate_spec["num_gpus"],
                "iterations": point_gate_spec["iterations"],
                "warmup_iterations": point_gate_spec["warmup"],
                **point_gate_spec["app_kwargs"],
            },
            "scheduler_seconds": round(gate_sched_seconds, 6),
            "point_seconds": round(gate_point_seconds, 6),
            "point_vs_scheduler": round(point_gate_speedup, 3),
            "threshold": POINT_SPEEDUP_THRESHOLD,
            "host_cpus": host_cpus,
            "enforced": enforced,
            "point_launches": gate_point.point_launches,
            "point_chunks": gate_point.point_chunks,
            "point_width_max": gate_point.point_width_max,
            "point_utilization": round(gate_point.point_utilization, 4),
            "checksums_equal": gate_sched.checksum == gate_point.checksum,
        }
        print(
            f"[point-gate] scheduler {gate_sched_seconds:.4f}s  point "
            f"{gate_point_seconds:.4f}s ({point_gate_speedup:.2f}x, "
            f"host cpus {host_cpus}, "
            f"{'enforced' if enforced else 'not enforced'})",
            flush=True,
        )
        if enforced and point_gate_speedup < POINT_SPEEDUP_THRESHOLD:
            failures.append(
                f"point-gate: {point_gate_speedup:.3f}x below the "
                f"{POINT_SPEEDUP_THRESHOLD}x acceptance threshold"
            )
        elif not smoke and not enforced:
            print(
                "[point-gate] single-core host: threshold recorded but not "
                "enforceable (intra-launch dispatch is thread parallelism)",
                flush=True,
            )

    # ------------------------------------------------------------------
    # Process-dispatch gate: the PR-5 worker-process substrate vs thread
    # point dispatch on an interpreter-heavy small-tile configuration.
    # Thread dispatch is GIL-bound there (the tree-walking backend holds
    # the GIL between its many small NumPy calls), so the speedup needs
    # real cores; the threshold is enforced on multi-core hosts only,
    # checksum equality and substrate usage everywhere.
    # ------------------------------------------------------------------
    process_gate_spec = PROCESS_GATE_SMOKE_CONFIG if smoke else PROCESS_GATE_CONFIG
    process_gate_report = None
    if apps is None or PROCESS_GATE_APP in (apps or []):
        app = PROCESS_GATE_APP
        print(
            f"[process-gate] timing {app} {process_gate_spec['app_kwargs']} "
            "(interpreter-heavy, small tiles) ...",
            flush=True,
        )
        (
            gate_thread_seconds,
            gate_thread,
            gate_process_seconds,
            gate_process,
            process_gate_speedup,
        ) = _measure_pair(app, process_gate_spec, "point-gil", "process-gil", gate_repeats)
        if gate_thread.checksum != gate_process.checksum:
            failures.append(
                f"process-gate: checksum mismatch (thread {gate_thread.checksum!r} "
                f"vs process {gate_process.checksum!r})"
            )
        if gate_process.point_process_chunks == 0:
            failures.append(
                "process-gate: process mode never dispatched chunks to the "
                "worker-process pool"
            )
        enforced = not smoke and host_cpus >= 2
        process_gate_report = {
            "app": app,
            "config": {
                "num_gpus": process_gate_spec["num_gpus"],
                "iterations": process_gate_spec["iterations"],
                "warmup_iterations": process_gate_spec["warmup"],
                **process_gate_spec["app_kwargs"],
            },
            "thread_seconds": round(gate_thread_seconds, 6),
            "process_seconds": round(gate_process_seconds, 6),
            "process_vs_thread": round(process_gate_speedup, 3),
            "threshold": PROCESS_SPEEDUP_THRESHOLD,
            "host_cpus": host_cpus,
            "enforced": enforced,
            "process_chunks": gate_process.point_process_chunks,
            "thread_fallback_chunks": gate_process.point_thread_chunks,
            "checksums_equal": gate_thread.checksum == gate_process.checksum,
        }
        print(
            f"[process-gate] thread {gate_thread_seconds:.4f}s  process "
            f"{gate_process_seconds:.4f}s ({process_gate_speedup:.2f}x, "
            f"host cpus {host_cpus}, "
            f"{'enforced' if enforced else 'not enforced'})",
            flush=True,
        )
        if enforced and process_gate_speedup < PROCESS_SPEEDUP_THRESHOLD:
            failures.append(
                f"process-gate: {process_gate_speedup:.3f}x below the "
                f"{PROCESS_SPEEDUP_THRESHOLD}x acceptance threshold"
            )
        elif not smoke and not enforced:
            print(
                "[process-gate] single-core host: threshold recorded but not "
                "enforceable (process dispatch needs real cores)",
                flush=True,
            )

    # ------------------------------------------------------------------
    # Super-kernel gate: the PR-6 fused replay path vs the PR-3
    # scheduler path on a steady-epoch, overhead-dominated CG
    # configuration (many tiny ranks).  The two modes differ only in
    # ``REPRO_SUPERKERNEL``, so the paired ratio isolates the fused
    # units; the win is single-thread overhead elimination, so the
    # threshold is enforced in full mode regardless of core count.
    # ------------------------------------------------------------------
    superkernel_gate_spec = (
        SUPERKERNEL_GATE_SMOKE_CONFIG if smoke else SUPERKERNEL_GATE_CONFIG
    )
    superkernel_gate_report = None
    if apps is None or SUPERKERNEL_GATE_APP in (apps or []):
        app = SUPERKERNEL_GATE_APP
        print(
            f"[superkernel-gate] timing {app} "
            f"{superkernel_gate_spec['app_kwargs']} (steady replay epochs, "
            f"{superkernel_gate_spec['num_gpus']} ranks) ...",
            flush=True,
        )
        (
            gate_sched_seconds,
            gate_sched,
            gate_super_seconds,
            gate_super,
            superkernel_gate_speedup,
        ) = _measure_pair(
            app, superkernel_gate_spec, "scheduler", "superkernel", gate_repeats
        )
        if gate_sched.checksum != gate_super.checksum:
            failures.append(
                f"superkernel-gate: checksum mismatch (scheduler "
                f"{gate_sched.checksum!r} vs superkernel {gate_super.checksum!r})"
            )
        if gate_super.superkernel_fusions == 0:
            failures.append("superkernel-gate: no fused units were built")
        superkernel_gate_report = {
            "app": app,
            "config": {
                "num_gpus": superkernel_gate_spec["num_gpus"],
                "iterations": superkernel_gate_spec["iterations"],
                "warmup_iterations": superkernel_gate_spec["warmup"],
                **superkernel_gate_spec["app_kwargs"],
            },
            "scheduler_seconds": round(gate_sched_seconds, 6),
            "superkernel_seconds": round(gate_super_seconds, 6),
            "superkernel_vs_scheduler": round(superkernel_gate_speedup, 3),
            "threshold": SUPERKERNEL_SPEEDUP_THRESHOLD,
            "superkernel_fusions": gate_super.superkernel_fusions,
            "superkernel_fused_steps": gate_super.superkernel_fused_steps,
            "superkernel_calls": gate_super.superkernel_calls,
            "scheduler_closure_calls_per_epoch": round(
                gate_sched.closure_calls_per_epoch, 3
            ),
            "superkernel_closure_calls_per_epoch": round(
                gate_super.closure_calls_per_epoch, 3
            ),
            "checksums_equal": gate_sched.checksum == gate_super.checksum,
        }
        print(
            f"[superkernel-gate] scheduler {gate_sched_seconds:.4f}s  "
            f"superkernel {gate_super_seconds:.4f}s "
            f"({superkernel_gate_speedup:.2f}x, closures/epoch "
            f"{gate_sched.closure_calls_per_epoch:.2f}->"
            f"{gate_super.closure_calls_per_epoch:.2f})",
            flush=True,
        )
        if not smoke and superkernel_gate_speedup < SUPERKERNEL_SPEEDUP_THRESHOLD:
            failures.append(
                f"superkernel-gate: {superkernel_gate_speedup:.3f}x below the "
                f"{SUPERKERNEL_SPEEDUP_THRESHOLD}x acceptance threshold"
            )

    # ------------------------------------------------------------------
    # Resident-plan gate: the PR-7 plan-resident protocol vs the PR-5
    # per-chunk protocol on the same process substrate — the two legs
    # differ only in ``REPRO_RESIDENT_PLANS``.  The wire-traffic drop is
    # asserted on the deterministic payload-size counters (any host);
    # the wall-clock speedup needs real cores, so its threshold follows
    # the dispatch-gate rule (multi-core hosts only).
    # ------------------------------------------------------------------
    resident_gate_spec = RESIDENT_GATE_SMOKE_CONFIG if smoke else RESIDENT_GATE_CONFIG
    resident_gate_report = None
    if apps is None or RESIDENT_GATE_APP in (apps or []):
        app = RESIDENT_GATE_APP
        print(
            f"[resident-gate] timing {app} {resident_gate_spec['app_kwargs']} "
            f"(steady replay epochs, {resident_gate_spec['num_gpus']} ranks, "
            "wide point fan-out) ...",
            flush=True,
        )
        (
            gate_chunked_seconds,
            gate_chunked,
            gate_resident_seconds,
            gate_resident,
            resident_gate_speedup,
        ) = _measure_pair(
            app, resident_gate_spec, "process-wide", "resident-wide", gate_repeats
        )
        if gate_chunked.checksum != gate_resident.checksum:
            failures.append(
                f"resident-gate: checksum mismatch (chunked "
                f"{gate_chunked.checksum!r} vs resident {gate_resident.checksum!r})"
            )
        if gate_resident.point_process_chunks == 0:
            failures.append(
                "resident-gate: resident mode never dispatched chunks to the "
                "worker-process pool"
            )
        wire_drop = (
            gate_chunked.steady_wire_bytes_per_epoch
            / gate_resident.steady_wire_bytes_per_epoch
            if gate_resident.steady_wire_bytes_per_epoch > 0
            else float("inf")
        )
        enforced = not smoke and host_cpus >= 2
        resident_gate_report = {
            "app": app,
            "config": {
                "num_gpus": resident_gate_spec["num_gpus"],
                "iterations": resident_gate_spec["iterations"],
                "warmup_iterations": resident_gate_spec["warmup"],
                **resident_gate_spec["app_kwargs"],
            },
            "chunked_seconds": round(gate_chunked_seconds, 6),
            "resident_seconds": round(gate_resident_seconds, 6),
            "resident_vs_chunked": round(resident_gate_speedup, 3),
            "threshold": RESIDENT_SPEEDUP_THRESHOLD,
            "host_cpus": host_cpus,
            "enforced": enforced,
            "chunked_wire_bytes_per_epoch": round(
                gate_chunked.steady_wire_bytes_per_epoch, 1
            ),
            "resident_wire_bytes_per_epoch": round(
                gate_resident.steady_wire_bytes_per_epoch, 1
            ),
            "chunked_wire_requests_per_epoch": round(
                gate_chunked.steady_wire_requests_per_epoch, 3
            ),
            "resident_wire_requests_per_epoch": round(
                gate_resident.steady_wire_requests_per_epoch, 3
            ),
            "wire_bytes_drop": round(wire_drop, 3),
            "wire_drop_threshold": RESIDENT_WIRE_DROP_THRESHOLD,
            "resident_chunks": gate_resident.point_process_chunks,
            "checksums_equal": gate_chunked.checksum == gate_resident.checksum,
        }
        print(
            f"[resident-gate] chunked {gate_chunked_seconds:.4f}s  resident "
            f"{gate_resident_seconds:.4f}s ({resident_gate_speedup:.2f}x, "
            f"steady wire/epoch {gate_chunked.steady_wire_bytes_per_epoch:.0f}->"
            f"{gate_resident.steady_wire_bytes_per_epoch:.0f}B = {wire_drop:.1f}x drop, "
            f"host cpus {host_cpus}, "
            f"{'enforced' if enforced else 'not enforced'})",
            flush=True,
        )
        if not smoke and wire_drop < RESIDENT_WIRE_DROP_THRESHOLD:
            failures.append(
                f"resident-gate: steady wire bytes per epoch dropped only "
                f"{wire_drop:.2f}x "
                f"({gate_chunked.steady_wire_bytes_per_epoch:.0f}B "
                f"-> {gate_resident.steady_wire_bytes_per_epoch:.0f}B), below "
                f"the {RESIDENT_WIRE_DROP_THRESHOLD}x acceptance threshold"
            )
        if enforced and resident_gate_speedup < RESIDENT_SPEEDUP_THRESHOLD:
            failures.append(
                f"resident-gate: {resident_gate_speedup:.3f}x below the "
                f"{RESIDENT_SPEEDUP_THRESHOLD}x acceptance threshold"
            )
        elif not smoke and not enforced:
            print(
                "[resident-gate] single-core host: wall-clock threshold "
                "recorded but not enforceable (the wire-drop threshold was "
                "still enforced)",
                flush=True,
            )

    # ------------------------------------------------------------------
    # Opaque-chunk gate: the PR-8 chunk-level operator calls vs the
    # per-rank path on the two-GEMV app — the two legs differ only in
    # ``REPRO_OPAQUE_CHUNKS``.  The call-count drop is asserted on the
    # deterministic opaque-call counters, so like the super-kernel
    # closure gate it is enforced in full mode regardless of core count.
    # ------------------------------------------------------------------
    opaque_gate_spec = OPAQUE_GATE_SMOKE_CONFIG if smoke else OPAQUE_GATE_CONFIG
    opaque_gate_report = None
    if apps is None or OPAQUE_GATE_APP in (apps or []):
        app = OPAQUE_GATE_APP
        print(
            f"[opaque-gate] timing {app} {opaque_gate_spec['app_kwargs']} "
            f"({opaque_gate_spec['num_gpus']} ranks, per-rank vs chunked "
            "opaque calls) ...",
            flush=True,
        )
        (
            gate_perrank_seconds,
            gate_perrank,
            gate_chunked_seconds,
            gate_chunked,
            opaque_gate_speedup,
        ) = _measure_pair(
            app, opaque_gate_spec, "opaque-off", "opaque-chunks", gate_repeats
        )
        if gate_perrank.checksum != gate_chunked.checksum:
            failures.append(
                f"opaque-gate: checksum mismatch (per-rank "
                f"{gate_perrank.checksum!r} vs chunked {gate_chunked.checksum!r})"
            )
        if gate_chunked.opaque_chunk_calls == 0:
            failures.append(
                "opaque-gate: chunked mode never executed a chunk-level "
                "opaque operator call"
            )
        if gate_perrank.opaque_chunk_calls != 0:
            failures.append(
                "opaque-gate: per-rank mode executed chunk-level calls "
                "despite REPRO_OPAQUE_CHUNKS=0"
            )
        opaque_call_drop = (
            gate_perrank.steady_opaque_calls_per_epoch
            / gate_chunked.steady_opaque_calls_per_epoch
            if gate_chunked.steady_opaque_calls_per_epoch > 0
            else float("inf")
        )
        opaque_gate_report = {
            "app": app,
            "config": {
                "num_gpus": opaque_gate_spec["num_gpus"],
                "iterations": opaque_gate_spec["iterations"],
                "warmup_iterations": opaque_gate_spec["warmup"],
                **opaque_gate_spec["app_kwargs"],
            },
            "per_rank_seconds": round(gate_perrank_seconds, 6),
            "chunked_seconds": round(gate_chunked_seconds, 6),
            "chunked_vs_per_rank": round(opaque_gate_speedup, 3),
            "per_rank_opaque_calls_per_epoch": round(
                gate_perrank.steady_opaque_calls_per_epoch, 3
            ),
            "chunked_opaque_calls_per_epoch": round(
                gate_chunked.steady_opaque_calls_per_epoch, 3
            ),
            "opaque_call_drop": round(opaque_call_drop, 3),
            "threshold": OPAQUE_CALL_DROP_THRESHOLD,
            "per_rank_opaque_rank_calls": gate_perrank.opaque_rank_calls,
            "chunked_opaque_chunk_calls": gate_chunked.opaque_chunk_calls,
            "checksums_equal": gate_perrank.checksum == gate_chunked.checksum,
        }
        print(
            f"[opaque-gate] per-rank {gate_perrank_seconds:.4f}s  chunked "
            f"{gate_chunked_seconds:.4f}s ({opaque_gate_speedup:.2f}x, opaque "
            f"calls/epoch {gate_perrank.steady_opaque_calls_per_epoch:.2f}->"
            f"{gate_chunked.steady_opaque_calls_per_epoch:.2f} = "
            f"{opaque_call_drop:.1f}x drop)",
            flush=True,
        )
        if not smoke and opaque_call_drop < OPAQUE_CALL_DROP_THRESHOLD:
            failures.append(
                f"opaque-gate: opaque calls per epoch dropped only "
                f"{opaque_call_drop:.2f}x "
                f"({gate_perrank.steady_opaque_calls_per_epoch:.2f} "
                f"-> {gate_chunked.steady_opaque_calls_per_epoch:.2f}), below "
                f"the {OPAQUE_CALL_DROP_THRESHOLD}x acceptance threshold"
            )

    # ------------------------------------------------------------------
    # Wide-dispatch gate: the PR-9 wide-level process routing vs the
    # serial thread chunks the nested-dispatch guard forces — the two
    # legs differ only in ``REPRO_DISPATCH_BACKEND`` on the full stack
    # (resident plans + opaque chunks on).  Width and process-substrate
    # usage are deterministic counters, enforced in smoke and full mode
    # alike; the paired wall-clock threshold follows the dispatch-gate
    # rule (multi-core hosts, full mode).
    # ------------------------------------------------------------------
    wide_gate_spec = WIDE_GATE_SMOKE_CONFIG if smoke else WIDE_GATE_CONFIG
    wide_gate_report = None
    if apps is None or WIDE_GATE_APP in (apps or []):
        app = WIDE_GATE_APP
        print(
            f"[wide-gate] timing {app} {wide_gate_spec['app_kwargs']} "
            "(width-3 opaque levels, thread chunks vs process pool) ...",
            flush=True,
        )
        (
            gate_thread_seconds,
            gate_thread,
            gate_wide_seconds,
            gate_wide,
            wide_gate_speedup,
        ) = _measure_pair(app, wide_gate_spec, "wide-thread", "wide-process", gate_repeats)
        if gate_thread.checksum != gate_wide.checksum:
            failures.append(
                f"wide-gate: checksum mismatch (thread {gate_thread.checksum!r} "
                f"vs process {gate_wide.checksum!r})"
            )
        if gate_wide.plan_width_max < 2:
            failures.append(
                f"wide-gate: plan_width_max {gate_wide.plan_width_max} < 2 — "
                "the promoted config captured no wide dependence levels"
            )
        wide_levels = sum(
            count
            for width, count in gate_wide.plan_level_widths.items()
            if width >= 2
        )
        if wide_levels == 0:
            failures.append(
                "wide-gate: the level-width histogram recorded no width>=2 "
                "levels (silent-width blind spot)"
            )
        if gate_wide.opaque_process_chunks == 0:
            failures.append(
                "wide-gate: the process leg never shipped opaque chunks of "
                "the wide levels to the worker-process pool"
            )
        if gate_wide.point_process_chunks == 0:
            failures.append(
                "wide-gate: the process leg recorded zero process-substrate "
                "point chunks"
            )
        enforced = not smoke and host_cpus >= 2
        wide_gate_report = {
            "app": app,
            "config": {
                "num_gpus": wide_gate_spec["num_gpus"],
                "iterations": wide_gate_spec["iterations"],
                "warmup_iterations": wide_gate_spec["warmup"],
                **wide_gate_spec["app_kwargs"],
            },
            "thread_seconds": round(gate_thread_seconds, 6),
            "process_seconds": round(gate_wide_seconds, 6),
            "process_vs_thread": round(wide_gate_speedup, 3),
            "threshold": WIDE_SPEEDUP_THRESHOLD,
            "host_cpus": host_cpus,
            "enforced": enforced,
            "plan_width_max": gate_wide.plan_width_max,
            "plan_level_widths": {
                str(width): count
                for width, count in sorted(gate_wide.plan_level_widths.items())
            },
            "wide_levels_replayed": wide_levels,
            "process_chunks": gate_wide.point_process_chunks,
            "thread_fallback_chunks": gate_wide.point_thread_chunks,
            "opaque_process_chunks": gate_wide.opaque_process_chunks,
            "checksums_equal": gate_thread.checksum == gate_wide.checksum,
        }
        print(
            f"[wide-gate] thread {gate_thread_seconds:.4f}s  process "
            f"{gate_wide_seconds:.4f}s ({wide_gate_speedup:.2f}x, width "
            f"{gate_wide.plan_width_max}, {wide_levels} wide levels, "
            f"{gate_wide.opaque_process_chunks} opaque process chunks, "
            f"host cpus {host_cpus}, "
            f"{'enforced' if enforced else 'not enforced'})",
            flush=True,
        )
        if enforced and wide_gate_speedup < WIDE_SPEEDUP_THRESHOLD:
            failures.append(
                f"wide-gate: {wide_gate_speedup:.3f}x below the "
                f"{WIDE_SPEEDUP_THRESHOLD}x acceptance threshold"
            )
        elif not smoke and not enforced:
            print(
                "[wide-gate] single-core host: wall-clock threshold recorded "
                "but not enforceable (the width and process-chunk checks "
                "were still enforced)",
                flush=True,
            )

    if not smoke:
        for app, threshold in SPEEDUP_THRESHOLDS.items():
            if app in report and report[app]["speedup"] < threshold:
                failures.append(
                    f"{app}: trace speedup {report[app]['speedup']}x below the "
                    f"{threshold}x acceptance threshold"
                )

    trace_files: List[str] = []
    if trace_out:
        trace_files = _export_traces(trace_out, smoke)

    payload = {
        "benchmark": (
            "wall-clock: seed interpreter vs codegen JIT vs trace replay "
            "vs plan scheduler vs epoch super-kernels vs point dispatch "
            "vs process dispatch vs plan-resident replay"
        ),
        "mode": "gates-only" if gates_only else ("smoke" if smoke else "full"),
        "repeats_per_mode": repeats,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "host_cpus": host_cpus,
        "apps": report,
        "scheduler_gate": gate_report,
        "point_gate": point_gate_report,
        "process_gate": process_gate_report,
        "superkernel_gate": superkernel_gate_report,
        "resident_gate": resident_gate_report,
        "opaque_gate": opaque_gate_report,
        "wide_gate": wide_gate_report,
        "trace_files": trace_files,
        "failures": failures,
    }
    with open(output, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {output}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced sweep for CI: fewer repeats/iterations, no speedup gates",
    )
    parser.add_argument(
        "--output",
        default=os.path.join(os.path.dirname(__file__), "..", "BENCH_wallclock.json"),
        help="path of the JSON report (default: repo root BENCH_wallclock.json)",
    )
    parser.add_argument(
        "--apps",
        nargs="*",
        choices=sorted(APP_CONFIGS),
        help="subset of applications to run",
    )
    parser.add_argument(
        "--gates-only",
        action="store_true",
        help=(
            "run only the scheduler/point/process gate measurements at full "
            "scale (the CI gate job); dispatch-gate thresholds are enforced "
            "on multi-core hosts"
        ),
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="DIR",
        help=(
            "additionally export one Perfetto-loadable Chrome trace per "
            "mode (a short CG run with REPRO_TELEMETRY=1) into DIR"
        ),
    )
    args = parser.parse_args()
    return run_harness(
        smoke=args.smoke and not args.gates_only,
        output=os.path.abspath(args.output),
        apps=args.apps,
        gates_only=args.gates_only,
        trace_out=args.trace_out,
    )


if __name__ == "__main__":
    raise SystemExit(main())
