#!/usr/bin/env python
"""Wall-clock performance harness: seed interpreter vs codegen vs trace.

Unlike the ``benchmarks/test_*`` suite — which reproduces the paper's
*simulated* figures — this harness measures the reproduction's own
**real wall-clock** execution speed, establishing the perf trajectory of
the repository.  It runs CG, Jacobi and Black-Scholes end-to-end (fusion
enabled) under three configurations:

``baseline``
    ``REPRO_KERNEL_BACKEND=interpreter`` + ``REPRO_HOTPATH_CACHE=0`` +
    ``REPRO_TRACE=0``: the seed execution path — tree-walking kernel
    interpretation, no submit→fuse→execute caching, eager submission.

``codegen``
    ``REPRO_KERNEL_BACKEND=codegen`` + ``REPRO_HOTPATH_CACHE=1`` +
    ``REPRO_TRACE=0``: the PR-1 path — kernels compiled once to NumPy
    closures, sub-store rect/view caching, partition interning and
    memoized canonical signatures, but every task still resolved through
    the full pipeline every iteration.

``trace``
    ``codegen`` plus ``REPRO_TRACE=1``: the deferred task stream with
    iteration-trace capture and replay — repeated epochs bypass window
    buffering, fusion analysis, memoization lookups and per-task
    coherence recomputation and replay a captured execution plan.

Before timing, a differential pass (``REPRO_KERNEL_BACKEND=differential``
with tracing enabled, so replayed epochs are checked too) runs every
application once with both backends on every kernel invocation and
aborts on any bitwise divergence; checksum equality between all timed
runs is asserted as well.  Trace hit counts and hit rates are recorded,
and every iterative app must report >0 trace hits.  Results are written
to ``BENCH_wallclock.json``.

Usage::

    PYTHONPATH=src python benchmarks/perf_wallclock.py [--smoke] [--output PATH]

``--smoke`` shrinks repeats/iterations for CI (``make bench``); the
speedup gates are only enforced in full mode, divergence and missing
trace hits fail both modes.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import time
from typing import Dict, List, Optional, Tuple

from repro import config
from repro.experiments.harness import (
    ExperimentScale,
    default_scale_for,
    run_application_experiment,
)

#: Per-application measurement configurations.  Problem sizes sit in the
#: paper's operating regime — many small point tasks, where launch and
#: analysis overheads (the thing this harness measures) dominate.
APP_CONFIGS = {
    "cg": dict(num_gpus=8, iterations=64, warmup=2, app_kwargs={"grid_points_per_gpu": 24}),
    "jacobi": dict(num_gpus=8, iterations=48, warmup=2, app_kwargs={"rows_per_gpu": 96}),
    "black-scholes": dict(num_gpus=8, iterations=120, warmup=3, app_kwargs={"elements_per_gpu": 512}),
}

SMOKE_CONFIGS = {
    "cg": dict(num_gpus=4, iterations=10, warmup=2, app_kwargs={"grid_points_per_gpu": 24}),
    "jacobi": dict(num_gpus=4, iterations=8, warmup=2, app_kwargs={"rows_per_gpu": 64}),
    "black-scholes": dict(num_gpus=4, iterations=10, warmup=2, app_kwargs={"elements_per_gpu": 512}),
}

MODES = {
    "baseline": {
        "REPRO_KERNEL_BACKEND": "interpreter",
        "REPRO_HOTPATH_CACHE": "0",
        "REPRO_TRACE": "0",
    },
    "codegen": {
        "REPRO_KERNEL_BACKEND": "codegen",
        "REPRO_HOTPATH_CACHE": "1",
        "REPRO_TRACE": "0",
    },
    "trace": {
        "REPRO_KERNEL_BACKEND": "codegen",
        "REPRO_HOTPATH_CACHE": "1",
        "REPRO_TRACE": "1",
    },
    "differential": {
        "REPRO_KERNEL_BACKEND": "differential",
        "REPRO_HOTPATH_CACHE": "1",
        "REPRO_TRACE": "1",
    },
}

#: Acceptance thresholds on the trace-mode end-to-end speedup over the
#: seed baseline (full mode only).
SPEEDUP_THRESHOLDS = {"cg": 3.0, "black-scholes": 2.5}


def _set_mode(mode: str) -> None:
    for key, value in MODES[mode].items():
        os.environ[key] = value
    config.reload_flags()


def _run_once(app: str, spec: dict):
    """One end-to-end run; returns (wall seconds, RunResult)."""
    base_scale = default_scale_for(app)
    scale = ExperimentScale(
        app_kwargs=dict(base_scale.app_kwargs, **spec["app_kwargs"]),
        bandwidth_scale=base_scale.bandwidth_scale,
        iterations=spec["iterations"],
        warmup_iterations=spec["warmup"],
    )
    start = time.perf_counter()
    result = run_application_experiment(
        app, num_gpus=spec["num_gpus"], fusion=True, scale=scale
    )
    elapsed = time.perf_counter() - start
    return elapsed, result


def _measure(app: str, spec: dict, mode: str, repeats: int):
    """Median wall seconds (and the last RunResult) of ``repeats`` runs."""
    _set_mode(mode)
    _run_once(app, spec)  # warm the process (imports, codegen cache, numpy)
    times: List[float] = []
    result = None
    for _ in range(repeats):
        elapsed, result = _run_once(app, spec)
        times.append(elapsed)
    return statistics.median(times), result


def run_harness(smoke: bool, output: str, apps: Optional[List[str]] = None) -> int:
    configs = SMOKE_CONFIGS if smoke else APP_CONFIGS
    if apps:
        configs = {app: configs[app] for app in apps}
    repeats = 1 if smoke else 3
    report: Dict[str, dict] = {}
    failures: List[str] = []

    for app, spec in configs.items():
        print(f"[{app}] differential check (trace replay included) ...", flush=True)
        _set_mode("differential")
        diff_spec = dict(spec, iterations=min(spec["iterations"], 8))
        try:
            _, diff_result = _run_once(app, diff_spec)
        except Exception as error:  # noqa: BLE001 - report and fail
            failures.append(f"{app}: differential check failed: {error}")
            print(f"[{app}] DIVERGENCE: {error}", flush=True)
            continue
        if diff_result.trace_hits == 0:
            failures.append(f"{app}: differential run replayed no trace epochs")

        print(f"[{app}] timing baseline (seed interpreter) ...", flush=True)
        baseline_seconds, baseline = _measure(app, spec, "baseline", repeats)
        print(f"[{app}] timing codegen backend (trace off) ...", flush=True)
        codegen_seconds, codegen = _measure(app, spec, "codegen", repeats)
        print(f"[{app}] timing trace replay ...", flush=True)
        trace_seconds, trace = _measure(app, spec, "trace", repeats)

        if baseline.checksum != codegen.checksum:
            failures.append(
                f"{app}: checksum mismatch (baseline {baseline.checksum!r} "
                f"vs codegen {codegen.checksum!r})"
            )
        if baseline.checksum != trace.checksum:
            failures.append(
                f"{app}: checksum mismatch (baseline {baseline.checksum!r} "
                f"vs trace {trace.checksum!r})"
            )
        if trace.trace_hits == 0:
            failures.append(f"{app}: trace mode reported zero trace hits")

        speedup = baseline_seconds / trace_seconds if trace_seconds > 0 else float("inf")
        codegen_speedup = (
            baseline_seconds / codegen_seconds if codegen_seconds > 0 else float("inf")
        )
        report[app] = {
            "config": {
                "num_gpus": spec["num_gpus"],
                "iterations": spec["iterations"],
                "warmup_iterations": spec["warmup"],
                **spec["app_kwargs"],
            },
            "baseline_seconds": round(baseline_seconds, 6),
            "codegen_seconds": round(codegen_seconds, 6),
            "trace_seconds": round(trace_seconds, 6),
            "codegen_speedup": round(codegen_speedup, 3),
            "speedup": round(speedup, 3),
            "trace_vs_codegen": round(
                codegen_seconds / trace_seconds if trace_seconds > 0 else float("inf"), 3
            ),
            "trace_hits": trace.trace_hits,
            "trace_misses": trace.trace_misses,
            "trace_hit_rate": round(trace.trace_hit_rate, 4),
            "trace_replayed_tasks": trace.trace_replayed_tasks,
            "checksum": trace.checksum,
            "checksums_equal": baseline.checksum == codegen.checksum == trace.checksum,
            "differential_check": "passed",
        }
        print(
            f"[{app}] baseline {baseline_seconds:.4f}s  codegen "
            f"{codegen_seconds:.4f}s ({codegen_speedup:.2f}x)  trace "
            f"{trace_seconds:.4f}s ({speedup:.2f}x, hit rate "
            f"{trace.trace_hit_rate:.2f})",
            flush=True,
        )

    if not smoke:
        for app, threshold in SPEEDUP_THRESHOLDS.items():
            if app in report and report[app]["speedup"] < threshold:
                failures.append(
                    f"{app}: trace speedup {report[app]['speedup']}x below the "
                    f"{threshold}x acceptance threshold"
                )

    payload = {
        "benchmark": "wall-clock: seed interpreter vs codegen JIT vs trace replay",
        "mode": "smoke" if smoke else "full",
        "repeats_per_mode": repeats,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "apps": report,
        "failures": failures,
    }
    with open(output, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {output}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced sweep for CI: fewer repeats/iterations, no speedup gates",
    )
    parser.add_argument(
        "--output",
        default=os.path.join(os.path.dirname(__file__), "..", "BENCH_wallclock.json"),
        help="path of the JSON report (default: repo root BENCH_wallclock.json)",
    )
    parser.add_argument(
        "--apps",
        nargs="*",
        choices=sorted(APP_CONFIGS),
        help="subset of applications to run",
    )
    args = parser.parse_args()
    return run_harness(smoke=args.smoke, output=os.path.abspath(args.output), apps=args.apps)


if __name__ == "__main__":
    raise SystemExit(main())
