# Developer entry points for the reproduction.
#
#   make test   - tier-1 test suite (the driver's acceptance gate)
#   make bench  - tier-1 suite + wall-clock perf harness in smoke mode;
#                 fails if the codegen and interpreter backends diverge
#   make bench-full - full wall-clock harness (enforces the 3x CG gate)
#   make diff-test  - tier-1 suite with the differential kernel backend

PYTHON ?= python
PYTHONPATH_ARG = PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH),)

.PHONY: test bench bench-full diff-test

test:
	$(PYTHONPATH_ARG) $(PYTHON) -m pytest -x -q

bench: test
	$(PYTHONPATH_ARG) $(PYTHON) benchmarks/perf_wallclock.py --smoke

bench-full: test
	$(PYTHONPATH_ARG) $(PYTHON) benchmarks/perf_wallclock.py

diff-test:
	$(PYTHONPATH_ARG) REPRO_KERNEL_BACKEND=differential $(PYTHON) -m pytest -x -q tests/
