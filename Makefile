# Developer entry points for the reproduction.
#
#   make test   - tier-1 test suite (the driver's acceptance gate)
#   make bench  - tier-1 suite + wall-clock perf harness in smoke mode;
#                 fails if the codegen and interpreter backends diverge
#   make bench-full - full wall-clock harness (enforces the 3x CG gate)
#   make diff-test  - tier-1 suite with the differential kernel backend
#   make trace  - smoke-mode CG run with telemetry armed; writes the
#                 Perfetto-loadable TRACE_cg.json (parent + worker lanes)

PYTHON ?= python
PYTHONPATH_ARG = PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH),)

.PHONY: test bench bench-full diff-test trace

test:
	$(PYTHONPATH_ARG) $(PYTHON) -m pytest -x -q

bench: test
	$(PYTHONPATH_ARG) $(PYTHON) benchmarks/perf_wallclock.py --smoke

bench-full: test
	$(PYTHONPATH_ARG) $(PYTHON) benchmarks/perf_wallclock.py

diff-test:
	$(PYTHONPATH_ARG) REPRO_KERNEL_BACKEND=differential $(PYTHON) -m pytest -x -q tests/

trace:
	$(PYTHONPATH_ARG) $(PYTHON) -m repro.tools.tracedump --app cg --smoke --output TRACE_cg.json
