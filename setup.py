"""Setup shim for environments without the ``wheel`` package.

The project is configured through ``pyproject.toml``; this file only
exists so that ``pip install -e . --no-use-pep517`` (a legacy editable
install) works in offline environments where PEP 517 build isolation
cannot download its build requirements.
"""

from setuptools import setup

if __name__ == "__main__":
    setup()
