"""Stores: distributed arrays in Diffuse's data model (paper Section 3.1).

A store is a distributed array with a unique id, a rectangular shape and an
element type.  Stores say nothing about *where* data lives — placement is
described separately by partitions — which is what keeps the IR scale
free.

Stores also implement the *split reference counting* scheme from paper
Section 5.1: references held by the application (e.g. a live cuPyNumeric
``ndarray``) are counted separately from references held inside Diffuse's
own runtime (pending tasks in the window, the coherence tracker, ...).  A
store with no live application references and no downstream readers is a
candidate for temporary-store elimination.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.ir.domain import Point, as_point, shape_volume


class Store:
    """A distributed array identified by a unique id and a shape."""

    __slots__ = (
        "uid",
        "shape",
        "dtype",
        "name",
        "_application_refs",
        "_ever_application_referenced",
        "_runtime_refs",
        "_pending_stream_refs",
        "_manager",
    )

    def __init__(
        self,
        uid: int,
        shape: Sequence[int],
        dtype: np.dtype = np.float64,
        name: Optional[str] = None,
        manager: Optional["StoreManager"] = None,
    ) -> None:
        self.uid = int(uid)
        self.shape: Point = as_point(shape)
        self.dtype = np.dtype(dtype)
        self.name = name if name is not None else f"store{uid}"
        self._application_refs = 0
        self._ever_application_referenced = False
        self._runtime_refs = 0
        self._pending_stream_refs = 0
        self._manager = manager

    # ------------------------------------------------------------------
    # Shape helpers.
    # ------------------------------------------------------------------
    @property
    def ndim(self) -> int:
        """Number of dimensions of the store."""
        return len(self.shape)

    @property
    def volume(self) -> int:
        """Number of elements in the store."""
        return shape_volume(self.shape)

    @property
    def size_bytes(self) -> int:
        """Total footprint of the store in bytes."""
        return self.volume * self.dtype.itemsize

    @property
    def is_scalar(self) -> bool:
        """True for zero-dimensional stores (futures / reduction results)."""
        return self.ndim == 0 or self.volume == 1

    # ------------------------------------------------------------------
    # Split reference counting (paper Section 5.1).
    # ------------------------------------------------------------------
    def add_application_reference(self) -> None:
        """Record that user-visible code holds a handle to this store."""
        self._application_refs += 1
        self._ever_application_referenced = True

    def remove_application_reference(self) -> None:
        """Drop a user-visible handle (e.g. Python ``del`` of an ndarray)."""
        if self._application_refs <= 0:
            raise ValueError(f"{self} has no application references to remove")
        self._application_refs -= 1

    def add_runtime_reference(self) -> None:
        """Record a reference held internally by the Diffuse runtime."""
        self._runtime_refs += 1

    def remove_runtime_reference(self) -> None:
        """Drop an internal runtime reference."""
        if self._runtime_refs <= 0:
            raise ValueError(f"{self} has no runtime references to remove")
        self._runtime_refs -= 1

    @property
    def application_references(self) -> int:
        """Number of live application references."""
        return self._application_refs

    @property
    def ever_application_referenced(self) -> bool:
        """True when user code *ever* held a handle to this store.

        Distinguishes frontend-managed stores — whose death the split
        reference counts witness, so their storage can be reclaimed —
        from runtime-internal stores created bare (e.g. the CSR arrays
        of a sparse matrix), which are kept alive by plain Python
        references the counters never see and must not be collected on
        a zero count.
        """
        return self._ever_application_referenced

    def add_pending_stream_reference(self) -> None:
        """Record that a deferred (not yet analysed) task references this store.

        The deferred task stream of the trace subsystem buffers whole
        epochs of tasks before feeding them through the fusion window.
        A store referenced by a still-buffered task must count as live
        for temporary-store elimination — in the eager pipeline the
        application handle used to build that later task would still
        have been alive when the window was analysed, so this keeps the
        deferred pipeline's liveness a faithful model of the eager one.
        """
        self._pending_stream_refs += 1

    def remove_pending_stream_reference(self) -> None:
        """Drop a deferred-task reference (the task entered the window)."""
        if self._pending_stream_refs <= 0:
            raise ValueError(f"{self} has no pending stream references to remove")
        self._pending_stream_refs -= 1

    @property
    def runtime_references(self) -> int:
        """Number of live runtime references."""
        return self._runtime_refs

    @property
    def pending_stream_references(self) -> int:
        """Number of deferred (not yet analysed) tasks referencing this store."""
        return self._pending_stream_refs

    @property
    def has_live_application_references(self) -> bool:
        """True when user code could still observe effects on this store.

        Stores referenced by tasks still buffered in the deferred task
        stream count as live: a later task reading the store is exactly
        as observing as a live application handle.
        """
        return self._application_refs > 0 or self._pending_stream_refs > 0

    # ------------------------------------------------------------------
    # Identity semantics: two stores are the same object iff same uid.
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Store):
            return NotImplemented
        return self.uid == other.uid

    def __hash__(self) -> int:
        return hash(self.uid)

    def __repr__(self) -> str:
        return f"Store(uid={self.uid}, name={self.name!r}, shape={self.shape})"


class StoreManager:
    """Factory and registry for stores.

    The manager hands out unique ids and remembers every live store so that
    the runtime substrate can allocate backing memory lazily and tests can
    inspect the full store population.
    """

    def __init__(self) -> None:
        self._ids = itertools.count()
        self._stores: Dict[int, Store] = {}

    def create_store(
        self,
        shape: Sequence[int],
        dtype: np.dtype = np.float64,
        name: Optional[str] = None,
    ) -> Store:
        """Create a fresh store with a unique id."""
        uid = next(self._ids)
        store = Store(uid=uid, shape=shape, dtype=dtype, name=name, manager=self)
        self._stores[uid] = store
        return store

    def create_scalar_store(
        self, dtype: np.dtype = np.float64, name: Optional[str] = None
    ) -> Store:
        """Create a zero-dimensional store, used for reduction results."""
        return self.create_store(shape=(), dtype=dtype, name=name)

    def get(self, uid: int) -> Store:
        """Look up a store by id."""
        return self._stores[uid]

    def forget(self, store: Store) -> None:
        """Remove a store from the registry (after it has been destroyed)."""
        self._stores.pop(store.uid, None)

    def __len__(self) -> int:
        return len(self._stores)

    def __iter__(self):
        return iter(self._stores.values())

    def all_stores(self) -> Tuple[Store, ...]:
        """Snapshot of every live store."""
        return tuple(self._stores.values())
