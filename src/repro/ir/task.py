"""Index tasks, point tasks and sub-stores (paper Section 3.2).

An :class:`IndexTask` describes a group of parallel *point tasks* launched
over a rectangular launch domain.  Each point task operates on the
sub-stores obtained by evaluating the task's partitions at its launch
point.  The index-task representation is scale free: it stores the launch
domain symbolically and never materialises the point tasks — those are
only constructed on demand (``point_task``) by the runtime substrate and
by tests that validate the scale-free analysis against a brute-force one.
"""

from __future__ import annotations

import itertools
import struct
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.ir.domain import Domain, Point, Rect, as_point
from repro.ir.partition import Partition
from repro.ir.privilege import Privilege, ReductionOp, promote, validate_reduction
from repro.ir.store import Store

_task_ids = itertools.count()


@dataclass(frozen=True)
class StoreArg:
    """A single ``(store, partition, privilege)`` argument of an index task."""

    store: Store
    partition: Partition
    privilege: Privilege
    redop: Optional[ReductionOp] = None

    def __post_init__(self) -> None:
        validate_reduction(self.privilege, self.redop)

    @property
    def view(self) -> Tuple[Store, Partition]:
        """The distributed view ``(store, partition)`` accessed by the task."""
        return (self.store, self.partition)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"({self.store.name}, {self.partition}, {self.privilege})"


@dataclass(frozen=True)
class SubStore:
    """The subset of a store seen by one point of a partition's domain."""

    store: Store
    partition: Partition
    point: Point

    def rect(self) -> Rect:
        """The rectangle of the parent store covered by this sub-store."""
        return self.partition.sub_store_rect(self.point, self.store.shape)

    def intersects(self, other: "SubStore") -> bool:
        """True when two sub-stores of the *same parent store* overlap."""
        if self.store != other.store:
            return False
        return self.rect().overlaps(other.rect())

    @property
    def empty(self) -> bool:
        """True when the sub-store contains no elements."""
        return self.rect().empty


@dataclass(frozen=True)
class PointTask:
    """One point of an index task's launch domain (a concrete task)."""

    task: "IndexTask"
    point: Point

    def arguments(self) -> List[Tuple[SubStore, Privilege]]:
        """The sub-stores touched by this point task, with privileges."""
        return [
            (SubStore(arg.store, arg.partition, self.point), arg.privilege)
            for arg in self.task.args
        ]

    def reads(self, sub: SubStore) -> bool:
        """True when this point task reads the given sub-store."""
        return self._accesses(sub, lambda pr: pr.reads)

    def writes(self, sub: SubStore) -> bool:
        """True when this point task writes the given sub-store."""
        return self._accesses(sub, lambda pr: pr.writes)

    def reduces(self, sub: SubStore) -> bool:
        """True when this point task reduces to the given sub-store."""
        return self._accesses(sub, lambda pr: pr.reduces)

    def _accesses(self, sub: SubStore, predicate) -> bool:
        for own, privilege in self.arguments():
            if own.store == sub.store and predicate(privilege) and own.intersects(sub):
                return True
        return False


def scalar_bits(value: float) -> bytes:
    """The exact IEEE-754 bit pattern of a scalar operand.

    Used as the grouping key for value-based scalar canonicalisation:
    unlike ``==``, the bit pattern distinguishes ``-0.0`` from ``0.0``
    and never equates distinct NaNs, so two scalar positions are grouped
    only when substituting one for the other is bit-exact.
    """
    return struct.pack("<d", value)


def scalar_group_pattern(values: Iterable[float]) -> Tuple[int, ...]:
    """Group scalar operands by bit pattern in first-appearance order.

    The pattern — not the values — is embedded in the memoization and
    trace keys: iteration-dependent scalars (``alpha``/``beta``) keep
    hitting the caches as long as their *equality structure* is stable,
    while fused-kernel scalar deduplication stays sound because any
    stream whose equalities differ produces a different key.
    """
    groups: Dict[bytes, int] = {}
    pattern: List[int] = []
    for value in values:
        key = scalar_bits(value)
        index = groups.get(key)
        if index is None:
            index = len(groups)
            groups[key] = index
        pattern.append(index)
    return tuple(pattern)


def stream_scalar_pattern(tasks: Iterable["IndexTask"]) -> Tuple[int, ...]:
    """The scalar equality pattern of a task stream, in program order.

    The single definition shared by the memoization window key and the
    trace stream key — the two must never diverge, or a replayed plan
    could bind a deduplicated scalar parameter to the wrong value.
    """
    return scalar_group_pattern(
        value for task in tasks for value in task.scalar_args
    )


class IndexTask:
    """A group of parallel point tasks over a launch domain.

    Parameters
    ----------
    task_name:
        Name of the operation, which doubles as the key into the kernel
        generator registry (paper Section 6.2).
    launch_domain:
        The rectangular domain of points over which point tasks are
        launched; normally one point per processor.
    args:
        Ordered ``(store, partition, privilege)`` arguments.  The order
        matches the parameter order expected by the kernel generator.
    scalar_args:
        Immediate scalar operands (e.g. the ``0.2`` in ``0.2 * avg``).
    """

    def __init__(
        self,
        task_name: str,
        launch_domain: Domain,
        args: Sequence[StoreArg],
        scalar_args: Sequence[float] = (),
        provenance: Optional[str] = None,
    ) -> None:
        self.uid = next(_task_ids)
        self.task_name = task_name
        self.launch_domain = launch_domain
        self.args: Tuple[StoreArg, ...] = tuple(args)
        self.scalar_args: Tuple[float, ...] = tuple(scalar_args)
        self.provenance = provenance

    # ------------------------------------------------------------------
    # Privilege predicates over distributed views (paper Section 3.2).
    # ------------------------------------------------------------------
    def reads(self, store: Store, partition: Optional[Partition] = None) -> bool:
        """R(T, (S, P)): the task reads the store (through ``partition``)."""
        return self._matches(store, partition, lambda pr: pr.reads)

    def writes(self, store: Store, partition: Optional[Partition] = None) -> bool:
        """W(T, (S, P)): the task writes the store (through ``partition``)."""
        return self._matches(store, partition, lambda pr: pr.writes)

    def reduces(self, store: Store, partition: Optional[Partition] = None) -> bool:
        """Rd(T, (S, P)): the task reduces to the store (through ``partition``)."""
        return self._matches(store, partition, lambda pr: pr.reduces)

    def _matches(self, store: Store, partition: Optional[Partition], predicate) -> bool:
        for arg in self.args:
            if arg.store != store:
                continue
            if partition is not None and arg.partition != partition:
                continue
            if predicate(arg.privilege):
                return True
        return False

    # ------------------------------------------------------------------
    # Store accessors.
    # ------------------------------------------------------------------
    def stores(self) -> Tuple[Store, ...]:
        """All distinct stores touched by the task, in argument order."""
        seen: Dict[int, Store] = {}
        for arg in self.args:
            seen.setdefault(arg.store.uid, arg.store)
        return tuple(seen.values())

    def views(self) -> Tuple[Tuple[Store, Partition, Privilege], ...]:
        """All ``(store, partition, privilege)`` triples of the task."""
        return tuple((arg.store, arg.partition, arg.privilege) for arg in self.args)

    def args_for_store(self, store: Store) -> Tuple[StoreArg, ...]:
        """All arguments referring to the given store."""
        return tuple(arg for arg in self.args if arg.store == store)

    # ------------------------------------------------------------------
    # Point tasks (constructed on demand; never stored).
    # ------------------------------------------------------------------
    def point_task(self, point: Sequence[int]) -> PointTask:
        """The point task at ``point`` of the launch domain."""
        point = as_point(point)
        if not self.launch_domain.contains(point):
            raise ValueError(f"{point} is outside launch domain {self.launch_domain}")
        return PointTask(task=self, point=point)

    def point_tasks(self) -> Iterable[PointTask]:
        """Iterate over every point task (brute force; for tests only)."""
        for point in self.launch_domain.points():
            yield PointTask(task=self, point=point)

    # ------------------------------------------------------------------
    # Misc.
    # ------------------------------------------------------------------
    @property
    def is_fused(self) -> bool:
        """True for tasks produced by the fusion engine."""
        return False

    def constituent_count(self) -> int:
        """Number of original library tasks this task stands for."""
        return 1

    def __repr__(self) -> str:
        arg_str = ", ".join(str(arg) for arg in self.args)
        return (
            f"IndexTask({self.task_name}, domain={self.launch_domain.shape}, "
            f"args=[{arg_str}])"
        )


class FusedTask(IndexTask):
    """An index task standing for a fused prefix of the task window.

    The fused task's arguments are the union of the constituent tasks'
    arguments with privileges promoted (a store both read and written
    becomes Read-Write), except for stores identified as temporaries,
    which are dropped from the argument list entirely and demoted to
    task-local allocations by the kernel compiler (paper Sections 4.2.2
    and 5.1).
    """

    def __init__(
        self,
        constituents: Sequence[IndexTask],
        args: Sequence[StoreArg],
        temporary_stores: Sequence[Store] = (),
        task_name: Optional[str] = None,
    ) -> None:
        if not constituents:
            raise ValueError("a fused task needs at least one constituent")
        name = task_name or "fused_" + "_".join(t.task_name for t in constituents)
        super().__init__(
            task_name=name,
            launch_domain=constituents[0].launch_domain,
            args=args,
            scalar_args=tuple(
                scalar for task in constituents for scalar in task.scalar_args
            ),
        )
        self.constituents: Tuple[IndexTask, ...] = tuple(constituents)
        self.temporary_stores: Tuple[Store, ...] = tuple(temporary_stores)

    @property
    def is_fused(self) -> bool:
        return True

    def constituent_count(self) -> int:
        return sum(task.constituent_count() for task in self.constituents)

    def __repr__(self) -> str:
        names = [t.task_name for t in self.constituents]
        return (
            f"FusedTask({names}, domain={self.launch_domain.shape}, "
            f"temporaries={[s.name for s in self.temporary_stores]})"
        )


def combine_arguments(
    tasks: Sequence[IndexTask],
    temporaries: Sequence[Store] = (),
) -> List[StoreArg]:
    """Build the argument list of a fused task (paper Section 4.2.2).

    Arguments of the constituent tasks are merged per ``(store,
    partition)`` view.  Privileges are promoted: a view that is read by one
    task and written by another gets Read-Write.  Views of temporary stores
    are excluded — they become task-local allocations inside the fused
    kernel.
    """
    temp_ids = {store.uid for store in temporaries}
    merged: Dict[Tuple[int, Partition], StoreArg] = {}
    order: List[Tuple[int, Partition]] = []
    for task in tasks:
        for arg in task.args:
            if arg.store.uid in temp_ids:
                continue
            key = (arg.store.uid, arg.partition)
            if key not in merged:
                merged[key] = arg
                order.append(key)
                continue
            existing = merged[key]
            if existing.privilege == arg.privilege and existing.redop == arg.redop:
                continue
            privilege = promote(existing.privilege, arg.privilege)
            merged[key] = StoreArg(
                store=existing.store,
                partition=existing.partition,
                privilege=privilege,
                redop=None,
            )
    return [merged[key] for key in order]
