"""The task window: the buffer of pending index tasks analysed for fusion.

Applications submit index tasks to Diffuse, which buffers them into a
window (paper Section 4).  When the window fills up — or when the
application forces a flush, e.g. because it needs a reduction result — the
fusion algorithm runs over the buffered prefix and the resulting (fused
and unfused) tasks are forwarded to the underlying runtime.

The window also implements the adaptive sizing policy described in the
paper's evaluation (Section 7): the window grows when every task in the
current window was fused, so applications with long fusible chains (e.g.
Black-Scholes with 67 fusible operations) automatically receive a window
large enough to capture them.
"""

from __future__ import annotations

from typing import List, Optional

from repro.ir.task import IndexTask


class TaskWindow:
    """A bounded buffer of pending index tasks."""

    def __init__(
        self,
        initial_size: int = 5,
        max_size: int = 256,
        adaptive: bool = True,
        growth_factor: int = 2,
    ) -> None:
        if initial_size < 1:
            raise ValueError("window size must be at least 1")
        if max_size < initial_size:
            raise ValueError("max size must be at least the initial size")
        self.size = initial_size
        self.max_size = max_size
        self.adaptive = adaptive
        self.growth_factor = growth_factor
        self._tasks: List[IndexTask] = []

    # ------------------------------------------------------------------
    # Buffer management.
    # ------------------------------------------------------------------
    def add(self, task: IndexTask) -> bool:
        """Buffer a task; returns True when the window is now full."""
        self._tasks.append(task)
        for store in task.stores():
            store.add_runtime_reference()
        return self.full

    def drain(self, count: Optional[int] = None) -> List[IndexTask]:
        """Remove and return the first ``count`` tasks (all when ``None``)."""
        if count is None:
            count = len(self._tasks)
        drained, self._tasks = self._tasks[:count], self._tasks[count:]
        for task in drained:
            for store in task.stores():
                store.remove_runtime_reference()
        return drained

    @property
    def tasks(self) -> List[IndexTask]:
        """The buffered tasks in program order (read-only view)."""
        return list(self._tasks)

    @property
    def pending(self) -> int:
        """Number of buffered tasks."""
        return len(self._tasks)

    @property
    def full(self) -> bool:
        """True when the buffer has reached the current window size."""
        return len(self._tasks) >= self.size

    @property
    def empty(self) -> bool:
        """True when no tasks are buffered."""
        return not self._tasks

    # ------------------------------------------------------------------
    # Adaptive sizing (paper Section 7, Figure 9 caption).
    # ------------------------------------------------------------------
    def record_fusion_result(self, window_length: int, fused_length: int) -> None:
        """Grow the window when the whole analysed window fused into one task.

        ``window_length`` is how many tasks were analysed and
        ``fused_length`` how many of them joined the fused prefix.  When
        every analysed task fused and the window was full, a larger window
        might expose even more fusion, so the size is increased.
        """
        if not self.adaptive:
            return
        if window_length == 0:
            return
        if fused_length == window_length and window_length >= self.size:
            self.size = min(self.size * self.growth_factor, self.max_size)

    def __len__(self) -> int:
        return len(self._tasks)

    def __repr__(self) -> str:
        return f"TaskWindow(size={self.size}, pending={self.pending})"
