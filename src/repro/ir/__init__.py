"""Diffuse's scale-free intermediate representation (paper Section 3).

The IR has two halves:

* A *data model*: :class:`~repro.ir.store.Store` objects are distributed
  arrays identified by a unique id and a rectangular shape.  Stores are
  partitioned across the machine by first-class
  :class:`~repro.ir.partition.Partition` objects (replication or affine
  tilings with projection functions).

* A *computational model*: a stream of
  :class:`~repro.ir.task.IndexTask` objects, each describing a group of
  parallel point tasks launched over a rectangular launch domain, touching
  a list of ``(store, partition, privilege)`` arguments.

Both halves are *scale free*: the size of the representation is independent
of the number of processors in the target machine, which is what makes the
fusion analyses in :mod:`repro.fusion` constant time per task pair.
"""

from repro.ir.domain import Domain, Rect
from repro.ir.partition import Partition, Replication, Tiling
from repro.ir.privilege import Privilege, ReductionOp
from repro.ir.projection import ProjectionFunction, identity_projection
from repro.ir.store import Store, StoreManager
from repro.ir.task import FusedTask, IndexTask, PointTask, StoreArg, SubStore
from repro.ir.window import TaskWindow

__all__ = [
    "Domain",
    "Rect",
    "Partition",
    "Replication",
    "Tiling",
    "Privilege",
    "ReductionOp",
    "ProjectionFunction",
    "identity_projection",
    "Store",
    "StoreManager",
    "IndexTask",
    "FusedTask",
    "PointTask",
    "StoreArg",
    "SubStore",
    "TaskWindow",
]
