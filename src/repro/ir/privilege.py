"""Privileges with which tasks access their store arguments.

The paper's IR annotates each ``(store, partition)`` pair of an index task
with one of four privileges: Read, Write, Read-Write and Reduce.  The
privileges drive both the fusion constraints (paper Section 4) and the
coherence/communication model of the runtime substrate.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

import numpy as np


class Privilege(enum.Enum):
    """Access privilege of a task on a store argument."""

    READ = "R"
    WRITE = "W"
    READ_WRITE = "RW"
    REDUCE = "Rd"

    @property
    def reads(self) -> bool:
        """True when the privilege observes existing store contents."""
        return self in (Privilege.READ, Privilege.READ_WRITE)

    @property
    def writes(self) -> bool:
        """True when the privilege overwrites store contents."""
        return self in (Privilege.WRITE, Privilege.READ_WRITE)

    @property
    def reduces(self) -> bool:
        """True when the privilege folds values with a reduction operator."""
        return self is Privilege.REDUCE

    def __str__(self) -> str:
        return self.value


class ReductionOp(enum.Enum):
    """Associative, commutative reduction operators supported by the IR."""

    ADD = "add"
    MUL = "mul"
    MIN = "min"
    MAX = "max"

    @property
    def identity(self) -> float:
        """The identity element of the operator."""
        return _IDENTITIES[self]

    def apply(self, accumulator: np.ndarray, value: np.ndarray) -> np.ndarray:
        """Fold ``value`` into ``accumulator`` and return the result."""
        return _APPLIERS[self](accumulator, value)

    def combine_scalars(self, a: float, b: float) -> float:
        """Fold two scalar partial results."""
        return float(_APPLIERS[self](np.asarray(a), np.asarray(b)))


_IDENTITIES = {
    ReductionOp.ADD: 0.0,
    ReductionOp.MUL: 1.0,
    ReductionOp.MIN: float("inf"),
    ReductionOp.MAX: float("-inf"),
}

_APPLIERS: dict = {
    ReductionOp.ADD: lambda acc, val: acc + val,
    ReductionOp.MUL: lambda acc, val: acc * val,
    ReductionOp.MIN: np.minimum,
    ReductionOp.MAX: np.maximum,
}


def promote(first: Privilege, second: Privilege) -> Privilege:
    """Combine the privileges of two accesses to the same store view.

    Used when constructing fused tasks: a store that is read by one
    constituent task and written by another is accessed with Read-Write
    privilege by the fused task (paper Section 4.2.2).  Reductions do not
    combine with other privileges — the fusion constraints guarantee the
    combination never arises — so mixing them is an error here.
    """
    if first == second:
        return first
    if Privilege.REDUCE in (first, second):
        raise ValueError(
            "cannot promote a reduction privilege together with "
            f"{first} and {second}; the reduction fusion constraint should "
            "have prevented this combination"
        )
    return Privilege.READ_WRITE


def numpy_ufunc_for(op: ReductionOp) -> Callable:
    """The NumPy ufunc whose ``reduce`` implements the operator."""
    return {
        ReductionOp.ADD: np.add,
        ReductionOp.MUL: np.multiply,
        ReductionOp.MIN: np.minimum,
        ReductionOp.MAX: np.maximum,
    }[op]


def validate_reduction(privilege: Privilege, redop: Optional[ReductionOp]) -> None:
    """Check that a reduction operator is supplied exactly when needed."""
    if privilege.reduces and redop is None:
        raise ValueError("REDUCE privilege requires a reduction operator")
    if not privilege.reduces and redop is not None:
        raise ValueError(f"privilege {privilege} must not carry a reduction operator")
