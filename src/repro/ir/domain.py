"""Points, rectangles and rectangular domains.

Diffuse describes both data (store shapes) and compute (launch domains)
with rectangular index spaces.  A :class:`Rect` is a half-open
``[lo, hi)`` box over integer points; a :class:`Domain` is a rectangle
anchored at the origin, described only by its shape.

These objects are deliberately tiny and immutable — they appear inside
partition descriptions and task arguments, which must be hashable so the
memoization machinery (paper Section 5.2) can canonicalise task streams.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Tuple

Point = Tuple[int, ...]


def as_point(value: Sequence[int]) -> Point:
    """Normalise a sequence of integers into a point tuple."""
    return tuple(int(v) for v in value)


def point_add(a: Point, b: Point) -> Point:
    """Element-wise sum of two points of equal dimensionality."""
    _check_dims(a, b)
    return tuple(x + y for x, y in zip(a, b))


def point_sub(a: Point, b: Point) -> Point:
    """Element-wise difference of two points of equal dimensionality."""
    _check_dims(a, b)
    return tuple(x - y for x, y in zip(a, b))


def point_mul(a: Point, b: Point) -> Point:
    """Element-wise product of two points of equal dimensionality."""
    _check_dims(a, b)
    return tuple(x * y for x, y in zip(a, b))


def _check_dims(a: Point, b: Point) -> None:
    if len(a) != len(b):
        raise ValueError(f"dimension mismatch: {a} vs {b}")


@dataclass(frozen=True)
class Rect:
    """A half-open axis-aligned box ``[lo, hi)`` of integer points."""

    lo: Point
    hi: Point

    def __post_init__(self) -> None:
        if len(self.lo) != len(self.hi):
            raise ValueError(
                f"lo and hi must have the same dimension: {self.lo} vs {self.hi}"
            )
        object.__setattr__(self, "lo", as_point(self.lo))
        object.__setattr__(self, "hi", as_point(self.hi))

    def __hash__(self) -> int:
        # Rects key the sub-store view caches of the execution hot path;
        # the hash is computed on first use and memoized (lazily, so
        # rects that are never hashed pay nothing at construction).
        try:
            return self._hash
        except AttributeError:
            value = hash((self.lo, self.hi))
            object.__setattr__(self, "_hash", value)
            return value

    @staticmethod
    def from_shape(shape: Sequence[int]) -> "Rect":
        """Build the rectangle ``[0, shape)``."""
        shape = as_point(shape)
        return Rect((0,) * len(shape), shape)

    @property
    def dim(self) -> int:
        """Number of dimensions of the rectangle."""
        return len(self.lo)

    @property
    def shape(self) -> Point:
        """Extent along each dimension (clamped below at zero)."""
        return tuple(max(0, h - l) for l, h in zip(self.lo, self.hi))

    @property
    def volume(self) -> int:
        """Number of integer points contained in the rectangle."""
        total = 1
        for extent in self.shape:
            total *= extent
        return total

    @property
    def empty(self) -> bool:
        """True when the rectangle contains no points."""
        return any(h <= l for l, h in zip(self.lo, self.hi))

    def contains_point(self, point: Sequence[int]) -> bool:
        """True when ``point`` lies inside the rectangle."""
        point = as_point(point)
        if len(point) != self.dim:
            return False
        return all(l <= p < h for l, p, h in zip(self.lo, point, self.hi))

    def contains_rect(self, other: "Rect") -> bool:
        """True when ``other`` is entirely inside this rectangle."""
        if other.empty:
            return True
        return all(
            sl <= ol and oh <= sh
            for sl, sh, ol, oh in zip(self.lo, self.hi, other.lo, other.hi)
        )

    def intersection(self, other: "Rect") -> "Rect":
        """The (possibly empty) overlap of two rectangles."""
        if self.dim != other.dim:
            raise ValueError(
                f"cannot intersect rectangles of dimension {self.dim} and {other.dim}"
            )
        lo = tuple(max(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(min(a, b) for a, b in zip(self.hi, other.hi))
        return Rect(lo, hi)

    def overlaps(self, other: "Rect") -> bool:
        """True when the two rectangles share at least one point."""
        return not self.intersection(other).empty

    def intersect_with_shape(self, shape: Sequence[int]) -> "Rect":
        """Clamp the rectangle to the box ``[0, shape)``."""
        return self.intersection(Rect.from_shape(shape))

    def points(self) -> Iterator[Point]:
        """Iterate over every integer point in the rectangle."""
        if self.empty:
            return iter(())
        ranges = [range(l, h) for l, h in zip(self.lo, self.hi)]
        return iter(itertools.product(*ranges))

    def slices(self) -> Tuple[slice, ...]:
        """NumPy-compatible slices selecting this rectangle from an array."""
        return tuple(slice(l, h) for l, h in zip(self.lo, self.hi))

    def translate(self, offset: Sequence[int]) -> "Rect":
        """Shift the rectangle by ``offset``."""
        offset = as_point(offset)
        return Rect(point_add(self.lo, offset), point_add(self.hi, offset))

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"Rect(lo={self.lo}, hi={self.hi})"


@dataclass(frozen=True)
class Domain:
    """A rectangular index space anchored at the origin.

    Domains describe both the shape of stores and the launch domains of
    index tasks.  A domain with shape ``(4, 2)`` contains the eight points
    ``(0, 0) .. (3, 1)``.
    """

    shape: Point

    def __post_init__(self) -> None:
        shape = as_point(self.shape)
        if any(s < 0 for s in shape):
            raise ValueError(f"domain shape must be non-negative: {shape}")
        object.__setattr__(self, "shape", shape)

    @property
    def dim(self) -> int:
        """Number of dimensions of the domain."""
        return len(self.shape)

    @property
    def volume(self) -> int:
        """Number of points in the domain."""
        return self.rect.volume

    @property
    def rect(self) -> Rect:
        """The domain as a rectangle ``[0, shape)``."""
        return Rect.from_shape(self.shape)

    @property
    def empty(self) -> bool:
        """True when the domain contains no points."""
        return self.volume == 0

    def points(self) -> Iterator[Point]:
        """Iterate over every point in the domain."""
        return self.rect.points()

    def contains(self, point: Sequence[int]) -> bool:
        """True when ``point`` lies inside the domain."""
        return self.rect.contains_point(point)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"Domain{self.shape}"


def factor_domain(count: int, dim: int) -> Domain:
    """Split ``count`` processors into a roughly square ``dim``-D domain.

    This mirrors how cuPyNumeric chooses launch domains: the number of
    processors is factored into a launch grid as close to a hypercube as
    possible so that tile surface (and therefore halo traffic) is
    minimised.

    >>> factor_domain(8, 2).shape
    (4, 2)
    >>> factor_domain(7, 2).shape
    (7, 1)
    """
    if count <= 0:
        raise ValueError("processor count must be positive")
    if dim <= 0:
        raise ValueError("dimension must be positive")
    if dim == 1:
        return Domain((count,))
    extents = [1] * dim
    remaining = count
    # Greedily peel prime factors onto the currently-smallest extent.
    factor = 2
    factors = []
    while factor * factor <= remaining:
        while remaining % factor == 0:
            factors.append(factor)
            remaining //= factor
        factor += 1
    if remaining > 1:
        factors.append(remaining)
    for prime in sorted(factors, reverse=True):
        smallest = extents.index(min(extents))
        extents[smallest] *= prime
    extents.sort(reverse=True)
    return Domain(tuple(extents))


def tile_shape_for(shape: Sequence[int], launch: Domain) -> Point:
    """Compute the tile shape that splits ``shape`` over ``launch``.

    The tile shape is the ceiling division of the store extent by the
    launch extent along each dimension, matching the blocking used by
    cuPyNumeric when partitioning arrays for index launches.
    """
    shape = as_point(shape)
    if len(shape) != launch.dim:
        raise ValueError(
            f"store shape {shape} and launch domain {launch.shape} "
            "must have the same dimensionality"
        )
    return tuple(
        -(-extent // parts) if parts > 0 else extent
        for extent, parts in zip(shape, launch.shape)
    )


def broadcast_shapes(*shapes: Sequence[int]) -> Point:
    """NumPy-style broadcasting of shapes, used by the frontends.

    >>> broadcast_shapes((4, 1), (1, 5))
    (4, 5)
    """
    result: list = []
    max_dim = max((len(s) for s in shapes), default=0)
    padded = [((1,) * (max_dim - len(s))) + as_point(s) for s in shapes]
    for dims in zip(*padded) if padded else []:
        extent = 1
        for d in dims:
            if d == 1:
                continue
            if extent == 1:
                extent = d
            elif extent != d:
                raise ValueError(f"shapes {shapes} are not broadcastable")
        result.append(extent)
    return tuple(result)


def shape_volume(shape: Sequence[int]) -> int:
    """Number of elements in an array of the given shape."""
    total = 1
    for extent in shape:
        total *= int(extent)
    return total


def intersect_optional(a: Optional[Rect], b: Optional[Rect]) -> Optional[Rect]:
    """Intersection helper treating ``None`` as the universal rectangle."""
    if a is None:
        return b
    if b is None:
        return a
    return a.intersection(b)
