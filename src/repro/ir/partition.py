"""First-class, structured partitions of stores (paper Section 3.1).

A partition maps each point of a launch domain to a *sub-store* — a
rectangular subset of a store.  Diffuse supports two syntactic kinds:

``Replication`` (the paper's ``None`` kind)
    Every launch point maps to the entire store.

``Tiling``
    An affine, n-dimensional tiling described by a tile shape, an offset
    from the origin and a projection function applied to launch points
    before computing tile bounds (paper Figure 3e).

The crucial property is that partitions are *scale free*: the mapping from
points to sub-stores is implicit in a handful of integers plus a projection
id, so two partitions can be compared for equality in constant time without
enumerating sub-stores.  That constant-time equality check is the alias
query at the heart of the fusion constraints (paper Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.ir.domain import (
    Domain,
    Point,
    Rect,
    as_point,
    point_add,
    point_mul,
)
from repro.ir.projection import ProjectionFunction, identity_projection


class Partition:
    """Base class of all partition kinds."""

    #: Short syntactic-kind name used in canonicalisation and debugging.
    kind: str = "abstract"

    def sub_store_rect(self, point: Sequence[int], store_shape: Sequence[int]) -> Rect:
        """The rectangle of the store owned by launch point ``point``.

        The result is clamped to the store bounds, mirroring how Legion
        clips image rectangles to the parent region.
        """
        raise NotImplementedError

    def covers(self, store_shape: Sequence[int], launch_domain: Domain) -> bool:
        """True when the union of sub-stores over ``launch_domain`` is the store.

        Used by temporary-store elimination (paper Definition 4), which
        requires that a candidate temporary was written through a covering
        partition before being read.
        """
        raise NotImplementedError

    def is_replication(self) -> bool:
        """True for partitions that replicate the whole store to every point."""
        return False

    def is_disjoint(self) -> bool:
        """True when distinct launch points map to disjoint sub-stores.

        Writes through a disjoint partition are point-wise by construction;
        writes through a non-disjoint partition (replication, or a tiling
        with a non-injective projection) touch data visible to other launch
        points, so the fusion constraints must treat them as conflicting
        with every other access to the store.
        """
        return False

    def __eq__(self, other: object) -> bool:  # pragma: no cover - overridden
        raise NotImplementedError

    def __hash__(self) -> int:  # pragma: no cover - overridden
        raise NotImplementedError


@dataclass(frozen=True)
class Replication(Partition):
    """The ``None`` partition kind: every point sees the whole store."""

    kind: str = "replication"

    def sub_store_rect(self, point: Sequence[int], store_shape: Sequence[int]) -> Rect:
        return Rect.from_shape(store_shape)

    def covers(self, store_shape: Sequence[int], launch_domain: Domain) -> bool:
        return not launch_domain.empty

    def is_replication(self) -> bool:
        return True

    def is_disjoint(self) -> bool:
        return False

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return "Replication()"


@dataclass(frozen=True)
class Tiling(Partition):
    """An affine tiling of a store (paper Figure 3).

    ``tile_shape``
        Extent of each tile along every store dimension.
    ``offset``
        Translation applied to every tile, letting tilings describe views
        of a sub-rectangle of the store (e.g. ``grid[1:-1, 1:-1]``).
    ``projection``
        Transformation applied to launch points before computing the tile
        bounds; non-identity projections express aliased or replicated
        tilings (paper Figure 3d).
    ``bounds``
        Optional rectangle within the store that the tiling describes a
        view of.  Sub-store rectangles are clipped against it, so a tiling
        of the interior view ``grid[1:-1, 1:-1]`` never spills into the
        boundary cells even when the view extent does not divide evenly by
        the launch domain.
    """

    tile_shape: Point
    offset: Point
    projection: ProjectionFunction
    bounds: Optional[Rect] = None

    kind: str = "tiling"

    def __post_init__(self) -> None:
        tile_shape = as_point(self.tile_shape)
        offset = as_point(self.offset)
        if len(tile_shape) != len(offset):
            raise ValueError(
                f"tile shape {tile_shape} and offset {offset} must have the "
                "same dimensionality"
            )
        if any(extent < 0 for extent in tile_shape):
            raise ValueError(f"tile shape must be non-negative: {tile_shape}")
        object.__setattr__(self, "tile_shape", tile_shape)
        object.__setattr__(self, "offset", offset)

    def __hash__(self) -> int:
        # Tilings key the sub-store rect caches and the memoization
        # tables; the hash is memoized on first use so repeated probes
        # skip re-hashing four fields (and tilings that are never hashed
        # pay nothing at construction).
        try:
            return self._hash
        except AttributeError:
            value = hash((self.tile_shape, self.offset, self.projection, self.bounds))
            object.__setattr__(self, "_hash", value)
            return value

    @staticmethod
    def create(
        tile_shape: Sequence[int],
        offset: Sequence[int] = None,
        projection: ProjectionFunction = None,
        bounds: Optional[Rect] = None,
    ) -> "Tiling":
        """Convenience constructor with identity projection / zero offset."""
        tile_shape = as_point(tile_shape)
        if offset is None:
            offset = (0,) * len(tile_shape)
        if projection is None:
            projection = identity_projection()
        return Tiling(
            tile_shape=tile_shape,
            offset=as_point(offset),
            projection=projection,
            bounds=bounds,
        )

    @property
    def dim(self) -> int:
        """Dimensionality of the tiles (and of the store being tiled)."""
        return len(self.tile_shape)

    def is_disjoint(self) -> bool:
        """Identity-projected tilings map distinct points to disjoint tiles."""
        return self.projection == identity_projection()

    def sub_store_rect(self, point: Sequence[int], store_shape: Sequence[int]) -> Rect:
        projected = self.projection(as_point(point))
        if len(projected) != self.dim:
            raise ValueError(
                f"projection produced a {len(projected)}-D point for a "
                f"{self.dim}-D tiling"
            )
        next_point = tuple(c + 1 for c in projected)
        lo = point_add(point_mul(projected, self.tile_shape), self.offset)
        hi = point_add(point_mul(next_point, self.tile_shape), self.offset)
        rect = Rect(lo, hi).intersect_with_shape(store_shape)
        if self.bounds is not None:
            rect = rect.intersection(self.bounds)
        return rect

    def covers(self, store_shape: Sequence[int], launch_domain: Domain) -> bool:
        store_rect = Rect.from_shape(store_shape)
        if store_rect.volume == 0:
            return True
        covered = 0
        seen = set()
        for point in launch_domain.points():
            rect = self.sub_store_rect(point, store_shape)
            if rect.empty or rect in seen:
                continue
            seen.add(rect)
            covered += rect.volume
        # Tiles produced by a single Tiling partition are disjoint for
        # distinct projected points, so summing distinct-tile volumes gives
        # the exact covered volume.
        return covered >= store_rect.volume

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Tiling(shape={self.tile_shape}, offset={self.offset}, "
            f"proj={self.projection.name})"
        )


def partitions_alias(first: Partition, second: Partition) -> bool:
    """Conservative constant-time alias query between two partitions.

    Two *equal* partitions map every launch point to the same sub-store, so
    accesses through them have at most point-wise dependencies.  Any other
    pair is conservatively assumed to alias.  This matches the paper's use
    of partition inequality (``P != P'``) in the fusion constraints: the
    check never enumerates sub-stores and is therefore independent of the
    machine size.
    """
    return first != second


def natural_tiling(store_shape: Sequence[int], launch_domain: Domain) -> Tiling:
    """The canonical blocked tiling of a store over a launch domain.

    The tile shape is the ceiling division of store extents by launch
    extents, which is how cuPyNumeric partitions arrays for index
    launches.
    """
    from repro.ir.domain import tile_shape_for

    return Tiling.create(tile_shape_for(store_shape, launch_domain))
