"""Projection functions used by Tiling partitions.

A projection function transforms each point of a partition's domain before
the tile bounds are computed (paper Figure 3d).  Projections let Tiling
partitions express replicated or partially-aliased data: for example, a
one-dimensional vector tiled over a two-dimensional launch domain uses a
projection that drops the second coordinate, so every launch point in the
same row maps to the same sub-store.

Projection functions are identified by a unique id; two projections are
considered equal exactly when their ids are equal.  This is what keeps the
partition-equality check (and therefore the fusion analysis) constant
time: Diffuse never has to evaluate projections over the whole launch
domain just to decide whether two partitions could alias.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Sequence, Tuple

from repro.ir.domain import Point, as_point

_projection_ids = itertools.count()

# Registry used to intern structurally-identical projections so that two
# libraries independently asking for "drop dimension 1" obtain the same
# projection id and the fusion analysis sees them as equal.
_interned: Dict[Tuple, "ProjectionFunction"] = {}


@dataclass(frozen=True)
class ProjectionFunction:
    """A named transformation applied to launch-domain points."""

    name: str
    function: Callable[[Point], Point] = field(compare=False)
    uid: int = field(default_factory=lambda: next(_projection_ids))

    def __call__(self, point: Sequence[int]) -> Point:
        return as_point(self.function(as_point(point)))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ProjectionFunction):
            return NotImplemented
        return self.uid == other.uid

    def __hash__(self) -> int:
        return hash(self.uid)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"Projection({self.name}, id={self.uid})"


def _intern(key: Tuple, name: str, function: Callable[[Point], Point]) -> ProjectionFunction:
    existing = _interned.get(key)
    if existing is not None:
        return existing
    projection = ProjectionFunction(name=name, function=function)
    _interned[key] = projection
    return projection


def identity_projection() -> ProjectionFunction:
    """The identity projection ``p -> p``."""
    return _intern(("identity",), "identity", lambda p: p)


def drop_dimensions(kept: Sequence[int]) -> ProjectionFunction:
    """Keep only the listed point coordinates, in order.

    ``drop_dimensions([0])`` maps ``(i, j) -> (i,)``, the projection used in
    paper Figure 3d to tile a vector over a 2-D launch domain.
    """
    kept = tuple(int(k) for k in kept)

    def project(point: Point) -> Point:
        return tuple(point[k] for k in kept)

    name = f"keep{list(kept)}"
    return _intern(("drop", kept), name, project)


def constant_projection(target: Sequence[int]) -> ProjectionFunction:
    """Map every launch point to the same fixed point (full replication)."""
    target_point = as_point(target)

    def project(point: Point) -> Point:
        return target_point

    name = f"const{target_point}"
    return _intern(("const", target_point), name, project)


def transpose_projection(order: Sequence[int]) -> ProjectionFunction:
    """Permute the coordinates of each launch point."""
    order = tuple(int(o) for o in order)

    def project(point: Point) -> Point:
        return tuple(point[o] for o in order)

    name = f"transpose{list(order)}"
    return _intern(("transpose", order), name, project)


def promote_dimension(dim: int, ndim: int) -> ProjectionFunction:
    """Embed a 1-D launch point into ``ndim`` dimensions at position ``dim``.

    All other coordinates are zero; used when a 1-D launch domain indexes a
    higher-dimensional store partitioned along a single axis.
    """
    dim = int(dim)
    ndim = int(ndim)

    def project(point: Point) -> Point:
        result = [0] * ndim
        result[dim] = point[0]
        return tuple(result)

    name = f"promote(dim={dim}, ndim={ndim})"
    return _intern(("promote", dim, ndim), name, project)


def registered_projection_count() -> int:
    """Number of distinct interned projection functions (for tests)."""
    return len(_interned)
