"""Experiment harness regenerating every table and figure of the paper.

The harness runs the applications of :mod:`repro.apps` under different
configurations (fused / unfused / manually fused / PETSc), collects the
profiler's analytically-modelled timings, and formats them as the rows and
series the paper reports:

* :mod:`repro.experiments.harness` — single-run driver and result records.
* :mod:`repro.experiments.weak_scaling` — weak-scaling sweeps over GPU
  counts (Figures 10, 11 and 12).
* :mod:`repro.experiments.figures` — one entry point per paper artifact,
  including the task-count table (Figure 9), the compile-time table
  (Figure 13) and the headline geo-mean summaries.
"""

from repro.experiments.harness import (
    ExperimentScale,
    RunResult,
    default_scale_for,
    run_application_experiment,
    run_petsc_experiment,
    scaled_machine,
)
from repro.experiments.weak_scaling import WeakScalingSeries, run_weak_scaling
from repro.experiments import figures

__all__ = [
    "ExperimentScale",
    "RunResult",
    "default_scale_for",
    "run_application_experiment",
    "run_petsc_experiment",
    "scaled_machine",
    "WeakScalingSeries",
    "run_weak_scaling",
    "figures",
]
