"""Single-experiment driver: run one application under one configuration.

The simulator executes the real computation on NumPy, so problem sizes
must stay far below the paper's (which used up to 128 A100s).  To keep the
*shape* of the results — bandwidth-bound kernels a few milliseconds long,
task launch overheads of a fraction of a millisecond — the machine model's
bandwidth and peak flops are scaled down by the same factor as the problem
size.  Ratios, and therefore speedups and scaling trends, are preserved;
absolute iteration rates are not meaningful and EXPERIMENTS.md records
both.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Sequence

from repro import config as repro_config
from repro.apps.base import build_application
from repro.baselines.petsc import KSP, PetscMachineModel, Vec, poisson_2d_aij
from repro.frontend.legate.context import RuntimeContext, set_context
from repro.fusion.engine import FusionConfig
from repro.runtime.machine import MachineConfig


# ----------------------------------------------------------------------
# Machine scaling.
# ----------------------------------------------------------------------
def scaled_machine(num_gpus: int, bandwidth_scale: float = 1e-3) -> MachineConfig:
    """An A100-like machine with bandwidth/compute scaled down.

    ``bandwidth_scale`` shrinks per-GPU memory bandwidth, peak flops and
    the interconnect bandwidths by the same factor, so a problem that is
    ``bandwidth_scale`` times smaller than the paper's produces kernel
    durations and communication/computation ratios in the same regime.
    """
    base = MachineConfig(num_gpus=num_gpus)
    return replace(
        base,
        gpu_memory_bandwidth=base.gpu_memory_bandwidth * bandwidth_scale,
        gpu_peak_flops=base.gpu_peak_flops * bandwidth_scale,
        nvlink_bandwidth=base.nvlink_bandwidth * bandwidth_scale,
        infiniband_bandwidth=base.infiniband_bandwidth * bandwidth_scale,
    )


@dataclass(frozen=True)
class ExperimentScale:
    """Problem size and machine scaling used for one application."""

    app_kwargs: Dict[str, float]
    bandwidth_scale: float
    iterations: int
    warmup_iterations: int


#: Default experiment scales per application.  Sizes are chosen so that the
#: full functional simulation of the largest configuration stays tractable
#: on a laptop while kernel durations stay in the paper's regime.
_DEFAULT_SCALES: Dict[str, ExperimentScale] = {
    "black-scholes": ExperimentScale({"elements_per_gpu": 16384}, 4e-5, 3, 3),
    "jacobi": ExperimentScale({"rows_per_gpu": 256}, 5e-5, 3, 2),
    "cg": ExperimentScale({"grid_points_per_gpu": 48}, 1e-5, 4, 2),
    "cg-manual": ExperimentScale({"grid_points_per_gpu": 48}, 1e-5, 4, 2),
    "bicgstab": ExperimentScale({"grid_points_per_gpu": 48}, 1e-5, 4, 2),
    "gmg": ExperimentScale({"grid_points_per_gpu": 48}, 1e-5, 3, 2),
    "cfd": ExperimentScale({"points_per_gpu": 48}, 1e-5, 3, 3),
    "two-matvec": ExperimentScale({"rows_per_gpu": 32}, 5e-5, 3, 2),
    "torchswe": ExperimentScale({"points_per_gpu": 48}, 1e-5, 3, 3),
    "torchswe-manual": ExperimentScale({"points_per_gpu": 48}, 1e-5, 3, 3),
}


def default_scale_for(app_name: str) -> ExperimentScale:
    """The default experiment scale of an application."""
    return _DEFAULT_SCALES[app_name]


# ----------------------------------------------------------------------
# Result record.
# ----------------------------------------------------------------------
@dataclass
class RunResult:
    """Metrics of one application run under one configuration."""

    app: str
    configuration: str
    num_gpus: int
    iterations: int
    warmup_iterations: int
    #: Iterations per simulated second, excluding warm-up iterations.
    throughput: float
    #: Average original library tasks per iteration (Figure 9 column 2).
    tasks_per_iteration: float
    #: Average launched index tasks per iteration (Figure 9 column 3).
    launched_tasks_per_iteration: float
    #: Average kernel time per launched task, in milliseconds (Figure 9).
    avg_task_length_ms: float
    #: Final task-window size chosen by the adaptive policy (Figure 9).
    window_size: int
    #: Simulated seconds of the warm-up iterations (Figure 13).
    warmup_seconds: float
    #: JIT compilation seconds charged during the run (Figure 13).
    compile_seconds: float
    #: Scalar application checksum, for cross-configuration validation.
    checksum: float
    #: Trace subsystem counters (zero when tracing is disabled).
    trace_hits: int = 0
    trace_misses: int = 0
    trace_replayed_tasks: int = 0
    trace_hit_rate: float = 0.0
    #: Plan-scheduler counters (zero when ``REPRO_WORKERS=1``).
    plan_replays: int = 0
    plan_width_max: int = 0
    plan_average_width: float = 0.0
    worker_utilization: float = 0.0
    #: Level-width histogram of every replayed schedule: step count of a
    #: dependence level -> number of levels replayed at that width.  The
    #: wide-dispatch machinery only engages on widths >= 2; a promoted
    #: wide app whose histogram holds only width 1 is silently
    #: unexercised, which the bench width gate rejects.
    plan_level_widths: Dict[int, int] = field(default_factory=dict)
    #: Intra-launch point-dispatch counters (zero when
    #: ``REPRO_POINT_WORKERS=1``).
    point_dispatch_width: int = 1
    point_launches: int = 0
    point_chunks: int = 0
    point_width_max: int = 0
    point_chunks_per_launch: float = 0.0
    point_utilization: float = 0.0
    #: Dispatch substrate (``REPRO_DISPATCH_BACKEND``) and the per-
    #: substrate split of the dispatched chunks.
    dispatch_backend: str = "thread"
    point_thread_chunks: int = 0
    point_process_chunks: int = 0
    #: Process-pool wire traffic (zero under the thread backend): bytes
    #: and request messages pickled onto worker pipes, and their
    #: per-replayed-epoch rates — the figure plan-resident replay
    #: (``REPRO_RESIDENT_PLANS``) exists to shrink.
    wire_bytes: int = 0
    wire_requests: int = 0
    wire_bytes_per_epoch: float = 0.0
    wire_requests_per_epoch: float = 0.0
    #: Steady-state wire rates: traffic of the *measured* iterations
    #: only, excluding warm-up — and with it the one-time kernel-spec,
    #: geometry and resident-plan ships, which the whole-run rates above
    #: amortise.  This is the figure the resident-replay wire gate
    #: compares: what one more epoch costs on the pipes.
    steady_wire_bytes_per_epoch: float = 0.0
    steady_wire_requests_per_epoch: float = 0.0
    #: Element-wise batching: launches executed as merged chunk calls.
    batched_launches: int = 0
    batched_calls: int = 0
    #: Opaque-operator call counters (``REPRO_OPAQUE_CHUNKS``):
    #: per-rank library calls, chunk-level library calls, the subset of
    #: chunk calls the worker-process pool ran, and the steady per-epoch
    #: rate of total opaque library calls over the measured iterations —
    #: the figure the opaque-chunking gate compares.
    opaque_rank_calls: int = 0
    opaque_chunk_calls: int = 0
    opaque_process_chunks: int = 0
    steady_opaque_calls_per_epoch: float = 0.0
    #: Trace re-records forced by a scalar-equality-pattern flip.
    scalar_pattern_flips: int = 0
    #: Epoch super-kernels (``REPRO_SUPERKERNEL``): fused units built at
    #: plan capture, constituent steps absorbed, fused closure calls and
    #: the per-replay-epoch compiled-closure call rate they reduce.
    superkernel_fusions: int = 0
    superkernel_fused_steps: int = 0
    superkernel_calls: int = 0
    replay_closure_calls: int = 0
    closure_calls_per_epoch: float = 0.0
    #: True when the run charged overlap-aware simulated time
    #: (``REPRO_OVERLAP_MODEL=1``); such throughputs are not comparable
    #: with serial-accounting runs.
    overlap_model: bool = False

    @property
    def throughput_per_gpu(self) -> float:
        """Throughput normalised per GPU (the paper's y-axis)."""
        return self.throughput


# ----------------------------------------------------------------------
# Application runner.
# ----------------------------------------------------------------------
def run_application_experiment(
    app_name: str,
    num_gpus: int = 1,
    fusion: bool = True,
    configuration: Optional[str] = None,
    iterations: Optional[int] = None,
    warmup_iterations: Optional[int] = None,
    scale: Optional[ExperimentScale] = None,
    fusion_config: Optional[FusionConfig] = None,
    app_kwargs: Optional[Dict] = None,
) -> RunResult:
    """Run one application and collect the paper's metrics."""
    scale = scale or default_scale_for(app_name)
    iterations = iterations if iterations is not None else scale.iterations
    warmup = warmup_iterations if warmup_iterations is not None else scale.warmup_iterations
    machine = scaled_machine(num_gpus, scale.bandwidth_scale)
    context = RuntimeContext(
        num_gpus=num_gpus,
        fusion=fusion,
        machine=machine,
        fusion_config=fusion_config,
    )
    set_context(context)
    try:
        kwargs = dict(scale.app_kwargs)
        if app_kwargs:
            kwargs.update(app_kwargs)
        application = build_application(app_name, context=context, **kwargs)
        # Warm-up iterations: includes all JIT compilation and analysis.
        application.run(warmup)
        # Charge any pending eager overlap group to the last warm-up
        # iteration before sampling its seconds (a no-op unless
        # REPRO_OVERLAP_MODEL=1 and the iteration ended mid-group).
        context.legion.flush_overlap_accounting()
        warmup_seconds = sum(context.profiler.iteration_seconds()[:warmup])
        # Snapshot wire counters so the steady rates cover the measured
        # iterations alone (warm-up absorbs the one-time spec/geometry/
        # plan ships of the process backend).
        warmup_wire_bytes = context.profiler.wire_bytes
        warmup_wire_requests = context.profiler.wire_requests
        warmup_trace_hits = context.profiler.trace_hits
        warmup_opaque_calls = (
            context.profiler.opaque_rank_calls
            + context.profiler.opaque_chunk_calls
        )
        # Measured iterations.
        application.run(iterations)
        checksum = application.checksum()
    finally:
        set_context(None)

    profiler = context.profiler
    steady_epochs = profiler.trace_hits - warmup_trace_hits
    steady_wire_bytes = profiler.wire_bytes - warmup_wire_bytes
    steady_wire_requests = profiler.wire_requests - warmup_wire_requests
    steady_opaque_calls = (
        profiler.opaque_rank_calls + profiler.opaque_chunk_calls
    ) - warmup_opaque_calls
    return RunResult(
        app=app_name,
        configuration=configuration or ("fused" if fusion else "unfused"),
        num_gpus=num_gpus,
        iterations=iterations,
        warmup_iterations=warmup,
        throughput=profiler.throughput(skip_warmup=warmup),
        tasks_per_iteration=profiler.tasks_per_iteration(skip_warmup=warmup, fused_view=False),
        launched_tasks_per_iteration=profiler.tasks_per_iteration(skip_warmup=warmup, fused_view=True),
        avg_task_length_ms=profiler.average_task_length_seconds(skip_warmup=warmup) * 1e3,
        window_size=context.diffuse.window.size,
        warmup_seconds=warmup_seconds,
        compile_seconds=profiler.compile_seconds,
        checksum=checksum,
        trace_hits=profiler.trace_hits,
        trace_misses=profiler.trace_misses,
        trace_replayed_tasks=profiler.trace_replayed_tasks,
        trace_hit_rate=profiler.trace_hit_rate,
        plan_replays=profiler.plan_replays,
        plan_width_max=profiler.plan_width_max,
        plan_average_width=profiler.plan_average_width,
        worker_utilization=profiler.worker_utilization,
        plan_level_widths=dict(profiler.plan_level_widths),
        point_dispatch_width=repro_config.point_worker_count(),
        point_launches=profiler.point_launches,
        point_chunks=profiler.point_chunks,
        point_width_max=profiler.point_width_max,
        point_chunks_per_launch=profiler.point_chunks_per_launch,
        point_utilization=profiler.point_utilization,
        dispatch_backend=repro_config.dispatch_backend(),
        point_thread_chunks=profiler.point_thread_chunks,
        point_process_chunks=profiler.point_process_chunks,
        wire_bytes=profiler.wire_bytes,
        wire_requests=profiler.wire_requests,
        wire_bytes_per_epoch=profiler.wire_bytes_per_epoch,
        wire_requests_per_epoch=profiler.wire_requests_per_epoch,
        steady_wire_bytes_per_epoch=(
            steady_wire_bytes / steady_epochs if steady_epochs else 0.0
        ),
        steady_wire_requests_per_epoch=(
            steady_wire_requests / steady_epochs if steady_epochs else 0.0
        ),
        batched_launches=profiler.batched_launches,
        batched_calls=profiler.batched_calls,
        opaque_rank_calls=profiler.opaque_rank_calls,
        opaque_chunk_calls=profiler.opaque_chunk_calls,
        opaque_process_chunks=profiler.opaque_process_chunks,
        steady_opaque_calls_per_epoch=(
            steady_opaque_calls / steady_epochs if steady_epochs else 0.0
        ),
        scalar_pattern_flips=profiler.scalar_pattern_flips,
        superkernel_fusions=profiler.superkernel_fusions,
        superkernel_fused_steps=profiler.superkernel_fused_steps,
        superkernel_calls=profiler.superkernel_calls,
        replay_closure_calls=profiler.replay_closure_calls,
        closure_calls_per_epoch=profiler.closure_calls_per_epoch,
        overlap_model=repro_config.overlap_model_enabled(),
    )


# ----------------------------------------------------------------------
# PETSc baseline runner (CG / BiCGSTAB only).
# ----------------------------------------------------------------------
def run_petsc_experiment(
    solver: str,
    num_gpus: int = 1,
    grid_points_per_gpu: int = 48,
    iterations: int = 4,
    bandwidth_scale: float = 1e-5,
) -> RunResult:
    """Run the PETSc-like baseline for the Krylov solver benchmarks."""
    import numpy as np

    machine = scaled_machine(num_gpus, bandwidth_scale)
    model = PetscMachineModel(machine=machine)
    grid = int(np.ceil(np.sqrt(float(grid_points_per_gpu) ** 2 * num_gpus)))
    matrix = poisson_2d_aij(grid, model)
    rows = matrix.shape[0]
    rhs = Vec.create(rows, model, 1.0)
    x0 = Vec.create(rows, model)
    ksp = KSP(matrix, model)
    if solver == "cg":
        result = ksp.cg(rhs, x0, iterations)
    elif solver == "bicgstab":
        result = ksp.bicgstab(rhs, x0, iterations)
    else:
        raise ValueError(f"unknown PETSc solver '{solver}'")
    performed = max(1, result.iterations)
    throughput = performed / result.seconds if result.seconds > 0 else 0.0
    return RunResult(
        app=solver,
        configuration="petsc",
        num_gpus=num_gpus,
        iterations=performed,
        warmup_iterations=0,
        throughput=throughput,
        tasks_per_iteration=0.0,
        launched_tasks_per_iteration=0.0,
        avg_task_length_ms=0.0,
        window_size=0,
        warmup_seconds=0.0,
        compile_seconds=0.0,
        checksum=float(result.solution.data.sum()),
    )
