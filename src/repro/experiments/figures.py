"""One driver per paper artifact (tables and figures of Section 7)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.harness import (
    default_scale_for,
    run_application_experiment,
)
from repro.experiments.weak_scaling import (
    DEFAULT_GPU_COUNTS,
    WeakScalingSeries,
    format_series_table,
    geo_mean,
    run_weak_scaling,
)

#: The applications of Figure 9, in the paper's row order.
FIGURE9_APPS = ("black-scholes", "jacobi", "cg", "bicgstab", "gmg", "cfd", "torchswe")


# ----------------------------------------------------------------------
# Figure 9: task counts, task granularity, window sizes.
# ----------------------------------------------------------------------
@dataclass
class TaskCountRow:
    """One row of the Figure 9 table."""

    benchmark: str
    tasks_per_iteration: float
    fused_tasks_per_iteration: float
    avg_task_length_ms: float
    window_size: int


def figure9_task_counts(
    num_gpus: int = 1,
    apps: Sequence[str] = FIGURE9_APPS,
    iterations: Optional[int] = None,
) -> List[TaskCountRow]:
    """Regenerate the Figure 9 table.

    Task counts come from a fused run (so launched tasks reflect fusion);
    the average task length is reported from an unfused single-GPU run as
    in the paper's caption.
    """
    rows = []
    for app in apps:
        fused = run_application_experiment(app, num_gpus=num_gpus, fusion=True, iterations=iterations)
        unfused = run_application_experiment(app, num_gpus=num_gpus, fusion=False, iterations=iterations)
        rows.append(
            TaskCountRow(
                benchmark=app,
                tasks_per_iteration=fused.tasks_per_iteration,
                fused_tasks_per_iteration=fused.launched_tasks_per_iteration,
                avg_task_length_ms=unfused.avg_task_length_ms,
                window_size=fused.window_size,
            )
        )
    return rows


def format_figure9(rows: Sequence[TaskCountRow]) -> str:
    """Render the Figure 9 table as text."""
    header = (
        f"{'Benchmark':>14} {'Tasks/Iter':>12} {'Tasks/Iter (Fused)':>20} "
        f"{'Avg Task (ms)':>14} {'Window':>8}"
    )
    lines = ["Figure 9: index tasks per iteration with and without fusion", header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.benchmark:>14} {row.tasks_per_iteration:>12.1f} "
            f"{row.fused_tasks_per_iteration:>20.1f} {row.avg_task_length_ms:>14.2f} "
            f"{row.window_size:>8}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Figures 10-12: weak-scaling studies.
# ----------------------------------------------------------------------
def figure10a_black_scholes(gpu_counts=DEFAULT_GPU_COUNTS) -> Dict[str, WeakScalingSeries]:
    """Black-Scholes weak scaling (Fused vs Unfused)."""
    return run_weak_scaling("black-scholes", gpu_counts=gpu_counts)


def figure10b_jacobi(gpu_counts=DEFAULT_GPU_COUNTS) -> Dict[str, WeakScalingSeries]:
    """Jacobi iteration weak scaling (Fused vs Unfused)."""
    return run_weak_scaling("jacobi", gpu_counts=gpu_counts)


def figure11a_cg(gpu_counts=DEFAULT_GPU_COUNTS) -> Dict[str, WeakScalingSeries]:
    """CG weak scaling: Fused, PETSc, Manually Fused, Unfused."""
    configurations = {
        "Fused": {"fusion": True},
        "PETSc": {"petsc": True, "solver": "cg"},
        "Manually Fused": {"app_name": "cg-manual", "fusion": False},
        "Unfused": {"fusion": False},
    }
    return run_weak_scaling("cg", configurations=configurations, gpu_counts=gpu_counts)


def figure11b_bicgstab(gpu_counts=DEFAULT_GPU_COUNTS) -> Dict[str, WeakScalingSeries]:
    """BiCGSTAB weak scaling: Fused, PETSc, Unfused."""
    configurations = {
        "Fused": {"fusion": True},
        "PETSc": {"petsc": True, "solver": "bicgstab"},
        "Unfused": {"fusion": False},
    }
    return run_weak_scaling("bicgstab", configurations=configurations, gpu_counts=gpu_counts)


def figure12a_gmg(gpu_counts=DEFAULT_GPU_COUNTS) -> Dict[str, WeakScalingSeries]:
    """Geometric multigrid weak scaling (Fused vs Unfused)."""
    return run_weak_scaling("gmg", gpu_counts=gpu_counts)


def figure12b_cfd(gpu_counts=DEFAULT_GPU_COUNTS) -> Dict[str, WeakScalingSeries]:
    """Navier-Stokes channel flow weak scaling (Fused vs Unfused)."""
    return run_weak_scaling("cfd", gpu_counts=gpu_counts)


def figure12c_torchswe(gpu_counts=DEFAULT_GPU_COUNTS) -> Dict[str, WeakScalingSeries]:
    """TorchSWE weak scaling: Fused, Manually Fused, Unfused."""
    configurations = {
        "Fused": {"fusion": True},
        "Manually Fused": {"app_name": "torchswe-manual", "fusion": False},
        "Unfused": {"fusion": False},
    }
    return run_weak_scaling("torchswe", configurations=configurations, gpu_counts=gpu_counts)


# ----------------------------------------------------------------------
# Figure 13: warm-up / compilation time and break-even iterations.
# ----------------------------------------------------------------------
@dataclass
class CompileTimeRow:
    """One row of the Figure 13 table."""

    benchmark: str
    standard_seconds: float
    compiled_seconds: float
    breakeven_iterations: Optional[float]


def figure13_compile_time(
    num_gpus: int = 8,
    apps: Sequence[str] = FIGURE9_APPS,
) -> List[CompileTimeRow]:
    """Regenerate the Figure 13 warm-up time table.

    "Standard" is the warm-up time of the unfused execution; "Compiled"
    includes Diffuse's analysis and JIT compilation.  The break-even count
    is the number of steady-state iterations needed before the fused
    version (including its warm-up overhead) is faster overall.
    """
    rows = []
    for app in apps:
        fused = run_application_experiment(app, num_gpus=num_gpus, fusion=True)
        unfused = run_application_experiment(app, num_gpus=num_gpus, fusion=False)
        fused_iteration = 1.0 / fused.throughput if fused.throughput > 0 else float("inf")
        unfused_iteration = 1.0 / unfused.throughput if unfused.throughput > 0 else float("inf")
        savings = unfused_iteration - fused_iteration
        overhead = fused.warmup_seconds - unfused.warmup_seconds
        if savings > 0 and overhead > 0:
            breakeven = overhead / savings
        else:
            breakeven = None
        rows.append(
            CompileTimeRow(
                benchmark=app,
                standard_seconds=unfused.warmup_seconds,
                compiled_seconds=fused.warmup_seconds,
                breakeven_iterations=breakeven,
            )
        )
    return rows


def format_figure13(rows: Sequence[CompileTimeRow]) -> str:
    """Render the Figure 13 table as text."""
    header = f"{'Benchmark':>14} {'Standard (s)':>14} {'Compiled (s)':>14} {'Breakeven Iters':>16}"
    lines = ["Figure 13: warm-up times and break-even iteration counts", header, "-" * len(header)]
    for row in rows:
        breakeven = "N/A" if row.breakeven_iterations is None else f"{row.breakeven_iterations:.1f}"
        lines.append(
            f"{row.benchmark:>14} {row.standard_seconds:>14.4f} "
            f"{row.compiled_seconds:>14.4f} {breakeven:>16}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Headline claims: geo-mean speedups (abstract / Section 7 overview).
# ----------------------------------------------------------------------
@dataclass
class HeadlineSummary:
    """The paper's three headline geo-mean speedups."""

    speedup_vs_unfused: float
    speedup_vs_petsc: float
    speedup_vs_manual: float
    per_app_speedups: Dict[str, float]


def headline_summary(
    num_gpus: int = 4,
    apps: Sequence[str] = FIGURE9_APPS,
) -> HeadlineSummary:
    """Compute the geo-mean speedups the paper's abstract reports."""
    from repro.experiments.harness import run_petsc_experiment

    per_app = {}
    for app in apps:
        fused = run_application_experiment(app, num_gpus=num_gpus, fusion=True)
        unfused = run_application_experiment(app, num_gpus=num_gpus, fusion=False)
        if unfused.throughput > 0:
            per_app[app] = fused.throughput / unfused.throughput

    petsc_speedups = []
    for solver in ("cg", "bicgstab"):
        fused = run_application_experiment(solver, num_gpus=num_gpus, fusion=True)
        scale = default_scale_for(solver)
        petsc = run_petsc_experiment(
            solver,
            num_gpus=num_gpus,
            grid_points_per_gpu=int(scale.app_kwargs["grid_points_per_gpu"]),
            iterations=scale.iterations,
            bandwidth_scale=scale.bandwidth_scale,
        )
        if petsc.throughput > 0:
            petsc_speedups.append(fused.throughput / petsc.throughput)

    manual_speedups = []
    for natural, manual in (("cg", "cg-manual"), ("torchswe", "torchswe-manual")):
        fused = run_application_experiment(natural, num_gpus=num_gpus, fusion=True)
        hand = run_application_experiment(manual, num_gpus=num_gpus, fusion=False)
        if hand.throughput > 0:
            manual_speedups.append(fused.throughput / hand.throughput)

    return HeadlineSummary(
        speedup_vs_unfused=geo_mean(list(per_app.values())),
        speedup_vs_petsc=geo_mean(petsc_speedups),
        speedup_vs_manual=geo_mean(manual_speedups),
        per_app_speedups=per_app,
    )
