"""Weak-scaling sweeps over GPU counts (Figures 10, 11 and 12)."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro import config as repro_config
from repro.experiments.harness import (
    ExperimentScale,
    RunResult,
    default_scale_for,
    run_application_experiment,
    run_petsc_experiment,
)
from repro.fusion.engine import FusionConfig

#: GPU counts used by every weak-scaling figure in the paper.
PAPER_GPU_COUNTS: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128)

#: Smaller sweep used by the default benchmark configuration so the full
#: functional simulation stays fast; pass ``gpu_counts=PAPER_GPU_COUNTS``
#: to reproduce the full x-axis.
DEFAULT_GPU_COUNTS: Sequence[int] = (1, 2, 4, 8)


@dataclass
class WeakScalingSeries:
    """One line of a weak-scaling figure."""

    label: str
    gpu_counts: List[int] = field(default_factory=list)
    throughputs: List[float] = field(default_factory=list)
    results: List[RunResult] = field(default_factory=list)

    def add(self, result: RunResult) -> None:
        """Append one GPU-count data point."""
        self.gpu_counts.append(result.num_gpus)
        self.throughputs.append(result.throughput)
        self.results.append(result)

    def throughput_at(self, num_gpus: int) -> float:
        """Throughput at a specific GPU count."""
        return self.throughputs[self.gpu_counts.index(num_gpus)]

    def speedup_over(self, other: "WeakScalingSeries") -> List[float]:
        """Per-GPU-count speedup of this series over another."""
        return [
            mine / theirs if theirs > 0 else float("inf")
            for mine, theirs in zip(self.throughputs, other.throughputs)
        ]


def run_weak_scaling(
    app_name: str,
    configurations: Optional[Dict[str, Dict]] = None,
    gpu_counts: Sequence[int] = DEFAULT_GPU_COUNTS,
    scale: Optional[ExperimentScale] = None,
    iterations: Optional[int] = None,
) -> Dict[str, WeakScalingSeries]:
    """Run an application's weak-scaling study.

    ``configurations`` maps series labels to keyword overrides for
    :func:`run_application_experiment` (or ``{"petsc": ...}`` entries
    handled by the PETSc runner).  The default is the paper's
    Fused-vs-Unfused comparison.
    """
    if configurations is None:
        configurations = {
            "Fused": {"fusion": True},
            "Unfused": {"fusion": False},
        }
    scale = scale or default_scale_for(app_name)
    series: Dict[str, WeakScalingSeries] = {
        label: WeakScalingSeries(label=label) for label in configurations
    }
    for num_gpus in gpu_counts:
        for label, overrides in configurations.items():
            overrides = dict(overrides)
            if overrides.pop("petsc", False):
                result = run_petsc_experiment(
                    solver=overrides.pop("solver", app_name),
                    num_gpus=num_gpus,
                    grid_points_per_gpu=int(
                        scale.app_kwargs.get("grid_points_per_gpu", 48)
                    ),
                    iterations=iterations or scale.iterations,
                    bandwidth_scale=scale.bandwidth_scale,
                )
            else:
                run_app = overrides.pop("app_name", app_name)
                result = run_application_experiment(
                    run_app,
                    num_gpus=num_gpus,
                    configuration=label,
                    scale=scale,
                    iterations=iterations,
                    **overrides,
                )
            series[label].add(result)
    return series


def run_overlap_study(
    app_name: str,
    gpu_counts: Sequence[int] = DEFAULT_GPU_COUNTS,
    scale: Optional[ExperimentScale] = None,
    iterations: Optional[int] = None,
) -> Dict[str, WeakScalingSeries]:
    """Weak-scale an application under serial vs overlap-aware accounting.

    Quantifies the paper's launch-overlap claim outside replay: the same
    fused executions are charged once with ``REPRO_OVERLAP_MODEL=0``
    (every launch's modelled time accumulates serially) and once with
    ``=1`` (each greedy group of independent launches — and each
    dependence level of a replayed plan — costs the max of its members).
    Buffers and checksums are bit-identical between the two series; only
    simulated time, and therefore throughput, differs.  The flag is
    restored to its ambient value afterwards.
    """
    scale = scale or default_scale_for(app_name)
    series: Dict[str, WeakScalingSeries] = {}
    previous = os.environ.get(repro_config.OVERLAP_MODEL_ENV_VAR)
    try:
        for label, value in (("Serial accounting", "0"), ("Overlap-aware", "1")):
            os.environ[repro_config.OVERLAP_MODEL_ENV_VAR] = value
            repro_config.reload_flags()
            line = WeakScalingSeries(label=label)
            for num_gpus in gpu_counts:
                line.add(
                    run_application_experiment(
                        app_name,
                        num_gpus=num_gpus,
                        configuration=label,
                        scale=scale,
                        iterations=iterations,
                    )
                )
            series[label] = line
    finally:
        if previous is None:
            os.environ.pop(repro_config.OVERLAP_MODEL_ENV_VAR, None)
        else:
            os.environ[repro_config.OVERLAP_MODEL_ENV_VAR] = previous
        repro_config.reload_flags()
    return series


def format_series_table(series: Dict[str, WeakScalingSeries], title: str) -> str:
    """Render a weak-scaling study as an aligned text table."""
    labels = list(series)
    gpu_counts = series[labels[0]].gpu_counts
    header = f"{'GPUs':>6} " + " ".join(f"{label:>16}" for label in labels)
    lines = [title, header, "-" * len(header)]
    for index, gpus in enumerate(gpu_counts):
        row = f"{gpus:>6} " + " ".join(
            f"{series[label].throughputs[index]:>16.3f}" for label in labels
        )
        lines.append(row)
    return "\n".join(lines)


def geo_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values."""
    filtered = [v for v in values if v > 0]
    if not filtered:
        return 0.0
    product = 1.0
    for value in filtered:
        product *= value
    return product ** (1.0 / len(filtered))
