"""Developer tools: trace export and other observability CLIs."""
