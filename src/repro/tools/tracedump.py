"""Export a Perfetto-loadable Chrome trace of one application run.

Runs one application end to end with the telemetry flight recorder
forced on (``REPRO_TELEMETRY=1``) and writes the merged span timeline —
parent scheduling threads and worker processes side by side — as Chrome
trace-event JSON, loadable at https://ui.perfetto.dev or
``chrome://tracing``.  The profiler's structured metrics snapshot
(:meth:`repro.runtime.profiler.Profiler.snapshot`) rides along in the
trace's ``otherData`` block, and can additionally be written to its own
JSON file with ``--metrics-output``.

Usage::

    PYTHONPATH=src python -m repro.tools.tracedump --app cg --smoke \
        --output TRACE_cg.json

By default the run uses the full replay stack on the worker-process
substrate (trace capture, plan scheduler, point dispatch,
``REPRO_DISPATCH_BACKEND=process``), so the exported timeline shows the
epoch replay spans of the parent next to the chunk-execution spans of
every pool worker.  ``--backend thread`` confines the run to one
process.
"""

from __future__ import annotations

import argparse
import json
import os
from typing import Dict, Optional

from repro import config
from repro.apps.base import build_application
from repro.experiments.harness import (
    default_scale_for,
    scaled_machine,
)
from repro.frontend.legate.context import RuntimeContext, set_context
from repro.runtime import telemetry

#: Per-app problem-size overrides at trace scale: big enough that every
#: subsystem (capture, replay, point dispatch, wire protocol) appears in
#: the timeline, small enough that the export stays a quick local run.
_TRACE_KWARGS: Dict[str, Dict[str, int]] = {
    "cg": {"grid_points_per_gpu": 24},
    "jacobi": {"rows_per_gpu": 96},
    "black-scholes": {"elements_per_gpu": 2048},
    "two-matvec": {"rows_per_gpu": 48},
    "bicgstab": {"grid_points_per_gpu": 24},
}

_SMOKE_KWARGS: Dict[str, Dict[str, int]] = {
    "cg": {"grid_points_per_gpu": 16},
    "jacobi": {"rows_per_gpu": 48},
    "black-scholes": {"elements_per_gpu": 512},
    "two-matvec": {"rows_per_gpu": 32},
    "bicgstab": {"grid_points_per_gpu": 16},
}

#: Environment the traced run executes under (beyond the CLI-controlled
#: workers/backend): the full codegen + trace-replay stack, with the
#: flight recorder armed.
_TRACE_ENV = {
    "REPRO_TELEMETRY": "1",
    "REPRO_KERNEL_BACKEND": "codegen",
    "REPRO_HOTPATH_CACHE": "1",
    "REPRO_TRACE": "1",
    "REPRO_NORMALIZE": "1",
}


def run_traced_experiment(
    app: str,
    num_gpus: int,
    iterations: int,
    warmup: int,
    app_kwargs: Optional[Dict] = None,
) -> Dict[str, object]:
    """Run ``app`` with telemetry armed; return the profiler snapshot.

    The caller is responsible for having set the environment flags and
    called :func:`repro.config.reload_flags` first; the telemetry ring
    (parent and, via pool retirement, workers) is reset before the run so
    the exported timeline covers exactly this experiment.
    """
    telemetry.reset()
    scale = default_scale_for(app)
    kwargs = dict(scale.app_kwargs)
    if app_kwargs:
        kwargs.update(app_kwargs)
    machine = scaled_machine(num_gpus, scale.bandwidth_scale)
    context = RuntimeContext(num_gpus=num_gpus, fusion=True, machine=machine)
    set_context(context)
    try:
        application = build_application(app, context=context, **kwargs)
        application.run(warmup)
        application.run(iterations)
        checksum = application.checksum()
        snapshot = context.profiler.snapshot()
    finally:
        set_context(None)
    snapshot["checksum"] = checksum
    snapshot["app"] = app
    snapshot["num_gpus"] = num_gpus
    return snapshot


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--app",
        default="cg",
        choices=sorted(_TRACE_KWARGS),
        help="application to trace (default: cg)",
    )
    parser.add_argument("--num-gpus", type=int, default=8)
    parser.add_argument("--iterations", type=int, default=12)
    parser.add_argument("--warmup", type=int, default=2)
    parser.add_argument(
        "--backend",
        default="process",
        choices=("thread", "process"),
        help="dispatch substrate for the traced run (default: process)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        help="plan-scheduler worker count (REPRO_WORKERS)",
    )
    parser.add_argument(
        "--point-workers",
        type=int,
        default=4,
        help="intra-launch point-dispatch width (REPRO_POINT_WORKERS)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="shrink the run for CI (fewer iterations, smaller problem)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="trace JSON path (default: TRACE_<app>.json in the cwd)",
    )
    parser.add_argument(
        "--metrics-output",
        default=None,
        help="optionally also write the profiler snapshot to this path",
    )
    args = parser.parse_args()

    if args.smoke:
        args.num_gpus = min(args.num_gpus, 4)
        args.iterations = min(args.iterations, 6)
        app_kwargs = _SMOKE_KWARGS[args.app]
    else:
        app_kwargs = _TRACE_KWARGS[args.app]
    output = args.output or f"TRACE_{args.app}.json"

    os.environ.update(_TRACE_ENV)
    os.environ["REPRO_DISPATCH_BACKEND"] = args.backend
    os.environ["REPRO_WORKERS"] = str(args.workers)
    os.environ["REPRO_POINT_WORKERS"] = str(args.point_workers)
    config.reload_flags()

    snapshot = run_traced_experiment(
        args.app,
        num_gpus=args.num_gpus,
        iterations=args.iterations,
        warmup=args.warmup,
        app_kwargs=app_kwargs,
    )

    trace = telemetry.export_chrome_trace()
    trace["otherData"]["profiler"] = snapshot
    with open(output, "w") as handle:
        json.dump(trace, handle)
        handle.write("\n")
    if args.metrics_output:
        with open(args.metrics_output, "w") as handle:
            json.dump(snapshot, handle, indent=2)
            handle.write("\n")

    events = trace["traceEvents"]
    pids = {event["pid"] for event in events if event.get("ph") != "M"}
    print(
        f"wrote {output}: {len(events)} trace events from "
        f"{len(pids)} process(es), dropped {trace['otherData']['dropped_events']}"
    )
    if args.metrics_output:
        print(f"wrote {args.metrics_output}")

    # Deterministic teardown (the atexit hooks would cover it anyway).
    from repro.runtime.pool import shutdown_shared_pool
    from repro.runtime.procpool import shutdown_process_pool

    shutdown_process_pool()
    shutdown_shared_pool()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
