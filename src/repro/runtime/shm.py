"""Shared-memory arena for region-field backing storage.

With ``REPRO_DISPATCH_BACKEND=process`` the region manager allocates the
backing NumPy array of every store inside ``multiprocessing.shared_memory``
segments instead of private heap pages.  The parent keeps the exact same
mutable ``ndarray`` semantics it always had (the array is a view of the
segment), while worker processes attach the segment *by name* and map the
same physical pages — point-task chunks executed in another process read
their inputs and write their output tiles with **zero copies** in either
direction.

Layout
------
The arena is a slab allocator: it creates segments of
``REPRO_SHM_SEGMENT_BYTES`` (allocations larger than a segment get a
dedicated segment) and carves 64-byte-aligned blocks out of them with a
first-fit free list (freed blocks coalesce with their neighbours, so
region churn — e.g. eliminated temporaries — does not leak segment
space).  Every block is described by a :class:`BlockDescriptor` — the
picklable ``(segment name, offset, shape, dtype)`` tuple the process
pool ships to workers.

Lifetime
--------
Each :class:`SharedArena` owns its segments and unlinks them when it is
closed.  The region manager closes its arena through a
``weakref.finalize`` hook, which Python runs when the manager is
garbage collected *or at interpreter exit* — so test runs do not leak
``/dev/shm`` segments or trip ``resource_tracker`` warnings: pool
workers are children of this process and share its resource tracker, so
a worker-side attach re-registers the same name into the same cache (a
no-op) and the parent's unlink retires the single entry.  Workers must
therefore *not* unregister their attachments — doing so would strip the
parent's entry and make the later unlink warn about an unknown name.
"""

from __future__ import annotations

import threading
import uuid
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import config
from repro.runtime import telemetry

#: Block alignment inside a segment (one cache line, and a multiple of
#: every NumPy itemsize in use).
_ALIGN = 64


def _align(value: int) -> int:
    return (value + _ALIGN - 1) & ~(_ALIGN - 1)


@dataclass(frozen=True)
class BlockDescriptor:
    """Picklable address of one arena block (shipped to worker processes)."""

    segment: str
    offset: int
    shape: Tuple[int, ...]
    dtype: str


class SharedArena:
    """Slab allocator over named shared-memory segments."""

    def __init__(self, segment_bytes: Optional[int] = None) -> None:
        self.segment_bytes = segment_bytes or config.shm_segment_bytes()
        #: Unique prefix so two arenas (or two processes) never collide.
        self._prefix = f"repro-{uuid.uuid4().hex[:12]}"
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        #: Segment name -> sorted list of free ``(offset, size)`` holes.
        self._free: Dict[str, List[Tuple[int, int]]] = {}
        self._counter = 0
        self._lock = threading.Lock()
        self.closed = False

    # ------------------------------------------------------------------
    # Allocation.
    # ------------------------------------------------------------------
    def allocate(
        self, shape: Tuple[int, ...], dtype
    ) -> Tuple[np.ndarray, BlockDescriptor]:
        """A zero-filled shared array plus its shippable descriptor."""
        dtype = np.dtype(dtype)
        nbytes = max(1, int(np.prod(shape, dtype=np.int64))) * dtype.itemsize
        size = _align(nbytes)
        with self._lock:
            if self.closed:
                raise RuntimeError("shared arena is closed")
            placement = self._find_hole(size)
            if placement is None:
                placement = self._new_segment(size)
            name, offset = placement
            segment = self._segments[name]
        descriptor = BlockDescriptor(
            segment=name, offset=offset, shape=tuple(shape), dtype=dtype.str
        )
        if telemetry.enabled():
            telemetry.instant(
                "shm.alloc", f"segment={name} offset={offset} bytes={size}"
            )
        array = np.ndarray(shape, dtype=dtype, buffer=segment.buf, offset=offset)
        # Segments are recycled: a reused hole still holds the previous
        # block's bytes, and region fields are defined to start zeroed.
        array.fill(0)
        return array, descriptor

    def _find_hole(self, size: int) -> Optional[Tuple[str, int]]:
        for name, holes in self._free.items():
            for index, (offset, hole_size) in enumerate(holes):
                if hole_size >= size:
                    if hole_size == size:
                        holes.pop(index)
                    else:
                        holes[index] = (offset + size, hole_size - size)
                    return name, offset
        return None

    def _new_segment(self, size: int) -> Tuple[str, int]:
        name = f"{self._prefix}-{self._counter}"
        self._counter += 1
        segment_size = max(size, self.segment_bytes)
        segment = shared_memory.SharedMemory(
            name=name, create=True, size=segment_size
        )
        self._segments[name] = segment
        if segment_size > size:
            self._free[name] = [(size, segment_size - size)]
        else:
            self._free[name] = []
        return name, 0

    def release(self, descriptor: BlockDescriptor) -> None:
        """Return a block to its segment's free list (coalescing)."""
        dtype = np.dtype(descriptor.dtype)
        nbytes = max(1, int(np.prod(descriptor.shape, dtype=np.int64))) * dtype.itemsize
        size = _align(nbytes)
        if telemetry.enabled():
            telemetry.instant(
                "shm.reclaim",
                f"segment={descriptor.segment} offset={descriptor.offset} "
                f"bytes={size}",
            )
        with self._lock:
            holes = self._free.get(descriptor.segment)
            if holes is None or self.closed:
                return
            holes.append((descriptor.offset, size))
            holes.sort()
            merged: List[Tuple[int, int]] = []
            for offset, hole_size in holes:
                if merged and merged[-1][0] + merged[-1][1] == offset:
                    merged[-1] = (merged[-1][0], merged[-1][1] + hole_size)
                else:
                    merged.append((offset, hole_size))
            self._free[descriptor.segment] = merged

    # ------------------------------------------------------------------
    # Introspection / teardown.
    # ------------------------------------------------------------------
    @property
    def segment_count(self) -> int:
        with self._lock:
            return len(self._segments)

    @property
    def segment_names(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(self._segments)

    def close(self) -> None:
        """Unlink every segment.  Runs at manager GC / interpreter exit.

        Safe to call more than once.  Live NumPy views of a segment keep
        the *mapping* valid in this process until they are dropped (the
        ``ndarray`` holds the buffer), but the name disappears from
        ``/dev/shm`` immediately.
        """
        with self._lock:
            if self.closed:
                return
            self.closed = True
            segments = list(self._segments.values())
            self._segments.clear()
            self._free.clear()
        for segment in segments:
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            try:
                segment.close()
            except BufferError:
                # NumPy views of the segment are still alive (e.g. a
                # region field of a context that outlives its arena's
                # explicit close); the mapping is reclaimed when they go.
                pass


# ----------------------------------------------------------------------
# Worker-side attachment.
# ----------------------------------------------------------------------
#: Segment name -> attached SharedMemory, cached per process.
_ATTACHMENTS: Dict[str, shared_memory.SharedMemory] = {}
#: Bound on the attachment cache: segments of dead arenas linger only
#: until enough newer segments displace them (LRU eviction — a resident
#: worker re-touches the same few segments every replay, so the hot set
#: must never be displaced by one-shot segments of retired arenas).
_MAX_ATTACHMENTS = 64


def attach_view(descriptor: BlockDescriptor) -> np.ndarray:
    """Map a block descriptor to a NumPy view of the shared pages.

    Used by process-pool workers: the first touch of a segment attaches
    it by name; later blocks of the same segment reuse the cached
    attachment (refreshed to most-recently-used, so steady resident
    replay keeps its segments pinned).  The attach's resource-tracker
    registration is a no-op re-add into the parent's shared cache (see
    the module docstring).
    """
    segment = _ATTACHMENTS.pop(descriptor.segment, None)
    if segment is None:
        segment = shared_memory.SharedMemory(name=descriptor.segment)
        while len(_ATTACHMENTS) >= _MAX_ATTACHMENTS:
            oldest = next(iter(_ATTACHMENTS))
            stale = _ATTACHMENTS.pop(oldest)
            try:
                stale.close()
            except BufferError:  # pragma: no cover - view still alive
                pass
    _ATTACHMENTS[descriptor.segment] = segment
    return np.ndarray(
        descriptor.shape,
        dtype=np.dtype(descriptor.dtype),
        buffer=segment.buf,
        offset=descriptor.offset,
    )


def close_attachments() -> None:
    """Drop every cached attachment (worker shutdown path)."""
    while _ATTACHMENTS:
        _, segment = _ATTACHMENTS.popitem()
        try:
            segment.close()
        except BufferError:  # pragma: no cover - view still alive
            pass
