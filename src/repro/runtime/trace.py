"""Deferred task stream with iteration-trace capture and replay.

Iterative applications issue an isomorphic stream of tasks every
iteration, delimited by the synchronisation points they already contain
(scalar reads of dot products and convergence checks, explicit flushes
at iteration boundaries).  The eager pipeline pays the full
submit→buffer→canonicalize→coherence→profile cost for every task of
every iteration even though the fusion *decisions* are memoized.  This
module removes that overhead wholesale, in the spirit of Legion's
dynamic tracing and Bohrium's runtime fusion of array operations:

1. The Diffuse layer defers submitted tasks into an *epoch* buffer
   instead of eagerly feeding its fusion window (the deferred task
   stream).  An epoch ends at the next synchronisation point.
2. At the boundary the epoch's task stream is canonicalized (store uids
   and partitions replaced by De-Bruijn-style indices, exactly like the
   memoization of paper Section 5.2) and hashed together with the
   entry-coherence state of every store it touches.
3. On the first *steady* occurrence of a key — an occurrence whose
   window rounds were all memoization hits and charged no compile time —
   a :class:`TraceRecorder` captures the fully-resolved sequence of
   launches the pipeline produced (compiled kernels, per-rank rect
   tables, coherence charges, analysis-time charges) as an immutable
   :class:`ExecutionPlan`.
4. Every later occurrence of the key bypasses window buffering,
   dependence analysis, memoization lookups and per-task coherence
   recomputation entirely: the plan is replayed straight through
   :class:`~repro.runtime.executor.TaskExecutor`, binding the current
   epoch's stores into the captured slots.

Correctness notes:

* Scalar task arguments (``alpha``/``beta`` of CG, fill constants) are
  *not* baked into plans or keys — replay rebinds them from the current
  epoch's tasks, so value-changing iterations replay the same plan.
* Captured kernel times depend only on launch geometry, which is fully
  covered by the key (shapes, partitions, launch domains).  Opaque
  tasks (SpMV, GEMV) are re-executed through their cost model because
  their time may depend on data (e.g. the sparsity pattern), which the
  alpha-equivalent key deliberately does not capture.
* Stores referenced by still-buffered tasks hold *pending stream
  references* so temporary-store elimination sees the same liveness the
  eager pipeline would have seen (see ``Store.add_pending_stream_reference``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.ir.domain import Domain
from repro.ir.partition import Partition
from repro.ir.privilege import Privilege, ReductionOp
from repro.ir.store import Store
from repro.ir.task import FusedTask, IndexTask, stream_scalar_pattern
from repro.runtime import telemetry

#: Upper bound on the deferred epoch buffer.  An application that never
#: synchronises still gets deterministic segmentation: the buffer is
#: processed as a (partial) epoch whenever it reaches this many tasks.
EPOCH_TASK_LIMIT = 2048


# ----------------------------------------------------------------------
# Canonical epoch streams.
# ----------------------------------------------------------------------
@dataclass
class CanonicalStream:
    """The canonical form of one epoch's task stream."""

    #: Hashable trace key (stream structure + liveness + concrete
    #: partitions + entry coherence are combined by the controller).
    stream_key: Hashable
    #: Canonical slot -> the store bound to it in this epoch.
    slot_stores: List[Store]
    #: Store uid -> canonical slot.
    slot_of_uid: Dict[int, int]
    #: Task uid -> position in the epoch stream.
    position_of_uid: Dict[int, int]
    #: Distinct partitions in first-appearance order (part of the key:
    #: captured rect tables and communication are only valid for the
    #: concrete partitions, not just their canonical indices).
    partition_table: Tuple[Partition, ...]


def canonicalize_stream(tasks: Sequence[IndexTask]) -> CanonicalStream:
    """Canonicalize a whole epoch (cf. ``fusion.memoization``).

    Liveness is sampled from *application* references only: pending
    stream references held by the epoch buffer itself are excluded,
    because they exist for every store of the stream by construction.
    Together with the stream structure they fully determine the liveness
    each window round will observe while the epoch is fed through the
    pipeline (the application is blocked during the flush, so its
    reference counts cannot change mid-feed).
    """
    from repro.fusion.memoization import task_signature

    slot_of_uid: Dict[int, int] = {}
    slot_stores: List[Store] = []
    partition_indices: Dict[Partition, int] = {}
    partition_table: List[Partition] = []
    liveness: List[bool] = []
    position_of_uid: Dict[int, int] = {}

    canonical_tasks = []
    for position, task in enumerate(tasks):
        position_of_uid[task.uid] = position
        name, domain_shape, args, scalar_count = task_signature(task)
        canonical_args = []
        for store, shape, partition, privilege, redop in args:
            slot = slot_of_uid.get(store.uid)
            if slot is None:
                slot = len(slot_stores)
                slot_of_uid[store.uid] = slot
                slot_stores.append(store)
                liveness.append(store.application_references > 0)
            partition_index = partition_indices.get(partition)
            if partition_index is None:
                partition_index = len(partition_table)
                partition_indices[partition] = partition_index
                partition_table.append(partition)
            canonical_args.append((slot, shape, partition_index, privilege, redop))
        canonical_tasks.append((name, domain_shape, tuple(canonical_args), scalar_count))

    # The scalar *equality pattern* is part of the key (the same helper
    # the memoization window key uses): captured kernels may deduplicate
    # scalar parameters with bit-identical values, so a plan is only
    # valid for epochs with the same pattern.
    stream_key = (
        tuple(canonical_tasks),
        tuple(liveness),
        stream_scalar_pattern(tasks),
    )
    return CanonicalStream(
        stream_key=stream_key,
        slot_stores=slot_stores,
        slot_of_uid=slot_of_uid,
        position_of_uid=position_of_uid,
        partition_table=tuple(partition_table),
    )


# ----------------------------------------------------------------------
# Plan steps.
# ----------------------------------------------------------------------
#: Per-slot access summary of one captured step: ``(canonical slot,
#: reads, writes, reduces)`` with the privileges of all arguments touching
#: the slot merged.  The plan scheduler derives the step-level dependence
#: DAG of a plan from these footprints alone.
StepFootprint = Tuple[Tuple[int, bool, bool, bool], ...]


@dataclass
class CompiledStep:
    """One captured launch executed through a compiled kernel."""

    kernel: object  # CompiledKernel (kept untyped to avoid an import cycle)
    task_name: str
    fused: bool
    constituents: int
    launches: int
    num_points: int
    #: (buffer name, canonical slot, is_reduction, per-rank rect table).
    buffer_bindings: Tuple[Tuple[str, int, bool, list], ...]
    #: (scalar name, index into the concatenated scalar tuple).
    scalar_order: Tuple[Tuple[str, int], ...]
    #: Epoch positions of the constituent tasks whose ``scalar_args``
    #: concatenate (in order) into the kernel's scalar tuple.
    scalar_positions: Tuple[int, ...]
    #: Buffer name -> (canonical slot, reduction operator).
    reductions: Dict[str, Tuple[int, ReductionOp]]
    #: Read/write/reduce store footprint (from the launch's privileges).
    footprint: StepFootprint
    kernel_seconds: float
    communication_seconds: float
    overhead_seconds: float
    #: True when every buffer's rect table tiles its (1-D) store
    #: contiguously in rank order and the kernel performs no reductions:
    #: replay then executes one merged closure call per rank *chunk*
    #: (one per epoch at dispatch width 1) instead of one call per rank,
    #: which both batches the launch and still lets point dispatch split
    #: it — the composition the PR-4 whole-domain batching precluded.
    elementwise: bool = False


@dataclass
class OpaqueStep:
    """One captured launch executed through an opaque implementation."""

    impl: object  # OpaqueTaskImpl
    task_name: str
    launch_domain: Domain
    #: (canonical slot, partition, privilege, redop) per argument.
    arg_specs: Tuple[Tuple[int, Partition, Privilege, Optional[ReductionOp]], ...]
    #: Launch ranks (point tasks) of the step, recorded at capture time
    #: so the plan scheduler can decide point chunking without touching
    #: the launch domain.
    num_points: int
    #: Epoch position of the task (its scalar args are rebound at replay).
    position: int
    #: Read/write/reduce store footprint (from the launch's privileges).
    footprint: StepFootprint
    communication_seconds: float
    overhead_seconds: float


@dataclass
class AnalysisCharge:
    """An analysis-time charge, captured in stream order.

    Replaying charges at their recorded positions (not as one lump sum)
    reproduces the eager pipeline's exact floating-point accumulation
    order, so per-iteration simulated seconds are bit-identical between
    traced and untraced execution.
    """

    seconds: float


@dataclass
class ExecutionPlan:
    """The immutable resolved execution of one canonical epoch."""

    #: Launches and analysis charges in recorded (program) order.
    steps: Tuple[object, ...]
    #: Per-slot coherence snapshots at epoch exit, applied wholesale on
    #: replay instead of re-deriving coherence transitions per task.
    exit_states: Tuple[Tuple[int, Optional[Tuple]], ...]
    #: Data movement charged during the recorded epoch.
    bytes_moved: float
    #: Total analysis-time charge of the recorded epoch (observability;
    #: the per-step :class:`AnalysisCharge` entries carry the values).
    analysis_seconds: float
    #: FusionStatistics deltas of the recorded epoch.
    forwarded_tasks: int
    fused_tasks: int
    fused_constituents: int
    temporaries_eliminated: int
    #: Number of library tasks the plan stands for.
    task_count: int
    #: Lazily-computed dependence schedule (``runtime.scheduler``), cached
    #: on the plan so the DAG is built once per captured plan, not once
    #: per replay.
    schedule: Optional[object] = None
    #: Per-slot application liveness sampled at canonicalization (part of
    #: the trace key, re-exposed here so the super-kernel lowering can
    #: fold dead intermediate slots without re-deriving liveness).
    liveness: Tuple[bool, ...] = ()
    #: Cached super-kernel lowering (``runtime.superkernel``): the
    #: lowered plan, or a module-private sentinel when nothing fused.
    #: Retired on ``config.reload_flags()`` so flag flips cannot replay
    #: stale fused closures.
    superkernel: Optional[object] = None
    #: Cached resident-process registration (``runtime.procpool``): the
    #: :class:`ResidentPlan` whose parent-assigned id names this plan's
    #: worker-resident templates, tagged with the resident generation it
    #: was built under.  Descriptor swaps (``RegionManager.attach``),
    #: store releases and ``config.reload_flags()`` bump the generation,
    #: which retires the registration on its next replay; plan ids are
    #: never reused, so stale worker-side templates can never be served.
    resident: Optional[object] = None


# ----------------------------------------------------------------------
# Recording.
# ----------------------------------------------------------------------
class TraceRecorder:
    """Captures the resolved launches of one epoch into a plan.

    Installed as ``LegionRuntime.trace_recorder`` while the epoch's
    tasks are fed through the eager pipeline; the runtime reports every
    executed launch.  The recorder also observes the Diffuse layer's
    analysis/compile charges to decide whether the epoch was *steady*
    (all memoization hits, no fresh compilation) — only steady epochs
    are worth capturing, and only their charges are safe to replay.
    """

    def __init__(self, runtime, stream: CanonicalStream) -> None:
        self.runtime = runtime
        self.stream = stream
        self.steps: List[object] = []
        self.steady = True
        self.analysis_seconds = 0.0
        self._start_bytes = runtime.coherence.total_bytes_moved

    # -- notifications from the Diffuse layer ---------------------------
    def note_analysis(self, seconds: float, replay: bool) -> None:
        """Observe an analysis charge; a miss-rate charge spoils steadiness."""
        self.analysis_seconds += seconds
        self.steps.append(AnalysisCharge(seconds))
        if not replay:
            self.steady = False

    def note_compile(self, seconds: float) -> None:
        """Observe a fresh compile-time charge (never steady)."""
        if seconds > 0.0:
            self.steady = False

    # -- notifications from the runtime ---------------------------------
    def record_launch(self, launch, record) -> None:
        """Capture one executed :class:`ResolvedLaunch` and its record."""
        try:
            if launch.kernel is not None:
                step = self._compiled_step(launch, record)
            else:
                step = self._opaque_step(launch, record)
        except KeyError:
            # The launch referenced a store or constituent outside the
            # canonicalized epoch; never let tracing break execution —
            # simply refuse to capture this epoch.
            self.steady = False
            return
        self.steps.append(step)

    def _compiled_step(self, launch, record) -> CompiledStep:
        task = launch.task
        kernel = launch.kernel
        binding = kernel.binding
        executor = self.runtime.executor
        slot_of_uid = self.stream.slot_of_uid
        args = task.args

        buffer_order = binding.buffer_order or tuple(binding.buffer_args.items())
        bindings = []
        num_points = 0
        for name, arg_index in buffer_order:
            arg = args[arg_index]
            table = executor.launch_rects(arg, task)
            num_points = len(table)
            bindings.append(
                (
                    name,
                    slot_of_uid[arg.store.uid],
                    arg.privilege is Privilege.REDUCE,
                    table,
                )
            )
        if not bindings:
            num_points = sum(1 for _ in task.launch_domain.points())

        reductions: Dict[str, Tuple[int, ReductionOp]] = {}
        for name, arg_index in binding.buffer_args.items():
            arg = args[arg_index]
            if arg.privilege is Privilege.REDUCE:
                redop = arg.redop if arg.redop is not None else ReductionOp.ADD
                reductions[name] = (slot_of_uid[arg.store.uid], redop)

        constituents = (
            task.constituents if isinstance(task, FusedTask) else (task,)
        )
        position_of_uid = self.stream.position_of_uid
        scalar_positions = tuple(position_of_uid[t.uid] for t in constituents)
        scalar_order = binding.scalar_order or tuple(binding.scalar_args.items())

        elementwise = self._elementwise_bindings(bindings, num_points, reductions)

        return CompiledStep(
            kernel=kernel,
            task_name=task.task_name,
            fused=task.is_fused,
            constituents=task.constituent_count(),
            launches=record.launches,
            num_points=num_points,
            buffer_bindings=tuple(bindings),
            scalar_order=tuple(scalar_order),
            scalar_positions=scalar_positions,
            reductions=reductions,
            footprint=self._footprint(task.args),
            kernel_seconds=record.kernel_seconds,
            communication_seconds=record.communication_seconds,
            overhead_seconds=record.overhead_seconds,
            elementwise=elementwise,
        )

    def _footprint(self, args) -> StepFootprint:
        """Merge the privileges of a launch's arguments per canonical slot."""
        slot_of_uid = self.stream.slot_of_uid
        merged: Dict[int, List[bool]] = {}
        for arg in args:
            slot = slot_of_uid[arg.store.uid]
            entry = merged.get(slot)
            if entry is None:
                entry = merged[slot] = [False, False, False]
            privilege = arg.privilege
            if privilege.reads:
                entry[0] = True
            if privilege.writes:
                entry[1] = True
            if privilege.reduces:
                entry[2] = True
        return tuple(
            (slot, reads, writes, reduces)
            for slot, (reads, writes, reduces) in sorted(merged.items())
        )

    @staticmethod
    def _elementwise_bindings(bindings, num_points, reductions) -> bool:
        """Is this launch a purely element-wise, contiguously-tiled one?

        When every buffer's rect table tiles its full (1-D) store
        contiguously in rank order and the kernel performs no
        reductions, executing the closure over any contiguous merged
        span of tiles is element-for-element identical to executing it
        per point (NumPy ufuncs are elementwise, the tiles are disjoint
        and cover the stores — the shared predicate in ``runtime.pool``,
        here with the conservative full-cover condition).  Replay then
        pays one set of ufunc calls per rank *chunk* — one per epoch at
        dispatch width 1, exactly the PR-2 whole-domain batching — while
        point dispatch can still split the launch.  The modelled kernel
        time is untouched: it was captured from the per-point execution.
        """
        from repro.runtime.pool import contiguous_elementwise_tables

        if reductions or not bindings:
            return False
        return contiguous_elementwise_tables(
            (table for _name, _slot, _is_reduction, table in bindings),
            num_points,
            require_full_cover=True,
        )

    def _opaque_step(self, launch, record) -> OpaqueStep:
        task = launch.task
        slot_of_uid = self.stream.slot_of_uid
        arg_specs = tuple(
            (slot_of_uid[arg.store.uid], arg.partition, arg.privilege, arg.redop)
            for arg in task.args
        )
        return OpaqueStep(
            impl=launch.opaque_impl,
            task_name=task.task_name,
            launch_domain=task.launch_domain,
            arg_specs=arg_specs,
            num_points=task.launch_domain.volume,
            position=self.stream.position_of_uid[task.uid],
            footprint=self._footprint(task.args),
            communication_seconds=record.communication_seconds,
            overhead_seconds=record.overhead_seconds,
        )

    # -- plan construction ----------------------------------------------
    def build_plan(self, stats_deltas: Tuple[int, int, int, int]) -> ExecutionPlan:
        """Freeze the captured epoch into an immutable plan."""
        coherence = self.runtime.coherence
        exit_states = tuple(
            (slot, coherence.state_key(store))
            for slot, store in enumerate(self.stream.slot_stores)
        )
        forwarded, fused, fused_constituents, temporaries = stats_deltas
        return ExecutionPlan(
            steps=tuple(self.steps),
            exit_states=exit_states,
            bytes_moved=coherence.total_bytes_moved - self._start_bytes,
            analysis_seconds=self.analysis_seconds,
            forwarded_tasks=forwarded,
            fused_tasks=fused,
            fused_constituents=fused_constituents,
            temporaries_eliminated=temporaries,
            task_count=len(self.stream.position_of_uid),
            liveness=tuple(self.stream.stream_key[1]),
        )


# ----------------------------------------------------------------------
# Replay lives in ``repro.runtime.scheduler``: the plan scheduler builds
# each plan's step-level dependence DAG from the captured footprints and
# dispatches independent steps to a worker pool (``REPRO_WORKERS=1``
# restores the serial replay path this module used to implement).
# ----------------------------------------------------------------------
# The controller: deferred stream + trace cache.
# ----------------------------------------------------------------------
class TraceController:
    """Owns the deferred epoch buffer and the plan cache of one engine."""

    def __init__(self, engine) -> None:
        self.engine = engine
        self.cache: Dict[Hashable, ExecutionPlan] = {}
        self._pending: List[IndexTask] = []
        #: Pattern-blind trace key -> last-seen scalar equality pattern.
        #: A cache miss whose blind key was last seen with a *different*
        #: pattern is a scalar-pattern flip: the stream structure was
        #: already known and only the scalar equalities changed (e.g.
        #: ``alpha`` colliding with a constant for one iteration), which
        #: forces a conservative re-record (see ROADMAP open item 3).
        self._scalar_patterns: Dict[Hashable, Tuple[int, ...]] = {}
        #: Plans captured / replayed (observability; the profiler holds
        #: the canonical hit/miss counters).
        self.captured_plans = 0
        self.replayed_epochs = 0
        #: Stores seen in a processed epoch that were still live at its
        #: boundary, re-checked at later boundaries — a handle dropped
        #: *after* the epoch holding the store's last task (e.g. a local
        #: that outlives its final launch) would otherwise never be
        #: rescanned and its field never reclaimed.
        self._reclaim_watch: Dict[int, Store] = {}

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of tasks buffered in the current epoch."""
        return len(self._pending)

    def add(self, task: IndexTask) -> None:
        """Defer one submitted task into the current epoch.

        References are taken per *argument* (not per distinct store):
        add/remove are symmetric, so the per-task dedup of
        ``task.stores()`` would only cost allocations on the hot path.
        """
        for arg in task.args:
            arg.store.add_pending_stream_reference()
        self._pending.append(task)
        if len(self._pending) >= EPOCH_TASK_LIMIT:
            self.boundary()

    def references(self, store: Store) -> bool:
        """True when a buffered task touches ``store``.

        Used by host-side mutations (``attach``) to decide whether they
        must force an epoch boundary to preserve program order.  The
        pending-stream counter maintained by :meth:`add` answers this in
        O(1); it can over-approximate when several engines buffer tasks
        on the same store, which only makes the forced boundary (a
        no-op for the uninvolved engine) conservative.
        """
        return store.pending_stream_references > 0

    # ------------------------------------------------------------------
    def boundary(self) -> None:
        """Process the buffered epoch (replay a plan or record one)."""
        engine = self.engine
        if not self._pending:
            engine.drain_window()
            return
        tasks = self._pending
        self._pending = []

        stream = canonicalize_stream(tasks)
        coherence = engine.runtime.coherence
        entry_states = tuple(
            coherence.state_key(store) for store in stream.slot_stores
        )
        # The *window fingerprint* pins how the epoch would be chunked
        # into fusion-window rounds.  An epoch captured while the
        # adaptive window was still growing replays its (smaller-window)
        # fused structure forever if the size is not part of the key;
        # fingerprinting the size forces an automatic re-capture once the
        # window has grown.  Sizes at or above the epoch length are
        # equivalent (a single round), so the fingerprint saturates.
        window_fingerprint = min(engine.window.size, len(tasks))
        key = (stream.stream_key, stream.partition_table, entry_states, window_fingerprint)
        # The stream key is (canonical tasks, liveness, scalar pattern);
        # the blind key drops the pattern so pattern-only misses are
        # distinguishable from genuinely new streams.
        canonical_tasks, liveness, scalar_pattern = stream.stream_key
        blind_key = (
            canonical_tasks,
            liveness,
            stream.partition_table,
            entry_states,
            window_fingerprint,
        )

        profiler = engine.runtime.profiler
        plan = self.cache.get(key)
        if plan is None:
            last_pattern = self._scalar_patterns.get(blind_key)
            if last_pattern is not None and last_pattern != scalar_pattern:
                profiler.record_scalar_pattern_flip()
        self._scalar_patterns[blind_key] = scalar_pattern
        if plan is not None:
            profiler.record_trace_hit(len(tasks))
            self.replayed_epochs += 1
            with telemetry.span(
                "epoch.replay",
                f"epoch={self.replayed_epochs} tasks={len(tasks)}",
                sim=engine.runtime.simulated_seconds,
            ):
                try:
                    engine.runtime.plan_scheduler.execute(
                        plan, engine, stream.slot_stores, tasks
                    )
                finally:
                    self._release(tasks, 0)
                self._reclaim_dead_fields(tasks)
            return

        profiler.record_trace_miss()
        recorder = TraceRecorder(engine.runtime, stream)
        stats = engine.stats
        stats_before = (
            stats.forwarded_tasks,
            stats.fused_tasks,
            stats.fused_constituents,
            stats.temporaries_eliminated,
        )
        with telemetry.span(
            "epoch.capture",
            f"tasks={len(tasks)}",
            sim=engine.runtime.simulated_seconds,
        ):
            engine.begin_capture(recorder)
            fed = 0
            try:
                for task in tasks:
                    for arg in task.args:
                        arg.store.remove_pending_stream_reference()
                    fed += 1
                    engine.window_submit(task)
                engine.drain_window()
            finally:
                engine.end_capture()
                self._release(tasks, fed)
            self._reclaim_dead_fields(tasks)

        captured_launches = any(
            not isinstance(step, AnalysisCharge) for step in recorder.steps
        )
        if recorder.steady and captured_launches:
            stats_deltas = (
                stats.forwarded_tasks - stats_before[0],
                stats.fused_tasks - stats_before[1],
                stats.fused_constituents - stats_before[2],
                stats.temporaries_eliminated - stats_before[3],
            )
            self.cache[key] = recorder.build_plan(stats_deltas)
            self.captured_plans += 1

    @staticmethod
    def _release(tasks: Sequence[IndexTask], already_fed: int) -> None:
        """Drop the pending references of tasks not yet handed on."""
        for task in tasks[already_fed:]:
            for arg in task.args:
                arg.store.remove_pending_stream_reference()

    def _reclaim_dead_fields(self, tasks: Sequence[IndexTask]) -> None:
        """Free the backing storage of stores this epoch killed.

        Functional-update programs (``v_new = f(v_old)``) rebind their
        handles every iteration, so each epoch strands the previous
        epoch's region fields: nothing frees them, steady-state memory
        grows by the working set per iteration, and the shared arena's
        first-fit allocator marches to fresh offsets forever (defeating
        the resident-replay descriptor interning, which relies on
        addresses recycling).  The epoch boundary is the one quiescent
        point where liveness is decidable from the split reference
        counts alone (paper Section 5.1): every launch of the epoch has
        joined, so a store with no application handle, no buffered task
        and no runtime reference can never be observed again — its
        field is reclaimed (the store object itself stays registered;
        should code ever touch it again it gets a fresh zeroed field,
        the defined initial state).
        """
        regions = self.engine.runtime.regions
        watch = self._reclaim_watch
        for task in tasks:
            for arg in task.args:
                store = arg.store
                # Only frontend-managed stores: a store created bare by
                # runtime internals (e.g. CSR index arrays) is held by
                # plain Python references the counters never witness.
                if store.ever_application_referenced:
                    watch.setdefault(store.uid, store)
        for uid in list(watch):
            store = watch[uid]
            if (
                store.application_references == 0
                and store.pending_stream_references == 0
                and store.runtime_references == 0
            ):
                del watch[uid]
                regions.reclaim_storage(store)
