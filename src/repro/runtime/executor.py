"""Functional execution of index tasks over region fields.

The executor materialises each point task of a launched index task,
gathers NumPy views of its sub-stores, runs either the compiled KIR kernel
or the task's opaque implementation, folds reduction partials into their
target stores, and returns the analytically-modelled execution time of the
launch (the maximum over GPUs of the per-GPU kernel time).

The launch loop is the hottest path of the simulator: every iteration of
an application replays the same partitions, points and rectangles with
only the store identities changing.  Sub-store rectangles are therefore
memoized per ``(partition, point, store shape)`` — partitions are small
frozen value objects, so the cache key is exact — and the NumPy views of
those rectangles are memoized on each region field.  Setting
``REPRO_HOTPATH_CACHE=0`` disables both caches and restores the seed
code path (the baseline of ``benchmarks/perf_wallclock.py``).

Intra-launch point dispatch (``REPRO_POINT_WORKERS`` > 1) partitions the
per-rank point tasks of one launch into contiguous rank chunks executed
across the shared worker pool: each launch is *prepared once* (scalar
bindings, region fields, rect tables), each chunk runs with its own
buffer dict over disjoint write tiles, and reduction partials plus
per-GPU simulated seconds are folded at the launch's join point in
recorded rank order — so buffers and simulated time are bit-identical
for every dispatch width.  Width 1 (the default) takes the serial
per-rank loop unchanged.

Two further dispatch refinements compose with chunking:

* **Element-wise chunk batching** — a launch whose rect tables tile
  every buffer contiguously in rank order and whose kernel performs no
  reductions is executed with *one merged closure call per chunk* over
  the chunk's contiguous span instead of one call per rank.  NumPy
  ufuncs are element-wise, the tiles are disjoint and consecutive, so
  the merged call is element-for-element identical to the per-rank loop
  while paying one set of ufunc invocations per chunk; per-rank
  simulated seconds still come from the per-rank volumes, so time
  accounting is untouched.  Gated (with the other hot-path work) behind
  ``REPRO_HOTPATH_CACHE`` so the seed baseline stays honest.
* **Process dispatch** (``REPRO_DISPATCH_BACKEND=process``) — chunks of
  compiled launches whose region fields live in the shared-memory arena
  are shipped to the persistent worker-process pool
  (``runtime/procpool.py``) instead of the thread pool, removing the
  GIL from the chunk compute entirely.  Workers return per-rank
  reduction partials and modelled seconds which fold at the same join
  point, so results are bit-identical to the thread substrate; launches
  that cannot ship (non-shm fields, opaque operators without a
  registered chunk implementation) fall back to threads.
* **Chunk-level opaque execution** (``REPRO_OPAQUE_CHUNKS``) — an
  opaque launch whose operator registers a chunk-level implementation
  (``runtime/opaque.py``) executes with *one library call per rank
  chunk* over the merged span (a single GEMV over a multi-rank row
  block) instead of one call per rank.  The chunk contract is
  pipe-safe — full base arrays, per-rank wire rects and the scalar
  tuple, no task objects — so the same chunks ship to the process pool
  (workers resolve the operator from the registry by name) and ride
  resident plans.  Chunk implementations return per-rank partials and
  per-rank modelled seconds that fold at the same join point, so
  buffers and simulated time are bit-identical to the per-rank path.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import config
from repro.config import hotpath_cache_enabled
from repro.ir.domain import Rect
from repro.ir.privilege import Privilege, ReductionOp, numpy_ufunc_for
from repro.ir.task import IndexTask, StoreArg
from repro.kernel.compiler import CompiledKernel
from repro.kernel.lowering import ReductionPartial
from repro.runtime import telemetry
from repro.runtime.machine import MachineConfig
from repro.runtime.opaque import OpaqueTaskImpl, default_opaque_registry
from repro.runtime.pool import (
    contiguous_elementwise_tables,
    dispatch_chunks,
    in_pool_worker,
    merged_table_span,
    point_chunks,
    worker_pool,
)
from repro.runtime.region import RegionManager

#: Minimum total elements a launch must touch before its point tasks are
#: dispatched across the worker pool; below this the chunk handoff costs
#: more than the tiles' compute.  Results are bit-identical either way,
#: so this is a pure performance knob — tests force it to 0 to exercise
#: the pool on tiny problems.
MIN_POINT_DISPATCH_VOLUME = 16384

#: Entries the opaque-binding LRU retains (distinct launch geometries).
OPAQUE_BINDING_MEMO_LIMIT = 1024


class TaskExecutor:
    """Executes index tasks functionally and models their kernel time."""

    def __init__(
        self,
        regions: RegionManager,
        machine: MachineConfig,
        profiler=None,
    ) -> None:
        self.regions = regions
        self.machine = machine
        #: Optional profiler receiving point-dispatch statistics.
        self.profiler = profiler
        self.use_caches = hotpath_cache_enabled()
        #: (partition, launch-domain shape, store shape) -> per-rank
        #: ``(rect, volume)`` list in launch-domain iteration order.
        #: Insertion is serialised so plan-scheduler workers resolving the
        #: same launch geometry concurrently agree on one canonical table
        #: (lookups stay lock-free; tables are immutable once published).
        self._rect_table_cache: Dict[Tuple, List[Tuple[Rect, int]]] = {}
        self._rect_table_lock = threading.Lock()
        #: Rect-table geometry -> is-contiguous-elementwise verdict,
        #: keyed by the identities of the interned rect tables (the
        #: tables are immortal in ``_rect_table_cache``, so ids are
        #: stable; the memo is only consulted when the caches are on,
        #: which is also when tables are interned).
        self._elementwise_cache: Dict[Tuple[int, ...], bool] = {}
        #: (table id, start, stop) -> (pinning table ref, stable wire
        #: table id, wire rects): the chunk rect lists shipped to
        #: process-pool workers are pure functions of immutable tables,
        #: so they are built once per geometry instead of once per
        #: launch (the pinned reference keeps the ``id()`` key
        #: collision-free, like the SpMV caches).  The stable id names
        #: the list in the workers' intern caches so the same geometry
        #: crosses the pipe once per worker, not once per chunk.
        self._wire_rect_cache: Dict[
            Tuple[int, int, int], Tuple[object, Optional[int], list]
        ] = {}
        #: Per-argument (field id, rect-table id, is-reduction) signature
        #: plus rank count -> (pinned field tuple, per-rank buffer dicts).
        #: A replayed opaque launch re-resolves the same fields and
        #: interned rect tables every epoch (the replay task object itself
        #: is fresh — scalars are rebound per iteration — so the key is
        #: structural, not task identity), and ``field.view`` hands back
        #: one canonical view per rect, so the per-rank buffer dicts are
        #: identical across epochs and are built once.  Each rank's dict
        #: is shallow-copied before use, preserving the per-launch
        #: contract that an implementation may mutate its buffer dict
        #: freely.  The value pins the fields (rect tables are immortal in
        #: ``_rect_table_cache``), so the ids in live keys cannot be
        #: recycled; ``RegionManager.attach`` swaps in a whole new field
        #: object, which changes the key and forces a rebuild.  A bounded
        #: LRU (:data:`OPAQUE_BINDING_MEMO_LIMIT`): hits move to the
        #: recent end, inserts evict at most one stalest entry.
        self._opaque_binding_memo: "OrderedDict[Tuple, Tuple[tuple, list]]" = (
            OrderedDict()
        )

    # ------------------------------------------------------------------
    # Sub-store geometry.
    # ------------------------------------------------------------------
    def _launch_rects(self, arg: StoreArg, task: IndexTask) -> List[Tuple[Rect, int]]:
        """Per-rank sub-store rects of one argument.

        The table is indexed by the rank of the point in launch-domain
        iteration order, so the per-point lookup in the launch loop is a
        plain list index with no hashing at all.  With the hot-path
        caches enabled the table is memoized on (partition, launch
        domain, store shape) — everything the geometry depends on — and
        replayed across launches; otherwise it is rebuilt per launch,
        matching the seed's per-point rect computation count.
        """
        key = None
        if self.use_caches:
            key = (arg.partition, task.launch_domain.shape, arg.store.shape)
            table = self._rect_table_cache.get(key)
            if table is not None:
                return table
        shape = arg.store.shape
        table = []
        for point in task.launch_domain.points():
            rect = arg.partition.sub_store_rect(point, shape)
            table.append((rect, rect.volume))
        if key is not None:
            with self._rect_table_lock:
                table = self._rect_table_cache.setdefault(key, table)
        return table

    def launch_rects(self, arg: StoreArg, task: IndexTask) -> List[Tuple[Rect, int]]:
        """Public accessor for the per-rank rect table of one argument.

        The trace recorder captures these tables into execution plans;
        they depend only on (partition, launch domain, store shape), all
        of which are part of the trace key, so a captured table is valid
        for every replay of the plan.
        """
        return self._launch_rects(arg, task)

    # ------------------------------------------------------------------
    # Point dispatch (shared by the compiled and opaque paths).
    # ------------------------------------------------------------------
    def point_chunk_plan(self, num_points: int, prepared) -> List[Tuple[int, int]]:
        """Rank chunks of one launch under the point-dispatch config.

        A single ``(0, num_points)`` chunk means the serial per-rank
        loop.  Dispatch is suppressed for launches whose total touched
        volume is below :data:`MIN_POINT_DISPATCH_VOLUME`, and — under
        the *thread* backend only — on pool worker threads, where nested
        dispatch would block the pool on its own queue.  The process
        substrate cannot deadlock the thread pool (its chunks queue on
        the worker pipes), so steps running on pool workers still chunk
        there and ship to the process pool; if a launch then degrades to
        threads, :meth:`_dispatch_chunks` runs its chunks serially
        inline instead of re-entering the pool.
        """
        width = config.point_worker_count()
        if width <= 1 or num_points <= 1:
            return [(0, num_points)]
        if in_pool_worker() and config.dispatch_backend() != "process":
            return [(0, num_points)]
        total = 0
        for entry in prepared:
            for _rect, volume in entry[3]:
                total += volume
        if total < MIN_POINT_DISPATCH_VOLUME:
            return [(0, num_points)]
        return point_chunks(num_points, width, config.point_min_ranks())

    def _dispatch_chunks(
        self,
        chunks: Sequence[Tuple[int, int]],
        run: Callable[[int, int], object],
    ) -> List[object]:
        """Run chunk closures across the shared pool in rank order.

        On a pool worker thread (a launch that chunked for the process
        substrate but degraded to threads) the chunks run serially
        inline — submitting from a worker back to its own pool could
        deadlock it.  Results are bit-identical either way.
        """
        if telemetry.enabled():
            inner = run

            def run(start: int, stop: int, _inner=inner):
                with telemetry.span("point.chunk", f"ranks=[{start}:{stop})"):
                    return _inner(start, stop)

        if in_pool_worker():
            return [run(start, stop) for start, stop in chunks]
        return dispatch_chunks(worker_pool(), list(chunks), run)

    def _record_point_dispatch(
        self, ranks: int, chunk_count: int, backend: str = "thread"
    ) -> None:
        if self.profiler is not None:
            self.profiler.record_point_dispatch(
                ranks=ranks,
                chunks=chunk_count,
                width=config.point_worker_count(),
                backend=backend,
            )

    def _record_elementwise_batch(self, calls: int) -> None:
        if self.profiler is not None:
            self.profiler.record_elementwise_batch(calls)

    def _record_opaque_calls(
        self, rank_calls: int = 0, chunk_calls: int = 0, process_chunks: int = 0
    ) -> None:
        if self.profiler is not None:
            self.profiler.record_opaque_execution(
                rank_calls=rank_calls,
                chunk_calls=chunk_calls,
                process_chunks=process_chunks,
            )

    # ------------------------------------------------------------------
    # Element-wise batching and process routing.
    # ------------------------------------------------------------------
    def _elementwise_launch(self, kernel: CompiledKernel, prepared, num_points: int) -> bool:
        """True when the launch may execute as merged contiguous calls.

        Requirements: more than one rank, a kernel with no reductions
        anywhere (partials are per-rank state), and every buffer's rect
        table passing :func:`pool.contiguous_elementwise_tables` — the
        same predicate the trace recorder's capture-time verdict uses.
        The geometry verdict is memoized on the interned rect tables'
        identities.
        """
        if num_points <= 1 or not prepared or not self.use_caches:
            return False
        if any(loop.has_reduction for loop in kernel.cost.loops):
            return False
        if any(entry[2] for entry in prepared):  # REDUCE-privilege args
            return False
        key = tuple(id(entry[3]) for entry in prepared)
        cached = self._elementwise_cache.get(key)
        if cached is None:
            cached = contiguous_elementwise_tables(
                (entry[3] for entry in prepared), num_points
            )
            self._elementwise_cache[key] = cached
        return cached

    def _process_chunks_compiled(
        self,
        kernel: CompiledKernel,
        prepared,
        scalars: Dict[str, float],
        chunks: Sequence[Tuple[int, int]],
        elementwise: bool,
        with_cost: bool = True,
    ):
        """Ship a compiled launch's chunks to the worker-process pool.

        Returns the per-chunk ``(partials_by_rank, seconds_by_rank)``
        results in chunk order, or ``None`` when the launch cannot ship
        (a region field without a shared-memory descriptor — allocated
        before the backend flag flipped, or attached host data under the
        thread backend).  ``with_cost=False`` skips the worker-side time
        model (plan replay charges captured seconds instead).
        """
        descriptors = []
        for _name, field, is_reduction, _table in prepared:
            if is_reduction:
                descriptors.append(None)
                continue
            descriptor = getattr(field, "shm_descriptor", None)
            if descriptor is None:
                return None
            descriptors.append(descriptor)

        from repro.runtime import procpool

        kernel_id = procpool.kernel_spec_id(kernel)
        spec = procpool.spec_for(kernel)
        # Epoch super-kernels carry a per-buffer calling convention the
        # workers must reproduce (merged span view vs per-rank list).
        modes = getattr(kernel, "binding_modes", None)
        requests = []
        for start, stop in chunks:
            buffers = []
            for entry, descriptor in zip(prepared, descriptors):
                table_id, wire = self._wire_chunk_rects(entry[3], start, stop)
                buffers.append((entry[0], entry[2], descriptor, table_id, wire))
            requests.append(
                procpool.ChunkRequest(
                    kernel_id=kernel_id,
                    spec=None,
                    scalars=scalars,
                    buffers=tuple(buffers),
                    start=start,
                    stop=stop,
                    elementwise=elementwise,
                    cost=kernel.cost if with_cost else None,
                    machine=self.machine if with_cost else None,
                    modes=modes,
                )
            )
        pool = procpool.process_pool()
        pool.begin_call_meter()
        with telemetry.span(
            "wire.roundtrip", f"kernel={kernel_id} chunks={len(requests)}"
        ):
            try:
                return pool.run_chunks(kernel_id, spec, requests)
            except procpool.ProcessPoolBrokenError:
                # A worker died (not a kernel error — those re-raise with
                # their own type): the pool tore itself down; degrade this
                # launch to the thread substrate and let the next launch
                # rebuild a fresh pool.
                return None
            finally:
                self._record_wire_traffic(pool)

    def _record_wire_traffic(self, pool) -> None:
        """Report a dispatch's pipe traffic to the profiler.

        Reads the pool's thread-local call meter (armed before the
        dispatch), so concurrent dispatches from several threads — wide
        levels ship steps to the pool simultaneously — each report
        exactly their own traffic.
        """
        wire_bytes, wire_requests = pool.end_call_meter()
        if self.profiler is not None:
            self.profiler.record_wire_traffic(wire_bytes, wire_requests)

    def _wire_chunk_rects(self, table, start: int, stop: int) -> Tuple[Optional[int], list]:
        """The pipe form of ranks ``[start, stop)`` of a rect table.

        Returns ``(stable wire-table id, rect list)``, memoized per
        (table identity, range): the tables are immutable and the wire
        lists are rebuilt on every launch of every replay otherwise.
        The cached table reference pins the ``id()`` key; the stable id
        (assigned once per distinct geometry) keys the worker-side
        intern caches.  With the hot-path caches off the rect tables are
        rebuilt per launch, so no stable id is assigned and the rects
        always travel inline (interning ``id()``-unstable tables would
        grow the worker caches without bound).
        """
        if not self.use_caches:
            return None, [
                (table[rank][0].lo, table[rank][0].hi) for rank in range(start, stop)
            ]
        key = (id(table), start, stop)
        entry = self._wire_rect_cache.get(key)
        if entry is not None and entry[0] is table:
            return entry[1], entry[2]
        from repro.runtime import procpool

        wire = [(table[rank][0].lo, table[rank][0].hi) for rank in range(start, stop)]
        table_id = procpool.next_wire_table_id()
        self._wire_rect_cache[key] = (table, table_id, wire)
        return table_id, wire

    # ------------------------------------------------------------------
    # Plan-resident replay (``REPRO_RESIDENT_PLANS``).
    # ------------------------------------------------------------------
    def resident_step_template(
        self,
        kernel: CompiledKernel,
        prepared,
        num_points: int,
        scalar_names: Tuple[str, ...],
        elementwise: bool,
        chunks: Sequence[Tuple[int, int]],
    ):
        """Build one compiled step's worker-resident template.

        Returns ``None`` when the step cannot ship (a non-reduction
        field without a shared-memory descriptor), mirroring the
        shippability test of :meth:`_process_chunks_compiled`.  The
        template carries the *full* rank-indexed wire rect table of
        every argument (workers slice chunk ranges from it locally) and
        the step's chunk plan, which the pool cuts per worker at ship
        time so dispatches never re-send rank ranges.
        """
        from repro.runtime import procpool

        buffers = []
        for name, field, is_reduction, table in prepared:
            if is_reduction:
                descriptor = None
            else:
                descriptor = getattr(field, "shm_descriptor", None)
                if descriptor is None:
                    return None
            table_id, wire = self._wire_chunk_rects(table, 0, num_points)
            buffers.append((name, is_reduction, descriptor, table_id, wire))
        return procpool.ResidentStep(
            kernel_id=procpool.kernel_spec_id(kernel),
            spec=procpool.spec_for(kernel),
            buffers=tuple(buffers),
            scalar_names=scalar_names,
            elementwise=elementwise,
            modes=getattr(kernel, "binding_modes", None),
            chunks=tuple(chunks),
        )

    def _process_chunks_resident(
        self,
        resident,
        step_index: int,
        prepared,
        scalars: Dict[str, float],
        chunks: Sequence[Tuple[int, int]],
    ):
        """Run one resident step's chunks on the worker-process pool.

        ``prepared`` is the *epoch's* resolved bindings: frontends bind
        fresh stores (hence fresh arena blocks) to a slot every epoch,
        so the step's current shared-memory descriptors are re-derived
        here per dispatch and the pool syncs them as per-worker-interned
        ids.  Returns per-chunk results in chunk order like
        :meth:`_process_chunks_compiled` (with empty seconds — replay
        charges captured seconds parent-side), or ``None`` when the step
        cannot ship this epoch (a field without a descriptor, or a chunk
        plan that disagrees with the ranges baked into the workers'
        templates) or the pool broke, in which case the caller degrades
        to the per-chunk protocol (rebuilding a fresh pool) and the plan
        re-ships there.
        """
        from repro.runtime import procpool

        template = resident.steps[step_index]
        if tuple(chunks) != template.chunks:
            return None
        descriptors = []
        for _name, field, is_reduction, _table in prepared:
            if is_reduction:
                descriptors.append(None)
                continue
            descriptor = getattr(field, "shm_descriptor", None)
            if descriptor is None:
                return None
            descriptors.append(descriptor)
        values = tuple(scalars[name] for name in template.scalar_names)
        pool = procpool.process_pool()
        pool.begin_call_meter()
        with telemetry.span(
            "wire.roundtrip",
            f"resident plan={resident.plan_id} step={step_index}",
        ):
            try:
                return pool.run_resident_chunks(
                    resident, step_index, values, tuple(descriptors), chunks
                )
            except procpool.ProcessPoolBrokenError:
                return None
            finally:
                self._record_wire_traffic(pool)

    # ------------------------------------------------------------------
    # Compiled (KIR) execution.
    # ------------------------------------------------------------------
    def execute_compiled(self, task: IndexTask, kernel: CompiledKernel) -> float:
        """Run a task through its compiled kernel; returns kernel seconds."""
        per_gpu_seconds: Dict[int, float] = {}
        reduction_totals: Dict[int, List[ReductionPartial]] = {}
        binding = kernel.binding
        buffer_order = binding.buffer_order or tuple(binding.buffer_args.items())
        args = task.args
        num_gpus = max(1, self.machine.num_gpus)
        use_caches = self.use_caches

        # Everything that does not depend on the launch point is resolved
        # once per launch: scalar bindings, the region field and reduction
        # flag of every buffer argument.
        scalars = {
            name: task.scalar_args[index]
            for name, index in binding.scalar_args.items()
        }
        prepared = tuple(
            (
                name,
                self.regions.field(args[arg_index].store),
                args[arg_index].privilege is Privilege.REDUCE,
                self._launch_rects(args[arg_index], task),
            )
            for name, arg_index in buffer_order
        )
        if prepared:
            num_points = len(prepared[0][3])
        else:
            num_points = task.launch_domain.volume
        # Interior tiles share one shape, so the analytic kernel time is
        # memoized per distinct tuple of sub-store volumes.  The memo is
        # shared across concurrent chunks: dict get/set are atomic in
        # CPython and ``estimate_seconds`` is a pure function of the
        # volumes, so a racing duplicate computation stores the same
        # value.
        seconds_by_volumes: Dict[Tuple[int, ...], float] = {}

        chunks = self.point_chunk_plan(num_points, prepared)
        elementwise = self._elementwise_launch(kernel, prepared, num_points)
        results = None
        dispatch_backend = None
        if len(chunks) > 1:
            if config.dispatch_backend() == "process":
                results = self._process_chunks_compiled(
                    kernel, prepared, scalars, chunks, elementwise
                )
                if results is not None:
                    dispatch_backend = "process"
            if results is None:
                results = self._dispatch_chunks(
                    chunks,
                    lambda start, stop: self._compiled_ranks(
                        kernel,
                        prepared,
                        scalars,
                        start,
                        stop,
                        seconds_by_volumes,
                        elementwise,
                    ),
                )
                dispatch_backend = "thread"
        elif elementwise:
            # Serial width, batchable launch: one merged closure call
            # instead of ``num_points`` per-rank calls (seconds still
            # accumulate per rank below, so time is unchanged).
            results = [
                self._compiled_ranks(
                    kernel, prepared, scalars, 0, num_points,
                    seconds_by_volumes, True,
                )
            ]
        if results is not None:
            # Join point: fold reduction partials and per-GPU seconds in
            # recorded rank order — bit-identical to the serial loop.
            rank = 0
            for partials_by_rank, seconds_by_rank in results:
                for partials, seconds in zip(partials_by_rank, seconds_by_rank):
                    for name, partial in partials.items():
                        arg_index = binding.buffer_args.get(name)
                        if arg_index is None:
                            continue
                        reduction_totals.setdefault(arg_index, []).append(partial)
                    gpu = rank % num_gpus
                    per_gpu_seconds[gpu] = per_gpu_seconds.get(gpu, 0.0) + seconds
                    rank += 1
            if dispatch_backend is not None:
                self._record_point_dispatch(
                    num_points, len(chunks), dispatch_backend
                )
            if elementwise:
                self._record_elementwise_batch(len(results))
        else:
            # The serial per-rank loop (``REPRO_POINT_WORKERS=1``); one
            # buffer dict is reused across points (executors only read
            # it during the call).
            buffers: Dict[str, Optional[np.ndarray]] = {}
            for rank in range(num_points):
                volumes: List[int] = []
                for name, field, is_reduction, rect_table in prepared:
                    rect, volume = rect_table[rank]
                    volumes.append(volume)
                    if is_reduction:
                        buffers[name] = None
                    elif use_caches:
                        buffers[name] = field.view(rect)
                    else:
                        buffers[name] = field.data[rect.slices()]

                partials = kernel.executor(buffers, scalars)
                for name, partial in partials.items():
                    arg_index = binding.buffer_args.get(name)
                    if arg_index is None:
                        continue
                    reduction_totals.setdefault(arg_index, []).append(partial)

                volume_key = tuple(volumes)
                seconds = seconds_by_volumes.get(volume_key) if use_caches else None
                if seconds is None:
                    element_counts = {
                        entry[0]: volume for entry, volume in zip(prepared, volumes)
                    }
                    seconds = kernel.cost.estimate_seconds(element_counts, self.machine)
                    if use_caches:
                        seconds_by_volumes[volume_key] = seconds
                gpu = rank % num_gpus
                per_gpu_seconds[gpu] = per_gpu_seconds.get(gpu, 0.0) + seconds

        self._apply_reductions(task, reduction_totals)
        return max(per_gpu_seconds.values()) if per_gpu_seconds else 0.0

    def _compiled_ranks(
        self,
        kernel: CompiledKernel,
        prepared,
        scalars: Dict[str, float],
        start: int,
        stop: int,
        seconds_memo: Dict[Tuple[int, ...], float],
        elementwise: bool = False,
    ) -> Tuple[List[Dict[str, ReductionPartial]], List[float]]:
        """Execute ranks ``[start, stop)`` of a prepared compiled launch.

        Pure compute, safe on any worker: kernels write their disjoint
        output views in place through a chunk-local buffer dict; partials
        and the per-rank modelled seconds are returned unapplied in rank
        order for the caller's join-point fold.

        With ``elementwise`` the chunk executes as one merged closure
        call over its contiguous span (the caller proved the launch
        batchable); the per-rank time model below is unaffected.
        """
        use_caches = self.use_caches
        machine = self.machine
        kernel_fn = kernel.executor
        cost = kernel.cost
        buffers: Dict[str, Optional[np.ndarray]] = {}
        partials_by_rank: List[Dict[str, ReductionPartial]] = []
        seconds_by_rank: List[float] = []
        if elementwise and stop > start:
            for name, field, _is_reduction, rect_table in prepared:
                buffers[name] = field.view(merged_table_span(rect_table, start, stop))
            kernel_fn(buffers, scalars)
            partials_by_rank = [{} for _ in range(start, stop)]
            for rank in range(start, stop):
                volumes = [entry[3][rank][1] for entry in prepared]
                volume_key = tuple(volumes)
                seconds = seconds_memo.get(volume_key)
                if seconds is None:
                    element_counts = {
                        entry[0]: volume
                        for entry, volume in zip(prepared, volumes)
                    }
                    seconds = cost.estimate_seconds(element_counts, machine)
                    seconds_memo[volume_key] = seconds
                seconds_by_rank.append(seconds)
            return partials_by_rank, seconds_by_rank
        for rank in range(start, stop):
            volumes: List[int] = []
            for name, field, is_reduction, rect_table in prepared:
                rect, volume = rect_table[rank]
                volumes.append(volume)
                if is_reduction:
                    buffers[name] = None
                elif use_caches:
                    buffers[name] = field.view(rect)
                else:
                    buffers[name] = field.data[rect.slices()]
            partials_by_rank.append(kernel_fn(buffers, scalars))
            volume_key = tuple(volumes)
            seconds = seconds_memo.get(volume_key) if use_caches else None
            if seconds is None:
                element_counts = {
                    entry[0]: volume for entry, volume in zip(prepared, volumes)
                }
                seconds = cost.estimate_seconds(element_counts, machine)
                if use_caches:
                    seconds_memo[volume_key] = seconds
            seconds_by_rank.append(seconds)
        return partials_by_rank, seconds_by_rank

    # ------------------------------------------------------------------
    # Opaque execution.
    # ------------------------------------------------------------------
    def execute_opaque(
        self,
        task: IndexTask,
        impl: OpaqueTaskImpl,
        resident=None,
        resident_step: Optional[int] = None,
    ) -> float:
        """Run a task through its opaque implementation; returns kernel seconds."""
        seconds, reduction_totals = self.execute_opaque_deferred(
            task, impl, resident=resident, resident_step=resident_step
        )
        self._apply_reductions(task, reduction_totals)
        return seconds

    def prepare_opaque_bindings(self, task: IndexTask):
        """Resolve an opaque launch's per-argument fields and rect tables.

        One ``(arg index, region field, is_reduction, rect table)`` tuple
        per argument — the prepared form shared by the per-rank loop, the
        chunk fast path and the resident-template builder.
        """
        return tuple(
            (
                index,
                self.regions.field(arg.store),
                arg.privilege is Privilege.REDUCE,
                self._launch_rects(arg, task),
            )
            for index, arg in enumerate(task.args)
        )

    def _opaque_binding_rows(self, prepared, num_points: int):
        """The per-rank buffer dicts of an opaque launch, memoized.

        Returns a list with one dict per rank mapping argument index to
        its canonical sub-store view (``None`` for reductions).  Callers
        must shallow-copy a rank's dict before handing it to the task
        implementation.  Only consulted when the hot-path caches are on.
        """
        key = (num_points,) + tuple(
            (id(entry[1]), id(entry[3]), entry[2]) for entry in prepared
        )
        cached = self._opaque_binding_memo.get(key)
        if cached is not None:
            # LRU touch; tolerates concurrent chunk workers racing an
            # eviction of the same key (the rows were already fetched).
            try:
                self._opaque_binding_memo.move_to_end(key)
            except KeyError:
                pass
            return cached[1]
        rows = []
        for rank in range(num_points):
            buffers: Dict[int, Optional[np.ndarray]] = {}
            for index, field, is_reduction, rect_table in prepared:
                if is_reduction:
                    buffers[index] = None
                else:
                    buffers[index] = field.view(rect_table[rank][0])
            rows.append(buffers)
        if len(self._opaque_binding_memo) >= OPAQUE_BINDING_MEMO_LIMIT:
            # Single least-recently-used eviction; tolerates concurrent
            # chunk workers racing on the same launch (both build
            # identical rows, last insert wins).
            try:
                self._opaque_binding_memo.popitem(last=False)
            except (KeyError, RuntimeError):
                pass
        fields = tuple(entry[1] for entry in prepared)
        self._opaque_binding_memo[key] = (fields, rows)
        return rows

    def execute_opaque_deferred(
        self,
        task: IndexTask,
        impl: OpaqueTaskImpl,
        resident=None,
        resident_step: Optional[int] = None,
    ) -> Tuple[float, Dict[int, List[ReductionPartial]]]:
        """Run an opaque task but defer folding its reduction partials.

        The plan scheduler executes independent steps concurrently and
        folds each step's partials at its dependence level's join point
        (in recorded order), so the compute part must not touch the
        target stores.  Returns ``(kernel seconds, partials per argument
        index)``; :meth:`execute_opaque` is the fold-immediately wrapper
        used by the eager pipeline and the serial replay path.

        With ``REPRO_OPAQUE_CHUNKS`` on and a chunk-level implementation
        registered, the launch executes with one library call per rank
        chunk (one call total at dispatch width 1); under the process
        backend the chunks ship to the worker pool — through the lean
        resident protocol when the plan scheduler passes this step's
        ``(resident plan, step index)`` and the workers hold its
        template.  Every route folds per-rank partials and seconds at
        the same join point in recorded rank order, so buffers and
        simulated time are bit-identical to the per-rank loop.
        """
        per_gpu_seconds: Dict[int, float] = {}
        reduction_totals: Dict[int, List[ReductionPartial]] = {}
        num_gpus = max(1, self.machine.num_gpus)

        use_caches = self.use_caches
        prepared = self.prepare_opaque_bindings(task)
        points = list(task.launch_domain.points())
        num_points = len(points)

        chunks = self.point_chunk_plan(num_points, prepared)
        chunked = (
            num_points > 1
            and impl.chunk is not None
            and config.opaque_chunks_enabled()
        )
        if chunked:
            scalars = tuple(task.scalar_args)
            results = None
            dispatch_backend = None
            if len(chunks) > 1 and config.dispatch_backend() == "process":
                if resident is not None and resident_step in resident.steps:
                    results = self._process_chunks_resident_opaque(
                        resident, resident_step, prepared, scalars, chunks
                    )
                if results is None:
                    results = self._process_chunks_opaque(
                        impl, prepared, scalars, chunks
                    )
                if results is not None:
                    dispatch_backend = "process"
            if results is None:
                if len(chunks) > 1:
                    results = self._dispatch_chunks(
                        chunks,
                        lambda start, stop: self._opaque_chunk_ranks(
                            impl, prepared, scalars, start, stop
                        ),
                    )
                    dispatch_backend = "thread"
                else:
                    # Serial width: one chunk-level library call replaces
                    # the whole per-rank loop (per-rank seconds still
                    # accumulate below, so time is unchanged).
                    results = [
                        self._opaque_chunk_ranks(
                            impl, prepared, scalars, 0, num_points
                        )
                    ]
            # Join point: fold partials and per-GPU seconds in recorded
            # rank order — bit-identical to the per-rank loop.
            rank = 0
            for partials_by_rank, seconds_by_rank in results:
                for partials, seconds in zip(partials_by_rank, seconds_by_rank):
                    if partials:
                        for arg_index, partial in partials.items():
                            reduction_totals.setdefault(arg_index, []).append(partial)
                    gpu = rank % num_gpus
                    per_gpu_seconds[gpu] = per_gpu_seconds.get(gpu, 0.0) + seconds
                    rank += 1
            if dispatch_backend is not None:
                self._record_point_dispatch(
                    num_points, len(chunks), dispatch_backend
                )
            self._record_opaque_calls(
                chunk_calls=len(results),
                process_chunks=len(results) if dispatch_backend == "process" else 0,
            )
        elif len(chunks) > 1:
            results = self._dispatch_chunks(
                chunks,
                lambda start, stop: self._opaque_ranks(
                    task, impl, prepared, points, start, stop
                ),
            )
            # Join point: fold partials and per-GPU seconds in recorded
            # rank order — bit-identical to the serial loop.
            rank = 0
            for partials_by_rank, seconds_by_rank in results:
                for partials, seconds in zip(partials_by_rank, seconds_by_rank):
                    if partials:
                        for arg_index, partial in partials.items():
                            reduction_totals.setdefault(arg_index, []).append(partial)
                    gpu = rank % num_gpus
                    per_gpu_seconds[gpu] = per_gpu_seconds.get(gpu, 0.0) + seconds
                    rank += 1
            self._record_point_dispatch(num_points, len(chunks))
            self._record_opaque_calls(rank_calls=num_points)
        else:
            rows = (
                self._opaque_binding_rows(prepared, num_points)
                if use_caches
                else None
            )
            for rank, point in enumerate(points):
                if rows is not None:
                    buffers = dict(rows[rank])
                else:
                    buffers = {}
                    for index, field, is_reduction, rect_table in prepared:
                        rect, _ = rect_table[rank]
                        if is_reduction:
                            buffers[index] = None
                        else:
                            buffers[index] = field.data[rect.slices()]
                partials = impl.execute(task, point, buffers)
                if partials:
                    for arg_index, partial in partials.items():
                        reduction_totals.setdefault(arg_index, []).append(partial)

                gpu = rank % num_gpus
                seconds = impl.cost_seconds(task, point, buffers, self.machine)
                per_gpu_seconds[gpu] = per_gpu_seconds.get(gpu, 0.0) + seconds
            self._record_opaque_calls(rank_calls=num_points)

        kernel_seconds = max(per_gpu_seconds.values()) if per_gpu_seconds else 0.0
        return kernel_seconds, reduction_totals

    def _opaque_ranks(
        self,
        task: IndexTask,
        impl: OpaqueTaskImpl,
        prepared,
        points,
        start: int,
        stop: int,
    ) -> Tuple[List[Optional[Dict[int, ReductionPartial]]], List[float]]:
        """Execute ranks ``[start, stop)`` of a prepared opaque launch.

        Pure compute with a chunk-local buffer dict per rank; the cost
        model runs after the rank's execute exactly as in the serial
        loop, so data-dependent costs observe the same buffer state.
        """
        use_caches = self.use_caches
        machine = self.machine
        rows = (
            self._opaque_binding_rows(prepared, len(points))
            if use_caches
            else None
        )
        partials_by_rank: List[Optional[Dict[int, ReductionPartial]]] = []
        seconds_by_rank: List[float] = []
        for rank in range(start, stop):
            if rows is not None:
                buffers = dict(rows[rank])
            else:
                buffers = {}
                for index, field, is_reduction, rect_table in prepared:
                    rect, _ = rect_table[rank]
                    if is_reduction:
                        buffers[index] = None
                    else:
                        buffers[index] = field.data[rect.slices()]
            point = points[rank]
            partials_by_rank.append(impl.execute(task, point, buffers))
            seconds_by_rank.append(impl.cost_seconds(task, point, buffers, machine))
        return partials_by_rank, seconds_by_rank

    def _opaque_chunk_ranks(
        self,
        impl: OpaqueTaskImpl,
        prepared,
        scalars: tuple,
        start: int,
        stop: int,
    ) -> Tuple[List[Optional[Dict[int, ReductionPartial]]], List[float]]:
        """Execute ranks ``[start, stop)`` with one chunk-level call.

        Builds the pipe-safe chunk contract (full base arrays + per-rank
        wire rects) and invokes the operator's chunk implementation once
        over the whole range.  The chunk cost runs after the execute —
        sound because registered chunk cost functions never read data the
        chunk wrote (a registry contract; see ``runtime/opaque.py``).
        """
        bases: Dict[int, Optional[np.ndarray]] = {}
        rects: Dict[int, list] = {}
        for index, field, is_reduction, rect_table in prepared:
            bases[index] = None if is_reduction else field.data
            _table_id, wire = self._wire_chunk_rects(rect_table, start, stop)
            rects[index] = wire
        with telemetry.span(
            "opaque.chunk", f"op={impl.name} ranks=[{start}:{stop})"
        ):
            partials = impl.chunk.execute(bases, rects, scalars)
        seconds = impl.chunk.cost_seconds(bases, rects, scalars, self.machine)
        if partials is None:
            partials = [None] * (stop - start)
        return partials, seconds

    def _process_chunks_opaque(
        self,
        impl: OpaqueTaskImpl,
        prepared,
        scalars: tuple,
        chunks: Sequence[Tuple[int, int]],
    ):
        """Ship an opaque launch's rank chunks to the worker-process pool.

        Returns per-chunk ``(partials_by_rank, seconds_by_rank)`` results
        in chunk order, or ``None`` when the launch cannot ship: the
        operator is not resolvable by name in a worker (hand-built impl
        with no defining module, or not the registry's instance for its
        name), or a non-reduction field has no shared-memory descriptor.
        A broken pool also returns ``None`` — the caller degrades to the
        thread substrate.
        """
        registry = default_opaque_registry()
        if (
            impl.module is None
            or not registry.has(impl.name)
            or registry.get(impl.name) is not impl
        ):
            return None
        descriptors = []
        for _index, field, is_reduction, _table in prepared:
            if is_reduction:
                descriptors.append(None)
                continue
            descriptor = getattr(field, "shm_descriptor", None)
            if descriptor is None:
                return None
            descriptors.append(descriptor)

        from repro.runtime import procpool

        requests = []
        for start, stop in chunks:
            buffers = []
            for entry, descriptor in zip(prepared, descriptors):
                table_id, wire = self._wire_chunk_rects(entry[3], start, stop)
                buffers.append((entry[0], entry[2], descriptor, table_id, wire))
            requests.append(
                procpool.OpaqueChunkRequest(
                    op=impl.name,
                    module=impl.module,
                    scalars=scalars,
                    buffers=tuple(buffers),
                    start=start,
                    stop=stop,
                    machine=self.machine,
                )
            )
        pool = procpool.process_pool()
        pool.begin_call_meter()
        with telemetry.span(
            "wire.roundtrip", f"opaque op={impl.name} chunks={len(requests)}"
        ):
            try:
                return pool.run_opaque_chunks(requests)
            except procpool.ProcessPoolBrokenError:
                return None
            finally:
                self._record_wire_traffic(pool)

    def resident_opaque_template(
        self,
        impl: OpaqueTaskImpl,
        prepared,
        num_points: int,
        chunks: Sequence[Tuple[int, int]],
    ):
        """Build one opaque step's worker-resident template.

        Mirrors :meth:`resident_step_template` for opaque operators: the
        template names the operator (workers resolve it from their own
        registry) and carries every argument's full rank-indexed wire
        rect table plus the baked chunk plan.  Returns ``None`` when the
        step cannot ship — no chunk implementation, an operator that is
        not resolvable by name, or a field without a shared-memory
        descriptor.
        """
        registry = default_opaque_registry()
        if (
            impl.chunk is None
            or impl.module is None
            or not registry.has(impl.name)
            or registry.get(impl.name) is not impl
        ):
            return None

        from repro.runtime import procpool

        buffers = []
        for index, field, is_reduction, table in prepared:
            if is_reduction:
                descriptor = None
            else:
                descriptor = getattr(field, "shm_descriptor", None)
                if descriptor is None:
                    return None
            table_id, wire = self._wire_chunk_rects(table, 0, num_points)
            buffers.append((index, is_reduction, descriptor, table_id, wire))
        return procpool.OpaqueResidentStep(
            op=impl.name,
            module=impl.module,
            machine=self.machine,
            buffers=tuple(buffers),
            chunks=tuple(chunks),
        )

    def _process_chunks_resident_opaque(
        self,
        resident,
        step_index: int,
        prepared,
        scalars: tuple,
        chunks: Sequence[Tuple[int, int]],
    ):
        """Run one resident opaque step's chunks on the worker pool.

        Like :meth:`_process_chunks_resident`, but opaque replay
        re-computes per-rank seconds worker-side (the machine model rides
        the template) rather than charging captured seconds parent-side —
        opaque costs may be data-dependent.  Returns ``None`` when the
        step cannot ship this epoch (descriptor missing, chunk plan
        disagreeing with the baked template, non-numeric scalars) or the
        pool broke; the caller falls back to the per-chunk protocol.
        """
        from repro.runtime import procpool

        template = resident.steps[step_index]
        if not isinstance(template, procpool.OpaqueResidentStep):
            return None
        if tuple(chunks) != template.chunks:
            return None
        descriptors = []
        for _index, field, is_reduction, _table in prepared:
            if is_reduction:
                descriptors.append(None)
                continue
            descriptor = getattr(field, "shm_descriptor", None)
            if descriptor is None:
                return None
            descriptors.append(descriptor)
        try:
            values = tuple(float(value) for value in scalars)
        except (TypeError, ValueError):
            return None
        pool = procpool.process_pool()
        pool.begin_call_meter()
        with telemetry.span(
            "wire.roundtrip",
            f"resident opaque plan={resident.plan_id} step={step_index}",
        ):
            try:
                return pool.run_resident_chunks(
                    resident, step_index, values, tuple(descriptors), chunks
                )
            except procpool.ProcessPoolBrokenError:
                return None
            finally:
                self._record_wire_traffic(pool)

    def apply_deferred_reductions(
        self, task: IndexTask, totals: Dict[int, List[ReductionPartial]]
    ) -> None:
        """Fold partials returned by :meth:`execute_opaque_deferred`."""
        self._apply_reductions(task, totals)

    # ------------------------------------------------------------------
    # Helpers.
    # ------------------------------------------------------------------
    def _apply_reductions(
        self,
        task: IndexTask,
        totals: Dict[int, List[ReductionPartial]],
    ) -> None:
        """Fold per-point reduction partials into their target stores.

        The partials of a launch are folded with one vectorised
        ``ufunc.reduce`` over the partial values (the operators are
        associative and commutative by construction), then combined with
        the store's current value.
        """
        for arg_index, partials in totals.items():
            if not partials:
                continue
            arg = task.args[arg_index]
            redop = arg.redop if arg.redop is not None else ReductionOp.ADD
            self.apply_reduction_partials(arg.store, redop, partials)

    def apply_reduction_partials(self, store, redop: ReductionOp, partials) -> None:
        """Fold a launch's reduction partials into a target store.

        Shared by the eager submit path and the trace-replay path (which
        resolves targets through captured slot bindings instead of task
        arguments).
        """
        field = self.regions.field(store)
        accumulator = field.read_scalar()
        if len(partials) == 1:
            combined = redop.combine_scalars(accumulator, partials[0].value)
        else:
            values = np.fromiter(
                (partial.value for partial in partials),
                dtype=np.float64,
                count=len(partials),
            )
            folded = float(numpy_ufunc_for(redop).reduce(values))
            combined = redop.combine_scalars(accumulator, folded)
        field.write_scalar(combined)
