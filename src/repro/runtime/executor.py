"""Functional execution of index tasks over region fields.

The executor materialises each point task of a launched index task,
gathers NumPy views of its sub-stores, runs either the compiled KIR kernel
or the task's opaque implementation, folds reduction partials into their
target stores, and returns the analytically-modelled execution time of the
launch (the maximum over GPUs of the per-GPU kernel time).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.ir.privilege import Privilege, ReductionOp
from repro.ir.task import IndexTask, StoreArg
from repro.kernel.compiler import CompiledKernel
from repro.kernel.lowering import ReductionPartial
from repro.runtime.machine import MachineConfig
from repro.runtime.opaque import OpaqueTaskImpl
from repro.runtime.region import RegionManager


class TaskExecutor:
    """Executes index tasks functionally and models their kernel time."""

    def __init__(self, regions: RegionManager, machine: MachineConfig) -> None:
        self.regions = regions
        self.machine = machine

    # ------------------------------------------------------------------
    # Compiled (KIR) execution.
    # ------------------------------------------------------------------
    def execute_compiled(self, task: IndexTask, kernel: CompiledKernel) -> float:
        """Run a task through its compiled kernel; returns kernel seconds."""
        per_gpu_seconds: Dict[int, float] = {}
        reduction_totals: Dict[int, List[ReductionPartial]] = {}

        for rank, point in enumerate(task.launch_domain.points()):
            buffers: Dict[str, Optional[np.ndarray]] = {}
            element_counts: Dict[str, int] = {}
            for name, arg_index in kernel.binding.buffer_args.items():
                arg = task.args[arg_index]
                rect = arg.partition.sub_store_rect(point, arg.store.shape)
                element_counts[name] = rect.volume
                if self._is_reduction_target(arg):
                    buffers[name] = None
                else:
                    buffers[name] = self.regions.field(arg.store).view(rect)
            scalars = {
                name: task.scalar_args[index]
                for name, index in kernel.binding.scalar_args.items()
            }

            partials = kernel.executor(buffers, scalars)
            for name, partial in partials.items():
                arg_index = kernel.binding.buffer_args.get(name)
                if arg_index is None:
                    continue
                reduction_totals.setdefault(arg_index, []).append(partial)

            gpu = rank % max(1, self.machine.num_gpus)
            seconds = kernel.cost.estimate_seconds(element_counts, self.machine)
            per_gpu_seconds[gpu] = per_gpu_seconds.get(gpu, 0.0) + seconds

        self._apply_reductions(task, reduction_totals)
        return max(per_gpu_seconds.values()) if per_gpu_seconds else 0.0

    # ------------------------------------------------------------------
    # Opaque execution.
    # ------------------------------------------------------------------
    def execute_opaque(self, task: IndexTask, impl: OpaqueTaskImpl) -> float:
        """Run a task through its opaque implementation; returns kernel seconds."""
        per_gpu_seconds: Dict[int, float] = {}
        reduction_totals: Dict[int, List[ReductionPartial]] = {}

        for rank, point in enumerate(task.launch_domain.points()):
            buffers: Dict[int, Optional[np.ndarray]] = {}
            for index, arg in enumerate(task.args):
                rect = arg.partition.sub_store_rect(point, arg.store.shape)
                if self._is_reduction_target(arg):
                    buffers[index] = None
                else:
                    buffers[index] = self.regions.field(arg.store).view(rect)
            partials = impl.execute(task, point, buffers)
            if partials:
                for arg_index, partial in partials.items():
                    reduction_totals.setdefault(arg_index, []).append(partial)

            gpu = rank % max(1, self.machine.num_gpus)
            seconds = impl.cost_seconds(task, point, buffers, self.machine)
            per_gpu_seconds[gpu] = per_gpu_seconds.get(gpu, 0.0) + seconds

        self._apply_reductions(task, reduction_totals)
        return max(per_gpu_seconds.values()) if per_gpu_seconds else 0.0

    # ------------------------------------------------------------------
    # Helpers.
    # ------------------------------------------------------------------
    @staticmethod
    def _is_reduction_target(arg: StoreArg) -> bool:
        return arg.privilege is Privilege.REDUCE

    def _apply_reductions(
        self,
        task: IndexTask,
        totals: Dict[int, List[ReductionPartial]],
    ) -> None:
        """Fold per-point reduction partials into their target stores."""
        for arg_index, partials in totals.items():
            if not partials:
                continue
            arg = task.args[arg_index]
            redop = arg.redop if arg.redop is not None else ReductionOp.ADD
            field = self.regions.field(arg.store)
            accumulator = field.read_scalar()
            for partial in partials:
                accumulator = redop.combine_scalars(accumulator, partial.value)
            field.write_scalar(accumulator)
