"""Opaque task implementations and their chunk-level operator registry.

Not every library task has a KIR generator: Legate Sparse's CSR SpMV, the
random-number fills of cuPyNumeric, and the multigrid transfer operators
are implemented directly against the runtime (in the paper these are CUDA
task variants without MLIR generators).  Such tasks cannot join a fused
kernel, but they still flow through the same execution and profiling
paths.  An :class:`OpaqueTaskImpl` supplies the functional NumPy
implementation and the analytic cost of one point task.

Chunk-level implementations (``REPRO_OPAQUE_CHUNKS``)
-----------------------------------------------------
A registered operator may additionally carry an
:class:`OpaqueChunkImpl`: one library call over the merged span of a
contiguous rank chunk ``[start, stop)`` (e.g. a single NumPy GEMV over
the merged row block) instead of one call per rank.  The chunk contract
is deliberately pipe-safe — a chunk implementation receives only

* ``bases`` — argument index → the argument's *full* base array
  (``None`` for pure reduction targets), never task or point objects,
* ``rects`` — argument index → the chunk's per-rank ``(lo, hi)``
  half-open wire rectangles in rank order,
* ``scalars`` — the launch's ``scalar_args`` tuple,

so the same callable serves the parent's thread fast path (bases are
region-field arrays) and the worker-process pool (bases are zero-copy
shared-memory views attached from block descriptors).  The chunk cost
function returns the *per-rank* modelled seconds of the chunk, mirroring
the per-rank cost arithmetic exactly, and a chunk execute returns its
per-rank reduction-partial dicts (or ``None`` when the operator
reduces nothing) — so the launch join still folds partials and per-GPU
seconds in recorded rank order, bit-identical to the per-rank path.

Soundness rules for a chunk implementation:

* every output element must be computed by the same floating-point
  operations in the same order as the per-rank call that owns it;
* the cost function must not read data the chunk's execute wrote
  (the per-rank loop interleaves execute and cost; the chunk path runs
  all executes before all costs);
* per-rank seconds must reproduce the per-rank cost arithmetic
  bit-for-bit (same float operations, same order).

Because operators register under a stable name at *module import time*,
they are importable by name: :func:`resolve_opaque_impl` lets a worker
process resolve ``(name, defining module)`` from its own registry —
importing the module first if needed (``spawn`` start method; ``fork``
workers inherit the parent's populated registry) — which is what lets
opaque rank chunks ship to the process pool and ride resident plans.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.ir.domain import Point
from repro.ir.task import IndexTask
from repro.kernel.lowering import ReductionPartial
from repro.runtime import telemetry
from repro.runtime.machine import MachineConfig

#: Buffers handed to an opaque implementation: argument index -> NumPy view
#: of the point task's sub-store (None for pure reduction targets).
OpaqueBuffers = Dict[int, Optional[np.ndarray]]

ExecuteFn = Callable[[IndexTask, Point, OpaqueBuffers], Optional[Dict[int, ReductionPartial]]]
CostFn = Callable[[IndexTask, Point, OpaqueBuffers, MachineConfig], float]

#: One rank rectangle in wire form: ``(lo, hi)`` integer tuples (half-open).
WireRect = Tuple[Tuple[int, ...], Tuple[int, ...]]

#: Chunk bases: argument index -> full base array (None for reductions).
ChunkBases = Dict[int, Optional[np.ndarray]]

#: Chunk geometry: argument index -> the chunk's per-rank wire rects.
ChunkRects = Dict[int, Sequence[WireRect]]

ChunkExecuteFn = Callable[
    [ChunkBases, ChunkRects, tuple],
    Optional[List[Optional[Dict[int, ReductionPartial]]]],
]
ChunkCostFn = Callable[[ChunkBases, ChunkRects, tuple, MachineConfig], List[float]]


@dataclass
class OpaqueChunkImpl:
    """The chunk-level (multi-rank) variant of an opaque operator."""

    #: One library call over the merged span of ranks ``[start, stop)``;
    #: returns per-rank reduction-partial dicts in rank order, or
    #: ``None`` when the operator has no reduction targets.
    execute: ChunkExecuteFn
    #: Per-rank modelled seconds of the chunk, in rank order, mirroring
    #: the per-rank cost arithmetic exactly.
    cost_seconds: ChunkCostFn


@dataclass
class OpaqueTaskImpl:
    """A library-provided task variant without a kernel generator."""

    name: str
    execute: ExecuteFn
    cost_seconds: CostFn
    #: Optional chunk-level implementation (``REPRO_OPAQUE_CHUNKS``).
    chunk: Optional[OpaqueChunkImpl] = None
    #: Module whose import registers this operator — what makes the
    #: operator importable by name in worker processes.  ``None`` for
    #: hand-built impls, which therefore never ship off-process.
    module: Optional[str] = None


class OpaqueTaskRegistry:
    """Registry of opaque task implementations, keyed by task name."""

    def __init__(self) -> None:
        self._impls: Dict[str, OpaqueTaskImpl] = {}

    def register(self, impl: OpaqueTaskImpl) -> None:
        """Register (or replace) an opaque implementation."""
        self._impls[impl.name] = impl

    def has(self, task_name: str) -> bool:
        """True when an implementation exists for the task type."""
        return task_name in self._impls

    def get(self, task_name: str) -> OpaqueTaskImpl:
        """Look up the implementation of a task type."""
        impl = self._impls.get(task_name)
        if impl is None:
            raise KeyError(f"no opaque implementation registered for task '{task_name}'")
        return impl

    def registered_names(self):
        """All registered task names (for documentation/tests)."""
        return sorted(self._impls)


_DEFAULT = OpaqueTaskRegistry()


def default_opaque_registry() -> OpaqueTaskRegistry:
    """The process-wide opaque-task registry."""
    return _DEFAULT


def register_opaque_task(
    name: str,
    execute: ExecuteFn,
    cost_seconds: CostFn,
    registry: Optional[OpaqueTaskRegistry] = None,
    chunk_execute: Optional[ChunkExecuteFn] = None,
    chunk_cost_seconds: Optional[ChunkCostFn] = None,
) -> OpaqueTaskImpl:
    """Convenience helper to register an opaque task implementation.

    Supplying both ``chunk_execute`` and ``chunk_cost_seconds`` attaches
    a chunk-level implementation; the defining module of ``execute`` is
    recorded so worker processes can resolve the operator by name.
    """
    chunk = None
    if chunk_execute is not None and chunk_cost_seconds is not None:
        chunk = OpaqueChunkImpl(execute=chunk_execute, cost_seconds=chunk_cost_seconds)
    impl = OpaqueTaskImpl(
        name=name,
        execute=execute,
        cost_seconds=cost_seconds,
        chunk=chunk,
        module=getattr(execute, "__module__", None),
    )
    (registry or _DEFAULT).register(impl)
    return impl


def resolve_opaque_impl(
    name: str,
    module: Optional[str] = None,
    registry: Optional[OpaqueTaskRegistry] = None,
) -> OpaqueTaskImpl:
    """Resolve a registered operator by name, importing its module if needed.

    Worker processes started with ``fork`` inherit the parent's populated
    registry; ``spawn`` workers import ``module`` first, whose
    registration side effect installs the operator.  Raises ``KeyError``
    when the operator cannot be resolved either way.
    """
    registry = registry or _DEFAULT
    if not registry.has(name) and module:
        with telemetry.span("opaque.resolve", f"op={name} module={module}"):
            importlib.import_module(module)
    return registry.get(name)
