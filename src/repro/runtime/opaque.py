"""Opaque task implementations.

Not every library task has a KIR generator: Legate Sparse's CSR SpMV, the
random-number fills of cuPyNumeric, and the multigrid transfer operators
are implemented directly against the runtime (in the paper these are CUDA
task variants without MLIR generators).  Such tasks cannot join a fused
kernel, but they still flow through the same execution and profiling
paths.  An :class:`OpaqueTaskImpl` supplies the functional NumPy
implementation and the analytic cost of one point task.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from repro.ir.domain import Point
from repro.ir.task import IndexTask
from repro.kernel.lowering import ReductionPartial
from repro.runtime.machine import MachineConfig

#: Buffers handed to an opaque implementation: argument index -> NumPy view
#: of the point task's sub-store (None for pure reduction targets).
OpaqueBuffers = Dict[int, Optional[np.ndarray]]

ExecuteFn = Callable[[IndexTask, Point, OpaqueBuffers], Optional[Dict[int, ReductionPartial]]]
CostFn = Callable[[IndexTask, Point, OpaqueBuffers, MachineConfig], float]


@dataclass
class OpaqueTaskImpl:
    """A library-provided task variant without a kernel generator."""

    name: str
    execute: ExecuteFn
    cost_seconds: CostFn


class OpaqueTaskRegistry:
    """Registry of opaque task implementations, keyed by task name."""

    def __init__(self) -> None:
        self._impls: Dict[str, OpaqueTaskImpl] = {}

    def register(self, impl: OpaqueTaskImpl) -> None:
        """Register (or replace) an opaque implementation."""
        self._impls[impl.name] = impl

    def has(self, task_name: str) -> bool:
        """True when an implementation exists for the task type."""
        return task_name in self._impls

    def get(self, task_name: str) -> OpaqueTaskImpl:
        """Look up the implementation of a task type."""
        impl = self._impls.get(task_name)
        if impl is None:
            raise KeyError(f"no opaque implementation registered for task '{task_name}'")
        return impl

    def registered_names(self):
        """All registered task names (for documentation/tests)."""
        return sorted(self._impls)


_DEFAULT = OpaqueTaskRegistry()


def default_opaque_registry() -> OpaqueTaskRegistry:
    """The process-wide opaque-task registry."""
    return _DEFAULT


def register_opaque_task(
    name: str,
    execute: ExecuteFn,
    cost_seconds: CostFn,
    registry: Optional[OpaqueTaskRegistry] = None,
) -> OpaqueTaskImpl:
    """Convenience helper to register an opaque task implementation."""
    impl = OpaqueTaskImpl(name=name, execute=execute, cost_seconds=cost_seconds)
    (registry or _DEFAULT).register(impl)
    return impl
