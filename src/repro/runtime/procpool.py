"""Persistent worker-process pool for point-task rank chunks.

``REPRO_DISPATCH_BACKEND=process`` routes the rank chunks of *compiled*
launches to this pool instead of the in-process thread pool, removing
the GIL ceiling for interpreter-heavy and small-tile kernels (the thread
backend only scales when NumPy releases the GIL on large tiles).

Protocol
--------
Each worker owns one duplex pipe and serves requests strictly in FIFO
order, so the parent can stream several chunk requests to one worker and
read the replies back in submission order without any reply matching.
A :class:`ChunkRequest` carries everything a chunk needs:

* a **kernel spec** — the KIR function, a stripped parameter binding and
  the backend name (``codegen``/``interpreter``/``differential``,
  whatever the parent's executor runs) — shipped at most once per
  worker and cached there under a parent-assigned id.  Workers build
  their executor through the normal :func:`repro.kernel.lowering.lower`
  entry point, so the codegen backend lands in the process-local
  source-keyed closure cache: two isomorphic kernels compile once per
  worker, exactly like the parent's cache.
* the **scalar arguments** of the launch,
* per-buffer **block descriptors** into the shared-memory arena plus the
  chunk's per-rank rectangles — workers build zero-copy NumPy views of
  the same physical pages the parent's region fields live in, so output
  tiles are written in place with no serialisation of array data,
* the ``[start, stop)`` **rank range**, the elementwise-batching flag,
  and (on the eager path) the kernel's cost descriptor and machine
  model so the worker returns the per-rank modelled seconds alongside
  the reduction partials.

Replies come back in rank order; the parent folds partials and per-GPU
seconds at the launch join exactly like the thread backend, so buffers
and simulated time are bit-identical between ``thread`` and ``process``
for every ``REPRO_WORKERS`` × ``REPRO_POINT_WORKERS`` combination.
Exceptions (including ``BackendDivergenceError`` from a differential
worker) are pickled back and re-raised in the parent.

Lifetime
--------
The pool is a lazy process-wide singleton sized like the shared thread
pool.  ``config.reload_flags()`` retires it when the sizing flags or the
backend change, and an ``atexit`` hook (plus the test suite's session
fixture) shuts the workers down so runs never leak child processes.
Workers are started with the ``fork`` method where available (they
inherit the warm codegen cache); ``spawn`` elsewhere.
"""

from __future__ import annotations

import atexit
import multiprocessing
import threading
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import config
from repro.runtime.shm import BlockDescriptor, attach_view, close_attachments

#: Rank rectangle as shipped to workers: ``(lo, hi)`` integer tuples
#: (half-open), lean enough to pickle by the thousand.
WireRect = Tuple[Tuple[int, ...], Tuple[int, ...]]


@dataclass(frozen=True)
class KernelSpec:
    """Everything a worker needs to rebuild a launch's executor."""

    function: object  # kernel.kir.Function
    binding: object  # kernel.passes.compose.KernelBinding (stripped)
    backend: str


@dataclass(frozen=True)
class SuperKernelSpec:
    """Shippable form of an epoch super-kernel (``runtime/superkernel``).

    Fused units carry generated source rather than a single KIR function;
    workers compile it through the same process-local source-keyed cache
    the codegen backend uses, so isomorphic fused units compile once per
    worker.
    """

    source: str
    name: str


@dataclass
class ChunkRequest:
    """One rank chunk of one compiled launch."""

    kernel_id: int
    #: Filled in by the pool for the first request a worker sees.
    spec: Optional[object]  # KernelSpec | SuperKernelSpec
    scalars: Dict[str, float]
    #: ``(buffer name, is_reduction, descriptor or None, chunk rects)``.
    buffers: Tuple[Tuple[str, bool, Optional[BlockDescriptor], List[WireRect]], ...]
    start: int
    stop: int
    #: Purely element-wise launch: one merged closure call per chunk.
    elementwise: bool = False
    #: Eager path only — workers model per-rank seconds from these; the
    #: replay path captures seconds at record time and ships ``None``.
    cost: Optional[object] = None
    machine: Optional[object] = None
    #: Super-kernel chunks only: per-buffer calling convention aligned
    #: with ``buffers`` (``merged`` = one contiguous span view,
    #: ``ranked`` = the chunk's per-rank view list).
    modes: Optional[Tuple[str, ...]] = None


#: Reply payload: per-rank reduction partials and per-rank seconds
#: (empty seconds when no cost model was shipped).
ChunkResult = Tuple[List[Dict[str, object]], List[float]]


class ProcessPoolBrokenError(RuntimeError):
    """The pool's transport failed (a worker died mid-chunk).

    Distinct from errors a worker *reports* (those re-raise with their
    own type, e.g. ``BackendDivergenceError``): a broken transport means
    the chunk's fate is unknown, the pool is torn down, and the caller
    should fall back to the thread substrate — the next launch rebuilds
    a fresh pool through :func:`process_pool`.
    """


def _wire_rects(rects: Sequence) -> List[WireRect]:
    """Strip Rect objects to ``(lo, hi)`` tuples for the pipe."""
    return [(rect.lo, rect.hi) for rect in rects]


def _view_of(base: np.ndarray, rect: WireRect) -> np.ndarray:
    lo, hi = rect
    return base[tuple(slice(l, h) for l, h in zip(lo, hi))]


def _rect_volume(rect: WireRect) -> int:
    lo, hi = rect
    volume = 1
    for l, h in zip(lo, hi):
        volume *= max(0, h - l)
    return volume


# ----------------------------------------------------------------------
# Worker side.
# ----------------------------------------------------------------------
def _execute_chunk(
    request: ChunkRequest,
    executors: Dict[int, object],
) -> ChunkResult:
    """Run one chunk inside a worker process."""
    executor = executors.get(request.kernel_id)
    if executor is None:
        spec = request.spec
        if spec is None:
            raise RuntimeError(
                f"worker has no executor for kernel id {request.kernel_id} "
                "and the request carried no spec"
            )
        if isinstance(spec, SuperKernelSpec):
            from repro.kernel.codegen import _compile_source

            executor, _fresh = _compile_source(spec.source, spec.name)
        else:
            from repro.kernel.lowering import lower

            executor = lower(spec.function, spec.binding, spec.backend)
        executors[request.kernel_id] = executor

    bases: Dict[str, Optional[np.ndarray]] = {}
    for name, is_reduction, descriptor, _rects in request.buffers:
        bases[name] = None if is_reduction else attach_view(descriptor)

    if request.modes is not None:
        # Super-kernel chunk: one fused-closure call over the chunk's
        # views — merged buffers get the contiguous span, ranked buffers
        # the per-rank view list (mirroring ``run_superkernel_ranks``).
        fused_buffers: Dict[str, object] = {}
        for (name, _is_reduction, _descriptor, rects), mode in zip(
            request.buffers, request.modes
        ):
            base = bases[name]
            if base is None:
                fused_buffers[name] = None
            elif mode == "ranked":
                fused_buffers[name] = [_view_of(base, rect) for rect in rects]
            else:
                fused_buffers[name] = _view_of(base, (rects[0][0], rects[-1][1]))
        partials = executor(fused_buffers, request.scalars)
        return [partials], []

    partials_by_rank: List[Dict[str, object]] = []
    seconds_by_rank: List[float] = []
    cost = request.cost
    machine = request.machine
    seconds_memo: Dict[Tuple[int, ...], float] = {}
    buffers: Dict[str, Optional[np.ndarray]] = {}

    if request.elementwise:
        # One merged closure call over the chunk's contiguous span —
        # element-for-element identical to the per-rank loop (the launch
        # passed ``pool.contiguous_elementwise_tables`` before routing;
        # this is ``pool.merged_table_span`` in wire-rect form).
        for name, is_reduction, _descriptor, rects in request.buffers:
            base = bases[name]
            merged = (rects[0][0], rects[-1][1])
            buffers[name] = None if base is None else _view_of(base, merged)
        executor(buffers, request.scalars)
        partials_by_rank = [{} for _ in range(request.stop - request.start)]
    else:
        for index in range(request.stop - request.start):
            for name, is_reduction, _descriptor, rects in request.buffers:
                base = bases[name]
                buffers[name] = (
                    None if base is None else _view_of(base, rects[index])
                )
            partials_by_rank.append(executor(buffers, request.scalars))

    if cost is not None:
        for index in range(request.stop - request.start):
            volumes = tuple(
                _rect_volume(rects[index])
                for _name, _is_reduction, _descriptor, rects in request.buffers
            )
            seconds = seconds_memo.get(volumes)
            if seconds is None:
                element_counts = {
                    entry[0]: volume
                    for entry, volume in zip(request.buffers, volumes)
                }
                seconds = cost.estimate_seconds(element_counts, machine)
                seconds_memo[volumes] = seconds
            seconds_by_rank.append(seconds)
    return partials_by_rank, seconds_by_rank


def _worker_main(connection) -> None:
    """Request loop of one worker process (module-level for ``spawn``)."""
    executors: Dict[int, object] = {}
    try:
        while True:
            try:
                message = connection.recv()
            except (EOFError, OSError):
                break
            if message is None:
                break
            try:
                connection.send(("ok", _execute_chunk(message, executors)))
            except BaseException as error:  # noqa: BLE001 - shipped to parent
                try:
                    connection.send(("err", error, traceback.format_exc()))
                except Exception:
                    # Unpicklable exception: degrade to a plain repr.
                    connection.send(
                        ("err", RuntimeError(repr(error)), traceback.format_exc())
                    )
    finally:
        close_attachments()
        connection.close()


# ----------------------------------------------------------------------
# Parent side.
# ----------------------------------------------------------------------
class ProcessWorkerPool:
    """A fixed-size pool of kernel-executing worker processes."""

    def __init__(self, size: int) -> None:
        self.size = max(1, size)
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        self._connections = []
        self._processes = []
        #: Kernel ids each worker already holds an executor for.
        self._shipped: List[set] = []
        self._lock = threading.Lock()
        self._next_worker = 0
        self.closed = False
        self._torn_down = False
        for _ in range(self.size):
            parent_end, worker_end = context.Pipe(duplex=True)
            process = context.Process(
                target=_worker_main, args=(worker_end,), daemon=True
            )
            process.start()
            worker_end.close()
            self._connections.append(parent_end)
            self._processes.append(process)
            self._shipped.append(set())

    # ------------------------------------------------------------------
    def run_chunks(
        self,
        kernel_id: int,
        spec: KernelSpec,
        requests: Sequence[ChunkRequest],
    ) -> List[ChunkResult]:
        """Execute chunk requests across the workers, results in order.

        Requests are assigned round-robin, all sent before any reply is
        awaited (workers overlap), and replies are collected in request
        order so join-point folds see rank order exactly like the thread
        backend.  Serialised with a lock: chunks are dispatched from the
        scheduling thread only, the lock just makes misuse safe.
        """
        with self._lock:
            if self.closed:
                raise ProcessPoolBrokenError("process pool is closed")
            try:
                assignments: List[int] = []
                for request in requests:
                    worker = self._next_worker
                    self._next_worker = (self._next_worker + 1) % self.size
                    request.spec = (
                        spec if kernel_id not in self._shipped[worker] else None
                    )
                    self._shipped[worker].add(kernel_id)
                    self._connections[worker].send(request)
                    assignments.append(worker)
                results: List[ChunkResult] = []
                # Per-worker FIFO: replies of one worker come back in the
                # order its requests were sent, so reading in assignment
                # order is reading in request order.
                for position, worker in enumerate(assignments):
                    reply = self._connections[worker].recv()
                    if reply[0] == "err":
                        _tag, error, worker_traceback = reply
                        # Drain the remaining replies so the pipes stay
                        # in sync, and forget the kernel on every
                        # assigned worker (its executor install may not
                        # have landed).
                        for later in assignments[position + 1 :]:
                            self._connections[later].recv()
                        for assigned in assignments:
                            self._shipped[assigned].discard(kernel_id)
                        message = (
                            f"{error} (in process-pool worker)\n"
                            f"--- worker traceback ---\n{worker_traceback}"
                        )
                        try:
                            raised = type(error)(message)
                        except Exception:  # pragma: no cover - exotic ctor
                            raised = RuntimeError(message)
                        raise raised from error
                    results.append(reply[1])
                return results
            except (EOFError, BrokenPipeError, OSError) as transport_error:
                # A worker died mid-chunk (OOM kill, segfault): the pipe
                # protocol is out of sync and the chunk's fate unknown.
                # Mark the pool dead so callers fall back to threads and
                # the next launch rebuilds a fresh pool.
                self.closed = True
                failure = transport_error
        self.shutdown()
        raise ProcessPoolBrokenError(
            f"process-pool worker died mid-chunk: {failure!r}"
        ) from failure

    def shutdown(self) -> None:
        """Stop every worker (idempotent)."""
        with self._lock:
            if self._torn_down:
                return
            self._torn_down = True
            self.closed = True
            for connection in self._connections:
                try:
                    connection.send(None)
                except (BrokenPipeError, OSError):
                    pass
            for process in self._processes:
                process.join(timeout=2.0)
                if process.is_alive():  # pragma: no cover - stuck worker
                    process.terminate()
                    process.join(timeout=1.0)
            for connection in self._connections:
                try:
                    connection.close()
                except OSError:  # pragma: no cover
                    pass
            self._connections = []
            self._processes = []
            self._shipped = []


# ----------------------------------------------------------------------
# The singleton.
# ----------------------------------------------------------------------
_POOL: Optional[ProcessWorkerPool] = None
_POOL_LOCK = threading.Lock()
_KERNEL_IDS_LOCK = threading.Lock()
_NEXT_KERNEL_ID = 0


def process_pool() -> ProcessWorkerPool:
    """The process-wide worker-process pool, sized like the thread pool."""
    from repro.runtime.pool import shared_pool_size

    global _POOL
    size = shared_pool_size()
    with _POOL_LOCK:
        if _POOL is None or _POOL.size != size or _POOL.closed:
            if _POOL is not None:
                _POOL.shutdown()
            _POOL = ProcessWorkerPool(size)
        return _POOL


def shutdown_process_pool() -> None:
    """Retire the pool singleton (flag reloads, atexit, test teardown)."""
    global _POOL
    with _POOL_LOCK:
        pool = _POOL
        _POOL = None
    if pool is not None:
        pool.shutdown()


def _reload_process_pool() -> None:
    """Config-reload hook: retire the pool when it no longer fits.

    A pool sized from stale flag values must not serve the next launch;
    shutting down (rather than letting :func:`process_pool` resize
    lazily) also reaps the worker processes promptly when a test flips
    ``REPRO_DISPATCH_BACKEND`` back to ``thread``.
    """
    from repro.runtime.pool import shared_pool_size

    with _POOL_LOCK:
        pool = _POOL
    if pool is None:
        return
    if config.dispatch_backend() != "process" or pool.size != shared_pool_size():
        shutdown_process_pool()


def kernel_spec_id(kernel) -> int:
    """A stable process-lifetime id for a compiled kernel.

    Attached to the :class:`~repro.kernel.compiler.CompiledKernel` on
    first dispatch; identifies its executor in worker-side caches (ids
    are never reused, unlike ``id()``).
    """
    existing = getattr(kernel, "_proc_kernel_id", None)
    if existing is not None:
        return existing
    global _NEXT_KERNEL_ID
    with _KERNEL_IDS_LOCK:
        _NEXT_KERNEL_ID += 1
        assigned = _NEXT_KERNEL_ID
    kernel._proc_kernel_id = assigned
    return assigned


def spec_for(kernel) -> KernelSpec:
    """Build the shippable spec of a compiled kernel (cached on it).

    The binding is stripped to the two parameter maps the executors
    consult — the full binding drags stores and partitions along, none
    of which a worker touches.
    """
    existing = getattr(kernel, "_proc_kernel_spec", None)
    if existing is not None:
        return existing
    if getattr(kernel, "is_superkernel", False):
        spec = SuperKernelSpec(source=kernel.source, name=kernel.name)
        kernel._proc_kernel_spec = spec
        return spec
    from repro.kernel.passes.compose import KernelBinding

    binding = kernel.binding
    stripped = KernelBinding(
        buffer_args=dict(binding.buffer_args),
        scalar_args=dict(binding.scalar_args),
    )
    stripped.buffer_order = binding.buffer_order
    stripped.scalar_order = binding.scalar_order
    spec = KernelSpec(
        function=kernel.function,
        binding=stripped,
        backend=kernel.executor.backend,
    )
    kernel._proc_kernel_spec = spec
    return spec


config.register_reload_callback(_reload_process_pool)
atexit.register(shutdown_process_pool)
