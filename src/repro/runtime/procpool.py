"""Persistent worker-process pool for point-task rank chunks.

``REPRO_DISPATCH_BACKEND=process`` routes the rank chunks of *compiled*
launches to this pool instead of the in-process thread pool, removing
the GIL ceiling for interpreter-heavy and small-tile kernels (the thread
backend only scales when NumPy releases the GIL on large tiles).

Protocol
--------
Each worker owns one duplex pipe and serves requests strictly in FIFO
order.  Every request carries a parent-assigned **request id** and every
reply echoes it back: a per-worker reader thread funnels all replies
into one scheduler-side completion map keyed by request id, so any
number of dispatching threads can have chunks in flight on the same
worker pipes concurrently — the wide-level process dispatch of
``runtime/scheduler.py`` ships several steps of one dependence level at
once.  Send-side state that *does* depend on FIFO order (the shipped
kernel/table/plan sets and the descriptor interning below) is mutated
under a per-worker send lock held across the state update and the
``send_bytes`` call, so the per-worker send order still matches the
state both sides agreed on.  A :class:`ChunkRequest` carries everything
a chunk needs:

* a **kernel spec** — the KIR function, a stripped parameter binding and
  the backend name (``codegen``/``interpreter``/``differential``,
  whatever the parent's executor runs) — shipped at most once per
  worker and cached there under a parent-assigned id.  Workers build
  their executor through the normal :func:`repro.kernel.lowering.lower`
  entry point, so the codegen backend lands in the process-local
  source-keyed closure cache: two isomorphic kernels compile once per
  worker, exactly like the parent's cache.
* the **scalar arguments** of the launch,
* per-buffer **block descriptors** into the shared-memory arena plus the
  chunk's per-rank rectangles — workers build zero-copy NumPy views of
  the same physical pages the parent's region fields live in, so output
  tiles are written in place with no serialisation of array data,
* the ``[start, stop)`` **rank range**, the elementwise-batching flag,
  and (on the eager path) the kernel's cost descriptor and machine
  model so the worker returns the per-rank modelled seconds alongside
  the reduction partials.

Replies are matched by request id and reassembled in rank order; the
parent folds partials and per-GPU seconds at the launch join exactly
like the thread backend, so buffers
and simulated time are bit-identical between ``thread`` and ``process``
for every ``REPRO_WORKERS`` × ``REPRO_POINT_WORKERS`` combination.
Exceptions (including ``BackendDivergenceError`` from a differential
worker) are pickled back and re-raised in the parent.

Geometry is interned on both sides of the pipe: every wire rect list
carries a stable parent-assigned table id, workers cache the list under
that id on receipt, and the parent ships ``None`` in place of a list a
worker already holds — identical rect tables cross the pipe once per
worker, not once per chunk.

Opaque launches (``REPRO_OPAQUE_CHUNKS``) ship as
:class:`OpaqueChunkRequest` instead: no kernel spec travels — the
request names a registered operator and its defining module, and the
worker resolves the implementation from its *own* registry
(:func:`repro.runtime.opaque.resolve_opaque_impl`; ``fork`` workers
inherit the parent's populated registry, ``spawn`` workers import the
module first).  The chunk executes over the same zero-copy
shared-memory views and returns per-rank partials and per-rank modelled
seconds like a compiled chunk with a cost model.

Plan-resident replay (``REPRO_RESIDENT_PLANS``)
-----------------------------------------------
Replaying a captured :class:`ExecutionPlan` through per-chunk requests
re-sends the same descriptors, names and geometry every iteration.  With
residency enabled the parent instead registers the whole plan with the
pool once — a :class:`ResidentPlan` maps schedule-step indices to
:class:`ResidentStep` templates holding the kernel spec, the full
rank-indexed rect table, the step's chunk plan and the calling
convention of every shippable compiled step — and ships it to each
worker at most once, keyed by a parent-assigned plan id.  Chunk i of a
resident step always lands on worker ``i % size``, so each worker's
rank ranges are baked into its copy of the plan at ship time and never
travel again.  Every later dispatch sends one lean ``("r", request id,
plan id, step index, scalar values, descriptor sync)`` message per
engaged worker and gets the per-chunk results back in one reply; once the sync
is all-integer (the steady state) the message travels as a fixed
binary frame (:func:`_pack_run_message`) a fraction the size of its
pickled form and byte-stable across Python versions.  Frontends bind
fresh stores (hence fresh arena blocks) per epoch, so field addresses
*cannot* be baked into the template; instead the sync entry interns
descriptors per worker — a :class:`~repro.runtime.shm.BlockDescriptor`
crosses the pipe once and is a small integer id ever after (arena
offsets cycle through a bounded set in steady replay, so the id table
saturates after a few epochs).  Workers slice the resident rect tables
to each ``[start, stop)`` range themselves and execute through the
same :func:`_execute_chunk` machinery as the per-chunk protocol, so
results are bit-identical.  Staleness is generation-based:
``RegionManager.attach`` (descriptor swaps), store releases and
``config.reload_flags()`` bump :func:`resident_generation`, which
retires every parent-side :class:`ResidentPlan` built under an older
generation; a dead worker tears the pool down, the affected launch
degrades to the per-chunk protocol (which rebuilds a fresh pool), and
the next replay re-ships the plan to the fresh workers.

The pool also meters its own wire traffic: every request message is
pickled once (``ForkingPickler``, exactly what ``Connection.send``
does), its byte length added to :attr:`ProcessWorkerPool.wire_bytes`,
and the payload sent with ``send_bytes`` — so the profiler's
``wire_bytes_per_epoch`` figures measure real serialized sizes with no
double pickling.

Lifetime
--------
The pool is a lazy process-wide singleton sized like the shared thread
pool.  ``config.reload_flags()`` retires it when the sizing flags or the
backend change, and an ``atexit`` hook (plus the test suite's session
fixture) shuts the workers down so runs never leak child processes.
Workers are started with the ``fork`` method where available (they
inherit the warm codegen cache); ``spawn`` elsewhere.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import pickle
import struct
import threading
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing.reduction import ForkingPickler
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import config
from repro.runtime import telemetry
from repro.runtime.shm import BlockDescriptor, attach_view, close_attachments

#: Rank rectangle as shipped to workers: ``(lo, hi)`` integer tuples
#: (half-open), lean enough to pickle by the thousand.
WireRect = Tuple[Tuple[int, ...], Tuple[int, ...]]


@dataclass(frozen=True)
class KernelSpec:
    """Everything a worker needs to rebuild a launch's executor."""

    function: object  # kernel.kir.Function
    binding: object  # kernel.passes.compose.KernelBinding (stripped)
    backend: str


@dataclass(frozen=True)
class SuperKernelSpec:
    """Shippable form of an epoch super-kernel (``runtime/superkernel``).

    Fused units carry generated source rather than a single KIR function;
    workers compile it through the same process-local source-keyed cache
    the codegen backend uses, so isomorphic fused units compile once per
    worker.
    """

    source: str
    name: str


@dataclass
class ChunkRequest:
    """One rank chunk of one compiled launch."""

    kernel_id: int
    #: Filled in by the pool for the first request a worker sees.
    spec: Optional[object]  # KernelSpec | SuperKernelSpec
    scalars: Dict[str, float]
    #: ``(buffer name, is_reduction, descriptor or None, table id or
    #: None, chunk rects or None)``.  The table id names the rect list in
    #: the worker-side intern cache; the pool nulls the rects of tables a
    #: worker already holds, so identical geometry crosses the pipe once
    #: per worker.
    buffers: Tuple[
        Tuple[str, bool, Optional[BlockDescriptor], Optional[int], Optional[List[WireRect]]],
        ...,
    ]
    start: int
    stop: int
    #: Purely element-wise launch: one merged closure call per chunk.
    elementwise: bool = False
    #: Eager path only — workers model per-rank seconds from these; the
    #: replay path captures seconds at record time and ships ``None``.
    cost: Optional[object] = None
    machine: Optional[object] = None
    #: Super-kernel chunks only: per-buffer calling convention aligned
    #: with ``buffers`` (``merged`` = one contiguous span view,
    #: ``ranked`` = the chunk's per-rank view list).
    modes: Optional[Tuple[str, ...]] = None
    #: Parent-assigned request id, echoed back in the reply so the
    #: completion map can match it to its waiter (filled in by the pool).
    req_id: int = 0


#: Reply payload: per-rank reduction partials and per-rank seconds
#: (empty seconds when no cost model was shipped).
ChunkResult = Tuple[List[Dict[str, object]], List[float]]


@dataclass
class OpaqueChunkRequest:
    """One rank chunk of one opaque launch (``REPRO_OPAQUE_CHUNKS``).

    Opaque operators ship no kernel spec: the worker resolves ``op``
    from its own registry (:func:`repro.runtime.opaque
    .resolve_opaque_impl`), importing ``module`` first under ``spawn``
    start methods.  ``buffers`` follows the :class:`ChunkRequest` wire
    shape with the argument *index* in the name slot, so the table
    interning and shipped-table filters apply unchanged.  The machine
    model always rides along — opaque costs may be data-dependent, so
    workers model per-rank seconds themselves (even under resident
    replay, unlike compiled steps whose captured seconds are charged
    parent-side).
    """

    op: str
    module: Optional[str]
    #: The launch's positional ``scalar_args`` tuple.
    scalars: tuple
    buffers: Tuple[
        Tuple[int, bool, Optional[BlockDescriptor], Optional[int], Optional[List[WireRect]]],
        ...,
    ]
    start: int
    stop: int
    machine: Optional[object] = None
    #: Parent-assigned request id (see :class:`ChunkRequest`).
    req_id: int = 0


@dataclass
class ResidentStep:
    """Worker-resident form of one shippable compiled plan step.

    Shipped inside a resident-plan message and cached worker-side; run
    messages reference it by ``(plan id, step index)`` and carry only the
    epoch's scalar values and a per-buffer descriptor sync.  ``buffers``
    holds the *full* rank-indexed wire rect table of every argument (the
    worker slices ``[start, stop)`` ranges itself), interned by table id
    like per-chunk geometry.
    """

    kernel_id: int
    spec: object  # KernelSpec | SuperKernelSpec
    #: ``(name, is_reduction, descriptor or None, table id or None,
    #: full wire rect table or None when the worker interned it)``.
    #: The descriptors are placeholders only: frontends bind fresh
    #: stores (hence fresh arena blocks) to a slot on every epoch, so
    #: every run message carries the step's *current* addresses as a
    #: per-worker-interned sync (see :func:`_execute_resident`).
    buffers: Tuple[
        Tuple[str, bool, Optional[BlockDescriptor], Optional[int], Optional[List[WireRect]]],
        ...,
    ]
    #: Scalar parameter names in the order run messages pack values.
    scalar_names: Tuple[str, ...]
    elementwise: bool
    #: Super-kernel steps: per-buffer calling convention (see
    #: :class:`ChunkRequest`).
    modes: Optional[Tuple[str, ...]]
    #: The step's rank-chunk plan.  On the parent template this is the
    #: *full* chunk list (the executor degrades when a dispatch's chunks
    #: disagree); on worker w's shipped copy it holds only the chunks
    #: assigned to w (``i % size == w``), in chunk-index order, so run
    #: messages carry no geometry at all.
    chunks: Tuple[Tuple[int, int], ...] = ()


@dataclass
class OpaqueResidentStep:
    """Worker-resident form of one shippable opaque plan step.

    The opaque analogue of :class:`ResidentStep`: instead of a kernel
    spec it names the operator, which workers resolve from their own
    registry exactly like :class:`OpaqueChunkRequest`.  Run messages
    carry the epoch's positional scalar values and the descriptor sync;
    the worker rebuilds per-chunk requests from its baked rank ranges
    and models per-rank seconds itself from the embedded machine model.
    """

    op: str
    module: Optional[str]
    machine: object
    #: ``(arg index, is_reduction, descriptor or None, table id or None,
    #: full wire rect table or None when the worker interned it)`` —
    #: descriptors are placeholders, synced per run like compiled steps.
    buffers: Tuple[
        Tuple[int, bool, Optional[BlockDescriptor], Optional[int], Optional[List[WireRect]]],
        ...,
    ]
    #: Chunk plan, cut per worker at ship time (see :class:`ResidentStep`).
    chunks: Tuple[Tuple[int, int], ...] = ()


@dataclass
class ResidentPlan:
    """Parent-side handle of one plan registered for resident replay.

    Built once per captured plan (cached on the plan object by the
    scheduler) and shipped to each worker at most once; retired when
    :func:`resident_generation` moves past :attr:`generation`.
    """

    plan_id: int
    #: :func:`resident_generation` value the templates were built under.
    generation: int
    #: Schedule-step index -> template (shippable compiled steps and,
    #: with ``REPRO_OPAQUE_CHUNKS``, shippable chunked opaque steps).
    steps: Dict[int, object]  # ResidentStep | OpaqueResidentStep


class ProcessPoolBrokenError(RuntimeError):
    """The pool's transport failed (a worker died mid-chunk).

    Distinct from errors a worker *reports* (those re-raise with their
    own type, e.g. ``BackendDivergenceError``): a broken transport means
    the chunk's fate is unknown, the pool is torn down, and the caller
    should fall back to the thread substrate — the next launch rebuilds
    a fresh pool through :func:`process_pool`.
    """


def _wire_rects(rects: Sequence) -> List[WireRect]:
    """Strip Rect objects to ``(lo, hi)`` tuples for the pipe."""
    return [(rect.lo, rect.hi) for rect in rects]


def _view_of(base: np.ndarray, rect: WireRect) -> np.ndarray:
    lo, hi = rect
    return base[tuple(slice(l, h) for l, h in zip(lo, hi))]


def _rect_volume(rect: WireRect) -> int:
    lo, hi = rect
    volume = 1
    for l, h in zip(lo, hi):
        volume *= max(0, h - l)
    return volume


#: First byte of a binary-framed resident run message.  Pickled payloads
#: begin with the pickle PROTO opcode (``0x80`` for every protocol the
#: pool can emit), so one leading byte cleanly separates the framings.
_RUN_FRAME_MAGIC = 0x01


def _pack_run_message(
    request_id: int, plan_id: int, step_index: int, values: tuple, sync: tuple
) -> Optional[bytes]:
    """Binary frame of a steady-state resident run message.

    Once the per-worker descriptor interning saturates, every sync entry
    is a small int (or ``None`` for reductions) and the whole message is
    a handful of scalars — packing it with :mod:`struct` instead of
    pickle roughly halves the bytes *and* makes the wire-gate counters
    byte-stable across Python versions (pickle framing is not).  Layout:
    magic u8, request id u32, plan id u32, step index u16, value count
    u8 + f64 values, sync count u8 + i16 entries (``-1`` ⇒ ``None``).
    Returns ``None`` when the message does not fit the frame (a
    first-sighting descriptor in the sync, a non-float scalar, an id
    beyond i16) — the caller falls back to the pickled tuple framing.
    """
    if len(values) > 255 or len(sync) > 255:
        return None
    entries = []
    for item in sync:
        if item is None:
            entries.append(-1)
        elif type(item) is int and item <= 0x7FFF:
            entries.append(item)
        else:
            return None
    for value in values:
        if type(value) is not float:
            return None
    try:
        return struct.pack(
            f"<BIIHB{len(values)}dB{len(entries)}h",
            _RUN_FRAME_MAGIC,
            request_id,
            plan_id,
            step_index,
            len(values),
            *values,
            len(entries),
            *entries,
        )
    except struct.error:  # pragma: no cover - id beyond u32
        return None


def _unpack_run_message(data: bytes) -> tuple:
    """Decode a binary run frame back to the pickled-tuple shape."""
    request_id, plan_id, step_index, value_count = struct.unpack_from(
        "<IIHB", data, 1
    )
    offset = 12
    values = struct.unpack_from(f"<{value_count}d", data, offset)
    offset += 8 * value_count
    (sync_count,) = struct.unpack_from("<B", data, offset)
    offset += 1
    entries = struct.unpack_from(f"<{sync_count}h", data, offset)
    sync = tuple(None if entry == -1 else entry for entry in entries)
    return ("r", request_id, plan_id, step_index, values, sync)


# ----------------------------------------------------------------------
# Worker side.
# ----------------------------------------------------------------------
def _execute_chunk(
    request: ChunkRequest,
    executors: Dict[int, object],
) -> ChunkResult:
    """Run one chunk inside a worker process."""
    executor = executors.get(request.kernel_id)
    if executor is None:
        spec = request.spec
        if spec is None:
            raise RuntimeError(
                f"worker has no executor for kernel id {request.kernel_id} "
                "and the request carried no spec"
            )
        if isinstance(spec, SuperKernelSpec):
            from repro.kernel.codegen import _compile_source

            executor, _fresh = _compile_source(spec.source, spec.name)
        else:
            from repro.kernel.lowering import lower

            executor = lower(spec.function, spec.binding, spec.backend)
        executors[request.kernel_id] = executor

    bases: Dict[str, Optional[np.ndarray]] = {}
    for name, is_reduction, descriptor, _table_id, _rects in request.buffers:
        bases[name] = None if is_reduction else attach_view(descriptor)

    if request.modes is not None:
        # Super-kernel chunk: one fused-closure call over the chunk's
        # views — merged buffers get the contiguous span, ranked buffers
        # the per-rank view list (mirroring ``run_superkernel_ranks``).
        fused_buffers: Dict[str, object] = {}
        for (name, _is_reduction, _descriptor, _table_id, rects), mode in zip(
            request.buffers, request.modes
        ):
            base = bases[name]
            if base is None:
                fused_buffers[name] = None
            elif mode == "ranked":
                fused_buffers[name] = [_view_of(base, rect) for rect in rects]
            else:
                fused_buffers[name] = _view_of(base, (rects[0][0], rects[-1][1]))
        partials = executor(fused_buffers, request.scalars)
        return [partials], []

    partials_by_rank: List[Dict[str, object]] = []
    seconds_by_rank: List[float] = []
    cost = request.cost
    machine = request.machine
    seconds_memo: Dict[Tuple[int, ...], float] = {}
    buffers: Dict[str, Optional[np.ndarray]] = {}

    if request.elementwise:
        # One merged closure call over the chunk's contiguous span —
        # element-for-element identical to the per-rank loop (the launch
        # passed ``pool.contiguous_elementwise_tables`` before routing;
        # this is ``pool.merged_table_span`` in wire-rect form).
        for name, is_reduction, _descriptor, _table_id, rects in request.buffers:
            base = bases[name]
            merged = (rects[0][0], rects[-1][1])
            buffers[name] = None if base is None else _view_of(base, merged)
        executor(buffers, request.scalars)
        partials_by_rank = [{} for _ in range(request.stop - request.start)]
    else:
        for index in range(request.stop - request.start):
            for name, is_reduction, _descriptor, _table_id, rects in request.buffers:
                base = bases[name]
                buffers[name] = (
                    None if base is None else _view_of(base, rects[index])
                )
            partials_by_rank.append(executor(buffers, request.scalars))

    if cost is not None:
        for index in range(request.stop - request.start):
            volumes = tuple(
                _rect_volume(rects[index])
                for _name, _is_reduction, _descriptor, _table_id, rects in request.buffers
            )
            seconds = seconds_memo.get(volumes)
            if seconds is None:
                element_counts = {
                    entry[0]: volume
                    for entry, volume in zip(request.buffers, volumes)
                }
                seconds = cost.estimate_seconds(element_counts, machine)
                seconds_memo[volumes] = seconds
            seconds_by_rank.append(seconds)
    return partials_by_rank, seconds_by_rank


def _execute_opaque_chunk(request: OpaqueChunkRequest) -> ChunkResult:
    """Run one opaque rank chunk inside a worker process.

    Resolves the operator by name from the worker's own registry (the
    parent only ships operators registered at module import time, so
    ``spawn`` workers re-create the exact implementation by importing
    the defining module).  Cost runs after execute, matching the
    parent-side chunk path — sound because registered chunk cost
    functions never read chunk-written data.
    """
    from repro.runtime.opaque import resolve_opaque_impl

    impl = resolve_opaque_impl(request.op, request.module)
    if impl.chunk is None:
        raise RuntimeError(
            f"opaque operator '{request.op}' has no chunk implementation"
        )
    bases: Dict[int, Optional[np.ndarray]] = {}
    rects_map: Dict[int, List[WireRect]] = {}
    for index, is_reduction, descriptor, _table_id, rects in request.buffers:
        bases[index] = None if is_reduction else attach_view(descriptor)
        rects_map[index] = rects
    partials = impl.chunk.execute(bases, rects_map, request.scalars)
    if partials is None:
        partials = [None] * (request.stop - request.start)
    seconds = (
        impl.chunk.cost_seconds(bases, rects_map, request.scalars, request.machine)
        if request.machine is not None
        else []
    )
    return partials, seconds


def _intern_request_tables(request, tables: Dict[int, list]) -> None:
    """Resolve a per-chunk request's interned rect tables in place.

    Runs on receipt, *before* execution: a carried rect list is cached
    under its table id unconditionally, so the parent's per-worker
    shipped-table sets stay truthful even when the chunk itself errors.
    """
    resolved = []
    rewritten = False
    for entry in request.buffers:
        name, is_reduction, descriptor, table_id, rects = entry
        if table_id is not None:
            if rects is None:
                rects = tables[table_id]
                entry = (name, is_reduction, descriptor, table_id, rects)
                rewritten = True
            else:
                tables[table_id] = rects
        resolved.append(entry)
    if rewritten:
        request.buffers = tuple(resolved)


def _register_resident_plan(
    message: tuple, tables: Dict[int, list]
) -> Tuple[int, Dict[int, ResidentStep]]:
    """Install one shipped plan's templates, interning their rect tables."""
    _tag, plan_id, steps = message
    for template in steps.values():
        buffers = []
        for name, is_reduction, descriptor, table_id, rects in template.buffers:
            if rects is None:
                rects = tables[table_id]
            elif table_id is not None:
                tables[table_id] = rects
            buffers.append((name, is_reduction, descriptor, table_id, rects))
        template.buffers = tuple(buffers)
    return plan_id, steps


def _execute_resident(
    message: tuple,
    plans: Dict[int, Dict[int, ResidentStep]],
    executors: Dict[int, object],
    descriptors: List[BlockDescriptor],
) -> List[ChunkResult]:
    """Run one resident-plan step over the worker's baked rank ranges.

    The run message carries no geometry, names or ranges — the worker
    iterates the chunk ranges baked into its copy of the template,
    slices the resident rect tables to each ``[start, stop)`` range and
    executes through the same :func:`_execute_chunk` path as the
    per-chunk protocol, so results are bit-identical.  The ``sync``
    tuple resolves the step's *current* per-buffer field addresses
    against this worker's descriptor intern list: ``None`` marks a
    reduction, an ``int`` an already-interned descriptor, and a full
    :class:`~repro.runtime.shm.BlockDescriptor` a first sighting, which
    the worker appends to the list — send order over a FIFO pipe keeps
    both sides' id assignment in lockstep.  Replay ships no cost model
    (captured seconds are charged parent-side in recorded order), so
    seconds come back empty.
    """
    _tag, _request_id, plan_id, step_index, values, sync = message
    # Intern sync descriptors *before* anything can fail: the parent
    # assigned their ids at send time, so the worker must record them
    # even when the run itself errors, or both sides' id tables desync.
    resolved = []
    for item in sync:
        if item is None or type(item) is int:
            resolved.append(None if item is None else descriptors[item])
        else:
            descriptors.append(item)
            resolved.append(item)
    plan = plans.get(plan_id)
    if plan is None:
        raise RuntimeError(f"worker holds no resident plan {plan_id}")
    template = plan[step_index]
    if isinstance(template, OpaqueResidentStep):
        # Opaque step: rebuild per-chunk requests from the baked rank
        # ranges; the positional scalar tuple travels as the run values
        # and per-rank seconds are re-modelled worker-side.
        opaque_results: List[ChunkResult] = []
        for start, stop in template.chunks:
            buffers = tuple(
                (index, is_reduction, descriptor, None, rects[start:stop])
                for (index, is_reduction, _old, _table_id, rects), descriptor in zip(
                    template.buffers, resolved
                )
            )
            opaque_results.append(
                _execute_opaque_chunk(
                    OpaqueChunkRequest(
                        op=template.op,
                        module=template.module,
                        scalars=tuple(values),
                        buffers=buffers,
                        start=start,
                        stop=stop,
                        machine=template.machine,
                    )
                )
            )
        return opaque_results
    scalars = dict(zip(template.scalar_names, values))
    results: List[ChunkResult] = []
    for start, stop in template.chunks:
        buffers = tuple(
            (name, is_reduction, descriptor, None, rects[start:stop])
            for (name, is_reduction, _old, _table_id, rects), descriptor in zip(
                template.buffers, resolved
            )
        )
        request = ChunkRequest(
            kernel_id=template.kernel_id,
            spec=template.spec,
            scalars=scalars,
            buffers=buffers,
            start=start,
            stop=stop,
            elementwise=template.elementwise,
            modes=template.modes,
        )
        results.append(_execute_chunk(request, executors))
    return results


def _worker_main(connection) -> None:
    """Request loop of one worker process (module-level for ``spawn``)."""
    executors: Dict[int, object] = {}
    #: Parent-assigned table id -> interned wire rect list.
    tables: Dict[int, list] = {}
    #: Parent-assigned plan id -> resident step templates.
    plans: Dict[int, Dict[int, ResidentStep]] = {}
    #: Descriptors interned from resident run messages, in arrival
    #: order — index i here is descriptor id i on the parent side.
    descriptors: List[BlockDescriptor] = []
    try:
        while True:
            try:
                data = connection.recv_bytes()
            except (EOFError, OSError):
                break
            # One leading byte picks the framing: steady resident run
            # messages arrive as fixed binary frames, everything else
            # (including the ``None`` shutdown sentinel) as pickle.
            if data[:1] == bytes((_RUN_FRAME_MAGIC,)):
                message = _unpack_run_message(data)
            else:
                message = pickle.loads(data)
            if message is None:
                break
            if type(message) is tuple and message[0] == "plan":
                # Fire-and-forget registration (pure bookkeeping): a
                # failure here surfaces as a normal error reply on the
                # first run message referencing the missing plan.
                try:
                    plan_id, steps = _register_resident_plan(message, tables)
                    plans[plan_id] = steps
                except Exception:  # pragma: no cover - malformed ship
                    pass
                continue
            if type(message) is tuple and message[0] == "telemetry":
                # Recorder install: the spawn handshake (wants a reply
                # carrying this worker's clock and pid so the parent can
                # align timelines) or a fire-and-forget reset after a
                # flag reload.  Forked children inherit the parent's
                # recorder object, so both variants replace it outright.
                _tag, wants_reply, armed, capacity = message
                telemetry.install_worker_recorder(armed, capacity)
                if wants_reply:
                    connection.send(
                        ("telemetry", time.perf_counter(), os.getpid())
                    )
                continue
            if type(message) is tuple:
                request_id = message[1]
            else:
                request_id = message.req_id
            try:
                if type(message) is tuple and message[0] == "r":
                    with telemetry.span(
                        "worker.resident",
                        f"plan={message[2]} step={message[3]}",
                    ):
                        reply = _execute_resident(
                            message, plans, executors, descriptors
                        )
                elif isinstance(message, OpaqueChunkRequest):
                    _intern_request_tables(message, tables)
                    with telemetry.span(
                        "worker.opaque_chunk",
                        f"op={message.op} ranks=[{message.start}:{message.stop})",
                    ):
                        reply = _execute_opaque_chunk(message)
                else:
                    _intern_request_tables(message, tables)
                    with telemetry.span(
                        "worker.chunk",
                        f"kernel={message.kernel_id} "
                        f"ranks=[{message.start}:{message.stop})",
                    ):
                        reply = _execute_chunk(message, executors)
                spans = telemetry.drain_events()
                if spans is None:
                    connection.send(("ok", request_id, reply))
                else:
                    # Piggyback the drained spans as a 4th element; the
                    # parent's reader strips them before the completion
                    # map, so waiters see the classic 3-tuple.
                    connection.send(("ok", request_id, reply, spans))
            except BaseException as error:  # noqa: BLE001 - shipped to parent
                try:
                    connection.send(
                        ("err", request_id, error, traceback.format_exc())
                    )
                except Exception:
                    # Unpicklable exception: degrade to a plain repr.
                    connection.send(
                        (
                            "err",
                            request_id,
                            RuntimeError(repr(error)),
                            traceback.format_exc(),
                        )
                    )
    finally:
        close_attachments()
        connection.close()


# ----------------------------------------------------------------------
# Parent side.
# ----------------------------------------------------------------------
class ProcessWorkerPool:
    """A fixed-size pool of kernel-executing worker processes."""

    def __init__(self, size: int) -> None:
        self.size = max(1, size)
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        self._connections = []
        self._processes = []
        #: Kernel ids each worker already holds an executor for.
        self._shipped: List[set] = []
        #: Wire-table ids each worker has interned the rects of.
        self._tables_shipped: List[set] = []
        #: Resident-plan ids each worker holds the templates of.
        self._plans_shipped: List[set] = []
        #: Per-worker descriptor intern table for resident run messages:
        #: ``BlockDescriptor -> small id``, assigned densely in send
        #: order (the worker appends to an id-indexed list in arrival
        #: order; FIFO pipes keep the two in lockstep).  Steady replay
        #: cycles through a bounded set of arena offsets, so after a few
        #: epochs every sync entry is an ``int``.
        self._descriptor_ids: List[Dict[BlockDescriptor, int]] = []
        #: Request traffic actually written to the pipes, measured on the
        #: pickled payloads (``wire_requests`` counts messages).  The
        #: executor brackets each dispatch with a thread-local call meter
        #: (:meth:`begin_call_meter`/:meth:`end_call_meter`) and reports
        #: the per-call figures to the profiler — concurrent dispatches
        #: would double-count under the old snapshot-delta scheme.
        self.wire_bytes = 0
        self.wire_requests = 0
        #: Guards teardown only; request traffic no longer serialises on
        #: a whole-cycle lock (see the per-worker send locks below).
        self._lock = threading.Lock()
        self._meter_lock = threading.Lock()
        self._assign_lock = threading.Lock()
        #: One lock per worker pipe, held across every (per-worker state
        #: mutation, ``send_bytes``) pair: the shipped kernel/table/plan
        #: sets and the descriptor interning assume the worker receives
        #: messages in exactly the order the parent mutated its
        #: bookkeeping, so state update and send must be atomic per pipe.
        self._send_locks: List[threading.Lock] = []
        #: Completion map: request id -> raw reply tuple.  Per-worker
        #: reader threads fill it; dispatching threads wait on the
        #: condition until their ids resolve.  Also guards request-id
        #: allocation and the ``closed`` flag's broken-pool transitions.
        self._done = threading.Condition()
        self._completions: Dict[int, tuple] = {}
        self._next_request_id = 0
        self._local = threading.local()
        self._readers: List[threading.Thread] = []
        self._next_worker = 0
        self.closed = False
        self._torn_down = False
        for _ in range(self.size):
            parent_end, worker_end = context.Pipe(duplex=True)
            process = context.Process(
                target=_worker_main, args=(worker_end,), daemon=True
            )
            process.start()
            worker_end.close()
            self._connections.append(parent_end)
            self._processes.append(process)
            self._shipped.append(set())
            self._tables_shipped.append(set())
            self._plans_shipped.append(set())
            self._descriptor_ids.append({})
            self._send_locks.append(threading.Lock())
        #: Telemetry snapshot the workers were armed under (the reload
        #: hook retires a pool whose snapshot went stale), plus the
        #: per-worker pids and clock offsets from the spawn handshake.
        self._telemetry_state = telemetry.worker_state()
        self._worker_pids: List[int] = [
            process.pid or 0 for process in self._processes
        ]
        self._telemetry_offsets: List[float] = [0.0] * self.size
        armed, capacity = self._telemetry_state
        if armed:
            # Handshake before the readers start, so the replies can be
            # read directly off each pipe.  The midpoint of the parent's
            # send/receive clock bracket estimates the worker's offset;
            # the sends bypass the wire meter, so telemetry leaves the
            # profiler's wire counters untouched.
            for worker, connection in enumerate(self._connections):
                clock_before = time.perf_counter()
                connection.send(("telemetry", True, armed, capacity))
                try:
                    _tag, worker_clock, worker_pid = connection.recv()
                except (EOFError, OSError):  # pragma: no cover - dead worker
                    continue
                clock_after = time.perf_counter()
                self._telemetry_offsets[worker] = (
                    (clock_before + clock_after) / 2.0 - worker_clock
                )
                self._worker_pids[worker] = worker_pid
        # Readers start only after every fork: forking with reader
        # threads already running risks cloning a held lock into a child.
        for worker in range(self.size):
            reader = threading.Thread(
                target=self._drain_replies,
                args=(worker, self._connections[worker]),
                daemon=True,
                name=f"procpool-reader-{worker}",
            )
            reader.start()
            self._readers.append(reader)

    # ------------------------------------------------------------------
    # Reply plumbing: reader threads and the completion map.
    # ------------------------------------------------------------------
    def _drain_replies(self, worker: int, connection) -> None:
        """Funnel one worker's replies into the shared completion map.

        Runs for the pool's lifetime on a daemon thread.  Transport
        failure (EOF from a dead worker, a closed connection at
        teardown) ends the loop; outside an orderly shutdown it marks
        the pool broken and wakes every waiter so in-flight dispatches
        raise :class:`ProcessPoolBrokenError` instead of blocking.
        Telemetry spans piggybacked on an ``ok`` reply are merged into
        the parent-side trace here (clock-shifted by the worker's
        handshake offset) and stripped before the completion map.
        """
        while True:
            try:
                reply = connection.recv()
            except (EOFError, OSError):
                break
            except Exception:  # pragma: no cover - undecodable reply
                break
            if telemetry.enabled():
                telemetry.instant("wire.recv", f"worker={worker}")
                if reply[0] == "ok" and len(reply) == 4:
                    telemetry.ingest_worker_events(
                        self._worker_pids[worker],
                        worker,
                        self._telemetry_offsets[worker],
                        reply[3],
                    )
                    reply = reply[:3]
            with self._done:
                self._completions[reply[1]] = reply
                self._done.notify_all()
        with self._done:
            if not self._torn_down:
                self.closed = True
            self._done.notify_all()

    def _new_request_id(self) -> int:
        """A fresh pool-lifetime request id (u32-packable, never reused)."""
        with self._done:
            self._next_request_id += 1
            return self._next_request_id

    def _assign_worker(self) -> int:
        """Next round-robin worker index (thread-safe)."""
        with self._assign_lock:
            worker = self._next_worker
            self._next_worker = (worker + 1) % self.size
            return worker

    def _collect(self, request_ids: Sequence[int]) -> List[tuple]:
        """Wait until every id resolves; replies in ``request_ids`` order.

        Raises :class:`ProcessPoolBrokenError` (after dropping this
        call's entries) when the pool breaks with ids still outstanding
        — a reply whose request died with its worker will never come.
        """
        with self._done:
            while True:
                if all(rid in self._completions for rid in request_ids):
                    return [self._completions.pop(rid) for rid in request_ids]
                if self.closed:
                    for rid in request_ids:
                        self._completions.pop(rid, None)
                    raise ProcessPoolBrokenError(
                        "process-pool worker died mid-chunk (transport closed)"
                    )
                self._done.wait()

    def _transport_failed(self, failure: BaseException) -> None:
        """Send-side transport error: break the pool and raise."""
        with self._done:
            self.closed = True
            self._done.notify_all()
        self.shutdown()
        raise ProcessPoolBrokenError(
            f"process-pool worker died mid-chunk: {failure!r}"
        ) from failure

    def _unwrap(
        self,
        replies: Sequence[tuple],
        kernel_id: Optional[int] = None,
        assignments: Sequence[int] = (),
    ) -> List[ChunkResult]:
        """Extract payloads, re-raising the first worker error in order."""
        for reply in replies:
            if reply[0] == "err":
                _tag, _request_id, error, worker_traceback = reply
                if kernel_id is not None:
                    # The failing worker's executor install may not have
                    # landed: forget the kernel on every assigned worker
                    # so the next dispatch re-ships the spec (harmless
                    # when the install did land — workers consult a spec
                    # only when they hold no executor for the id).
                    for assigned in set(assignments):
                        self._shipped[assigned].discard(kernel_id)
                message = (
                    f"{error} (in process-pool worker)\n"
                    f"--- worker traceback ---\n{worker_traceback}"
                )
                try:
                    raised = type(error)(message)
                except Exception:  # pragma: no cover - exotic ctor
                    raised = RuntimeError(message)
                raise raised from error
        return [reply[2] for reply in replies]

    # ------------------------------------------------------------------
    # Wire metering.
    # ------------------------------------------------------------------
    def _meter(self, nbytes: int) -> None:
        with self._meter_lock:
            self.wire_bytes += nbytes
            self.wire_requests += 1
        counters = getattr(self._local, "counters", None)
        if counters is not None:
            counters[0] += nbytes
            counters[1] += 1

    def begin_call_meter(self) -> None:
        """Start metering this thread's wire traffic (one dispatch)."""
        self._local.counters = [0, 0]

    def end_call_meter(self) -> Tuple[int, int]:
        """Stop metering; returns this thread's ``(bytes, requests)``."""
        counters = getattr(self._local, "counters", None)
        self._local.counters = None
        if counters is None:
            return 0, 0
        return counters[0], counters[1]

    def _send(self, worker: int, message) -> None:
        """Pickle, meter and write one request message to a worker.

        ``Connection.send(obj)`` is ``send_bytes(ForkingPickler.dumps
        (obj))``; doing the two halves explicitly makes the measured
        byte count the exact serialized payload with no double pickling.
        Callers hold the worker's send lock.
        """
        payload = ForkingPickler.dumps(message)
        self._meter(len(payload))
        if telemetry.enabled():
            telemetry.instant(
                "wire.send", f"worker={worker} bytes={len(payload)}"
            )
        self._connections[worker].send_bytes(payload)

    def _send_raw(self, worker: int, payload: bytes) -> None:
        """Meter and write one pre-framed (non-pickle) request payload."""
        self._meter(len(payload))
        if telemetry.enabled():
            telemetry.instant(
                "wire.send", f"worker={worker} bytes={len(payload)}"
            )
        self._connections[worker].send_bytes(payload)

    def reset_worker_telemetry(self) -> None:
        """Clear every worker's recorder (fire-and-forget, unmetered).

        Sent by the reload hook when the pool survives a flag reload
        with telemetry still armed: pending worker events recorded
        under the old configuration must not leak into the next trace.
        """
        armed, capacity = self._telemetry_state
        for worker, connection in enumerate(self._connections):
            try:
                with self._send_locks[worker]:
                    connection.send(("telemetry", False, armed, capacity))
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass

    def _filter_shipped_tables(self, worker: int, buffers: tuple) -> tuple:
        """Null out rect lists the worker already interned (by table id)."""
        shipped = self._tables_shipped[worker]
        filtered = []
        for entry in buffers:
            name, is_reduction, descriptor, table_id, rects = entry
            if table_id is not None:
                if table_id in shipped:
                    if rects is not None:
                        entry = (name, is_reduction, descriptor, table_id, None)
                else:
                    shipped.add(table_id)
            filtered.append(entry)
        return tuple(filtered)

    # ------------------------------------------------------------------
    def run_chunks(
        self,
        kernel_id: int,
        spec: KernelSpec,
        requests: Sequence[ChunkRequest],
    ) -> List[ChunkResult]:
        """Execute chunk requests across the workers, results in order.

        Requests are assigned round-robin, all sent before any reply is
        awaited (workers overlap), and replies are matched by request id
        and returned in request order so join-point folds see rank order
        exactly like the thread backend.  Concurrency-safe: any number
        of threads may dispatch simultaneously — sends serialise per
        worker pipe, replies resolve through the completion map.
        """
        if self.closed:
            raise ProcessPoolBrokenError("process pool is closed")
        assignments: List[int] = []
        request_ids: List[int] = []
        try:
            for request in requests:
                worker = self._assign_worker()
                with self._send_locks[worker]:
                    request.req_id = self._new_request_id()
                    request.spec = (
                        spec if kernel_id not in self._shipped[worker] else None
                    )
                    self._shipped[worker].add(kernel_id)
                    request.buffers = self._filter_shipped_tables(
                        worker, request.buffers
                    )
                    self._send(worker, request)
                assignments.append(worker)
                request_ids.append(request.req_id)
        except (EOFError, BrokenPipeError, OSError) as transport_error:
            # A worker died mid-chunk (OOM kill, segfault): the chunk's
            # fate is unknown.  Mark the pool dead so callers fall back
            # to threads and the next launch rebuilds a fresh pool.
            self._transport_failed(transport_error)
        try:
            replies = self._collect(request_ids)
        except ProcessPoolBrokenError:
            self.shutdown()
            raise
        return self._unwrap(replies, kernel_id, assignments)

    # ------------------------------------------------------------------
    def run_opaque_chunks(
        self, requests: Sequence[OpaqueChunkRequest]
    ) -> List[ChunkResult]:
        """Execute opaque chunk requests across the workers, in order.

        Like :meth:`run_chunks`, but with no kernel spec to ship or
        forget — workers resolve the operator by name from their own
        registry, so a failed request leaves no half-installed executor
        state behind.
        """
        if self.closed:
            raise ProcessPoolBrokenError("process pool is closed")
        request_ids: List[int] = []
        try:
            for request in requests:
                worker = self._assign_worker()
                with self._send_locks[worker]:
                    request.req_id = self._new_request_id()
                    request.buffers = self._filter_shipped_tables(
                        worker, request.buffers
                    )
                    self._send(worker, request)
                request_ids.append(request.req_id)
        except (EOFError, BrokenPipeError, OSError) as transport_error:
            self._transport_failed(transport_error)
        try:
            replies = self._collect(request_ids)
        except ProcessPoolBrokenError:
            self.shutdown()
            raise
        return self._unwrap(replies)

    # ------------------------------------------------------------------
    def _plan_ship_message(self, plan: ResidentPlan, worker: int) -> tuple:
        """Build one worker's copy of a resident-plan ship message.

        Rect tables the worker already interned (from per-chunk requests
        or earlier plan ships) travel as their id alone; fresh tables are
        carried once and marked shipped.  Each step's chunk plan is cut
        down to the chunks this worker owns (``i % size == worker``), so
        run messages never carry rank ranges.
        """
        steps: Dict[int, object] = {}
        for index, template in plan.steps.items():
            worker_chunks = tuple(
                chunk
                for position, chunk in enumerate(template.chunks)
                if position % self.size == worker
            )
            if isinstance(template, OpaqueResidentStep):
                steps[index] = OpaqueResidentStep(
                    op=template.op,
                    module=template.module,
                    machine=template.machine,
                    buffers=self._filter_shipped_tables(worker, template.buffers),
                    chunks=worker_chunks,
                )
            else:
                steps[index] = ResidentStep(
                    kernel_id=template.kernel_id,
                    spec=template.spec,
                    buffers=self._filter_shipped_tables(worker, template.buffers),
                    scalar_names=template.scalar_names,
                    elementwise=template.elementwise,
                    modes=template.modes,
                    chunks=worker_chunks,
                )
        return ("plan", plan.plan_id, steps)

    def run_resident_chunks(
        self,
        plan: ResidentPlan,
        step_index: int,
        values: Tuple[float, ...],
        descriptors: tuple,
        chunks: Sequence[Tuple[int, int]],
    ) -> List[ChunkResult]:
        """Execute one resident step's rank chunks, results in chunk order.

        Chunk i always runs on worker ``i % size`` — the fixed mapping
        the plan-ship message baked each worker's rank ranges under —
        so each engaged worker receives *one* run message carrying only
        the epoch's scalar values and the descriptor sync (plus, the
        first time it sees this plan id, the plan-ship message) and
        returns one reply with its chunk results in chunk-index order.
        Reassembling by the same mapping yields chunk — and therefore
        rank — order, bit-identical to the per-chunk protocol.

        ``descriptors`` is the step's *current* per-buffer field-address
        tuple (``None`` entries for reductions): frontends rebind fresh
        stores per epoch, so the sync always travels, but each entry is
        interned per worker — a descriptor crosses the pipe once, then
        rides as a small int id.  Arena offsets cycle through a bounded
        set in steady replay, so the table saturates after a few epochs
        and the steady run message is a few dozen bytes.

        Concurrency-safe like :meth:`run_chunks`: plan shipping and
        descriptor interning happen under the worker's send lock (their
        id assignment relies on per-pipe send order), and replies are
        matched by request id.  Unlike per-chunk kernel ships, a worker
        error forgets nothing: templates re-carry their spec on every
        run, so a failed executor install simply retries from the
        resident template next time.
        """
        if self.closed:
            raise ProcessPoolBrokenError("process pool is closed")
        order: List[int] = [
            position % self.size for position in range(len(chunks))
        ]
        engaged = sorted(set(order))
        request_ids: List[int] = []
        try:
            for worker in engaged:
                with self._send_locks[worker]:
                    if plan.plan_id not in self._plans_shipped[worker]:
                        self._send(worker, self._plan_ship_message(plan, worker))
                        self._plans_shipped[worker].add(plan.plan_id)
                    ids = self._descriptor_ids[worker]
                    sync = []
                    for descriptor in descriptors:
                        if descriptor is None:
                            sync.append(None)
                            continue
                        known = ids.get(descriptor)
                        if known is None:
                            ids[descriptor] = len(ids)
                            sync.append(descriptor)
                        else:
                            sync.append(known)
                    request_id = self._new_request_id()
                    packed = _pack_run_message(
                        request_id, plan.plan_id, step_index, values, tuple(sync)
                    )
                    if packed is not None:
                        self._send_raw(worker, packed)
                    else:
                        self._send(
                            worker,
                            (
                                "r",
                                request_id,
                                plan.plan_id,
                                step_index,
                                values,
                                tuple(sync),
                            ),
                        )
                request_ids.append(request_id)
        except (EOFError, BrokenPipeError, OSError) as transport_error:
            self._transport_failed(transport_error)
        try:
            replies = self._collect(request_ids)
        except ProcessPoolBrokenError:
            self.shutdown()
            raise
        chunk_lists = self._unwrap(replies)
        per_worker: Dict[int, List[ChunkResult]] = {
            worker: list(result) for worker, result in zip(engaged, chunk_lists)
        }
        return [per_worker[worker].pop(0) for worker in order]

    def shutdown(self) -> None:
        """Stop every worker and reader thread (idempotent)."""
        with self._lock:
            if self._torn_down:
                return
            with self._done:
                # Waiters must not block on replies that will never
                # come; ``closed`` before the sentinels means any
                # dispatch racing the teardown raises broken.
                self._torn_down = True
                self.closed = True
                self._done.notify_all()
            for worker, connection in enumerate(self._connections):
                try:
                    with self._send_locks[worker]:
                        connection.send(None)
                except (BrokenPipeError, OSError):
                    pass
            for process in self._processes:
                process.join(timeout=2.0)
                if process.is_alive():  # pragma: no cover - stuck worker
                    process.terminate()
                    process.join(timeout=1.0)
            for connection in self._connections:
                try:
                    connection.close()
                except OSError:  # pragma: no cover
                    pass
            for reader in self._readers:
                if reader is not threading.current_thread():
                    reader.join(timeout=1.0)
            self._readers = []
            self._connections = []
            self._processes = []
            self._shipped = []
            self._tables_shipped = []
            self._plans_shipped = []
            self._descriptor_ids = []


# ----------------------------------------------------------------------
# The singleton.
# ----------------------------------------------------------------------
_POOL: Optional[ProcessWorkerPool] = None
_POOL_LOCK = threading.Lock()
_KERNEL_IDS_LOCK = threading.Lock()
_NEXT_KERNEL_ID = 0
_RESIDENT_LOCK = threading.Lock()
_NEXT_PLAN_ID = 0
_NEXT_TABLE_ID = 0
_RESIDENT_GENERATION = 0


def next_resident_plan_id() -> int:
    """A fresh process-lifetime id for one resident plan (never reused)."""
    global _NEXT_PLAN_ID
    with _RESIDENT_LOCK:
        _NEXT_PLAN_ID += 1
        return _NEXT_PLAN_ID


def next_wire_table_id() -> int:
    """A fresh process-lifetime id for one wire rect list (never reused)."""
    global _NEXT_TABLE_ID
    with _RESIDENT_LOCK:
        _NEXT_TABLE_ID += 1
        return _NEXT_TABLE_ID


def resident_generation() -> int:
    """The current resident-plan validity generation."""
    return _RESIDENT_GENERATION


def invalidate_resident_plans() -> None:
    """Retire every resident plan built so far (generation bump).

    Called whenever worker-held state could go stale: region-field
    descriptor swaps (``RegionManager.attach``), shared-memory releases
    whose blocks may be recycled, and ``config.reload_flags()``.  Plans
    carrying an older generation are rebuilt — with a fresh plan id —
    on their next replay and re-shipped; ids are never reused, so a
    worker still holding the old templates can never serve them again.
    """
    global _RESIDENT_GENERATION
    with _RESIDENT_LOCK:
        _RESIDENT_GENERATION += 1


def retire_resident_plan(plan) -> None:
    """Drop one plan's cached resident registration (if any)."""
    if getattr(plan, "resident", None) is not None:
        plan.resident = None


def process_pool() -> ProcessWorkerPool:
    """The process-wide worker-process pool, sized like the thread pool."""
    from repro.runtime.pool import shared_pool_size

    global _POOL
    size = shared_pool_size()
    with _POOL_LOCK:
        if _POOL is None or _POOL.size != size or _POOL.closed:
            if _POOL is not None:
                _POOL.shutdown()
            _POOL = ProcessWorkerPool(size)
        return _POOL


def shutdown_process_pool() -> None:
    """Retire the pool singleton (flag reloads, atexit, test teardown)."""
    global _POOL
    with _POOL_LOCK:
        pool = _POOL
        _POOL = None
    if pool is not None:
        pool.shutdown()


def _reload_process_pool() -> None:
    """Config-reload hook: retire the pool when it no longer fits.

    A pool sized from stale flag values must not serve the next launch;
    shutting down (rather than letting :func:`process_pool` resize
    lazily) also reaps the worker processes promptly when a test flips
    ``REPRO_DISPATCH_BACKEND`` back to ``thread``.  Every reload also
    retires the resident plans: a flag flip can change chunking, plan
    lowering or backing storage, so templates built under the old flags
    must not be replayed.
    """
    from repro.runtime.pool import shared_pool_size

    invalidate_resident_plans()
    with _POOL_LOCK:
        pool = _POOL
    if pool is None:
        return
    if (
        config.dispatch_backend() != "process"
        or pool.size != shared_pool_size()
        or pool._telemetry_state != telemetry.worker_state()
    ):
        # A stale telemetry snapshot retires the pool too: workers were
        # armed (or not) by the spawn handshake, so a flag flip needs a
        # fresh pool to re-handshake under the new state.
        shutdown_process_pool()
    elif pool._telemetry_state[0]:
        pool.reset_worker_telemetry()


def kernel_spec_id(kernel) -> int:
    """A stable process-lifetime id for a compiled kernel.

    Attached to the :class:`~repro.kernel.compiler.CompiledKernel` on
    first dispatch; identifies its executor in worker-side caches (ids
    are never reused, unlike ``id()``).
    """
    existing = getattr(kernel, "_proc_kernel_id", None)
    if existing is not None:
        return existing
    global _NEXT_KERNEL_ID
    with _KERNEL_IDS_LOCK:
        _NEXT_KERNEL_ID += 1
        assigned = _NEXT_KERNEL_ID
    kernel._proc_kernel_id = assigned
    return assigned


def spec_for(kernel) -> KernelSpec:
    """Build the shippable spec of a compiled kernel (cached on it).

    The binding is stripped to the two parameter maps the executors
    consult — the full binding drags stores and partitions along, none
    of which a worker touches.
    """
    existing = getattr(kernel, "_proc_kernel_spec", None)
    if existing is not None:
        return existing
    if getattr(kernel, "is_superkernel", False):
        spec = SuperKernelSpec(source=kernel.source, name=kernel.name)
        kernel._proc_kernel_spec = spec
        return spec
    from repro.kernel.passes.compose import KernelBinding

    binding = kernel.binding
    stripped = KernelBinding(
        buffer_args=dict(binding.buffer_args),
        scalar_args=dict(binding.scalar_args),
    )
    stripped.buffer_order = binding.buffer_order
    stripped.scalar_order = binding.scalar_order
    spec = KernelSpec(
        function=kernel.function,
        binding=stripped,
        backend=kernel.executor.backend,
    )
    kernel._proc_kernel_spec = spec
    return spec


config.register_reload_callback(_reload_process_pool)
atexit.register(shutdown_process_pool)
