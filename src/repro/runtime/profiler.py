"""Profiling of simulated execution.

The profiler records, per launched index task, the analytically-modelled
kernel, communication and runtime-overhead times, plus how many original
library tasks the launch stands for (one for unfused tasks, more for fused
tasks).  The experiment harness uses it to regenerate paper Figure 9
(tasks per iteration, average task length, window sizes) and the
throughput numbers of every weak-scaling figure.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class TaskRecord:
    """One launched index task as seen by the runtime."""

    name: str
    iteration: Optional[int]
    constituents: int
    kernel_seconds: float
    communication_seconds: float
    overhead_seconds: float
    launches: int
    fused: bool
    #: True when the launch was replayed from a captured execution plan
    #: (trace hit) rather than resolved through the full pipeline.
    replayed: bool = False

    @property
    def total_seconds(self) -> float:
        """Total simulated time attributed to this launch."""
        return self.kernel_seconds + self.communication_seconds + self.overhead_seconds


@dataclass
class IterationRecord:
    """Aggregated statistics of one application iteration."""

    index: int
    index_tasks: int = 0
    constituent_tasks: int = 0
    seconds: float = 0.0


class Profiler:
    """Accumulates task records and iteration statistics."""

    def __init__(self) -> None:
        self.records: List[TaskRecord] = []
        self.iterations: List[IterationRecord] = []
        self.compile_seconds: float = 0.0
        self.analysis_seconds: float = 0.0
        #: Trace subsystem counters: epochs replayed from a captured plan
        #: vs. epochs that went through the full resolve pipeline.
        self.trace_hits: int = 0
        self.trace_misses: int = 0
        #: Library tasks whose resolution was bypassed by trace replay.
        self.trace_replayed_tasks: int = 0
        #: Plan-scheduler counters: replays that went through dependence
        #: analysis, aggregate step/level/width figures of their DAGs,
        #: and how many steps ran on the worker pool (the rest ran
        #: inline on the scheduling thread).
        self.plan_replays: int = 0
        self.plan_steps: int = 0
        self.plan_levels: int = 0
        self.plan_width_max: int = 0
        self.plan_dispatched_steps: int = 0
        #: Level-width histogram over every scheduled replay: width
        #: (steps per dependence level) -> number of levels executed at
        #: that width.  The long tail of this histogram is the paper's
        #: wide-stencil story; a flagship app whose histogram never
        #: leaves ``{1: n}`` is running the scheduler's horizontal
        #: parallelism machinery without ever exercising it.
        self.plan_level_widths: Dict[int, int] = {}
        #: Intra-launch point-dispatch counters: launches whose per-rank
        #: point tasks were chunked across the worker pool, the total
        #: chunks and ranks they covered, the widest single launch, and
        #: the summed configured width (the utilisation denominator).
        self.point_launches: int = 0
        self.point_chunks: int = 0
        self.point_ranks: int = 0
        self.point_width_max: int = 0
        self.point_width_budget: int = 0
        #: Per-substrate split of the dispatched chunks: the ``thread``
        #: backend runs chunks on the shared thread pool, the ``process``
        #: backend on the worker-process pool over shared memory
        #: (``REPRO_DISPATCH_BACKEND``).
        self.point_thread_chunks: int = 0
        self.point_process_chunks: int = 0
        #: Element-wise batching: launches executed as merged closure
        #: calls (one per rank chunk instead of one per rank) and the
        #: total merged calls they produced.
        self.batched_launches: int = 0
        self.batched_calls: int = 0
        #: Opaque-operator execution counters (``REPRO_OPAQUE_CHUNKS``):
        #: library calls made one-per-rank, library calls made
        #: one-per-chunk by chunk-level implementations, and how many of
        #: the chunk calls ran on the worker-process pool.
        self.opaque_rank_calls: int = 0
        self.opaque_chunk_calls: int = 0
        self.opaque_process_chunks: int = 0
        #: Trace epochs whose scalar equality pattern flipped on a known
        #: stream structure, forcing a conservative re-record.
        self.scalar_pattern_flips: int = 0
        #: Super-kernel counters: fused units built by the plan→super-kernel
        #: lowering, the compiled constituent steps they absorbed, and the
        #: fused-closure invocations replay actually performed.
        self.superkernel_fusions: int = 0
        self.superkernel_fused_steps: int = 0
        self.superkernel_calls: int = 0
        #: Compiled-closure invocations performed by plan replay (one per
        #: merged element-wise chunk, one per rank of a non-element-wise
        #: launch, one per super-kernel chunk) — the interpreter-overhead
        #: figure the super-kernel lowering exists to shrink.
        self.replay_closure_calls: int = 0
        #: Process-pool wire traffic: bytes and request messages actually
        #: pickled onto worker pipes (measured by sizing each payload at
        #: send time) — the figure plan-resident replay exists to shrink.
        self.wire_bytes: int = 0
        self.wire_requests: int = 0
        self._current_iteration: Optional[IterationRecord] = None
        #: Serialises the counter updates that can arrive from pool
        #: worker threads (point dispatch, opaque calls, wire traffic):
        #: wide levels dispatch steps concurrently, and unsynchronised
        #: ``+=`` would drop increments and de-determinise the counter
        #: gates.  Integer sums are order-independent, so locked updates
        #: keep every counter deterministic for any interleaving.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Iteration markers (driven by the applications).
    # ------------------------------------------------------------------
    def begin_iteration(self) -> None:
        """Mark the start of an application iteration."""
        index = len(self.iterations)
        self._current_iteration = IterationRecord(index=index)
        self.iterations.append(self._current_iteration)

    @property
    def current_iteration(self) -> Optional[int]:
        """Index of the iteration currently being recorded."""
        return self._current_iteration.index if self._current_iteration else None

    # ------------------------------------------------------------------
    # Recording.
    # ------------------------------------------------------------------
    def record_task(
        self,
        name: str,
        constituents: int,
        kernel_seconds: float,
        communication_seconds: float,
        overhead_seconds: float,
        launches: int,
        fused: bool,
        replayed: bool = False,
        accumulate_iteration: bool = True,
    ) -> TaskRecord:
        """Record one launched index task.

        ``accumulate_iteration=False`` records the task (and counts it
        toward the iteration's task totals) without adding its seconds to
        the iteration — the plan scheduler's overlap model attributes a
        whole dependence level's max instead.
        """
        record = TaskRecord(
            name=name,
            iteration=self.current_iteration,
            constituents=constituents,
            kernel_seconds=kernel_seconds,
            communication_seconds=communication_seconds,
            overhead_seconds=overhead_seconds,
            launches=launches,
            fused=fused,
            replayed=replayed,
        )
        self.records.append(record)
        if self._current_iteration is not None:
            self._current_iteration.index_tasks += 1
            self._current_iteration.constituent_tasks += constituents
            if accumulate_iteration:
                self._current_iteration.seconds += record.total_seconds
        return record

    def record_compile_time(self, seconds: float) -> None:
        """Attribute JIT compilation time (fusion path only)."""
        self.compile_seconds += seconds

    def record_trace_hit(self, tasks: int) -> None:
        """Record an epoch replayed from a captured execution plan."""
        self.trace_hits += 1
        self.trace_replayed_tasks += tasks

    def record_trace_miss(self) -> None:
        """Record an epoch that went through the full resolve pipeline."""
        self.trace_misses += 1

    def record_plan_execution(
        self,
        steps: int,
        levels: int,
        width: int,
        dispatched: int,
        level_widths: Sequence[int] = (),
    ) -> None:
        """Record one plan replay executed by the dependence scheduler.

        ``level_widths`` lists the step count of every dependence level
        of the replayed schedule, in level order; it accumulates into
        :attr:`plan_level_widths` so runs can report not just the widest
        level ever seen but the full width distribution.
        """
        self.plan_replays += 1
        self.plan_steps += steps
        self.plan_levels += levels
        self.plan_width_max = max(self.plan_width_max, width)
        self.plan_dispatched_steps += dispatched
        for level_width in level_widths:
            self.plan_level_widths[level_width] = (
                self.plan_level_widths.get(level_width, 0) + 1
            )

    def record_point_dispatch(
        self, ranks: int, chunks: int, width: int, backend: str = "thread"
    ) -> None:
        """Record one launch whose point tasks were chunked across a pool.

        ``backend`` names the dispatch substrate that ran the chunks
        (``thread`` or ``process``), so runs report how much of the
        point-parallel work each substrate carried.  Thread-safe: wide
        levels report from concurrent pool worker threads.
        """
        with self._lock:
            self.point_launches += 1
            self.point_chunks += chunks
            self.point_ranks += ranks
            self.point_width_max = max(self.point_width_max, chunks)
            self.point_width_budget += max(1, width)
            if backend == "process":
                self.point_process_chunks += chunks
            else:
                self.point_thread_chunks += chunks

    def record_elementwise_batch(self, calls: int) -> None:
        """Record one element-wise launch executed as merged chunk calls."""
        with self._lock:
            self.batched_launches += 1
            self.batched_calls += calls

    def record_opaque_execution(
        self, rank_calls: int = 0, chunk_calls: int = 0, process_chunks: int = 0
    ) -> None:
        """Record one opaque launch's library-call counts.

        A launch reports either per-rank calls (chunking off or not
        applicable) or chunk-level calls; ``process_chunks`` counts the
        subset of chunk calls executed by worker processes.  Thread-safe
        like :meth:`record_point_dispatch`.
        """
        with self._lock:
            self.opaque_rank_calls += rank_calls
            self.opaque_chunk_calls += chunk_calls
            self.opaque_process_chunks += process_chunks

    def record_scalar_pattern_flip(self) -> None:
        """Record a trace re-record forced by a scalar-pattern flip."""
        self.scalar_pattern_flips += 1

    def record_superkernel_fusion(self, constituents: int) -> None:
        """Record one fused unit built by the super-kernel lowering."""
        self.superkernel_fusions += 1
        self.superkernel_fused_steps += constituents

    def record_superkernel_calls(self, calls: int) -> None:
        """Record fused-closure invocations (one per super-kernel chunk)."""
        self.superkernel_calls += calls

    def add_replay_closure_calls(self, calls: int) -> None:
        """Record compiled-closure invocations performed by plan replay."""
        self.replay_closure_calls += calls

    def record_wire_traffic(self, bytes_sent: int, requests: int) -> None:
        """Record pickled bytes / messages sent to the worker-process pool.

        Thread-safe: concurrent wide-level dispatches report their own
        (call-metered) traffic from pool worker threads.
        """
        with self._lock:
            self.wire_bytes += bytes_sent
            self.wire_requests += requests

    @property
    def wire_bytes_per_epoch(self) -> float:
        """Average wire bytes shipped to workers per replayed epoch."""
        return self.wire_bytes / self.trace_hits if self.trace_hits else 0.0

    @property
    def wire_requests_per_epoch(self) -> float:
        """Average wire request messages sent per replayed epoch."""
        return self.wire_requests / self.trace_hits if self.trace_hits else 0.0

    @property
    def closure_calls_per_epoch(self) -> float:
        """Average compiled-closure invocations per replayed epoch."""
        return self.replay_closure_calls / self.trace_hits if self.trace_hits else 0.0

    @property
    def point_chunks_per_launch(self) -> float:
        """Average rank chunks per point-dispatched launch."""
        return self.point_chunks / self.point_launches if self.point_launches else 0.0

    @property
    def point_utilization(self) -> float:
        """Fraction of the configured point width actually filled.

        The ratio of dispatched chunks to the summed configured dispatch
        width over all point-dispatched launches — 1.0 means every such
        launch produced a full complement of chunks.
        """
        if not self.point_width_budget:
            return 0.0
        return self.point_chunks / self.point_width_budget

    @property
    def plan_average_width(self) -> float:
        """Average DAG width (steps per level) over scheduled replays."""
        return self.plan_steps / self.plan_levels if self.plan_levels else 0.0

    @property
    def worker_utilization(self) -> float:
        """Fraction of scheduled steps that ran on the worker pool."""
        return self.plan_dispatched_steps / self.plan_steps if self.plan_steps else 0.0

    @property
    def trace_hit_rate(self) -> float:
        """Fraction of trace-delimited epochs replayed from a plan."""
        total = self.trace_hits + self.trace_misses
        return self.trace_hits / total if total else 0.0

    def record_analysis_time(self, seconds: float) -> None:
        """Attribute fusion-analysis time."""
        self.analysis_seconds += seconds

    def add_iteration_seconds(self, seconds: float) -> None:
        """Attribute extra time (e.g. flush-side costs) to the current iteration."""
        if self._current_iteration is not None:
            self._current_iteration.seconds += seconds

    # ------------------------------------------------------------------
    # Aggregation.
    # ------------------------------------------------------------------
    @property
    def total_index_tasks(self) -> int:
        """Number of index tasks launched to the runtime."""
        return len(self.records)

    @property
    def total_constituent_tasks(self) -> int:
        """Number of original library tasks represented by those launches."""
        return sum(record.constituents for record in self.records)

    @property
    def total_seconds(self) -> float:
        """Total simulated execution time (excluding compile time)."""
        return sum(record.total_seconds for record in self.records)

    def iteration_seconds(self, skip_warmup: int = 0) -> List[float]:
        """Per-iteration simulated time, optionally skipping warm-up iterations."""
        return [it.seconds for it in self.iterations[skip_warmup:]]

    def tasks_per_iteration(self, skip_warmup: int = 0, fused_view: bool = True) -> float:
        """Average tasks per iteration.

        With ``fused_view`` the count is of index tasks actually launched
        (the "Tasks per Iteration (Fused)" column of Figure 9); without it
        the count is of original library tasks ("Tasks per Iteration").
        """
        iterations = self.iterations[skip_warmup:]
        if not iterations:
            return 0.0
        if fused_view:
            return sum(it.index_tasks for it in iterations) / len(iterations)
        return sum(it.constituent_tasks for it in iterations) / len(iterations)

    def average_task_length_seconds(self, skip_warmup: int = 0) -> float:
        """Average kernel time per launched index task (Figure 9 column)."""
        skip_iterations = {it.index for it in self.iterations[:skip_warmup]}
        records = [
            r
            for r in self.records
            if r.iteration is not None and r.iteration not in skip_iterations
        ]
        if not records:
            records = self.records
        if not records:
            return 0.0
        return sum(r.kernel_seconds for r in records) / len(records)

    def throughput(self, skip_warmup: int = 0) -> float:
        """Iterations per simulated second after warm-up."""
        seconds = self.iteration_seconds(skip_warmup)
        if not seconds or sum(seconds) == 0.0:
            return 0.0
        return len(seconds) / sum(seconds)

    def snapshot(self) -> Dict[str, object]:
        """A structured dict of every counter plus the derived figures.

        Taken under the profiler lock so concurrent pool-worker updates
        never produce a torn view.  The dict is JSON-serialisable: plain
        ints/floats plus the level-width histogram as a ``{width: count}``
        dict — the shape exported next to Chrome traces by
        ``repro.tools.tracedump``.
        """
        with self._lock:
            counters: Dict[str, object] = {
                "total_index_tasks": len(self.records),
                "total_constituent_tasks": sum(
                    record.constituents for record in self.records
                ),
                "iterations": len(self.iterations),
                "compile_seconds": self.compile_seconds,
                "analysis_seconds": self.analysis_seconds,
                "trace_hits": self.trace_hits,
                "trace_misses": self.trace_misses,
                "trace_replayed_tasks": self.trace_replayed_tasks,
                "plan_replays": self.plan_replays,
                "plan_steps": self.plan_steps,
                "plan_levels": self.plan_levels,
                "plan_width_max": self.plan_width_max,
                "plan_dispatched_steps": self.plan_dispatched_steps,
                "plan_level_widths": dict(self.plan_level_widths),
                "point_launches": self.point_launches,
                "point_chunks": self.point_chunks,
                "point_ranks": self.point_ranks,
                "point_width_max": self.point_width_max,
                "point_width_budget": self.point_width_budget,
                "point_thread_chunks": self.point_thread_chunks,
                "point_process_chunks": self.point_process_chunks,
                "batched_launches": self.batched_launches,
                "batched_calls": self.batched_calls,
                "opaque_rank_calls": self.opaque_rank_calls,
                "opaque_chunk_calls": self.opaque_chunk_calls,
                "opaque_process_chunks": self.opaque_process_chunks,
                "scalar_pattern_flips": self.scalar_pattern_flips,
                "superkernel_fusions": self.superkernel_fusions,
                "superkernel_fused_steps": self.superkernel_fused_steps,
                "superkernel_calls": self.superkernel_calls,
                "replay_closure_calls": self.replay_closure_calls,
                "wire_bytes": self.wire_bytes,
                "wire_requests": self.wire_requests,
            }
        counters["trace_hit_rate"] = self.trace_hit_rate
        counters["plan_average_width"] = self.plan_average_width
        counters["worker_utilization"] = self.worker_utilization
        counters["point_chunks_per_launch"] = self.point_chunks_per_launch
        counters["point_utilization"] = self.point_utilization
        counters["wire_bytes_per_epoch"] = self.wire_bytes_per_epoch
        counters["wire_requests_per_epoch"] = self.wire_requests_per_epoch
        counters["closure_calls_per_epoch"] = self.closure_calls_per_epoch
        return counters

    def reset(self) -> None:
        """Clear all recorded state."""
        self.records.clear()
        self.iterations.clear()
        self.compile_seconds = 0.0
        self.analysis_seconds = 0.0
        self.trace_hits = 0
        self.trace_misses = 0
        self.trace_replayed_tasks = 0
        self.plan_replays = 0
        self.plan_steps = 0
        self.plan_levels = 0
        self.plan_width_max = 0
        self.plan_dispatched_steps = 0
        self.plan_level_widths.clear()
        self.point_launches = 0
        self.point_chunks = 0
        self.point_ranks = 0
        self.point_width_max = 0
        self.point_width_budget = 0
        self.point_thread_chunks = 0
        self.point_process_chunks = 0
        self.batched_launches = 0
        self.batched_calls = 0
        self.opaque_rank_calls = 0
        self.opaque_chunk_calls = 0
        self.opaque_process_chunks = 0
        self.scalar_pattern_flips = 0
        self.superkernel_fusions = 0
        self.superkernel_fused_steps = 0
        self.superkernel_calls = 0
        self.replay_closure_calls = 0
        self.wire_bytes = 0
        self.wire_requests = 0
        self._current_iteration = None
