"""Region fields: backing storage for stores.

Legion stores data in *physical instances* of logical regions.  The
substrate keeps a single NumPy array per store (the simulator has one
address space) and hands out views of sub-store rectangles to point
tasks.  Placement and data movement are modelled analytically by the
coherence tracker rather than by physically copying data between
per-processor buffers — the functional result is identical and the
performance model is what the benchmarks measure.

With ``REPRO_DISPATCH_BACKEND=process`` the backing arrays are allocated
inside a shared-memory arena (``runtime/shm.py``) instead of private
heap pages: the array semantics in this process are unchanged (``data``
is a view of the segment), and every field additionally carries a
picklable block descriptor that the process pool ships to workers so
point-task chunks in other processes map the same physical pages —
zero-copy in both directions.  The arena is owned per region manager
and unlinked when the manager is garbage collected or the interpreter
exits, so runs never leak ``/dev/shm`` segments.
"""

from __future__ import annotations

import threading
import weakref
from typing import Dict, Optional

import numpy as np

from repro import config
from repro.ir.domain import Rect
from repro.ir.store import Store
from repro.runtime.shm import BlockDescriptor, SharedArena


class RegionField:
    """The backing NumPy array of one store.

    Sub-store views are memoized per rectangle: point tasks of every
    launch touching this store ask for the same handful of rectangles
    over and over (one per launch point), and NumPy basic slicing always
    returns a *view* of ``data``, so a cached view observes every write
    exactly like a freshly-sliced one.  ``data`` is never rebound after
    construction (``RegionManager.attach`` swaps in a whole new field
    instead), so in-place mutation — kernel writes, :meth:`fill` — keeps
    cached views valid by construction; any future code that does rebind
    ``data`` must call :meth:`invalidate_views`.

    When an ``arena`` is supplied the backing array lives in a
    shared-memory block and :attr:`shm_descriptor` addresses it for
    worker processes; otherwise the field is a plain private array and
    the descriptor is ``None`` (the process dispatcher falls back to
    threads for launches touching such fields).
    """

    def __init__(
        self,
        store: Store,
        initial: Optional[np.ndarray] = None,
        arena: Optional[SharedArena] = None,
    ) -> None:
        self.store = store
        self.shm_descriptor: Optional[BlockDescriptor] = None
        self._arena = arena
        if initial is not None:
            initial = np.asarray(initial, dtype=store.dtype)
            if tuple(initial.shape) != store.shape:
                raise ValueError(
                    f"initial data shape {initial.shape} does not match store "
                    f"shape {store.shape}"
                )
        if arena is not None:
            self.data, self.shm_descriptor = arena.allocate(
                store.shape, store.dtype
            )
            if initial is not None:
                self.data[...] = initial
        elif initial is not None:
            self.data = np.array(initial, dtype=store.dtype, copy=True)
        else:
            self.data = np.zeros(store.shape, dtype=store.dtype)
        self._view_cache: Dict[Rect, np.ndarray] = {}

    def view(self, rect: Rect) -> np.ndarray:
        """A mutable NumPy view of the given rectangle of the region.

        Thread-safe under concurrent plan-scheduler workers: the cache is
        populated with ``setdefault`` (atomic in CPython), so all callers
        observe one canonical view object per rectangle — which keeps
        ``id()``-keyed downstream caches (e.g. the SpMV row plans) stable.
        """
        cached = self._view_cache.get(rect)
        if cached is None:
            cached = self._view_cache.setdefault(rect, self.data[rect.slices()])
        return cached

    def invalidate_views(self) -> None:
        """Drop all cached sub-store views."""
        self._view_cache.clear()

    def release_storage(self) -> None:
        """Return a shared-memory block to its arena (no-op otherwise)."""
        if self._arena is not None and self.shm_descriptor is not None:
            # Drop the views first: a recycled block must not be written
            # through a stale cached view of the retired field.
            self.invalidate_views()
            descriptor, self.shm_descriptor = self.shm_descriptor, None
            self._arena.release(descriptor)

    def read_scalar(self) -> float:
        """The value of a rank-0 / single-element region."""
        return float(self.data.reshape(-1)[0])

    def write_scalar(self, value: float) -> None:
        """Overwrite the value of a rank-0 / single-element region."""
        flat = self.data.reshape(-1)
        flat[0] = value

    def fill(self, value: float) -> None:
        """Fill the whole region with a constant."""
        self.data.fill(value)


class RegionManager:
    """Allocates and tracks the region field of every store."""

    def __init__(self) -> None:
        self._fields: Dict[int, RegionField] = {}
        # First-use allocation must be serialised: two plan-scheduler
        # workers racing to create the same field would otherwise write
        # through different backing arrays.
        self._allocate_lock = threading.Lock()
        self._arena: Optional[SharedArena] = None
        self._arena_finalizer = None

    # ------------------------------------------------------------------
    # Shared-memory arena (process dispatch backend).
    # ------------------------------------------------------------------
    @property
    def arena(self) -> Optional[SharedArena]:
        """The manager's shared arena, if any field has needed one."""
        return self._arena

    def _field_arena(self) -> Optional[SharedArena]:
        """The arena new fields allocate from (``None`` ⇒ private heap).

        Created lazily on the first allocation under the process
        backend; a ``weakref.finalize`` hook unlinks its segments when
        the manager is collected or the interpreter exits.  Callers hold
        ``_allocate_lock``.
        """
        if config.dispatch_backend() != "process":
            return None
        if self._arena is None or self._arena.closed:
            arena = SharedArena()
            self._arena = arena
            self._arena_finalizer = weakref.finalize(
                self, SharedArena.close, arena
            )
        return self._arena

    def close_arena(self) -> None:
        """Unlink the manager's segments now (tests / explicit teardown)."""
        if self._arena_finalizer is not None:
            self._arena_finalizer()
            self._arena_finalizer = None
        self._arena = None

    # ------------------------------------------------------------------
    def field(self, store: Store) -> RegionField:
        """The region field of ``store``, allocated on first use."""
        existing = self._fields.get(store.uid)
        if existing is None:
            with self._allocate_lock:
                existing = self._fields.get(store.uid)
                if existing is None:
                    existing = RegionField(store, arena=self._field_arena())
                    self._fields[store.uid] = existing
        return existing

    def attach(self, store: Store, data: np.ndarray) -> RegionField:
        """Attach externally-produced data as the store's region field.

        Serialised with first-use allocation so a point-dispatch or
        plan-scheduler worker racing :meth:`field` never observes a
        half-installed replacement (attach itself only happens at host
        synchronisation points, which drain both dispatch levels first).
        Swapping a field retires every resident process plan: their
        worker-side templates hold the *old* field's shared-memory
        descriptor, and replaying them would write through a released
        (possibly recycled) block.
        """
        with self._allocate_lock:
            field = RegionField(store, initial=data, arena=self._field_arena())
            replaced = self._fields.get(store.uid)
            self._fields[store.uid] = field
        if replaced is not None:
            if replaced.shm_descriptor is not None:
                self._invalidate_resident_plans()
            replaced.release_storage()
        return field

    @staticmethod
    def _invalidate_resident_plans() -> None:
        """Retire resident process plans whose descriptors went stale."""
        from repro.runtime import procpool

        procpool.invalidate_resident_plans()

    def has_field(self, store: Store) -> bool:
        """True when backing storage for the store has been allocated."""
        return store.uid in self._fields

    def release(self, store: Store) -> None:
        """Free the backing storage of a store (e.g. eliminated temporaries).

        Releasing a shared-memory block makes it recyclable, so any
        resident plan whose templates still address it is retired first
        (releases happen during capture-side analysis, not between
        steady replays, so this does not thrash the resident cache).
        """
        with self._allocate_lock:
            field = self._fields.pop(store.uid, None)
        if field is not None:
            if field.shm_descriptor is not None:
                self._invalidate_resident_plans()
            field.release_storage()

    def reclaim_storage(self, store: Store) -> bool:
        """Free a *dead* store's backing storage between epochs.

        The storage-reclamation pass (``runtime/trace.py``) calls this at
        epoch boundaries for stores whose split reference counts all hit
        zero: the application dropped its handle and no buffered task
        will touch the store again, so its region field — megabytes of
        arena or heap pages per epoch in a functional-update program —
        is garbage.  Returning the block keeps steady-state memory
        bounded *and* keeps the arena's first-fit offsets cycling
        through a small set, which is what lets the resident-replay
        descriptor interning converge to all-int syncs.

        Unlike :meth:`release`, reclamation does **not** retire resident
        plans: resident run messages always carry the epoch's current
        descriptors (worker-side templates never dereference the baked
        ones), and interned descriptor ids name physical ``(segment,
        offset, shape, dtype)`` addresses, so a recycled block re-enters
        the protocol only through the fresh field that now owns it.
        Returns True when a field was actually reclaimed.
        """
        with self._allocate_lock:
            field = self._fields.pop(store.uid, None)
        if field is None:
            return False
        field.release_storage()
        return True

    @property
    def allocated_bytes(self) -> int:
        """Total bytes of live backing storage (used by ablation benches)."""
        return sum(field.data.nbytes for field in self._fields.values())

    @property
    def allocated_fields(self) -> int:
        """Number of live region fields."""
        return len(self._fields)
