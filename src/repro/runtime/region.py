"""Region fields: backing storage for stores.

Legion stores data in *physical instances* of logical regions.  The
substrate keeps a single NumPy array per store (the simulator has one
address space) and hands out views of sub-store rectangles to point
tasks.  Placement and data movement are modelled analytically by the
coherence tracker rather than by physically copying data between
per-processor buffers — the functional result is identical and the
performance model is what the benchmarks measure.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

import numpy as np

from repro.ir.domain import Rect
from repro.ir.store import Store


class RegionField:
    """The backing NumPy array of one store.

    Sub-store views are memoized per rectangle: point tasks of every
    launch touching this store ask for the same handful of rectangles
    over and over (one per launch point), and NumPy basic slicing always
    returns a *view* of ``data``, so a cached view observes every write
    exactly like a freshly-sliced one.  ``data`` is never rebound after
    construction (``RegionManager.attach`` swaps in a whole new field
    instead), so in-place mutation — kernel writes, :meth:`fill` — keeps
    cached views valid by construction; any future code that does rebind
    ``data`` must call :meth:`invalidate_views`.
    """

    def __init__(self, store: Store, initial: Optional[np.ndarray] = None) -> None:
        self.store = store
        if initial is not None:
            initial = np.asarray(initial, dtype=store.dtype)
            if tuple(initial.shape) != store.shape:
                raise ValueError(
                    f"initial data shape {initial.shape} does not match store "
                    f"shape {store.shape}"
                )
            self.data = np.array(initial, dtype=store.dtype, copy=True)
        else:
            self.data = np.zeros(store.shape, dtype=store.dtype)
        self._view_cache: Dict[Rect, np.ndarray] = {}

    def view(self, rect: Rect) -> np.ndarray:
        """A mutable NumPy view of the given rectangle of the region.

        Thread-safe under concurrent plan-scheduler workers: the cache is
        populated with ``setdefault`` (atomic in CPython), so all callers
        observe one canonical view object per rectangle — which keeps
        ``id()``-keyed downstream caches (e.g. the SpMV row plans) stable.
        """
        cached = self._view_cache.get(rect)
        if cached is None:
            cached = self._view_cache.setdefault(rect, self.data[rect.slices()])
        return cached

    def invalidate_views(self) -> None:
        """Drop all cached sub-store views."""
        self._view_cache.clear()

    def read_scalar(self) -> float:
        """The value of a rank-0 / single-element region."""
        return float(self.data.reshape(-1)[0])

    def write_scalar(self, value: float) -> None:
        """Overwrite the value of a rank-0 / single-element region."""
        flat = self.data.reshape(-1)
        flat[0] = value

    def fill(self, value: float) -> None:
        """Fill the whole region with a constant."""
        self.data.fill(value)


class RegionManager:
    """Allocates and tracks the region field of every store."""

    def __init__(self) -> None:
        self._fields: Dict[int, RegionField] = {}
        # First-use allocation must be serialised: two plan-scheduler
        # workers racing to create the same field would otherwise write
        # through different backing arrays.
        self._allocate_lock = threading.Lock()

    def field(self, store: Store) -> RegionField:
        """The region field of ``store``, allocated on first use."""
        existing = self._fields.get(store.uid)
        if existing is None:
            with self._allocate_lock:
                existing = self._fields.get(store.uid)
                if existing is None:
                    existing = RegionField(store)
                    self._fields[store.uid] = existing
        return existing

    def attach(self, store: Store, data: np.ndarray) -> RegionField:
        """Attach externally-produced data as the store's region field.

        Serialised with first-use allocation so a point-dispatch or
        plan-scheduler worker racing :meth:`field` never observes a
        half-installed replacement (attach itself only happens at host
        synchronisation points, which drain both dispatch levels first).
        """
        field = RegionField(store, initial=data)
        with self._allocate_lock:
            self._fields[store.uid] = field
        return field

    def has_field(self, store: Store) -> bool:
        """True when backing storage for the store has been allocated."""
        return store.uid in self._fields

    def release(self, store: Store) -> None:
        """Free the backing storage of a store (e.g. eliminated temporaries)."""
        with self._allocate_lock:
            self._fields.pop(store.uid, None)

    @property
    def allocated_bytes(self) -> int:
        """Total bytes of live backing storage (used by ablation benches)."""
        return sum(field.data.nbytes for field in self._fields.values())

    @property
    def allocated_fields(self) -> int:
        """Number of live region fields."""
        return len(self._fields)
