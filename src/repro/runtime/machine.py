"""Analytic machine model (paper Section 7, "Experimental Setup").

The paper's cluster is an NVIDIA A100 DGX SuperPOD: 8 A100-80GB GPUs per
node joined by NVLink/NVSwitch, nodes joined by 8 InfiniBand NICs.  The
model below captures the handful of parameters the roofline and
communication models need.  Absolute values are representative of that
hardware; the benchmark conclusions depend on ratios (bandwidth vs. launch
overhead vs. network bandwidth), not on the absolute numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass(frozen=True)
class MachineConfig:
    """Description of the simulated target machine."""

    num_gpus: int = 1
    gpus_per_node: int = 8

    #: Effective HBM2e bandwidth of one A100 (bytes / second).
    gpu_memory_bandwidth: float = 1.5e12
    #: FP64 peak of one A100 without tensor cores (flops / second).
    gpu_peak_flops: float = 9.7e12
    #: Device memory per GPU in bytes (80 GB A100).
    gpu_memory_capacity: float = 80e9

    #: Latency of launching one GPU kernel (seconds).
    kernel_launch_latency: float = 8e-6
    #: Runtime (Legion) overhead per index-task launch: dependence
    #: analysis, mapping and messaging (seconds).  The paper reports a
    #: minimum effective task granularity of about 1 ms for Legion.
    task_launch_overhead: float = 2.5e-4
    #: Additional fixed latency of a device-wide reduction (seconds).
    reduction_latency: float = 1.0e-5

    #: Effective per-GPU NVLink bandwidth within a node (bytes / second).
    nvlink_bandwidth: float = 250e9
    #: Effective per-GPU share of inter-node InfiniBand bandwidth
    #: (8 NICs x ~25 GB/s shared by 8 GPUs; bytes / second).
    infiniband_bandwidth: float = 25e9
    #: One-way network latency (seconds).
    network_latency: float = 5e-6

    def __post_init__(self) -> None:
        if self.num_gpus < 1:
            raise ValueError("the machine needs at least one GPU")
        if self.gpus_per_node < 1:
            raise ValueError("a node needs at least one GPU")

    # ------------------------------------------------------------------
    # Topology helpers.
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes needed to host ``num_gpus`` GPUs."""
        return max(1, math.ceil(self.num_gpus / self.gpus_per_node))

    @property
    def multi_node(self) -> bool:
        """True when communication may cross the node interconnect."""
        return self.num_gpus > self.gpus_per_node

    def with_gpus(self, num_gpus: int) -> "MachineConfig":
        """A copy of the configuration with a different GPU count."""
        from dataclasses import replace

        return replace(self, num_gpus=num_gpus)

    # ------------------------------------------------------------------
    # Communication primitives (alpha-beta model).
    # ------------------------------------------------------------------
    def interconnect_bandwidth(self) -> float:
        """Per-GPU bandwidth of the slowest interconnect in use."""
        return self.infiniband_bandwidth if self.multi_node else self.nvlink_bandwidth

    def point_to_point_time(self, message_bytes: float) -> float:
        """Time to move ``message_bytes`` between two GPUs."""
        if message_bytes <= 0:
            return 0.0
        return self.network_latency + message_bytes / self.interconnect_bandwidth()

    def allgather_time(self, bytes_per_gpu: float) -> float:
        """Time for every GPU to obtain every other GPU's contribution."""
        if self.num_gpus <= 1 or bytes_per_gpu <= 0:
            return 0.0
        incoming = bytes_per_gpu * (self.num_gpus - 1)
        steps = math.ceil(math.log2(self.num_gpus))
        return steps * self.network_latency + incoming / self.interconnect_bandwidth()

    def allreduce_time(self, message_bytes: float) -> float:
        """Time of a ring/tree all-reduce of ``message_bytes`` per GPU."""
        if self.num_gpus <= 1:
            return 0.0
        steps = math.ceil(math.log2(self.num_gpus))
        if message_bytes <= 0:
            return steps * self.network_latency
        return steps * self.network_latency + 2.0 * message_bytes / self.interconnect_bandwidth()

    def scalar_reduction_time(self) -> float:
        """Time to reduce one scalar future across the machine."""
        return self.allreduce_time(8.0)

    # ------------------------------------------------------------------
    # Overlap-aware time accounting (plan scheduler).
    # ------------------------------------------------------------------
    def overlapped_level_seconds(self, step_seconds) -> float:
        """Simulated time of one dependence level of a replayed plan.

        Under ``REPRO_OVERLAP_MODEL=1`` the runtime overlaps independent
        launches across the machine, so a level costs the *maximum* of
        its steps' modelled times rather than their sum (the serial
        model).  Steps within one level are provably independent — the
        plan scheduler derived that from the privilege footprints.
        """
        return max(step_seconds, default=0.0)

    def overlapped_group_seconds(self, launch_seconds) -> float:
        """Simulated time of one eager group of independent launches.

        The eager-path counterpart of :meth:`overlapped_level_seconds`:
        consecutive launches with no store hazard between them form a
        greedy group that the machine overlaps, so the group costs the
        maximum of its launches' modelled times.
        """
        return self.overlapped_level_seconds(launch_seconds)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"Machine({self.num_gpus} GPUs over {self.num_nodes} nodes)"
