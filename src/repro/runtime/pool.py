"""The shared persistent worker pool and rank-chunk partitioning.

Two dispatch levels share this pool so they never multiply into
oversubscription:

* the **plan scheduler** (``runtime/scheduler.py``) hands independent
  steps of a captured :class:`ExecutionPlan` to it, and
* the **intra-launch point dispatcher** (``runtime/executor.py`` and the
  scheduler's compiled-step chunking) hands contiguous rank chunks of a
  single launch to it.

The pool is sized for the wider of the two levels
(``max(REPRO_WORKERS, REPRO_POINT_WORKERS)``) and is resized lazily when
either flag changes.  Closures submitted through :func:`submit_guarded`
mark their worker thread as *nested* for the duration of the closure:
the executor's point dispatcher consults :func:`in_pool_worker` and runs
serially on such threads, so a step that was itself dispatched to the
pool never re-submits chunk work and waits on it — which could otherwise
exhaust the pool with blocked waiters (a classic nested-dispatch
deadlock).
"""

from __future__ import annotations

import atexit
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, Tuple

from repro import config
from repro.ir.domain import Rect

_POOL: Optional[ThreadPoolExecutor] = None
_POOL_SIZE = 0
_POOL_LOCK = threading.Lock()
_TLS = threading.local()


def shared_pool_size() -> int:
    """Workers the shared pool needs for both dispatch levels."""
    return max(config.worker_count(), config.point_worker_count())


def worker_pool(size: Optional[int] = None) -> ThreadPoolExecutor:
    """The process-wide worker pool, resized on demand."""
    global _POOL, _POOL_SIZE
    if size is None:
        size = shared_pool_size()
    with _POOL_LOCK:
        if _POOL is None or _POOL_SIZE != size:
            if _POOL is not None:
                _POOL.shutdown(wait=False)
            _POOL = ThreadPoolExecutor(
                max_workers=size, thread_name_prefix="repro-worker"
            )
            _POOL_SIZE = size
        return _POOL


def shutdown_shared_pool() -> None:
    """Retire the thread-pool singleton (reloads, atexit, test teardown)."""
    global _POOL, _POOL_SIZE
    with _POOL_LOCK:
        pool = _POOL
        _POOL = None
        _POOL_SIZE = 0
    if pool is not None:
        pool.shutdown(wait=False)


def _reload_shared_pool() -> None:
    """Config-reload hook: drop a pool sized from stale flag values.

    :func:`worker_pool` already resizes on its next call, but only when
    invoked without an explicit size — retiring the singleton here makes
    every path (including explicit-size callers that cached the old
    figure) rebuild against the freshly-read flags.
    """
    with _POOL_LOCK:
        stale = _POOL is not None and _POOL_SIZE != shared_pool_size()
    if stale:
        shutdown_shared_pool()


config.register_reload_callback(_reload_shared_pool)
atexit.register(shutdown_shared_pool)


def in_pool_worker() -> bool:
    """True when the calling thread is executing a guarded pool closure.

    Used to suppress nested point dispatch: work that already runs on a
    pool worker computes serially instead of re-submitting to the pool.
    """
    return getattr(_TLS, "active", False)


def guarded(fn: Callable[[], object]) -> Callable[[], object]:
    """Wrap a closure so its worker thread reports :func:`in_pool_worker`."""

    def run() -> object:
        _TLS.active = True
        try:
            return fn()
        finally:
            _TLS.active = False

    return run


def submit_guarded(pool: ThreadPoolExecutor, fn: Callable[[], object]) -> Future:
    """Submit ``fn`` with the nested-dispatch guard installed."""
    return pool.submit(guarded(fn))


def dispatch_chunks(
    pool: ThreadPoolExecutor,
    chunks: List[Tuple[int, int]],
    run: Callable[[int, int], object],
) -> List[object]:
    """Run rank-chunk closures across the pool, the first one inline.

    The single order-sensitive join protocol shared by the executor's
    point dispatcher and the plan scheduler's inline compiled steps:
    results come back in chunk (and therefore rank) order, so join-point
    folds reproduce the serial accumulation order exactly.
    """
    futures = [
        submit_guarded(pool, lambda s=start, e=stop: run(s, e))
        for start, stop in chunks[1:]
    ]
    results: List[object] = [run(*chunks[0])]
    results.extend(future.result() for future in futures)
    return results


def contiguous_elementwise_tables(
    tables, num_points: int, require_full_cover: bool = False
) -> bool:
    """The shared geometry predicate of element-wise chunk batching.

    True when every per-rank rect table in ``tables`` tiles a 1-D span
    contiguously in rank order (each tile starts where the previous one
    ended).  Under that condition — and a kernel with no reductions,
    which callers check separately — one closure call over any merged
    contiguous span of tiles is element-for-element identical to the
    per-rank loop: NumPy ufuncs are element-wise and the tiles are
    disjoint and consecutive.  This single predicate backs both batching
    sites (the trace recorder's capture-time verdict and the eager
    executor's per-launch detection) so the soundness condition cannot
    drift between them.

    ``require_full_cover`` additionally pins the first tile to offset 0
    (the recorder's conservative whole-store condition; the eager path
    only needs contiguity, since a merged chunk span is a valid
    sub-rectangle wherever it starts).
    """
    if num_points <= 1:
        return False
    for table in tables:
        if len(table) != num_points:
            return False
        cursor: Optional[int] = 0 if require_full_cover else None
        for rect, _volume in table:
            if len(rect.lo) != 1:
                return False
            if cursor is not None and rect.lo[0] != cursor:
                return False
            cursor = rect.hi[0]
    return True


def merged_table_span(table: Sequence, start: int, stop: int) -> Rect:
    """The merged 1-D rect covering ranks ``[start, stop)`` of a table.

    Only valid for tables that satisfied
    :func:`contiguous_elementwise_tables`; shared by the executor's and
    the plan scheduler's merged-call paths (the process-pool workers
    build the same span from the wire form of the chunk's rects).
    """
    return Rect(table[start][0].lo, table[stop - 1][0].hi)


def point_chunks(num_points: int, width: int, min_ranks: int) -> List[Tuple[int, int]]:
    """Contiguous ``[start, stop)`` rank chunks of one launch.

    The chunk count is bounded by the dispatch ``width`` and by the
    ``min_ranks``-per-chunk floor; chunks cover ``range(num_points)`` in
    order and differ in size by at most one rank, so the recorded-rank-
    order join at the launch's fold point is a simple concatenation.
    """
    if num_points <= 0:
        return [(0, 0)]
    if width <= 1 or num_points <= 1:
        return [(0, num_points)]
    chunk_count = min(width, max(1, num_points // max(1, min_ranks)))
    if chunk_count <= 1:
        return [(0, num_points)]
    base, extra = divmod(num_points, chunk_count)
    chunks: List[Tuple[int, int]] = []
    start = 0
    for index in range(chunk_count):
        stop = start + base + (1 if index < extra else 0)
        chunks.append((start, stop))
        start = stop
    return chunks
