"""The shared persistent worker pool and rank-chunk partitioning.

Two dispatch levels share this pool so they never multiply into
oversubscription:

* the **plan scheduler** (``runtime/scheduler.py``) hands independent
  steps of a captured :class:`ExecutionPlan` to it, and
* the **intra-launch point dispatcher** (``runtime/executor.py`` and the
  scheduler's compiled-step chunking) hands contiguous rank chunks of a
  single launch to it.

The pool is sized for the wider of the two levels
(``max(REPRO_WORKERS, REPRO_POINT_WORKERS)``) and is resized lazily when
either flag changes.  Closures submitted through :func:`submit_guarded`
mark their worker thread as *nested* for the duration of the closure:
the executor's point dispatcher consults :func:`in_pool_worker` and runs
serially on such threads, so a step that was itself dispatched to the
pool never re-submits chunk work and waits on it — which could otherwise
exhaust the pool with blocked waiters (a classic nested-dispatch
deadlock).
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, List, Optional, Tuple

from repro import config

_POOL: Optional[ThreadPoolExecutor] = None
_POOL_SIZE = 0
_POOL_LOCK = threading.Lock()
_TLS = threading.local()


def shared_pool_size() -> int:
    """Workers the shared pool needs for both dispatch levels."""
    return max(config.worker_count(), config.point_worker_count())


def worker_pool(size: Optional[int] = None) -> ThreadPoolExecutor:
    """The process-wide worker pool, resized on demand."""
    global _POOL, _POOL_SIZE
    if size is None:
        size = shared_pool_size()
    with _POOL_LOCK:
        if _POOL is None or _POOL_SIZE != size:
            if _POOL is not None:
                _POOL.shutdown(wait=False)
            _POOL = ThreadPoolExecutor(
                max_workers=size, thread_name_prefix="repro-worker"
            )
            _POOL_SIZE = size
        return _POOL


def in_pool_worker() -> bool:
    """True when the calling thread is executing a guarded pool closure.

    Used to suppress nested point dispatch: work that already runs on a
    pool worker computes serially instead of re-submitting to the pool.
    """
    return getattr(_TLS, "active", False)


def guarded(fn: Callable[[], object]) -> Callable[[], object]:
    """Wrap a closure so its worker thread reports :func:`in_pool_worker`."""

    def run() -> object:
        _TLS.active = True
        try:
            return fn()
        finally:
            _TLS.active = False

    return run


def submit_guarded(pool: ThreadPoolExecutor, fn: Callable[[], object]) -> Future:
    """Submit ``fn`` with the nested-dispatch guard installed."""
    return pool.submit(guarded(fn))


def dispatch_chunks(
    pool: ThreadPoolExecutor,
    chunks: List[Tuple[int, int]],
    run: Callable[[int, int], object],
) -> List[object]:
    """Run rank-chunk closures across the pool, the first one inline.

    The single order-sensitive join protocol shared by the executor's
    point dispatcher and the plan scheduler's inline compiled steps:
    results come back in chunk (and therefore rank) order, so join-point
    folds reproduce the serial accumulation order exactly.
    """
    futures = [
        submit_guarded(pool, lambda s=start, e=stop: run(s, e))
        for start, stop in chunks[1:]
    ]
    results: List[object] = [run(*chunks[0])]
    results.extend(future.result() for future in futures)
    return results


def point_chunks(num_points: int, width: int, min_ranks: int) -> List[Tuple[int, int]]:
    """Contiguous ``[start, stop)`` rank chunks of one launch.

    The chunk count is bounded by the dispatch ``width`` and by the
    ``min_ranks``-per-chunk floor; chunks cover ``range(num_points)`` in
    order and differ in size by at most one rank, so the recorded-rank-
    order join at the launch's fold point is a simple concatenation.
    """
    if num_points <= 0:
        return [(0, 0)]
    if width <= 1 or num_points <= 1:
        return [(0, num_points)]
    chunk_count = min(width, max(1, num_points // max(1, min_ranks)))
    if chunk_count <= 1:
        return [(0, num_points)]
    base, extra = divmod(num_points, chunk_count)
    chunks: List[Tuple[int, int]] = []
    start = 0
    for index in range(chunk_count):
        stop = start + base + (1 if index < extra else 0)
        chunks.append((start, stop))
        start = stop
    return chunks
