"""Span/event flight recorder for the execution stack.

``REPRO_TELEMETRY=1`` arms a process-wide :class:`SpanRecorder`: a
preallocated ring buffer (``REPRO_TELEMETRY_EVENTS`` events) receiving
begin/end spans from the instrumented layers — epoch capture/replay
(``trace.py``), scheduler levels and steps (``scheduler.py``), point and
opaque chunks (``executor.py``), super-kernel calls (``superkernel.py``),
wire traffic and worker-side execution (``procpool.py``) and
shared-memory arena activity (``shm.py``).  Every event carries the
wall-clock (``time.perf_counter``), the runtime's simulated seconds where
the site has them, the recording thread id and a free-form label
(plan/step/rank-range).

Process-pool workers run their own recorder (installed by a handshake at
pool spawn) and piggyback drained events on reply frames; the parent
ingests them tagged with the worker's OS pid and the clock offset
measured during the handshake, so :func:`export_chrome_trace` renders
parent threads and worker processes on one aligned timeline.  The export
is Chrome trace-event JSON, loadable directly in Perfetto
(``python -m repro.tools.tracedump`` writes it to a file).

The off path is free by construction: with the flag unset the module
global ``_RECORDER`` stays ``None`` and :func:`span`/:func:`instant`
return immediately without constructing anything or touching a recorder
(the tests assert zero recorder calls).  :func:`config.reload_flags`
retires the ring buffer through a registered callback, mirroring the
pool-singleton retirement pattern.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro import config

# Event tuples: (phase, kind, label, wall_seconds, thread_id, simulated
# seconds, sequence number).  Phase is "B" (begin), "E" (end) or "I"
# (instant); the sequence number is the recorder's running event count
# at record time, so per-recorder ordering survives the merge.
Event = Tuple[str, str, str, float, int, float, int]


class SpanRecorder:
    """Preallocated ring buffer of span begin/end and instant events."""

    def __init__(self, capacity: int) -> None:
        self.capacity = int(capacity)
        self._events: List[Optional[Event]] = [None] * self.capacity
        self._count = 0
        self._lock = threading.Lock()

    def record(self, phase: str, kind: str, label: str, sim: float) -> None:
        """Append one event, overwriting the oldest when the ring is full."""
        now = time.perf_counter()
        tid = threading.get_ident()
        with self._lock:
            seq = self._count
            self._events[seq % self.capacity] = (
                phase, kind, label, now, tid, sim, seq,
            )
            self._count = seq + 1

    @property
    def recorded(self) -> int:
        """Total events recorded, including any overwritten ones."""
        return self._count

    @property
    def dropped(self) -> int:
        """Events lost to ring wrap-around."""
        return max(0, self._count - self.capacity)

    def events(self) -> List[Event]:
        """Live events, oldest first."""
        with self._lock:
            count = self._count
            if count <= self.capacity:
                return [e for e in self._events[:count] if e is not None]
            start = count % self.capacity
            ring = self._events[start:] + self._events[:start]
            return [e for e in ring if e is not None]

    def drain(self) -> List[Event]:
        """Return the live events and clear the ring (capacity kept)."""
        with self._lock:
            count = self._count
            if count <= self.capacity:
                out = [e for e in self._events[:count] if e is not None]
            else:
                start = count % self.capacity
                ring = self._events[start:] + self._events[:start]
                out = [e for e in ring if e is not None]
            self._events = [None] * self.capacity
            self._count = 0
            return out


class _Span:
    """Context manager recording a begin/end pair on one recorder."""

    __slots__ = ("_recorder", "_kind", "_label", "_sim")

    def __init__(self, recorder: SpanRecorder, kind: str, label: str, sim: float) -> None:
        self._recorder = recorder
        self._kind = kind
        self._label = label
        self._sim = sim

    def __enter__(self) -> "_Span":
        self._recorder.record("B", self._kind, self._label, self._sim)
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._recorder.record("E", self._kind, self._label, self._sim)


class _NoopSpan:
    """Shared do-nothing span handed out when telemetry is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NOOP_SPAN = _NoopSpan()

#: The armed recorder, or ``None`` when ``REPRO_TELEMETRY`` is off.  The
#: instrumentation fast path is one module-global read plus a ``None``
#: check; nothing else runs when telemetry is disabled.
_RECORDER: Optional[SpanRecorder] = None

#: Worker event batches ingested by the parent: (pid, worker index,
#: clock offset to add to worker timestamps, events).  Bounded to the
#: ring capacity in total events; oldest batches are dropped first.
_WORKER_BATCHES: List[Tuple[int, int, float, List[Event]]] = []
_WORKER_BATCH_LOCK = threading.Lock()
_WORKER_DROPPED = 0


def enabled() -> bool:
    """True when a recorder is armed in this process."""
    return _RECORDER is not None


def active() -> Optional[SpanRecorder]:
    """The armed recorder, or ``None`` when telemetry is off."""
    return _RECORDER


def span(kind: str, label: str = "", sim: float = 0.0):
    """A context manager bracketing ``kind`` with begin/end events.

    Returns a shared no-op object when telemetry is off — the off path
    performs no allocation and no recorder call.
    """
    recorder = _RECORDER
    if recorder is None:
        return _NOOP_SPAN
    return _Span(recorder, kind, label, sim)


def instant(kind: str, label: str = "", sim: float = 0.0) -> None:
    """Record a single instant event (no duration)."""
    recorder = _RECORDER
    if recorder is None:
        return
    recorder.record("I", kind, label, sim)


def worker_state() -> Tuple[bool, int]:
    """The (enabled, capacity) pair worker processes should mirror.

    The process pool snapshots this at spawn (and ships it in the
    telemetry handshake); ``procpool`` retires a pool whose snapshot no
    longer matches after :func:`config.reload_flags`.
    """
    return (config.telemetry_enabled(), config.telemetry_event_capacity())


def install_worker_recorder(armed: bool, capacity: int) -> None:
    """(Re)install this process's recorder from a handshake/reset message.

    Called inside pool worker processes: forked children inherit the
    parent's recorder object, so the handshake always replaces it — with
    a fresh ring when armed, with ``None`` when not.
    """
    global _RECORDER
    _RECORDER = SpanRecorder(capacity) if armed else None


def drain_events() -> Optional[List[Event]]:
    """Drain this process's recorder for piggybacking on a reply frame.

    Returns ``None`` when telemetry is off or nothing was recorded, so
    the reply tuple keeps its classic 3-element shape in that case.
    """
    recorder = _RECORDER
    if recorder is None:
        return None
    events = recorder.drain()
    return events or None


def ingest_worker_events(
    pid: int, worker: int, offset: float, events: List[Event]
) -> None:
    """Merge a worker's drained events into the parent-side trace.

    ``offset`` is added to the worker's timestamps (measured by the
    clock handshake at pool spawn) so both timelines align.  Total
    retained worker events are bounded by the ring capacity; the oldest
    batches are dropped first and counted.
    """
    global _WORKER_DROPPED
    recorder = _RECORDER
    if recorder is None or not events:
        return
    with _WORKER_BATCH_LOCK:
        _WORKER_BATCHES.append((pid, worker, offset, events))
        total = sum(len(batch[3]) for batch in _WORKER_BATCHES)
        while total > recorder.capacity and len(_WORKER_BATCHES) > 1:
            stale = _WORKER_BATCHES.pop(0)
            _WORKER_DROPPED += len(stale[3])
            total -= len(stale[3])


def reset() -> None:
    """Clear recorded events (parent ring and ingested worker batches)."""
    global _WORKER_DROPPED
    recorder = _RECORDER
    if recorder is not None:
        recorder.drain()
    with _WORKER_BATCH_LOCK:
        _WORKER_BATCHES.clear()
        _WORKER_DROPPED = 0


def merged_events() -> List[Tuple[int, int, Event]]:
    """All events as (pid, worker index, event) with aligned timestamps.

    The parent's events carry worker index ``-1``; worker events have
    their clock offsets applied.  Per-source recording order is
    preserved (parent ring order; batch arrival order per worker).
    """
    merged: List[Tuple[int, int, Event]] = []
    pid = os.getpid()
    recorder = _RECORDER
    if recorder is not None:
        merged.extend((pid, -1, event) for event in recorder.events())
    with _WORKER_BATCH_LOCK:
        batches = list(_WORKER_BATCHES)
    for worker_pid, worker, offset, events in batches:
        for phase, kind, label, wall, tid, sim, seq in events:
            merged.append(
                (worker_pid, worker, (phase, kind, label, wall + offset, tid, sim, seq))
            )
    return merged


def dropped_events() -> int:
    """Events lost to ring wrap-around or worker-batch trimming."""
    recorder = _RECORDER
    parent = recorder.dropped if recorder is not None else 0
    with _WORKER_BATCH_LOCK:
        return parent + _WORKER_DROPPED


def export_chrome_trace() -> Dict[str, Any]:
    """Render the merged trace as a Chrome trace-event JSON object.

    The result loads directly in Perfetto / ``chrome://tracing``: one
    ``pid`` lane per OS process (parent plus each pool worker), one
    ``tid`` lane per recording thread, ``B``/``E`` span pairs and ``i``
    instants, timestamps in microseconds relative to the earliest event.
    """
    merged = merged_events()
    events: List[Dict[str, Any]] = []
    base = min((entry[2][3] for entry in merged), default=0.0)
    seen_processes: Dict[int, int] = {}
    for pid, worker, (phase, kind, label, wall, tid, sim, seq) in merged:
        if pid not in seen_processes:
            seen_processes[pid] = worker
        record: Dict[str, Any] = {
            "name": kind,
            "cat": kind.split(".", 1)[0],
            "ph": "i" if phase == "I" else phase,
            "ts": (wall - base) * 1e6,
            "pid": pid,
            "tid": tid,
            "args": {"label": label, "sim_seconds": sim, "seq": seq},
        }
        if phase == "I":
            record["s"] = "t"
        events.append(record)
    for pid, worker in seen_processes.items():
        name = "repro-parent" if worker < 0 else f"repro-worker-{worker}"
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": name},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.runtime.telemetry",
            "dropped_events": dropped_events(),
        },
    }


def write_chrome_trace(path: str) -> Dict[str, Any]:
    """Serialise :func:`export_chrome_trace` to ``path``; returns the dict."""
    import json

    trace = export_chrome_trace()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle)
    return trace


def _reload_telemetry() -> None:
    """Retire/re-arm the ring buffer after :func:`config.reload_flags`.

    Mirrors the pool-singleton retirement pattern: the old ring (sized
    and armed under the previous flag values) is dropped, a fresh one is
    built when the new flags ask for it, and ingested worker batches are
    cleared.  Worker-side recorders are refreshed by the process pool
    (``procpool`` retires a pool whose telemetry snapshot went stale).
    """
    global _RECORDER, _WORKER_DROPPED
    armed, capacity = worker_state()
    _RECORDER = SpanRecorder(capacity) if armed else None
    with _WORKER_BATCH_LOCK:
        _WORKER_BATCHES.clear()
        _WORKER_DROPPED = 0


config.register_reload_callback(_reload_telemetry)
# Arm (or not) from the flags as first imported, so processes that never
# call reload_flags still honour REPRO_TELEMETRY set at launch.
_reload_telemetry()
