"""The Legion-like runtime: the layer below Diffuse.

The runtime accepts a stream of index tasks (fused or not), derives the
communication each launch implies, executes the task functionally over
region fields, and records analytically-modelled timings in the profiler.
It is deliberately ignorant of fusion — Diffuse sits above it and simply
forwards (possibly fused) tasks, exactly as in the paper's architecture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Set, Tuple

import numpy as np

from repro import config
from repro.ir.store import Store
from repro.ir.task import IndexTask
from repro.kernel.compiler import CompiledKernel, JITCompiler
from repro.kernel.generators import GeneratorRegistry, default_registry
from repro.runtime import telemetry
from repro.runtime.coherence import CoherenceTracker
from repro.runtime.executor import TaskExecutor
from repro.runtime.machine import MachineConfig
from repro.runtime.opaque import OpaqueTaskImpl, OpaqueTaskRegistry, default_opaque_registry
from repro.runtime.profiler import Profiler
from repro.runtime.region import RegionManager


class UnexecutableTaskError(RuntimeError):
    """Raised when a task has neither a kernel generator nor an opaque impl."""


@dataclass
class ResolvedLaunch:
    """A task whose execution resources and charges are fully resolved.

    Splitting :meth:`LegionRuntime.submit` into *resolve* (coherence
    pricing, kernel/opaque-impl selection) and *execute* lets a captured
    :class:`~repro.runtime.trace.ExecutionPlan` drive execution directly:
    replay skips resolution entirely and feeds pre-resolved launches to
    the executor.
    """

    task: IndexTask
    communication_seconds: float
    #: Compiled kernel, or None for opaque execution.
    kernel: Optional[CompiledKernel]
    #: Opaque implementation, or None for compiled execution.
    opaque_impl: Optional[OpaqueTaskImpl]


class LegionRuntime:
    """Executes index tasks against the simulated machine."""

    def __init__(
        self,
        machine: Optional[MachineConfig] = None,
        generator_registry: Optional[GeneratorRegistry] = None,
        opaque_registry: Optional[OpaqueTaskRegistry] = None,
    ) -> None:
        self.machine = machine or MachineConfig()
        self.regions = RegionManager()
        self.coherence = CoherenceTracker(self.machine)
        self.profiler = Profiler()
        self.executor = TaskExecutor(self.regions, self.machine, self.profiler)
        self.opaque_registry = opaque_registry or default_opaque_registry()
        # Per-task kernels correspond to the libraries' pre-compiled task
        # variants; their compilation is not charged to the application.
        self._task_variant_compiler = JITCompiler(
            registry=generator_registry or default_registry()
        )
        self._task_variant_cache: Dict[Hashable, CompiledKernel] = {}
        self.simulated_seconds: float = 0.0
        #: When set, every executed launch is reported to the recorder so
        #: the trace subsystem can capture the epoch's execution plan.
        self.trace_recorder = None
        self._plan_scheduler = None
        #: Eager-path overlap accounting (``REPRO_OVERLAP_MODEL=1``): the
        #: pending greedy group of consecutive pairwise-independent
        #: launches, charged its *maximum* modelled time at the next
        #: conflict or synchronisation point.
        self._overlap_seconds: List[float] = []
        self._overlap_reads: Set[int] = set()
        self._overlap_mutated: Set[int] = set()

    @property
    def plan_scheduler(self):
        """The dependence-partitioned plan scheduler (created lazily)."""
        if self._plan_scheduler is None:
            from repro.runtime.scheduler import PlanScheduler

            self._plan_scheduler = PlanScheduler(self)
        return self._plan_scheduler

    # ------------------------------------------------------------------
    # Task submission.
    # ------------------------------------------------------------------
    def resolve(
        self, task: IndexTask, compiled: Optional[CompiledKernel] = None
    ) -> ResolvedLaunch:
        """Price the task's communication and select its execution vehicle."""
        communication = self.coherence.communication_seconds(task)
        if compiled is not None:
            return ResolvedLaunch(task, communication, kernel=compiled, opaque_impl=None)
        if self._task_variant_compiler.can_compile(task):
            kernel = self._task_variant_kernel(task)
            return ResolvedLaunch(task, communication, kernel=kernel, opaque_impl=None)
        if self.opaque_registry.has(task.task_name):
            impl = self.opaque_registry.get(task.task_name)
            return ResolvedLaunch(task, communication, kernel=None, opaque_impl=impl)
        raise UnexecutableTaskError(
            f"task '{task.task_name}' has neither a kernel generator nor an "
            "opaque implementation"
        )

    def execute_resolved(self, launch: ResolvedLaunch) -> float:
        """Execute a resolved launch; returns the simulated seconds it took."""
        task = launch.task
        with telemetry.span(
            "task.execute",
            f"{task.task_name} points={task.launch_domain.volume}"
            if telemetry.enabled()
            else "",
            sim=self.simulated_seconds,
        ):
            if launch.kernel is not None:
                kernel_seconds = self.executor.execute_compiled(task, launch.kernel)
                launches = launch.kernel.launches
            else:
                kernel_seconds = self.executor.execute_opaque(task, launch.opaque_impl)
                launches = 1

        overhead = self.machine.task_launch_overhead
        overlap = config.overlap_model_enabled()
        record = self.profiler.record_task(
            name=task.task_name,
            constituents=task.constituent_count(),
            kernel_seconds=kernel_seconds,
            communication_seconds=launch.communication_seconds,
            overhead_seconds=overhead,
            launches=launches,
            fused=task.is_fused,
            accumulate_iteration=not overlap,
        )
        if overlap:
            self._overlap_note(task, record.total_seconds)
        else:
            self.simulated_seconds += record.total_seconds
        if self.trace_recorder is not None:
            self.trace_recorder.record_launch(launch, record)
        return record.total_seconds

    def submit(self, task: IndexTask, compiled: Optional[CompiledKernel] = None) -> float:
        """Resolve and execute a task; returns the simulated seconds it took."""
        return self.execute_resolved(self.resolve(task, compiled))

    def _task_variant_kernel(self, task: IndexTask) -> CompiledKernel:
        # The kernel binding depends on which arguments alias the same
        # (store, partition) view — e.g. ``dot(r, r)`` and ``dot(p, q)``
        # need different bindings — so the cache key includes the
        # aliasing pattern of the argument list, not just its length.
        views = []
        pattern = []
        for arg in task.args:
            view = (arg.store.uid, arg.partition)
            for position, existing in enumerate(views):
                if existing == view:
                    pattern.append(position)
                    break
            else:
                pattern.append(len(views))
                views.append(view)
        key = (task.task_name, tuple(pattern), len(task.scalar_args))
        kernel = self._task_variant_cache.get(key)
        if kernel is None:
            kernel = self._task_variant_compiler.compile(task, charge_compile_time=False)
            self._task_variant_cache[key] = kernel
        return kernel

    # ------------------------------------------------------------------
    # Eager overlap accounting (``REPRO_OVERLAP_MODEL=1``).
    # ------------------------------------------------------------------
    def _overlap_note(self, task: IndexTask, seconds: float) -> None:
        """Add one eager launch to the pending overlap group.

        Consecutive launches with no RAW/WAR/WAW hazard between their
        store footprints may overlap across the machine, so the group is
        charged the maximum of its launches' modelled times (the eager
        counterpart of the plan scheduler's level-max accounting).  A
        hazard closes the group and starts a new one.
        """
        reads: Set[int] = set()
        mutated: Set[int] = set()
        for arg in task.args:
            privilege = arg.privilege
            uid = arg.store.uid
            if privilege.reads:
                reads.add(uid)
            if privilege.writes or privilege.reduces:
                mutated.add(uid)
        if self._overlap_seconds and (
            (reads & self._overlap_mutated)
            or (mutated & self._overlap_mutated)
            or (mutated & self._overlap_reads)
        ):
            self.flush_overlap_accounting()
        self._overlap_reads |= reads
        self._overlap_mutated |= mutated
        self._overlap_seconds.append(seconds)

    def flush_overlap_accounting(self) -> None:
        """Charge the pending eager overlap group (max over launches).

        Called at every hazard, host synchronisation point (scalar and
        array reads, host writes, fills), iteration boundary and before
        plan replay, so group accounting never crosses an ordering
        point.  A no-op when no group is pending (and in particular
        whenever ``REPRO_OVERLAP_MODEL`` is off).
        """
        if not self._overlap_seconds:
            return
        seconds = self.machine.overlapped_group_seconds(self._overlap_seconds)
        self.simulated_seconds += seconds
        self.profiler.add_iteration_seconds(seconds)
        self._overlap_seconds = []
        self._overlap_reads.clear()
        self._overlap_mutated.clear()

    # ------------------------------------------------------------------
    # Host-side data access (futures, attach/detach).
    # ------------------------------------------------------------------
    def read_scalar(self, store: Store) -> float:
        """Read the value of a scalar store (blocking on a future)."""
        self.flush_overlap_accounting()
        return self.regions.field(store).read_scalar()

    def write_scalar(self, store: Store, value: float) -> None:
        """Write a scalar store from the host."""
        self.flush_overlap_accounting()
        self.regions.field(store).write_scalar(value)
        self.coherence.invalidate(store)

    def attach_array(self, store: Store, data: np.ndarray) -> None:
        """Attach host data as the contents of a store."""
        self.flush_overlap_accounting()
        self.regions.attach(store, data)
        self.coherence.invalidate(store)

    def read_array(self, store: Store) -> np.ndarray:
        """A copy of the store's full contents (host-side inspection)."""
        self.flush_overlap_accounting()
        return np.array(self.regions.field(store).data, copy=True)

    def fill(self, store: Store, value: float) -> None:
        """Host-side constant fill of a store (no task launch)."""
        self.flush_overlap_accounting()
        self.regions.field(store).fill(value)
        self.coherence.invalidate(store)

    # ------------------------------------------------------------------
    # Accounting helpers.
    # ------------------------------------------------------------------
    def add_simulated_seconds(self, seconds: float) -> None:
        """Attribute extra simulated time (e.g. JIT compilation)."""
        self.simulated_seconds += seconds

    def reset_profiling(self) -> None:
        """Clear profiling and timing state but keep data and coherence."""
        self.flush_overlap_accounting()
        self.profiler.reset()
        self.simulated_seconds = 0.0
