"""The Legion-like runtime: the layer below Diffuse.

The runtime accepts a stream of index tasks (fused or not), derives the
communication each launch implies, executes the task functionally over
region fields, and records analytically-modelled timings in the profiler.
It is deliberately ignorant of fusion — Diffuse sits above it and simply
forwards (possibly fused) tasks, exactly as in the paper's architecture.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Tuple

import numpy as np

from repro.ir.store import Store
from repro.ir.task import IndexTask
from repro.kernel.compiler import CompiledKernel, JITCompiler
from repro.kernel.generators import GeneratorRegistry, default_registry
from repro.runtime.coherence import CoherenceTracker
from repro.runtime.executor import TaskExecutor
from repro.runtime.machine import MachineConfig
from repro.runtime.opaque import OpaqueTaskRegistry, default_opaque_registry
from repro.runtime.profiler import Profiler
from repro.runtime.region import RegionManager


class UnexecutableTaskError(RuntimeError):
    """Raised when a task has neither a kernel generator nor an opaque impl."""


class LegionRuntime:
    """Executes index tasks against the simulated machine."""

    def __init__(
        self,
        machine: Optional[MachineConfig] = None,
        generator_registry: Optional[GeneratorRegistry] = None,
        opaque_registry: Optional[OpaqueTaskRegistry] = None,
    ) -> None:
        self.machine = machine or MachineConfig()
        self.regions = RegionManager()
        self.coherence = CoherenceTracker(self.machine)
        self.profiler = Profiler()
        self.executor = TaskExecutor(self.regions, self.machine)
        self.opaque_registry = opaque_registry or default_opaque_registry()
        # Per-task kernels correspond to the libraries' pre-compiled task
        # variants; their compilation is not charged to the application.
        self._task_variant_compiler = JITCompiler(
            registry=generator_registry or default_registry()
        )
        self._task_variant_cache: Dict[Hashable, CompiledKernel] = {}
        self.simulated_seconds: float = 0.0

    # ------------------------------------------------------------------
    # Task submission.
    # ------------------------------------------------------------------
    def submit(self, task: IndexTask, compiled: Optional[CompiledKernel] = None) -> float:
        """Execute a task; returns the simulated seconds it took."""
        communication = self.coherence.communication_seconds(task)

        if compiled is not None:
            kernel_seconds = self.executor.execute_compiled(task, compiled)
            launches = compiled.launches
        elif self._task_variant_compiler.can_compile(task):
            kernel = self._task_variant_kernel(task)
            kernel_seconds = self.executor.execute_compiled(task, kernel)
            launches = kernel.launches
        elif self.opaque_registry.has(task.task_name):
            impl = self.opaque_registry.get(task.task_name)
            kernel_seconds = self.executor.execute_opaque(task, impl)
            launches = 1
        else:
            raise UnexecutableTaskError(
                f"task '{task.task_name}' has neither a kernel generator nor an "
                "opaque implementation"
            )

        overhead = self.machine.task_launch_overhead
        record = self.profiler.record_task(
            name=task.task_name,
            constituents=task.constituent_count(),
            kernel_seconds=kernel_seconds,
            communication_seconds=communication,
            overhead_seconds=overhead,
            launches=launches,
            fused=task.is_fused,
        )
        self.simulated_seconds += record.total_seconds
        return record.total_seconds

    def _task_variant_kernel(self, task: IndexTask) -> CompiledKernel:
        # The kernel binding depends on which arguments alias the same
        # (store, partition) view — e.g. ``dot(r, r)`` and ``dot(p, q)``
        # need different bindings — so the cache key includes the
        # aliasing pattern of the argument list, not just its length.
        views = []
        pattern = []
        for arg in task.args:
            view = (arg.store.uid, arg.partition)
            for position, existing in enumerate(views):
                if existing == view:
                    pattern.append(position)
                    break
            else:
                pattern.append(len(views))
                views.append(view)
        key = (task.task_name, tuple(pattern), len(task.scalar_args))
        kernel = self._task_variant_cache.get(key)
        if kernel is None:
            kernel = self._task_variant_compiler.compile(task, charge_compile_time=False)
            self._task_variant_cache[key] = kernel
        return kernel

    # ------------------------------------------------------------------
    # Host-side data access (futures, attach/detach).
    # ------------------------------------------------------------------
    def read_scalar(self, store: Store) -> float:
        """Read the value of a scalar store (blocking on a future)."""
        return self.regions.field(store).read_scalar()

    def write_scalar(self, store: Store, value: float) -> None:
        """Write a scalar store from the host."""
        self.regions.field(store).write_scalar(value)
        self.coherence.invalidate(store)

    def attach_array(self, store: Store, data: np.ndarray) -> None:
        """Attach host data as the contents of a store."""
        self.regions.attach(store, data)
        self.coherence.invalidate(store)

    def read_array(self, store: Store) -> np.ndarray:
        """A copy of the store's full contents (host-side inspection)."""
        return np.array(self.regions.field(store).data, copy=True)

    def fill(self, store: Store, value: float) -> None:
        """Host-side constant fill of a store (no task launch)."""
        self.regions.field(store).fill(value)
        self.coherence.invalidate(store)

    # ------------------------------------------------------------------
    # Accounting helpers.
    # ------------------------------------------------------------------
    def add_simulated_seconds(self, seconds: float) -> None:
        """Attribute extra simulated time (e.g. JIT compilation)."""
        self.simulated_seconds += seconds

    def reset_profiling(self) -> None:
        """Clear profiling and timing state but keep data and coherence."""
        self.profiler.reset()
        self.simulated_seconds = 0.0
