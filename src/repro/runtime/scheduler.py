"""Dependence-partitioned execution of captured execution plans.

PR 2's trace layer resolves every launch of a repeated epoch ahead of
execution, but still replays the captured :class:`ExecutionPlan` strictly
step by step.  This module supplies the missing half of the paper's
runtime story (Section 4): independent launches overlap across the
machine.  It is organised as two phases, mirroring runtime dependence-
graph schedulers of fused array operations (Kristensen et al.,
arXiv:1601.05400) and the horizontal-fusion argument of Li et al.
(arXiv:2007.01277):

1. **Plan analysis** (:func:`analyze_plan`) — computed once per captured
   plan and cached on it.  The read/write/reduce store footprints
   recorded in every :class:`CompiledStep` / :class:`OpaqueStep` induce
   the step-level dependence DAG (RAW, WAR and WAW hazards over
   canonical slots; reductions count as mutations).  The DAG is
   levelized: steps in one level are pairwise independent.
2. **Dispatch** (:class:`PlanScheduler.execute`) — executes the levels in
   order.  Within a level, steps large enough to amortise handoff run
   concurrently on a persistent worker pool (``REPRO_WORKERS``); the
   rest run inline in recorded order.  Workers only *compute*: they run
   kernels over region-field views (write sets of a level are disjoint
   by construction) and collect reduction partials.  All side effects
   that carry ordering semantics are folded at join points **in recorded
   order** — reduction partials at each level's join, profiler records
   and simulated-seconds accounting after the last level — so buffers
   and simulated time are bit-identical to serial replay for every
   worker count.

``REPRO_WORKERS=1`` (with the overlap model off) takes none of this
machinery: :func:`_execute_plan_serial` is the PR-2 replay path, kept
verbatim.

With ``REPRO_OVERLAP_MODEL=1`` the scheduler additionally switches the
*simulated* time accounting to the overlap-aware model: each dependence
level is charged the maximum of its steps' modelled times
(:meth:`MachineConfig.overlapped_level_seconds`) instead of their sum.
This deliberately changes simulated seconds and is therefore off by
default; buffers remain bit-identical.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import config
from repro.ir.store import Store
from repro.ir.task import IndexTask, StoreArg
from repro.runtime.trace import (
    AnalysisCharge,
    CompiledStep,
    ExecutionPlan,
    OpaqueStep,
)

#: Minimum number of elements a step must touch before it is handed to
#: the worker pool; smaller steps run inline because the handoff latency
#: exceeds their compute time.  Tests lower this to force pool execution
#: on tiny problems — the results are bit-identical either way, so the
#: threshold is a pure performance knob.
MIN_DISPATCH_VOLUME = 16384


# ----------------------------------------------------------------------
# Plan analysis: dependence DAG and levelization.
# ----------------------------------------------------------------------
@dataclass
class ScheduledStep:
    """One executable plan step with its dependence metadata."""

    #: Position of the step in ``plan.steps`` (recorded order).
    plan_index: int
    step: object  # CompiledStep | OpaqueStep
    compiled: bool
    #: Indices (into ``PlanSchedule.steps``) this step depends on.
    deps: Tuple[int, ...]
    level: int
    #: Total elements touched (the pool-dispatch size heuristic).
    volume: int
    #: Compiled steps: precomputed ``(name, epoch position, inner index)``
    #: scalar rebinding plan — the stream key pins every task's scalar
    #: count, so the flat-offset arithmetic is done once per plan.
    scalar_binds: Tuple[Tuple[str, int, int], ...] = ()


@dataclass
class PlanSchedule:
    """The cached dependence partition of one captured plan."""

    steps: Tuple[ScheduledStep, ...]
    #: Levels in dependence order; each level lists indices into
    #: ``steps`` in recorded order (so join-point folds are ordered).
    levels: Tuple[Tuple[int, ...], ...]
    width: int
    #: ``plan.steps`` position -> index into ``steps`` (accounting fold).
    index_by_plan: Dict[int, int]

    @property
    def level_count(self) -> int:
        return len(self.levels)


def analyze_plan(
    plan: ExecutionPlan,
    slot_stores: Sequence[Store],
    tasks: Sequence[IndexTask] = (),
) -> PlanSchedule:
    """Build the step-level dependence DAG of a plan and levelize it.

    Dependencies are derived purely from the captured per-slot privilege
    footprints: a step depends on the last mutator (writer or reducer)
    of every slot it touches, and a mutation additionally depends on all
    reads of the slot since that mutator (WAR).  Slot shapes are part of
    the trace key, so the schedule — cached on the plan — is valid for
    every replay.
    """
    scheduled: List[ScheduledStep] = []
    last_mutator: Dict[int, int] = {}
    readers_since: Dict[int, List[int]] = {}
    levels_of: List[int] = []

    for plan_index, step in enumerate(plan.steps):
        if isinstance(step, AnalysisCharge):
            continue
        index = len(scheduled)
        deps = set()
        footprint = step.footprint
        for slot, reads, writes, reduces in footprint:
            mutates = writes or reduces
            mutator = last_mutator.get(slot)
            if mutator is not None and (reads or mutates):
                deps.add(mutator)
            if mutates:
                deps.update(readers_since.get(slot, ()))
        for slot, reads, writes, reduces in footprint:
            if writes or reduces:
                last_mutator[slot] = index
                readers_since[slot] = []
            elif reads:
                readers_since.setdefault(slot, []).append(index)
        level = 1 + max((levels_of[d] for d in deps), default=-1)
        levels_of.append(level)
        compiled = isinstance(step, CompiledStep)
        scheduled.append(
            ScheduledStep(
                plan_index=plan_index,
                step=step,
                compiled=compiled,
                deps=tuple(sorted(deps)),
                level=level,
                volume=_step_volume(step, slot_stores),
                scalar_binds=_scalar_binds(step, tasks) if compiled else (),
            )
        )

    level_count = (max(levels_of) + 1) if levels_of else 0
    level_lists: List[List[int]] = [[] for _ in range(level_count)]
    for index, level in enumerate(levels_of):
        level_lists[level].append(index)
    levels = tuple(tuple(level) for level in level_lists)
    width = max((len(level) for level in levels), default=0)
    index_by_plan = {entry.plan_index: index for index, entry in enumerate(scheduled)}
    return PlanSchedule(
        steps=tuple(scheduled),
        levels=levels,
        width=width,
        index_by_plan=index_by_plan,
    )


def _scalar_binds(
    step: CompiledStep, tasks: Sequence[IndexTask]
) -> Tuple[Tuple[str, int, int], ...]:
    """Translate a step's flat scalar indices into (position, inner) pairs."""
    if not step.scalar_order or not tasks:
        return ()
    spans: List[Tuple[int, int]] = []  # (epoch position, scalar count)
    total = 0
    for position in step.scalar_positions:
        count = len(tasks[position].scalar_args)
        spans.append((position, count))
        total += count
    binds: List[Tuple[str, int, int]] = []
    for name, flat_index in step.scalar_order:
        offset = flat_index
        for position, count in spans:
            if offset < count:
                binds.append((name, position, offset))
                break
            offset -= count
    return tuple(binds)


def _step_volume(step: object, slot_stores: Sequence[Store]) -> int:
    """Elements a step touches (used only for the dispatch heuristic)."""
    if isinstance(step, CompiledStep):
        total = 0
        for _name, _slot, _is_reduction, table in step.buffer_bindings:
            total += sum(volume for _rect, volume in table)
        return total
    total = 0
    for slot, _partition, _privilege, _redop in step.arg_specs:
        store = slot_stores[slot]
        size = 1
        for extent in store.shape:
            size *= extent
        total += size
    return total


# ----------------------------------------------------------------------
# The serial replay path (PR-2 semantics, kept verbatim).
# ----------------------------------------------------------------------
def _execute_plan_serial(
    plan: ExecutionPlan,
    engine,
    slot_stores: Sequence[Store],
    tasks: Sequence[IndexTask],
) -> None:
    """Replay a captured plan step by step (``REPRO_WORKERS=1``)."""
    runtime = engine.runtime
    executor = runtime.executor
    regions = runtime.regions
    profiler = runtime.profiler

    for step in plan.steps:
        if isinstance(step, AnalysisCharge):
            runtime.add_simulated_seconds(step.seconds)
            profiler.record_analysis_time(step.seconds)
            profiler.add_iteration_seconds(step.seconds)
            continue
        if isinstance(step, CompiledStep):
            scalars = _bind_scalars(step, tasks)
            totals = _run_compiled(step, regions, slot_stores, scalars)
            _fold_compiled(step, executor, slot_stores, totals)
            record = profiler.record_task(
                name=step.task_name,
                constituents=step.constituents,
                kernel_seconds=step.kernel_seconds,
                communication_seconds=step.communication_seconds,
                overhead_seconds=step.overhead_seconds,
                launches=step.launches,
                fused=step.fused,
                replayed=True,
            )
        else:
            task = _rebuild_opaque_task(step, slot_stores, tasks)
            kernel_seconds = executor.execute_opaque(task, step.impl)
            record = profiler.record_task(
                name=step.task_name,
                constituents=1,
                kernel_seconds=kernel_seconds,
                communication_seconds=step.communication_seconds,
                overhead_seconds=step.overhead_seconds,
                launches=1,
                fused=False,
                replayed=True,
            )
        runtime.simulated_seconds += record.total_seconds

    _apply_plan_epilogue(plan, engine, slot_stores)


def _apply_plan_epilogue(plan: ExecutionPlan, engine, slot_stores: Sequence[Store]) -> None:
    """Apply captured coherence transitions and statistics wholesale."""
    coherence = engine.runtime.coherence
    for slot, state_key in plan.exit_states:
        coherence.apply_state_key(slot_stores[slot], state_key)
    if plan.bytes_moved:
        coherence.add_bytes_moved(plan.bytes_moved)

    stats = engine.stats
    stats.forwarded_tasks += plan.forwarded_tasks
    stats.fused_tasks += plan.fused_tasks
    stats.fused_constituents += plan.fused_constituents
    stats.temporaries_eliminated += plan.temporaries_eliminated


# ----------------------------------------------------------------------
# Step compute helpers (shared by the serial and scheduled paths).
# ----------------------------------------------------------------------
def _bind_scalars(step: CompiledStep, tasks: Sequence[IndexTask]) -> Dict[str, float]:
    """Rebind the current epoch's scalar arguments into a compiled step."""
    scalars: Dict[str, float] = {}
    if step.scalar_order:
        flat: List[float] = []
        for position in step.scalar_positions:
            flat.extend(tasks[position].scalar_args)
        for name, index in step.scalar_order:
            scalars[name] = flat[index]
    return scalars


def _run_compiled(
    step: CompiledStep,
    regions,
    slot_stores: Sequence[Store],
    scalars: Dict[str, float],
    fields: Optional[Dict[int, object]] = None,
) -> Dict[str, list]:
    """Run a compiled step's kernel over every launch point.

    Pure compute: kernels write their (disjoint) output views in place;
    reduction partials are returned unapplied, keyed by buffer name and
    ordered by launch rank.  ``fields`` optionally memoizes slot→field
    resolution across the steps of one replay.
    """
    prepared = []
    for name, slot, is_reduction, table in step.buffer_bindings:
        if is_reduction:
            field = None
        elif fields is None:
            field = regions.field(slot_stores[slot])
        else:
            field = fields.get(slot)
            if field is None:
                field = regions.field(slot_stores[slot])
                fields[slot] = field
        prepared.append((name, field, is_reduction, table))

    kernel_fn = step.kernel.executor
    reductions = step.reductions
    totals: Dict[str, list] = {}
    buffers: Dict[str, Optional[object]] = {}
    for rank in range(step.num_points):
        for name, field, is_reduction, table in prepared:
            if is_reduction:
                buffers[name] = None
            else:
                buffers[name] = field.view(table[rank][0])
        partials = kernel_fn(buffers, scalars)
        if partials:
            for name, partial in partials.items():
                if name in reductions:
                    totals.setdefault(name, []).append(partial)
    return totals


def _fold_compiled(
    step: CompiledStep,
    executor,
    slot_stores: Sequence[Store],
    totals: Dict[str, list],
) -> None:
    """Fold a compiled step's reduction partials (join-point side effect)."""
    for name, partials in totals.items():
        slot, redop = step.reductions[name]
        executor.apply_reduction_partials(slot_stores[slot], redop, partials)


def _rebuild_opaque_task(
    step: OpaqueStep,
    slot_stores: Sequence[Store],
    tasks: Sequence[IndexTask],
) -> IndexTask:
    """Reconstruct an opaque launch's task with the current epoch's stores."""
    args = tuple(
        StoreArg(slot_stores[slot], partition, privilege, redop)
        for slot, partition, privilege, redop in step.arg_specs
    )
    return IndexTask(
        task_name=step.task_name,
        launch_domain=step.launch_domain,
        args=args,
        scalar_args=tasks[step.position].scalar_args,
    )


# ----------------------------------------------------------------------
# The persistent worker pool.
# ----------------------------------------------------------------------
_POOL: Optional[ThreadPoolExecutor] = None
_POOL_SIZE = 0
_POOL_LOCK = threading.Lock()


def _worker_pool(workers: int) -> ThreadPoolExecutor:
    """The process-wide plan-scheduler pool, resized on demand."""
    global _POOL, _POOL_SIZE
    with _POOL_LOCK:
        if _POOL is None or _POOL_SIZE != workers:
            if _POOL is not None:
                _POOL.shutdown(wait=False)
            _POOL = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-plan-worker"
            )
            _POOL_SIZE = workers
        return _POOL


# ----------------------------------------------------------------------
# The scheduler.
# ----------------------------------------------------------------------
class PlanScheduler:
    """Executes captured plans level by level on a worker pool."""

    def __init__(self, runtime) -> None:
        self.runtime = runtime

    def execute(
        self,
        plan: ExecutionPlan,
        engine,
        slot_stores: Sequence[Store],
        tasks: Sequence[IndexTask],
    ) -> None:
        """Replay ``plan`` against the current epoch's stores."""
        workers = config.worker_count()
        overlap = config.overlap_model_enabled()
        if workers <= 1 and not overlap:
            _execute_plan_serial(plan, engine, slot_stores, tasks)
            return

        schedule = plan.schedule
        if schedule is None:
            schedule = analyze_plan(plan, slot_stores, tasks)
            plan.schedule = schedule
        if schedule.width <= 1 and not overlap:
            # A pure dependence chain has nothing to overlap: record the
            # DAG statistics and take the (bit-identical) serial path,
            # skipping the per-step closure and fold machinery.
            self.runtime.profiler.record_plan_execution(
                steps=len(schedule.steps),
                levels=schedule.level_count,
                width=schedule.width,
                dispatched=0,
            )
            _execute_plan_serial(plan, engine, slot_stores, tasks)
            return
        self._execute_scheduled(
            plan, schedule, engine, slot_stores, tasks, workers, overlap
        )

    # ------------------------------------------------------------------
    def _execute_scheduled(
        self,
        plan: ExecutionPlan,
        schedule: PlanSchedule,
        engine,
        slot_stores: Sequence[Store],
        tasks: Sequence[IndexTask],
        workers: int,
        overlap: bool,
    ) -> None:
        runtime = self.runtime
        executor = runtime.executor
        regions = runtime.regions
        profiler = runtime.profiler

        #: Per-replay slot -> region field memo shared across all steps.
        fields: Dict[int, object] = {}
        #: Per-step compute results, indexed like ``schedule.steps``.
        results: List[object] = [None] * len(schedule.steps)
        dispatched = 0
        pool = _worker_pool(workers) if workers > 1 else None

        for level in schedule.levels:
            pending: List[Tuple[int, object]] = []
            for index in level:
                entry = schedule.steps[index]
                work = self._prepare_work(entry, regions, slot_stores, tasks, fields)
                if (
                    pool is not None
                    and len(level) > 1
                    and entry.volume >= MIN_DISPATCH_VOLUME
                ):
                    pending.append((index, pool.submit(work)))
                    dispatched += 1
                else:
                    results[index] = work()
            for index, future in pending:
                results[index] = future.result()
            # Join point: fold the level's reduction partials in recorded
            # order so dependent levels (and the final buffers) are
            # bit-identical to serial replay.
            for index in level:
                entry = schedule.steps[index]
                if entry.compiled:
                    _fold_compiled(entry.step, executor, slot_stores, results[index])
                else:
                    task, _seconds, totals = results[index]
                    executor.apply_deferred_reductions(task, totals)

        self._account(plan, schedule, results, runtime, profiler, overlap)
        _apply_plan_epilogue(plan, engine, slot_stores)
        profiler.record_plan_execution(
            steps=len(schedule.steps),
            levels=schedule.level_count,
            width=schedule.width,
            dispatched=dispatched,
        )

    def _prepare_work(
        self,
        entry: ScheduledStep,
        regions,
        slot_stores: Sequence[Store],
        tasks: Sequence[IndexTask],
        fields: Dict[int, object],
    ) -> Callable[[], object]:
        """Build a step's compute closure on the scheduling thread.

        Everything order-sensitive (scalar rebinding, field resolution,
        opaque-task reconstruction) happens here; the returned closure
        only computes and is safe to run on any worker.
        """
        if entry.compiled:
            step = entry.step
            if entry.scalar_binds:
                scalars = {
                    name: tasks[position].scalar_args[inner]
                    for name, position, inner in entry.scalar_binds
                }
            else:
                scalars = _bind_scalars(step, tasks)
            # Resolve fields eagerly so workers never mutate the shared
            # per-replay memo dict.
            for _name, slot, is_reduction, _table in step.buffer_bindings:
                if not is_reduction and slot not in fields:
                    fields[slot] = regions.field(slot_stores[slot])

            def work() -> object:
                return _run_compiled(step, regions, slot_stores, scalars, fields)

            return work

        step = entry.step
        task = _rebuild_opaque_task(step, slot_stores, tasks)
        executor = self.runtime.executor

        def opaque_work() -> object:
            seconds, totals = executor.execute_opaque_deferred(task, step.impl)
            return (task, seconds, totals)

        return opaque_work

    # ------------------------------------------------------------------
    def _account(
        self,
        plan: ExecutionPlan,
        schedule: PlanSchedule,
        results: List[object],
        runtime,
        profiler,
        overlap: bool,
    ) -> None:
        """Fold the plan's time accounting in recorded order.

        With the overlap model off this reproduces the serial replay's
        accumulation order exactly (bit-identical simulated seconds);
        with it on, each dependence level is charged its max step time.
        """
        step_records: Dict[int, object] = {}
        entry_by_plan_index = schedule.index_by_plan

        for plan_index, step in enumerate(plan.steps):
            if isinstance(step, AnalysisCharge):
                runtime.add_simulated_seconds(step.seconds)
                profiler.record_analysis_time(step.seconds)
                profiler.add_iteration_seconds(step.seconds)
                continue
            index = entry_by_plan_index[plan_index]
            if isinstance(step, CompiledStep):
                record = profiler.record_task(
                    name=step.task_name,
                    constituents=step.constituents,
                    kernel_seconds=step.kernel_seconds,
                    communication_seconds=step.communication_seconds,
                    overhead_seconds=step.overhead_seconds,
                    launches=step.launches,
                    fused=step.fused,
                    replayed=True,
                    accumulate_iteration=not overlap,
                )
            else:
                _task, kernel_seconds, _totals = results[index]
                record = profiler.record_task(
                    name=step.task_name,
                    constituents=1,
                    kernel_seconds=kernel_seconds,
                    communication_seconds=step.communication_seconds,
                    overhead_seconds=step.overhead_seconds,
                    launches=1,
                    fused=False,
                    replayed=True,
                    accumulate_iteration=not overlap,
                )
            if overlap:
                step_records[index] = record
            else:
                runtime.simulated_seconds += record.total_seconds

        if overlap:
            machine = runtime.machine
            for level in schedule.levels:
                level_seconds = machine.overlapped_level_seconds(
                    [step_records[index].total_seconds for index in level]
                )
                runtime.simulated_seconds += level_seconds
                profiler.add_iteration_seconds(level_seconds)
