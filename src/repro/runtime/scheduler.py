"""Dependence-partitioned execution of captured execution plans.

PR 2's trace layer resolves every launch of a repeated epoch ahead of
execution, but still replays the captured :class:`ExecutionPlan` strictly
step by step.  This module supplies the missing half of the paper's
runtime story (Section 4): independent launches overlap across the
machine.  It is organised as two phases, mirroring runtime dependence-
graph schedulers of fused array operations (Kristensen et al.,
arXiv:1601.05400) and the horizontal-fusion argument of Li et al.
(arXiv:2007.01277):

1. **Plan analysis** (:func:`analyze_plan`) — computed once per captured
   plan and cached on it.  The read/write/reduce store footprints
   recorded in every :class:`CompiledStep` / :class:`OpaqueStep` induce
   the step-level dependence DAG (RAW, WAR and WAW hazards over
   canonical slots; reductions count as mutations).  The DAG is
   levelized: steps in one level are pairwise independent.
2. **Dispatch** (:class:`PlanScheduler.execute`) — executes the levels in
   order.  Within a level, steps large enough to amortise handoff run
   concurrently on the shared worker pool (``REPRO_WORKERS``); the
   rest run inline in recorded order.  Workers only *compute*: they run
   kernels over region-field views (write sets of a level are disjoint
   by construction) and collect reduction partials.  All side effects
   that carry ordering semantics are folded at join points **in recorded
   order** — reduction partials at each level's join, profiler records
   and simulated-seconds accounting after the last level — so buffers
   and simulated time are bit-identical to serial replay for every
   worker count.

With ``REPRO_POINT_WORKERS`` > 1 the dispatcher additionally splits the
per-rank point tasks of each sufficiently large step into contiguous
rank chunks (the launch's rank count was recorded into the plan at
capture time) and co-schedules the chunks on the same pool: a step that
runs *inline* — in particular every step of a chain-shaped plan, the
flagship apps' common case — uses the full point width, while steps
dispatched alongside other steps of a wide level split a per-step width
of ``pool_size // dispatched_steps`` so the two parallelism levels never
oversubscribe the pool.  Chunk results are concatenated in rank order at
the step's join, so buffers and simulated seconds stay bit-identical for
every ``REPRO_POINT_WORKERS`` × ``REPRO_WORKERS`` combination.  Opaque
steps point-dispatch inside :meth:`TaskExecutor.execute_opaque_deferred`
when they execute inline; when handed to a pool worker under the
*thread* backend the nested-dispatch guard (``runtime/pool.py``) keeps
them serial.

Under ``REPRO_DISPATCH_BACKEND=process`` the guard is lifted: a step
dispatched into a wide level still chunks at its step width, and its
chunks ship to the worker-*process* pool from the pool worker thread —
the process substrate queues on per-worker pipes and cannot deadlock
the thread pool.  Several in-flight steps of one level multiplex their
chunk requests over the same pipes concurrently (parent-assigned
request ids; see ``runtime/procpool.py``), which is where wide plans
earn their speedup: every rank chunk of every step of the level runs
GIL-free at once.  A step that cannot ship (non-shm fields, broken
pool) degrades to running its chunks serially inline on its worker
thread — never back onto the thread pool — so results stay
bit-identical in every degradation.

Under ``REPRO_DISPATCH_BACKEND=process`` with ``REPRO_RESIDENT_PLANS=1``
(the default) the scheduler additionally registers each replayed plan
with the worker-process pool on first replay
(:meth:`PlanScheduler._ensure_resident_plan`): every shippable compiled
step's kernel spec, full rect tables, shared-memory descriptors and
calling convention become worker-resident under a parent-assigned plan
id, and later replays dispatch with lean ``(plan id, step, scalars,
rank ranges)`` messages instead of rebuilding per-chunk requests — see
``runtime/procpool.py`` for the protocol and its staleness story.

``REPRO_WORKERS=1`` with ``REPRO_POINT_WORKERS=1`` (and the overlap
model off) takes none of this machinery: :func:`_execute_plan_serial`
is the PR-2 replay path, kept verbatim.

With ``REPRO_OVERLAP_MODEL=1`` the scheduler additionally switches the
*simulated* time accounting to the overlap-aware model: each dependence
level is charged the maximum of its steps' modelled times
(:meth:`MachineConfig.overlapped_level_seconds`) instead of their sum.
This deliberately changes simulated seconds and is therefore off by
default; buffers remain bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import config
from repro.ir.store import Store
from repro.ir.task import IndexTask, StoreArg
from repro.runtime import executor as executor_module
from repro.runtime import telemetry
from repro.runtime.pool import (
    dispatch_chunks,
    guarded,
    merged_table_span,
    point_chunks,
    shared_pool_size,
    submit_guarded,
    worker_pool,
)
from repro.runtime.superkernel import (
    SuperKernelStep,
    maybe_lower_plan,
    run_superkernel_ranks,
)
from repro.runtime.trace import (
    AnalysisCharge,
    CompiledStep,
    ExecutionPlan,
    OpaqueStep,
)

#: Minimum number of elements a step must touch before it is handed to
#: the worker pool; smaller steps run inline because the handoff latency
#: exceeds their compute time.  Tests lower this to force pool execution
#: on tiny problems — the results are bit-identical either way, so the
#: threshold is a pure performance knob.
MIN_DISPATCH_VOLUME = 16384


# ----------------------------------------------------------------------
# Plan analysis: dependence DAG and levelization.
# ----------------------------------------------------------------------
@dataclass
class ScheduledStep:
    """One executable plan step with its dependence metadata."""

    #: Position of the step in ``plan.steps`` (recorded order).
    plan_index: int
    step: object  # CompiledStep | OpaqueStep
    compiled: bool
    #: Indices (into ``PlanSchedule.steps``) this step depends on.
    deps: Tuple[int, ...]
    level: int
    #: Total elements touched (the pool-dispatch size heuristic).
    volume: int
    #: Launch ranks of the step (recorded into the plan at capture time;
    #: the basis of the point-chunk decision at replay).
    num_points: int = 1
    #: Compiled steps: precomputed ``(name, epoch position, inner index)``
    #: scalar rebinding plan — the stream key pins every task's scalar
    #: count, so the flat-offset arithmetic is done once per plan.
    scalar_binds: Tuple[Tuple[str, int, int], ...] = ()


@dataclass
class PlanSchedule:
    """The cached dependence partition of one captured plan."""

    steps: Tuple[ScheduledStep, ...]
    #: Levels in dependence order; each level lists indices into
    #: ``steps`` in recorded order (so join-point folds are ordered).
    levels: Tuple[Tuple[int, ...], ...]
    width: int
    #: ``plan.steps`` position -> index into ``steps`` (accounting fold).
    index_by_plan: Dict[int, int]

    @property
    def level_count(self) -> int:
        return len(self.levels)


def analyze_plan(
    plan: ExecutionPlan,
    slot_stores: Sequence[Store],
    tasks: Sequence[IndexTask] = (),
) -> PlanSchedule:
    """Build the step-level dependence DAG of a plan and levelize it.

    Dependencies are derived purely from the captured per-slot privilege
    footprints: a step depends on the last mutator (writer or reducer)
    of every slot it touches, and a mutation additionally depends on all
    reads of the slot since that mutator (WAR).  Slot shapes are part of
    the trace key, so the schedule — cached on the plan — is valid for
    every replay.
    """
    scheduled: List[ScheduledStep] = []
    last_mutator: Dict[int, int] = {}
    readers_since: Dict[int, List[int]] = {}
    levels_of: List[int] = []

    for plan_index, step in enumerate(plan.steps):
        if isinstance(step, AnalysisCharge):
            continue
        index = len(scheduled)
        deps = set()
        footprint = step.footprint
        for slot, reads, writes, reduces in footprint:
            mutates = writes or reduces
            mutator = last_mutator.get(slot)
            if mutator is not None and (reads or mutates):
                deps.add(mutator)
            if mutates:
                deps.update(readers_since.get(slot, ()))
        for slot, reads, writes, reduces in footprint:
            if writes or reduces:
                last_mutator[slot] = index
                readers_since[slot] = []
            elif reads:
                readers_since.setdefault(slot, []).append(index)
        level = 1 + max((levels_of[d] for d in deps), default=-1)
        levels_of.append(level)
        compiled = isinstance(step, CompiledStep)
        scheduled.append(
            ScheduledStep(
                plan_index=plan_index,
                step=step,
                compiled=compiled,
                deps=tuple(sorted(deps)),
                level=level,
                volume=_step_volume(step, slot_stores),
                num_points=step.num_points,
                scalar_binds=_scalar_binds(step, tasks) if compiled else (),
            )
        )

    level_count = (max(levels_of) + 1) if levels_of else 0
    level_lists: List[List[int]] = [[] for _ in range(level_count)]
    for index, level in enumerate(levels_of):
        level_lists[level].append(index)
    levels = tuple(tuple(level) for level in level_lists)
    width = max((len(level) for level in levels), default=0)
    index_by_plan = {entry.plan_index: index for index, entry in enumerate(scheduled)}
    return PlanSchedule(
        steps=tuple(scheduled),
        levels=levels,
        width=width,
        index_by_plan=index_by_plan,
    )


def _scalar_binds(
    step: CompiledStep, tasks: Sequence[IndexTask]
) -> Tuple[Tuple[str, int, int], ...]:
    """Translate a step's flat scalar indices into (position, inner) pairs."""
    if not step.scalar_order or not tasks:
        return ()
    spans: List[Tuple[int, int]] = []  # (epoch position, scalar count)
    total = 0
    for position in step.scalar_positions:
        count = len(tasks[position].scalar_args)
        spans.append((position, count))
        total += count
    binds: List[Tuple[str, int, int]] = []
    for name, flat_index in step.scalar_order:
        offset = flat_index
        for position, count in spans:
            if offset < count:
                binds.append((name, position, offset))
                break
            offset -= count
    return tuple(binds)


def _step_volume(step: object, slot_stores: Sequence[Store]) -> int:
    """Elements a step touches (used only for the dispatch heuristic)."""
    if isinstance(step, CompiledStep):
        total = 0
        for _name, _slot, _is_reduction, table in step.buffer_bindings:
            total += sum(volume for _rect, volume in table)
        return total
    total = 0
    for slot, _partition, _privilege, _redop in step.arg_specs:
        store = slot_stores[slot]
        size = 1
        for extent in store.shape:
            size *= extent
        total += size
    return total


def _traced_chunk_runner(run_chunk: Callable) -> Callable:
    """Wrap a chunk runner in a point-chunk span (identity when off).

    Returned unchanged with telemetry disabled, so thread-dispatched
    chunks pay nothing; armed, each chunk executes inside a
    ``point.chunk`` span recorded on the worker thread that ran it.
    """
    if not telemetry.enabled():
        return run_chunk

    def traced(start: int, stop: int):
        with telemetry.span("point.chunk", f"ranks=[{start}:{stop})"):
            return run_chunk(start, stop)

    return traced


# ----------------------------------------------------------------------
# The serial replay path (PR-2 semantics, kept verbatim).
# ----------------------------------------------------------------------
def _execute_plan_serial(
    plan: ExecutionPlan,
    engine,
    slot_stores: Sequence[Store],
    tasks: Sequence[IndexTask],
) -> None:
    """Replay a captured plan step by step (``REPRO_WORKERS=1``)."""
    runtime = engine.runtime
    executor = runtime.executor
    regions = runtime.regions
    profiler = runtime.profiler

    for step in plan.steps:
        if isinstance(step, AnalysisCharge):
            runtime.add_simulated_seconds(step.seconds)
            profiler.record_analysis_time(step.seconds)
            profiler.add_iteration_seconds(step.seconds)
            continue
        if isinstance(step, SuperKernelStep):
            scalars = _bind_scalars(step, tasks)
            with telemetry.span(
                "plan.step",
                f"{step.task_name} ranks={step.num_points}",
                sim=runtime.simulated_seconds,
            ):
                totals = _run_compiled(step, regions, slot_stores, scalars)
            _fold_compiled(step, executor, slot_stores, totals)
            profiler.record_superkernel_calls(1)
            profiler.add_replay_closure_calls(1)
            _account_fused_constituents(step, runtime, profiler)
            continue
        if isinstance(step, CompiledStep):
            profiler.add_replay_closure_calls(
                1 if step.elementwise else step.num_points
            )
            scalars = _bind_scalars(step, tasks)
            with telemetry.span(
                "plan.step",
                f"{step.task_name} ranks={step.num_points}",
                sim=runtime.simulated_seconds,
            ):
                totals = _run_compiled(step, regions, slot_stores, scalars)
            _fold_compiled(step, executor, slot_stores, totals)
            if step.elementwise and step.num_points > 1:
                profiler.record_elementwise_batch(1)
            record = profiler.record_task(
                name=step.task_name,
                constituents=step.constituents,
                kernel_seconds=step.kernel_seconds,
                communication_seconds=step.communication_seconds,
                overhead_seconds=step.overhead_seconds,
                launches=step.launches,
                fused=step.fused,
                replayed=True,
            )
        else:
            task = _rebuild_opaque_task(step, slot_stores, tasks)
            with telemetry.span(
                "plan.step",
                f"{step.task_name} (opaque)",
                sim=runtime.simulated_seconds,
            ):
                kernel_seconds = executor.execute_opaque(task, step.impl)
            record = profiler.record_task(
                name=step.task_name,
                constituents=1,
                kernel_seconds=kernel_seconds,
                communication_seconds=step.communication_seconds,
                overhead_seconds=step.overhead_seconds,
                launches=1,
                fused=False,
                replayed=True,
            )
        runtime.simulated_seconds += record.total_seconds

    _apply_plan_epilogue(plan, engine, slot_stores)


def _apply_plan_epilogue(plan: ExecutionPlan, engine, slot_stores: Sequence[Store]) -> None:
    """Apply captured coherence transitions and statistics wholesale."""
    coherence = engine.runtime.coherence
    for slot, state_key in plan.exit_states:
        coherence.apply_state_key(slot_stores[slot], state_key)
    if plan.bytes_moved:
        coherence.add_bytes_moved(plan.bytes_moved)

    stats = engine.stats
    stats.forwarded_tasks += plan.forwarded_tasks
    stats.fused_tasks += plan.fused_tasks
    stats.fused_constituents += plan.fused_constituents
    stats.temporaries_eliminated += plan.temporaries_eliminated


def _account_fused_constituents(step: "SuperKernelStep", runtime, profiler) -> None:
    """Charge a super-kernel's recorded constituents in recorded order.

    The fused unit executed as one closure call, but its time accounting
    replays the captured constituent subsequence (analysis charges and
    compiled steps) exactly as serial replay would have: same records,
    same floating-point accumulation order, bit-identical simulated
    seconds.  Lowering is skipped under the overlap model, so fused
    units only ever take this non-overlap accounting.
    """
    for fused in step.fused_steps:
        if isinstance(fused, AnalysisCharge):
            runtime.add_simulated_seconds(fused.seconds)
            profiler.record_analysis_time(fused.seconds)
            profiler.add_iteration_seconds(fused.seconds)
            continue
        if fused.elementwise and fused.num_points > 1:
            profiler.record_elementwise_batch(1)
        record = profiler.record_task(
            name=fused.task_name,
            constituents=fused.constituents,
            kernel_seconds=fused.kernel_seconds,
            communication_seconds=fused.communication_seconds,
            overhead_seconds=fused.overhead_seconds,
            launches=fused.launches,
            fused=fused.fused,
            replayed=True,
        )
        runtime.simulated_seconds += record.total_seconds


# ----------------------------------------------------------------------
# Step compute helpers (shared by the serial and scheduled paths).
# ----------------------------------------------------------------------
def _bind_scalars(step: CompiledStep, tasks: Sequence[IndexTask]) -> Dict[str, float]:
    """Rebind the current epoch's scalar arguments into a compiled step."""
    scalars: Dict[str, float] = {}
    if step.scalar_order:
        flat: List[float] = []
        for position in step.scalar_positions:
            flat.extend(tasks[position].scalar_args)
        for name, index in step.scalar_order:
            scalars[name] = flat[index]
    return scalars


def _prepare_compiled_bindings(
    step: CompiledStep,
    regions,
    slot_stores: Sequence[Store],
    fields: Optional[Dict[int, object]] = None,
) -> List[Tuple[str, object, bool, list]]:
    """Resolve a compiled step's region fields once per execution.

    ``fields`` optionally memoizes slot→field resolution across the
    steps of one replay; resolution happens on the scheduling thread so
    workers never mutate the shared memo dict.
    """
    prepared = []
    for name, slot, is_reduction, table in step.buffer_bindings:
        if is_reduction:
            resolved = None
        elif fields is None:
            resolved = regions.field(slot_stores[slot])
        else:
            resolved = fields.get(slot)
            if resolved is None:
                resolved = regions.field(slot_stores[slot])
                fields[slot] = resolved
        prepared.append((name, resolved, is_reduction, table))
    return prepared


def _run_compiled_ranks(
    step: CompiledStep,
    prepared: Sequence[Tuple[str, object, bool, list]],
    scalars: Dict[str, float],
    start: int,
    stop: int,
) -> Dict[str, list]:
    """Run ranks ``[start, stop)`` of a prepared compiled step.

    Pure compute, safe on any worker: kernels write their (disjoint)
    output views in place through a chunk-local buffer dict; reduction
    partials are returned unapplied, keyed by buffer name and ordered by
    launch rank within the chunk.
    """
    if isinstance(step, SuperKernelStep):
        return run_superkernel_ranks(step, prepared, scalars, start, stop)
    kernel_fn = step.kernel.executor
    reductions = step.reductions
    totals: Dict[str, list] = {}
    buffers: Dict[str, Optional[object]] = {}
    if step.elementwise and stop > start:
        # One merged closure call over the chunk's contiguous span —
        # element-for-element identical to the per-rank loop (the
        # recorder proved the launch element-wise with no reductions).
        for name, resolved, _is_reduction, table in prepared:
            buffers[name] = resolved.view(merged_table_span(table, start, stop))
        kernel_fn(buffers, scalars)
        return totals
    for rank in range(start, stop):
        for name, resolved, is_reduction, table in prepared:
            if is_reduction:
                buffers[name] = None
            else:
                buffers[name] = resolved.view(table[rank][0])
        partials = kernel_fn(buffers, scalars)
        if partials:
            for name, partial in partials.items():
                if name in reductions:
                    totals.setdefault(name, []).append(partial)
    return totals


def _merge_chunk_totals(chunk_totals: Sequence[Dict[str, list]]) -> Dict[str, list]:
    """Concatenate per-chunk reduction partials in rank order."""
    if len(chunk_totals) == 1:
        return chunk_totals[0]
    merged: Dict[str, list] = {}
    for totals in chunk_totals:
        for name, partials in totals.items():
            merged.setdefault(name, []).extend(partials)
    return merged


def _merge_process_totals(step: CompiledStep, chunk_results) -> Dict[str, list]:
    """Fold worker-process chunk replies into step totals, in rank order.

    Process workers return raw per-rank partial dicts; this applies the
    same reduction-name filter and rank-order concatenation as
    :func:`_run_compiled_ranks` + :func:`_merge_chunk_totals`, so the
    join-point fold is bit-identical to the thread substrate.
    """
    reductions = step.reductions
    totals: Dict[str, list] = {}
    for partials_by_rank, _seconds in chunk_results:
        for partials in partials_by_rank:
            if partials:
                for name, partial in partials.items():
                    if name in reductions:
                        bucket = totals.setdefault(name, [])
                        if isinstance(partial, list):
                            # Super-kernel chunks return whole per-target
                            # partial lists (already rank-ordered within
                            # the chunk) instead of one partial per rank.
                            bucket.extend(partial)
                        else:
                            bucket.append(partial)
    return totals


def _run_compiled(
    step: CompiledStep,
    regions,
    slot_stores: Sequence[Store],
    scalars: Dict[str, float],
    fields: Optional[Dict[int, object]] = None,
) -> Dict[str, list]:
    """Run a compiled step's kernel over every launch point (serially)."""
    prepared = _prepare_compiled_bindings(step, regions, slot_stores, fields)
    return _run_compiled_ranks(step, prepared, scalars, 0, step.num_points)


def _fold_compiled(
    step: CompiledStep,
    executor,
    slot_stores: Sequence[Store],
    totals: Dict[str, list],
) -> None:
    """Fold a compiled step's reduction partials (join-point side effect)."""
    for name, partials in totals.items():
        slot, redop = step.reductions[name]
        executor.apply_reduction_partials(slot_stores[slot], redop, partials)


def _rebuild_opaque_task(
    step: OpaqueStep,
    slot_stores: Sequence[Store],
    tasks: Sequence[IndexTask],
) -> IndexTask:
    """Reconstruct an opaque launch's task with the current epoch's stores."""
    args = tuple(
        StoreArg(slot_stores[slot], partition, privilege, redop)
        for slot, partition, privilege, redop in step.arg_specs
    )
    return IndexTask(
        task_name=step.task_name,
        launch_domain=step.launch_domain,
        args=args,
        scalar_args=tasks[step.position].scalar_args,
    )


# ----------------------------------------------------------------------
# The scheduler.
# ----------------------------------------------------------------------
class PlanScheduler:
    """Executes captured plans level by level on the shared worker pool."""

    def __init__(self, runtime) -> None:
        self.runtime = runtime

    def execute(
        self,
        plan: ExecutionPlan,
        engine,
        slot_stores: Sequence[Store],
        tasks: Sequence[IndexTask],
    ) -> None:
        """Replay ``plan`` against the current epoch's stores."""
        # Replay accounting must not interleave with a pending eager
        # overlap group (a no-op unless the overlap model is on).
        self.runtime.flush_overlap_accounting()
        workers = config.worker_count()
        point_width = config.point_worker_count()
        overlap = config.overlap_model_enabled()
        backend = config.default_backend()
        if config.superkernel_enabled() and not overlap and backend != "interpreter":
            # Lower the plan into epoch super-kernels (cached on the
            # plan; the differential backend lowers in verify mode).
            # The overlap model keeps the unfused plan: its per-level
            # max-time accounting needs the individual step records.
            lowered = maybe_lower_plan(
                plan, tasks, backend, self.runtime.profiler
            )
            if lowered is not None:
                plan = lowered
        if workers <= 1 and point_width <= 1 and not overlap:
            _execute_plan_serial(plan, engine, slot_stores, tasks)
            return

        schedule = plan.schedule
        if schedule is None:
            schedule = analyze_plan(plan, slot_stores, tasks)
            plan.schedule = schedule
        if schedule.width <= 1 and point_width <= 1 and not overlap:
            # A pure dependence chain has nothing to overlap at either
            # level: record the DAG statistics and take the
            # (bit-identical) serial path, skipping the per-step closure
            # and fold machinery.
            self.runtime.profiler.record_plan_execution(
                steps=len(schedule.steps),
                levels=schedule.level_count,
                width=schedule.width,
                dispatched=0,
                level_widths=tuple(len(level) for level in schedule.levels),
            )
            _execute_plan_serial(plan, engine, slot_stores, tasks)
            return
        self._execute_scheduled(
            plan, schedule, engine, slot_stores, tasks, workers, overlap
        )

    # ------------------------------------------------------------------
    def _execute_scheduled(
        self,
        plan: ExecutionPlan,
        schedule: PlanSchedule,
        engine,
        slot_stores: Sequence[Store],
        tasks: Sequence[IndexTask],
        workers: int,
        overlap: bool,
    ) -> None:
        runtime = self.runtime
        executor = runtime.executor
        regions = runtime.regions
        profiler = runtime.profiler

        point_width = config.point_worker_count()
        pool_size = shared_pool_size()
        resident = None
        if config.dispatch_backend() == "process" and point_width > 1:
            # Materialise the worker-process pool now, while no thread
            # futures are in flight: forking from a quiescent point
            # avoids inheriting another thread's lock state mid-level.
            from repro.runtime import procpool

            procpool.process_pool()
            if config.resident_plans_enabled():
                resident = self._ensure_resident_plan(
                    plan, schedule, regions, slot_stores, tasks
                )
        #: Per-replay slot -> region field memo shared across all steps.
        fields: Dict[int, object] = {}
        #: Per-step compute results, indexed like ``schedule.steps``.
        results: List[object] = [None] * len(schedule.steps)
        dispatched = 0
        pool = worker_pool(pool_size) if pool_size > 1 else None

        for level_index, level in enumerate(schedule.levels):
            # Level spans are recorded as manual begin/end pairs (the
            # body below is the whole level); a replay failure unwinds
            # past the end record, but it also tears down the run, so
            # exported traces only ever hold completed levels.
            telemetry_recorder = telemetry.active()
            if telemetry_recorder is not None:
                telemetry_recorder.record(
                    "B",
                    "plan.level",
                    f"level={level_index} width={len(level)}",
                    runtime.simulated_seconds,
                )
            # Steps big enough for whole-step dispatch; only meaningful
            # when the level has independent steps and step workers are
            # enabled.
            dispatchable = set()
            if pool is not None and workers > 1 and len(level) > 1:
                dispatchable = {
                    index
                    for index in level
                    if schedule.steps[index].volume >= MIN_DISPATCH_VOLUME
                }
            # Concurrently-running steps share the pool: each dispatched
            # step may split into at most pool_size // steps chunks so
            # the two parallelism levels never oversubscribe.
            step_width = point_width
            if dispatchable:
                step_width = max(1, min(point_width, pool_size // len(dispatchable)))

            #: (step index, chunk futures, assembler).
            pending: List[Tuple[int, List[object], Callable[[List[object]], object]]] = []
            for index in level:
                entry = schedule.steps[index]
                if index in dispatchable:
                    width = step_width
                elif not dispatchable:
                    # Inline steps of a level with no concurrent steps
                    # (in particular every step of a chain plan) own the
                    # whole point width.
                    width = point_width
                else:
                    # Inline steps beside dispatched ones are the small
                    # (below-threshold) launches; keep them serial.
                    width = 1

                if entry.compiled:
                    chunks, run_chunk, prepared, scalars = self._compiled_point_work(
                        entry, regions, slot_stores, tasks, fields, width
                    )
                    if isinstance(entry.step, SuperKernelStep):
                        profiler.record_superkernel_calls(len(chunks))
                        profiler.add_replay_closure_calls(len(chunks))
                    elif entry.step.elementwise:
                        profiler.add_replay_closure_calls(len(chunks))
                    else:
                        profiler.add_replay_closure_calls(entry.num_points)
                    # ``run_chunk`` is rebound on every loop iteration, and
                    # dispatched futures outlive the iteration — capture it
                    # by value or a worker could run a *later* step's
                    # runner over this step's rank range.
                    if index in dispatchable:
                        if len(chunks) > 1 and config.dispatch_backend() == "process":
                            # Wide-level process routing: one future per
                            # step.  The worker thread ships the step's
                            # rank chunks to the worker-process pool —
                            # over the resident protocol when the
                            # workers hold this step's template — so
                            # several steps of the level keep chunks in
                            # flight concurrently on the multiplexed
                            # pipes.  An unshippable step runs its
                            # chunks serially inline on its worker
                            # thread, never back onto the thread pool.
                            def process_step(
                                idx=index,
                                step=entry.step,
                                prepared=prepared,
                                scalars=scalars,
                                step_chunks=chunks,
                                rc=run_chunk,
                            ):
                                with telemetry.span(
                                    "plan.step",
                                    f"{step.task_name} step={idx} "
                                    f"chunks={len(step_chunks)}",
                                ):
                                    proc_results = None
                                    if resident is not None and idx in resident.steps:
                                        proc_results = executor._process_chunks_resident(
                                            resident, idx, prepared, scalars, step_chunks
                                        )
                                    if proc_results is None:
                                        proc_results = executor._process_chunks_compiled(
                                            step.kernel,
                                            prepared,
                                            scalars,
                                            step_chunks,
                                            step.elementwise,
                                            with_cost=False,
                                        )
                                    if proc_results is not None:
                                        return (
                                            "process",
                                            _merge_process_totals(step, proc_results),
                                        )
                                    return (
                                        "thread",
                                        _merge_chunk_totals(
                                            [rc(s, e) for s, e in step_chunks]
                                        ),
                                    )

                            def assemble_process(
                                replies,
                                ranks=entry.num_points,
                                chunk_count=len(chunks),
                                step_point_width=width,
                            ):
                                backend, totals = replies[0]
                                # Recorded at the join on the scheduling
                                # thread, with the substrate the step
                                # actually took.
                                profiler.record_point_dispatch(
                                    ranks=ranks,
                                    chunks=chunk_count,
                                    width=step_point_width,
                                    backend=backend,
                                )
                                return totals

                            pending.append(
                                (
                                    index,
                                    [submit_guarded(pool, process_step)],
                                    assemble_process,
                                )
                            )
                        else:
                            traced_run = _traced_chunk_runner(run_chunk)
                            futures = [
                                submit_guarded(
                                    pool,
                                    lambda s=start, e=stop, rc=traced_run: rc(s, e),
                                )
                                for start, stop in chunks
                            ]
                            pending.append((index, futures, _merge_chunk_totals))
                            if len(chunks) > 1:
                                profiler.record_point_dispatch(
                                    ranks=entry.num_points,
                                    chunks=len(chunks),
                                    width=width,
                                )
                        dispatched += 1
                    elif len(chunks) > 1 and pool is not None:
                        totals = None
                        chunk_backend = "thread"
                        if config.dispatch_backend() == "process":
                            proc_results = None
                            if resident is not None and index in resident.steps:
                                # Resident route: the workers hold this
                                # step's spec, geometry and rank ranges
                                # already — the dispatch sends only
                                # (plan id, step, scalars) plus the
                                # epoch's field descriptors as interned
                                # per-worker ids.
                                proc_results = executor._process_chunks_resident(
                                    resident, index, prepared, scalars, chunks
                                )
                            if proc_results is None:
                                # Per-chunk protocol: first resident
                                # replay, unshippable step, or a broken
                                # pool being rebuilt (the resident plan
                                # re-ships to the fresh pool next
                                # replay).  Replay steps ship no cost
                                # model: their simulated seconds were
                                # captured at record time and charged by
                                # the accounting fold.
                                proc_results = executor._process_chunks_compiled(
                                    entry.step.kernel,
                                    prepared,
                                    scalars,
                                    chunks,
                                    entry.step.elementwise,
                                    with_cost=False,
                                )
                            if proc_results is not None:
                                totals = _merge_process_totals(
                                    entry.step, proc_results
                                )
                                chunk_backend = "process"
                        if totals is None:
                            totals = _merge_chunk_totals(
                                dispatch_chunks(
                                    pool, chunks, _traced_chunk_runner(run_chunk)
                                )
                            )
                        results[index] = totals
                        profiler.record_point_dispatch(
                            ranks=entry.num_points,
                            chunks=len(chunks),
                            width=width,
                            backend=chunk_backend,
                        )
                    else:
                        with telemetry.span(
                            "plan.step",
                            f"{entry.step.task_name} ranks={entry.num_points}",
                            sim=runtime.simulated_seconds,
                        ):
                            results[index] = run_chunk(*chunks[0])
                    if entry.step.elementwise and entry.num_points > 1:
                        profiler.record_elementwise_batch(len(chunks))
                else:
                    work = self._opaque_work(
                        entry, slot_stores, tasks, resident, index
                    )
                    if index in dispatchable:
                        # Whole-step handoff.  Under the thread backend
                        # the nested-dispatch guard keeps the executor's
                        # point dispatcher serial on the worker; under
                        # the process backend the step still chunks at
                        # its width and ships to the worker-process pool
                        # from the worker thread (thread degradation
                        # runs the chunks serially inline there).
                        pending.append(
                            (index, [submit_guarded(pool, work)], lambda rs: rs[0])
                        )
                        dispatched += 1
                    elif not dispatchable:
                        # Inline opaque steps of an all-inline level
                        # point-dispatch inside
                        # ``execute_opaque_deferred`` (unguarded thread).
                        results[index] = work()
                    else:
                        # Beside dispatched steps the pool is already
                        # spoken for: run under the guard so the
                        # executor's point dispatcher stays serial
                        # (matching this step's computed width of 1).
                        results[index] = guarded(work)()
            for index, futures, assemble in pending:
                results[index] = assemble([future.result() for future in futures])
            # Join point: fold the level's reduction partials in recorded
            # order so dependent levels (and the final buffers) are
            # bit-identical to serial replay.
            for index in level:
                entry = schedule.steps[index]
                if entry.compiled:
                    _fold_compiled(entry.step, executor, slot_stores, results[index])
                else:
                    task, _seconds, totals = results[index]
                    executor.apply_deferred_reductions(task, totals)
            if telemetry_recorder is not None:
                telemetry_recorder.record(
                    "E",
                    "plan.level",
                    f"level={level_index} width={len(level)}",
                    runtime.simulated_seconds,
                )

        self._account(plan, schedule, results, runtime, profiler, overlap)
        _apply_plan_epilogue(plan, engine, slot_stores)
        profiler.record_plan_execution(
            steps=len(schedule.steps),
            levels=schedule.level_count,
            width=schedule.width,
            dispatched=dispatched,
            level_widths=tuple(len(level) for level in schedule.levels),
        )

    def _ensure_resident_plan(
        self,
        plan: ExecutionPlan,
        schedule: PlanSchedule,
        regions,
        slot_stores: Sequence[Store],
        tasks: Sequence[IndexTask],
    ):
        """Register ``plan`` for resident process replay (cached on it).

        Builds a worker-resident template for every compiled step — and,
        with ``REPRO_OPAQUE_CHUNKS``, every chunk-capable opaque step —
        that can both chunk (multi-rank, above the dispatch-volume
        floor) and ship (all non-reduction fields shared-memory backed;
        opaque operators additionally resolvable by name), assigns a
        parent-assigned plan id, and caches the result on the plan.
        Compiled templates bake the chunk plan of the width their
        dispatch site will use — including the partial step width of
        steps dispatched into wide levels — so wide levels ride the
        fixed binary resident frame instead of degrading to the
        per-chunk protocol; opaque templates bake the full point width
        (``point_chunk_plan`` chunks them at full width on the worker).  The
        pool ships the whole template set to each worker at most once;
        :func:`procpool.resident_generation` bumps (descriptor swaps,
        store releases, flag reloads) retire the cache so the next
        replay rebuilds against fresh descriptors under a fresh id.
        Returns ``None`` when nothing in the plan is shippable (cached
        as an empty registration so the scan runs once per generation).
        """
        from repro.runtime import procpool

        generation = procpool.resident_generation()
        resident = plan.resident
        if resident is not None and resident.generation == generation:
            return resident if resident.steps else None
        executor = self.runtime.executor
        templates: Dict[int, object] = {}
        point_width = config.point_worker_count()
        pool_size = shared_pool_size()
        workers = config.worker_count()
        # Replicate the dispatch site's per-level width computation (the
        # same deterministic inputs: schedule shape, volumes, flags) so
        # every compiled template bakes the exact chunk plan its
        # dispatch will use — dispatched steps of wide levels chunk at
        # the level's step width, inline steps at the full point width,
        # inline-beside-dispatched steps at width 1 (those never
        # process-route, so they get no template).  The dispatch site
        # still degrades to the per-chunk protocol if its chunks ever
        # disagree with the baked plan.
        widths: Dict[int, int] = {}
        for level in schedule.levels:
            dispatchable = set()
            if pool_size > 1 and workers > 1 and len(level) > 1:
                dispatchable = {
                    i
                    for i in level
                    if schedule.steps[i].volume >= MIN_DISPATCH_VOLUME
                }
            step_width = point_width
            if dispatchable:
                step_width = max(
                    1, min(point_width, pool_size // len(dispatchable))
                )
            for i in level:
                if i in dispatchable:
                    widths[i] = step_width
                elif not dispatchable:
                    widths[i] = point_width
                else:
                    widths[i] = 1
        for index, entry in enumerate(schedule.steps):
            if entry.num_points <= 1:
                continue
            if entry.volume < executor_module.MIN_POINT_DISPATCH_VOLUME:
                # Never chunked at replay, so never dispatched to the
                # pool — shipping a template would be dead weight.
                continue
            if not entry.compiled:
                # Opaque step: resident only when the chunk fast path
                # could route it (flag on, chunk-level implementation
                # registered); the template builder re-checks name
                # resolvability and descriptor coverage.
                if not config.opaque_chunks_enabled():
                    continue
                impl = entry.step.impl
                if getattr(impl, "chunk", None) is None:
                    continue
                task = _rebuild_opaque_task(entry.step, slot_stores, tasks)
                prepared = executor.prepare_opaque_bindings(task)
                chunks = point_chunks(
                    entry.num_points, point_width, config.point_min_ranks()
                )
                template = executor.resident_opaque_template(
                    impl, prepared, entry.num_points, chunks
                )
                if template is not None:
                    templates[index] = template
                continue
            width = widths.get(index, point_width)
            if width <= 1:
                # Inline-beside-dispatched steps run serially (width 1)
                # and never reach the process pool — no template.
                continue
            step = entry.step
            prepared = _prepare_compiled_bindings(step, regions, slot_stores)
            scalar_names = tuple(name for name, _index in step.scalar_order or ())
            # The chunk plan the resident dispatch will use: this
            # mirrors ``_compiled_point_work`` with the same width the
            # dispatch site computes for this step — the full point
            # width for inline steps, the level's step width for steps
            # dispatched into wide levels.
            chunks = point_chunks(
                entry.num_points, width, config.point_min_ranks()
            )
            template = executor.resident_step_template(
                step.kernel,
                prepared,
                entry.num_points,
                scalar_names,
                step.elementwise,
                chunks,
            )
            if template is not None:
                templates[index] = template
        resident = procpool.ResidentPlan(
            plan_id=procpool.next_resident_plan_id() if templates else 0,
            generation=generation,
            steps=templates,
        )
        plan.resident = resident
        return resident if templates else None

    def _compiled_point_work(
        self,
        entry: ScheduledStep,
        regions,
        slot_stores: Sequence[Store],
        tasks: Sequence[IndexTask],
        fields: Dict[int, object],
        width: int,
    ):
        """Prepare a compiled step once and build its chunk runner.

        Everything order-sensitive (scalar rebinding, field resolution)
        happens here on the scheduling thread; the returned runner only
        computes over ``[start, stop)`` rank ranges and is safe on any
        worker.  The chunk plan uses the rank count recorded into the
        plan at capture time.  The prepared bindings and rebound scalars
        are returned as well so the caller can reroute the chunks to the
        worker-process pool without re-preparing.
        """
        step = entry.step
        if entry.scalar_binds:
            scalars = {
                name: tasks[position].scalar_args[inner]
                for name, position, inner in entry.scalar_binds
            }
        else:
            scalars = _bind_scalars(step, tasks)
        prepared = _prepare_compiled_bindings(step, regions, slot_stores, fields)

        num_points = entry.num_points
        if (
            width > 1
            and num_points > 1
            and entry.volume >= executor_module.MIN_POINT_DISPATCH_VOLUME
        ):
            chunks = point_chunks(num_points, width, config.point_min_ranks())
        else:
            chunks = [(0, num_points)]

        def run_chunk(start: int, stop: int) -> Dict[str, list]:
            return _run_compiled_ranks(step, prepared, scalars, start, stop)

        return chunks, run_chunk, prepared, scalars

    def _opaque_work(
        self,
        entry: ScheduledStep,
        slot_stores: Sequence[Store],
        tasks: Sequence[IndexTask],
        resident=None,
        index: Optional[int] = None,
    ) -> Callable[[], object]:
        """Build an opaque step's compute closure on the scheduling thread.

        ``resident``/``index`` thread the plan's resident registration
        through to the executor so a chunked opaque step whose template
        the workers hold replays over the lean resident protocol.
        """
        step = entry.step
        task = _rebuild_opaque_task(step, slot_stores, tasks)
        executor = self.runtime.executor

        def opaque_work() -> object:
            seconds, totals = executor.execute_opaque_deferred(
                task, step.impl, resident=resident, resident_step=index
            )
            return (task, seconds, totals)

        return opaque_work

    # ------------------------------------------------------------------
    def _account(
        self,
        plan: ExecutionPlan,
        schedule: PlanSchedule,
        results: List[object],
        runtime,
        profiler,
        overlap: bool,
    ) -> None:
        """Fold the plan's time accounting in recorded order.

        With the overlap model off this reproduces the serial replay's
        accumulation order exactly (bit-identical simulated seconds);
        with it on, each dependence level is charged its max step time.
        """
        step_records: Dict[int, object] = {}
        entry_by_plan_index = schedule.index_by_plan

        for plan_index, step in enumerate(plan.steps):
            if isinstance(step, AnalysisCharge):
                runtime.add_simulated_seconds(step.seconds)
                profiler.record_analysis_time(step.seconds)
                profiler.add_iteration_seconds(step.seconds)
                continue
            if isinstance(step, SuperKernelStep):
                # Fused units charge their recorded constituents in
                # recorded order (lowering is skipped under overlap).
                _account_fused_constituents(step, runtime, profiler)
                continue
            index = entry_by_plan_index[plan_index]
            if isinstance(step, CompiledStep):
                record = profiler.record_task(
                    name=step.task_name,
                    constituents=step.constituents,
                    kernel_seconds=step.kernel_seconds,
                    communication_seconds=step.communication_seconds,
                    overhead_seconds=step.overhead_seconds,
                    launches=step.launches,
                    fused=step.fused,
                    replayed=True,
                    accumulate_iteration=not overlap,
                )
            else:
                _task, kernel_seconds, _totals = results[index]
                record = profiler.record_task(
                    name=step.task_name,
                    constituents=1,
                    kernel_seconds=kernel_seconds,
                    communication_seconds=step.communication_seconds,
                    overhead_seconds=step.overhead_seconds,
                    launches=1,
                    fused=False,
                    replayed=True,
                    accumulate_iteration=not overlap,
                )
            if overlap:
                step_records[index] = record
            else:
                runtime.simulated_seconds += record.total_seconds

        if overlap:
            machine = runtime.machine
            for level in schedule.levels:
                level_seconds = machine.overlapped_level_seconds(
                    [step_records[index].total_seconds for index in level]
                )
                runtime.simulated_seconds += level_seconds
                profiler.add_iteration_seconds(level_seconds)
