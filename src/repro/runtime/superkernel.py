"""Plan→super-kernel lowering: fusing captured plans across launch boundaries.

Kernel fusion (PR 1) stops at the fusion-window boundary, so a captured
:class:`~repro.runtime.trace.ExecutionPlan` still replays a *sequence* of
compiled launches — each a separate Python-level closure call with its
own buffer materialisation, and each non-element-wise launch one call
*per rank*.  This module extends fusion across those launch boundaries:
at first replay of a plan (and once per plan), maximal contiguous runs
of :class:`CompiledStep`\\ s are spliced into a single generated
``__kernel__`` (:func:`repro.kernel.codegen.generate_superkernel_source`)
that executes the constituent kernels section by section in recorded
order.  Element-wise steps become straight-line *merged* sections;
non-element-wise steps become *ranked* sections whose per-rank closure
calls collapse into an internal Python loop — one closure call per plan
step run, instead of one per step per rank.

Because recorded order is program order, a contiguous run covers both of
the paper-motivated fusion shapes at once: producer→consumer chains
(vertical splicing, Filipovič et al.) and independent same-level steps
recorded back to back (horizontal merging, Li et al.) — the generated
function simply contains both sections with disjoint outputs.

Cross-launch dead intermediates — slots whose liveness was captured as
dead in the trace key and that no step outside the run touches — are
demoted to fused-local values: the writer section assigns a local, the
consumer sections read it, the slot is dropped from the fused step's
buffer bindings and its region field is never materialised.

Soundness fallbacks (the unit breaks or the step stays unfused):

* opaque steps (data-dependent cost models) break every run;
* a step that reads or writes a slot an *earlier* unit member reduces
  into splits the unit — the serial schedule folds the reduction into
  the store between the two steps, which the fused unit defers to its
  single join;
* the interpreter backend and the eager overlap model skip lowering
  entirely (checked by the plan scheduler at the use site);
* the differential backend lowers in *verify* mode: every fused unit
  executes both the fused closure and the constituent steps and raises
  :class:`BackendDivergenceError` unless buffers and reduction partials
  agree bit-for-bit.

Accounting never changes: the fused step carries its recorded
constituent subsequence (including interior analysis charges) and the
scheduler charges the recorded per-step seconds in recorded order, so
simulated time and profiler records are bit-identical to unfused replay.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import config
from repro.kernel import codegen
from repro.kernel.codegen import SuperKernelSection, generate_superkernel_source
from repro.kernel.kir import assignment_loads_buffers, sole_buffer_assignment
from repro.kernel.lowering import BackendDivergenceError
from repro.runtime import telemetry
from repro.runtime.pool import merged_table_span
from repro.runtime.trace import AnalysisCharge, CompiledStep, ExecutionPlan


@dataclass(frozen=True)
class SectionInfo:
    """One constituent compiled step of a fused unit (execution metadata)."""

    prefix: str
    step: CompiledStep
    mode: str  # "merged" | "ranked"


class SuperKernel:
    """The kernel-like vehicle of a fused unit.

    Mirrors the parts of ``CompiledKernel`` the replay paths touch:
    ``executor`` is the compiled fused closure (obtained through the
    process-wide source-keyed cache, so structurally-identical units
    share one compiled function) and ``source`` is the generated text.
    ``binding_modes`` rides along for the process-pool wire format.
    """

    is_superkernel = True

    def __init__(
        self, source: str, name: str, binding_modes: Tuple[str, ...]
    ) -> None:
        self.source = source
        self.name = name
        self.binding_modes = binding_modes
        self.executor, self.freshly_compiled = codegen._compile_source(source, name)


@dataclass
class SuperKernelStep(CompiledStep):
    """A fused unit, shaped like a :class:`CompiledStep`.

    Subclassing keeps every generic plan mechanism working unchanged —
    dependence analysis, scalar rebinding, binding preparation and the
    reduction fold all operate on the inherited fields (prefixed names,
    concatenated scalar order, merged footprint).  Scheduler paths that
    must treat fused units specially test ``isinstance`` *before* the
    ``CompiledStep`` branch.
    """

    #: Constituent compiled steps in section order.
    sections: Tuple[SectionInfo, ...] = ()
    #: The recorded constituent subsequence — compiled steps *and*
    #: interior analysis charges — replayed verbatim by the accounting
    #: fold so simulated seconds stay bit-identical.
    fused_steps: Tuple[object, ...] = ()
    #: Per-binding calling convention, aligned with ``buffer_bindings``.
    binding_modes: Tuple[str, ...] = ()
    #: True when the unit may be split into rank chunks (all sections
    #: share the rank count and shared written slots have identical
    #: tables); otherwise the unit always executes as one chunk.
    chunkable: bool = False
    #: Differential backend: execute fused and constituent forms, compare.
    verify: bool = False
    #: Dead intermediate slots folded into locals (never materialised).
    folded_slots: Tuple[int, ...] = ()
    #: Per-binding ``(kind, payload)`` execution plan, aligned with
    #: ``buffer_bindings``: ``("ranked", per-rank slice tuples)``,
    #: ``("merged", span slices)`` or ``("reduction", None)``.  The
    #: slice tuples are precomputed from the interned rect tables at
    #: lowering time, so the fused call binds by direct NumPy slicing
    #: instead of per-rank memoized-view lookups.
    binding_plan: Tuple[Tuple[str, object], ...] = ()


#: Sentinel cached on plans whose lowering produced no fused units.
_NO_UNITS = object()

#: Weak references to plans carrying a cached lowering, retired on config
#: reloads so flag flips (backend, ``REPRO_SUPERKERNEL``) cannot replay
#: stale fused closures.  A plain weakref list because ``ExecutionPlan``
#: is an unhashable (eq-comparing) dataclass.
_LOWERED_PLANS: List["weakref.ref"] = []


def _register_lowered(plan: ExecutionPlan) -> None:
    _LOWERED_PLANS.append(weakref.ref(plan))


def _reload_superkernels() -> None:
    """Config-reload hook: drop every cached plan lowering.

    Also retires the resident-process registration of each plan *and* of
    its lowered form (the lowered plan is what the scheduler executes, so
    it is what carries the ``resident`` cache).  The process pool's own
    reload hook already bumps the resident generation — this drop is
    hygiene so a discarded lowering cannot keep a dead registration (and
    its parent-side template tuples) alive through the plan it hangs off.
    """
    from repro.runtime import procpool

    for ref in _LOWERED_PLANS:
        plan = ref()
        if plan is not None:
            cached = plan.superkernel
            if cached is not None and cached is not _NO_UNITS:
                procpool.retire_resident_plan(cached)
            procpool.retire_resident_plan(plan)
            plan.superkernel = None
    _LOWERED_PLANS.clear()


config.register_reload_callback(_reload_superkernels)


def lowered_plan_count() -> int:
    """Plans currently holding a cached lowering (tests/observability)."""
    count = 0
    for ref in _LOWERED_PLANS:
        plan = ref()
        if plan is not None and plan.superkernel is not None:
            count += 1
    return count


# ----------------------------------------------------------------------
# Unit formation.
# ----------------------------------------------------------------------
def _collect_units(plan: ExecutionPlan) -> List[List[int]]:
    """Plan-index subsequences worth fusing, in recorded order.

    Each unit is a contiguous run of compiled steps (with interior
    analysis charges riding along for accounting), split at opaque
    steps, at steps without a non-reduction binding, and at reduce→use
    hazards; runs that would not save closure calls are dropped.
    """
    units: List[List[int]] = []
    current: List[int] = []
    reduced_slots: set = set()

    def flush() -> None:
        nonlocal current, reduced_slots
        if current:
            # Trim trailing analysis charges — they stay standalone.
            while current and isinstance(plan.steps[current[-1]], AnalysisCharge):
                current.pop()
            compiled = [
                index
                for index in current
                if isinstance(plan.steps[index], CompiledStep)
            ]
            if len(compiled) >= 2 or (
                len(compiled) == 1
                and not plan.steps[compiled[0]].elementwise
                and plan.steps[compiled[0]].num_points > 1
            ):
                units.append(current)
        current = []
        reduced_slots = set()

    for index, step in enumerate(plan.steps):
        if isinstance(step, AnalysisCharge):
            if current:
                current.append(index)
            continue
        if not isinstance(step, CompiledStep) or isinstance(step, SuperKernelStep):
            flush()
            continue
        if not any(not is_red for _n, _s, is_red, _t in step.buffer_bindings):
            # No non-reduction binding: the ranked emission cannot derive
            # a rank count — leave the step unfused.
            flush()
            continue
        if reduced_slots and any(
            (reads or writes) and slot in reduced_slots
            for slot, reads, writes, _reduces in step.footprint
        ):
            # The serial schedule folds earlier reductions into the slot
            # store before this step observes it; split so the fused
            # unit's single deferred join stays equivalent.
            flush()
        current.append(index)
        for slot, _reads, _writes, reduces in step.footprint:
            if reduces:
                reduced_slots.add(slot)
    flush()
    return units


def _fold_decisions(
    plan: ExecutionPlan,
    members: Sequence[Tuple[int, CompiledStep, str]],
) -> Dict[int, str]:
    """Dead intermediates of one unit that fold into fused locals.

    Returns ``slot -> local identifier``.  A slot folds only when the
    trace key captured it dead, every plan step touching it is a merged
    section of this unit, the (single) writer defines it with one
    buffer-loading element-wise assignment and never reads it, the
    readers only read it, and every touching binding shares one interned
    rect table (so chunked execution keeps writer and reader spans
    aligned).
    """
    liveness = plan.liveness
    if not liveness:
        return {}
    member_indices = {index for index, _step, _mode in members}
    touchers: Dict[int, List[int]] = {}
    for index, step in enumerate(plan.steps):
        if isinstance(step, AnalysisCharge):
            continue
        for slot, reads, writes, reduces in step.footprint:
            if reads or writes or reduces:
                touchers.setdefault(slot, []).append(index)

    folds: Dict[int, str] = {}
    for slot, touching in touchers.items():
        if slot >= len(liveness) or liveness[slot]:
            continue
        if not set(touching) <= member_indices:
            continue
        infos = [
            (index, step, mode)
            for index, step, mode in members
            if any(slot == s for s, _r, _w, _x in step.footprint)
        ]
        if len(infos) < 2 or any(mode != "merged" for _i, _s, mode in infos):
            continue
        writers = [
            (index, step)
            for index, step, _mode in infos
            if any(s == slot and w for s, _r, w, _x in step.footprint)
        ]
        if len(writers) != 1 or writers[0][0] != infos[0][0]:
            continue
        if any(
            s == slot and x
            for _i, step, _m in infos
            for s, _r, _w, x in step.footprint
        ):
            continue
        ok = True
        table_ref = None
        writer_index = writers[0][0]
        for index, step, _mode in infos:
            bindings = [b for b in step.buffer_bindings if b[1] == slot]
            if len(bindings) != 1 or bindings[0][2]:
                ok = False
                break
            name, _slot, _is_red, table = bindings[0]
            if table_ref is None:
                table_ref = table
            elif table is not table_ref:
                ok = False
                break
            function = step.kernel.function
            if index == writer_index:
                assign = sole_buffer_assignment(function, name)
                if assign is None or not assignment_loads_buffers(function, assign):
                    ok = False
                    break
            else:
                if name in function.buffers_written() or any(
                    alloc.name == name for alloc in function.allocs
                ):
                    ok = False
                    break
        if ok:
            folds[slot] = f"_fold{len(folds)}_{slot}"
    return folds


def _build_unit(
    plan: ExecutionPlan,
    indices: Sequence[int],
    tasks,
    verify: bool,
) -> SuperKernelStep:
    """Lower one collected unit into a :class:`SuperKernelStep`."""
    members: List[Tuple[int, CompiledStep, str]] = []
    for index in indices:
        step = plan.steps[index]
        if isinstance(step, CompiledStep):
            mode = "merged" if step.elementwise else "ranked"
            members.append((index, step, mode))

    folds = {} if verify else _fold_decisions(plan, members)

    # Chunkability: every section must agree on the rank count, and any
    # slot one section writes while another binds it must use the same
    # interned table, so a chunk's writer and reader spans coincide.
    num_points = members[0][1].num_points
    chunkable = (
        not verify
        and num_points > 1
        and all(step.num_points == num_points for _i, step, _m in members)
    )
    if chunkable:
        slot_tables: Dict[int, List] = {}
        written: set = set()
        for _index, step, _mode in members:
            for slot, _reads, writes, reduces in step.footprint:
                if writes or reduces:
                    written.add(slot)
            for _name, slot, is_red, table in step.buffer_bindings:
                if not is_red:
                    slot_tables.setdefault(slot, []).append(table)
        for slot in written:
            tables = slot_tables.get(slot, [])
            if len(tables) > 1 and any(t is not tables[0] for t in tables):
                chunkable = False
                break

    sections: List[SuperKernelSection] = []
    infos: List[SectionInfo] = []
    bindings: List[Tuple[str, int, bool, list]] = []
    binding_modes: List[str] = []
    scalar_positions: List[int] = []
    scalar_order: List[Tuple[str, int]] = []
    reductions: Dict[str, Tuple[int, object]] = {}
    footprint_merge: Dict[int, List[bool]] = {}
    scalar_offset = 0

    for section_index, (_index, step, mode) in enumerate(members):
        prefix = f"k{section_index}:"
        function = step.kernel.function
        reduction_params = tuple(
            name for name, _slot, is_red, _table in step.buffer_bindings if is_red
        )
        fold_writes: List[Tuple[str, str]] = []
        fold_reads: List[Tuple[str, str]] = []
        step_writes = {
            slot for slot, _r, w, _x in step.footprint if w
        }
        for name, slot, is_red, table in step.buffer_bindings:
            ident = folds.get(slot)
            if ident is not None:
                if slot in step_writes:
                    fold_writes.append((name, ident))
                else:
                    fold_reads.append((name, ident))
                continue
            bindings.append((prefix + name, slot, is_red, table))
            binding_modes.append(mode)
        sections.append(
            SuperKernelSection(
                prefix=prefix,
                function=function,
                mode=mode,
                reduction_params=reduction_params,
                fold_writes=tuple(fold_writes),
                fold_reads=tuple(fold_reads),
            )
        )
        infos.append(SectionInfo(prefix=prefix, step=step, mode=mode))

        scalar_positions.extend(step.scalar_positions)
        for name, flat_index in step.scalar_order:
            scalar_order.append((prefix + name, flat_index + scalar_offset))
        scalar_offset += sum(
            len(tasks[position].scalar_args) for position in step.scalar_positions
        )
        for name, (slot, redop) in step.reductions.items():
            reductions[prefix + name] = (slot, redop)
        for slot, reads, writes, reduces in step.footprint:
            if slot in folds:
                continue
            entry = footprint_merge.setdefault(slot, [False, False, False])
            entry[0] = entry[0] or reads
            entry[1] = entry[1] or writes
            entry[2] = entry[2] or reduces

    name = "superkernel_" + "_".join(
        step.task_name for _i, step, _m in members[:3]
    )
    source = generate_superkernel_source(sections, name)
    kernel = SuperKernel(source, name, tuple(binding_modes))

    binding_plan: List[Tuple[str, object]] = []
    for (_name, _slot, is_red, table), mode in zip(bindings, binding_modes):
        if mode == "ranked" and is_red:
            binding_plan.append(("reduction", None))
        elif mode == "ranked":
            binding_plan.append(
                ("ranked", tuple(entry[0].slices() for entry in table))
            )
        else:
            binding_plan.append(
                ("merged", merged_table_span(table, 0, len(table)).slices())
            )

    fused_steps = tuple(plan.steps[index] for index in indices)
    return SuperKernelStep(
        kernel=kernel,
        task_name=name,
        fused=True,
        constituents=sum(step.constituents for _i, step, _m in members),
        launches=sum(step.launches for _i, step, _m in members),
        num_points=num_points if chunkable else 1,
        buffer_bindings=tuple(bindings),
        scalar_order=tuple(scalar_order),
        scalar_positions=tuple(scalar_positions),
        reductions=reductions,
        footprint=tuple(
            (slot, reads, writes, reduces)
            for slot, (reads, writes, reduces) in sorted(footprint_merge.items())
        ),
        kernel_seconds=sum(step.kernel_seconds for _i, step, _m in members),
        communication_seconds=sum(
            step.communication_seconds for _i, step, _m in members
        ),
        overhead_seconds=sum(step.overhead_seconds for _i, step, _m in members),
        elementwise=False,
        sections=tuple(infos),
        fused_steps=fused_steps,
        binding_modes=tuple(binding_modes),
        chunkable=chunkable,
        verify=verify,
        folded_slots=tuple(sorted(folds)),
        binding_plan=tuple(binding_plan),
    )


def maybe_lower_plan(
    plan: ExecutionPlan, tasks, backend: str, profiler=None
) -> Optional[ExecutionPlan]:
    """The super-kernel lowering of ``plan``, or None when nothing fuses.

    The lowering is computed once per plan and cached on it (retired by
    :func:`config.reload_flags` via the registered callback).  The
    caller gates on the ``REPRO_SUPERKERNEL`` flag, the interpreter
    backend and the overlap model; the differential backend lowers in
    verify mode.
    """
    cached = plan.superkernel
    if cached is not None:
        return None if cached is _NO_UNITS else cached

    units = _collect_units(plan)
    if not units:
        plan.superkernel = _NO_UNITS
        _register_lowered(plan)
        return None

    verify = backend == "differential"
    fused_by_start: Dict[int, SuperKernelStep] = {}
    consumed: set = set()
    for indices in units:
        unit = _build_unit(plan, indices, tasks, verify)
        fused_by_start[indices[0]] = unit
        consumed.update(indices)
        if profiler is not None:
            profiler.record_superkernel_fusion(len(unit.sections))

    steps: List[object] = []
    for index, step in enumerate(plan.steps):
        unit = fused_by_start.get(index)
        if unit is not None:
            steps.append(unit)
        elif index not in consumed:
            steps.append(step)

    lowered = ExecutionPlan(
        steps=tuple(steps),
        exit_states=plan.exit_states,
        bytes_moved=plan.bytes_moved,
        analysis_seconds=plan.analysis_seconds,
        forwarded_tasks=plan.forwarded_tasks,
        fused_tasks=plan.fused_tasks,
        fused_constituents=plan.fused_constituents,
        temporaries_eliminated=plan.temporaries_eliminated,
        task_count=plan.task_count,
        liveness=plan.liveness,
    )
    plan.superkernel = lowered
    _register_lowered(plan)
    return lowered


# ----------------------------------------------------------------------
# Execution.
# ----------------------------------------------------------------------
def run_superkernel_ranks(
    step: SuperKernelStep,
    prepared: Sequence[Tuple[str, object, bool, list]],
    scalars: Dict[str, float],
    start: int,
    stop: int,
) -> Dict[str, list]:
    """Run rank chunk ``[start, stop)`` of a fused unit (one closure call).

    Merged bindings hand the closure one contiguous span view; ranked
    bindings hand it the chunk's per-rank view list.  Non-chunkable
    units ignore the chunk range and execute every rank.  The returned
    totals have the same shape and order as the per-step fold loop would
    accumulate, so the scheduler's join points need no special casing.

    Binding slices the resolved fields' backing arrays directly with the
    slice tuples precomputed at lowering time (``step.binding_plan``) —
    NumPy basic slicing always yields a view, so writes land in place
    exactly as through the memoized per-rect view path the per-step
    replay loop uses, without its per-rank cache lookups.
    """
    if step.verify:
        return _run_verify(step, prepared, scalars)
    buffers: Dict[str, object] = {}
    chunked = step.chunkable
    for (name, resolved, _is_reduction, table), (kind, payload) in zip(
        prepared, step.binding_plan
    ):
        if kind == "reduction":
            buffers[name] = None
        elif kind == "ranked":
            data = resolved.data
            rank_slices = payload[start:stop] if chunked else payload
            buffers[name] = [data[entry] for entry in rank_slices]
        elif chunked and (start, stop) != (0, len(table)):
            buffers[name] = resolved.view(merged_table_span(table, start, stop))
        else:
            buffers[name] = resolved.data[payload]
    with telemetry.span(
        "superkernel.call", f"{step.task_name} ranks=[{start}:{stop})"
    ):
        partials = step.kernel.executor(buffers, scalars)
    totals: Dict[str, list] = {}
    reductions = step.reductions
    for name, partial_list in partials.items():
        if name in reductions and partial_list:
            totals[name] = list(partial_list)
    return totals


def _run_verify(
    step: SuperKernelStep,
    prepared: Sequence[Tuple[str, object, bool, list]],
    scalars: Dict[str, float],
) -> Dict[str, list]:
    """Differential execution of a fused unit.

    Runs the constituent steps first (the reference — themselves under
    their own differential executors), snapshots the written fields,
    rewinds to the pre-state, runs the fused closure, and demands
    bitwise agreement on every written field and reduction partial.
    """
    from repro.runtime import scheduler as scheduler_module

    resolved_by_slot: Dict[int, object] = {}
    for (name, slot, _is_red, _table), (_n, resolved, _r, _t) in zip(
        step.buffer_bindings, prepared
    ):
        if resolved is not None:
            resolved_by_slot[slot] = resolved

    written_slots = [slot for slot, _r, w, _x in step.footprint if w]
    pre = {
        slot: np.array(resolved_by_slot[slot].data, copy=True)
        for slot in written_slots
        if slot in resolved_by_slot
    }

    reference: Dict[str, list] = {}
    for info in step.sections:
        member = info.step
        member_prepared = [
            (name, None if is_red else resolved_by_slot[slot], is_red, table)
            for name, slot, is_red, table in member.buffer_bindings
        ]
        member_scalars = {
            name: scalars[info.prefix + name] for name, _index in member.scalar_order
        }
        totals = scheduler_module._run_compiled_ranks(
            member, member_prepared, member_scalars, 0, member.num_points
        )
        for name, partial_list in totals.items():
            reference[info.prefix + name] = partial_list

    post = {slot: np.array(resolved_by_slot[slot].data, copy=True) for slot in pre}
    for slot, snapshot in pre.items():
        resolved_by_slot[slot].data[...] = snapshot

    buffers: Dict[str, object] = {}
    for (name, resolved, is_reduction, table), mode in zip(
        prepared, step.binding_modes
    ):
        if mode == "ranked":
            if is_reduction:
                buffers[name] = None
            else:
                buffers[name] = [
                    resolved.view(table[rank][0]) for rank in range(len(table))
                ]
        else:
            buffers[name] = resolved.view(merged_table_span(table, 0, len(table)))
    partials = step.kernel.executor(buffers, scalars)

    for slot, expected in post.items():
        actual = resolved_by_slot[slot].data
        if not np.array_equal(actual, expected, equal_nan=True):
            raise BackendDivergenceError(
                f"super-kernel '{step.task_name}': fused and constituent "
                f"execution disagree on slot {slot}"
            )
    totals: Dict[str, list] = {}
    reductions = step.reductions
    for name, partial_list in partials.items():
        if name in reductions and partial_list:
            totals[name] = list(partial_list)
    if set(totals) != set(reference):
        raise BackendDivergenceError(
            f"super-kernel '{step.task_name}': reduction targets differ "
            f"({sorted(reference)} vs {sorted(totals)})"
        )
    for name, expected_list in reference.items():
        actual_list = totals[name]
        if len(actual_list) != len(expected_list):
            raise BackendDivergenceError(
                f"super-kernel '{step.task_name}': partial counts differ "
                f"for '{name}'"
            )
        for expected, actual in zip(expected_list, actual_list):
            if expected.kind is not actual.kind or not (
                expected.value == actual.value
                or (np.isnan(expected.value) and np.isnan(actual.value))
            ):
                raise BackendDivergenceError(
                    f"super-kernel '{step.task_name}': reduction partial "
                    f"'{name}' diverged ({expected} vs {actual})"
                )
    return totals
