"""Coherence tracking and communication modelling.

Legion maintains coherence of distributed data by moving and invalidating
physical instances as tasks with different partitions and privileges touch
the same logical region.  The substrate models the *cost* of that data
movement: it tracks, per store, the partition through which the store was
last written (its "valid partition") and charges an alpha-beta
communication cost whenever a task reads the store through a different,
aliasing partition.

This is exactly the communication that limits task fusion in the paper —
e.g. the stencil's ``center[:] = work`` write forces halo exchanges before
the next iteration's reads of the ``north``/``south``/... views — so the
model charges the unfused and fused executions identically and the fusion
speedups come only from launch overheads and memory traffic, as in the
paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.ir.domain import Domain
from repro.ir.partition import Partition, Replication
from repro.ir.store import Store
from repro.ir.task import IndexTask
from repro.runtime.machine import MachineConfig


@dataclass
class StoreCoherenceState:
    """Per-store record of how the store's contents are currently laid out."""

    #: Partition through which the store was last written, or None when the
    #: store has never been written (or was written by the host).
    valid_partition: Optional[Partition] = None
    #: Launch domain of the writing task (needed to evaluate sub-stores).
    valid_domain: Optional[Domain] = None
    #: True when every GPU additionally holds a full replica (after a
    #: replicated read the copies stay valid until the next write).
    replicated: bool = False


class CoherenceTracker:
    """Tracks store layouts and derives per-task communication costs."""

    def __init__(self, machine: MachineConfig) -> None:
        self.machine = machine
        self._states: Dict[int, StoreCoherenceState] = {}
        self.total_bytes_moved: float = 0.0

    def state(self, store: Store) -> StoreCoherenceState:
        """The coherence state of a store (created on first access)."""
        existing = self._states.get(store.uid)
        if existing is None:
            existing = StoreCoherenceState()
            self._states[store.uid] = existing
        return existing

    def reset(self) -> None:
        """Forget all layouts (used between benchmark configurations)."""
        self._states.clear()
        self.total_bytes_moved = 0.0

    # ------------------------------------------------------------------
    # Cost model.
    # ------------------------------------------------------------------
    def communication_seconds(self, task: IndexTask) -> float:
        """Communication time implied by launching ``task``, then update state.

        The cost is the maximum over GPUs of the bytes each GPU must
        receive divided by the interconnect bandwidth (an alpha-beta
        model), summed over the task's store arguments.
        """
        total = 0.0
        for arg in task.args:
            state = self.state(arg.store)
            if arg.privilege.reads:
                total += self._read_cost(task, arg.store, arg.partition, state)
            if arg.privilege.reduces:
                total += self._reduction_cost(arg.store)
        # Writes update the valid layout after all reads are priced.
        for arg in task.args:
            if arg.privilege.writes or arg.privilege.reduces:
                state = self.state(arg.store)
                state.valid_partition = arg.partition
                state.valid_domain = task.launch_domain
                state.replicated = False
        return total

    def _read_cost(
        self,
        task: IndexTask,
        store: Store,
        partition: Partition,
        state: StoreCoherenceState,
    ) -> float:
        if self.machine.num_gpus <= 1:
            return 0.0
        if state.valid_partition is None:
            # Never written by a task: the data was produced by the host
            # (or a fill) and is assumed to already be distributed.
            return 0.0
        # Identity first: the frontend interns partitions, so the common
        # revalidation case compares equal without touching fields.
        if state.valid_partition is partition or state.valid_partition == partition:
            return 0.0
        if isinstance(partition, Replication):
            if state.replicated:
                return 0.0
            bytes_per_gpu = store.size_bytes / self.machine.num_gpus
            cost = self.machine.allgather_time(bytes_per_gpu)
            state.replicated = True
            self.total_bytes_moved += bytes_per_gpu * (self.machine.num_gpus - 1)
            return cost
        # Tiled read of data valid under a different tiling: each GPU must
        # fetch the part of its new sub-store not already present in its
        # old sub-store (a halo exchange).  The volume is computed exactly
        # by rectangle arithmetic over the launch domain; this is the
        # simulator's job, not the scale-free analysis, so enumerating the
        # (at most #GPUs) points is acceptable.
        worst_bytes = 0.0
        total_bytes = 0.0
        for point in task.launch_domain.points():
            new_rect = partition.sub_store_rect(point, store.shape)
            if state.valid_domain is not None and state.valid_domain.contains(point):
                old_rect = state.valid_partition.sub_store_rect(point, store.shape)
                overlap = new_rect.intersection(old_rect).volume
            else:
                overlap = 0
            missing = max(0, new_rect.volume - overlap)
            missing_bytes = missing * store.dtype.itemsize
            worst_bytes = max(worst_bytes, missing_bytes)
            total_bytes += missing_bytes
        if worst_bytes == 0.0:
            return 0.0
        self.total_bytes_moved += total_bytes
        return self.machine.point_to_point_time(worst_bytes)

    def _reduction_cost(self, store: Store) -> float:
        """Cost of folding per-GPU reduction contributions."""
        if self.machine.num_gpus <= 1:
            return 0.0
        if store.is_scalar:
            return self.machine.scalar_reduction_time()
        bytes_per_gpu = store.size_bytes / self.machine.num_gpus
        self.total_bytes_moved += bytes_per_gpu * (self.machine.num_gpus - 1)
        return self.machine.allreduce_time(bytes_per_gpu)

    # ------------------------------------------------------------------
    # Trace support: the per-epoch communication of a captured execution
    # plan is only valid while the stores enter the epoch in the same
    # layout, so the trace key embeds a snapshot of the entry states and
    # replay applies the captured exit states wholesale instead of
    # re-deriving them task by task.
    # ------------------------------------------------------------------
    def state_key(self, store: Store) -> Optional[Tuple]:
        """A hashable snapshot of the store's current layout.

        ``None`` for stores the tracker has never seen.  A tracked state
        with no valid partition and no replicas behaves identically to
        an untracked one for every cost decision, so it normalises to
        ``None`` as well — otherwise the trace key of an epoch would
        spuriously change between the first occurrence (stores unseen)
        and the second (default states created by pricing), costing one
        guaranteed extra re-record per application.
        """
        state = self._states.get(store.uid)
        if state is None:
            return None
        if state.valid_partition is None and not state.replicated:
            return None
        return (state.valid_partition, state.valid_domain, state.replicated)

    def apply_state_key(self, store: Store, key: Optional[Tuple]) -> None:
        """Restore a layout snapshot produced by :meth:`state_key`."""
        if key is None:
            self._states.pop(store.uid, None)
            return
        state = self.state(store)
        state.valid_partition, state.valid_domain, state.replicated = key

    def add_bytes_moved(self, bytes_moved: float) -> None:
        """Account data movement charged wholesale by a replayed plan."""
        self.total_bytes_moved += bytes_moved

    # ------------------------------------------------------------------
    # Host interactions.
    # ------------------------------------------------------------------
    def invalidate(self, store: Store) -> None:
        """Record a host-side write to the store (layout unknown)."""
        state = self.state(store)
        state.valid_partition = None
        state.valid_domain = None
        state.replicated = False
