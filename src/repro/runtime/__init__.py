"""The Legion-like runtime substrate.

The paper implements Diffuse as a middle layer above the Legion runtime.
Legion itself is a large distributed C++ system; this package provides a
Python substrate with the same interface surface that Diffuse relies on:

* a machine model describing nodes, GPUs and interconnects,
* region fields providing backing storage for stores,
* a coherence tracker that derives the communication each task launch
  implies from the partitions it uses,
* a functional executor that runs (fused) index tasks point-by-point on
  NumPy views of the region fields, and
* a profiler that records task counts and analytically-modelled execution
  times, from which the experiment harness computes throughput.

Execution is *functionally real* (results are bit-for-bit the results of
running the kernels on NumPy) while *performance is modelled* (a roofline
model of GPU kernels plus an alpha-beta model of communication), which is
the substitution documented in DESIGN.md.
"""

from repro.runtime.machine import MachineConfig
from repro.runtime.profiler import Profiler
from repro.runtime.runtime import LegionRuntime

__all__ = ["MachineConfig", "Profiler", "LegionRuntime"]
