"""Process-level configuration flags for the execution hot path.

Several environment variables tune how the reproduction executes
kernels; all are read lazily so tests and the wall-clock perf harness
can flip them between runs in one process:

``REPRO_KERNEL_BACKEND``
    ``codegen`` (default) executes kernels through NumPy closures
    compiled once per canonical kernel; ``interpreter`` uses the
    tree-walking reference evaluator; ``differential`` runs both on
    every invocation and raises on any bitwise divergence.

``REPRO_HOTPATH_CACHE``
    ``1`` (default) enables the submit→fuse→execute caches: sub-store
    rect memoization, region-field view caching, partition interning,
    per-task canonical signatures and SpMV index-conversion caching.
    ``0`` disables all of them, restoring the seed caching behaviour;
    ``benchmarks/perf_wallclock.py`` uses that as its baseline.  A few
    micro-changes remain unconditional (vectorised reduction folding,
    memoized StoreArgs, lazy hash caching) — the baseline was validated
    within a few percent of a checkout of the actual seed commit.

``REPRO_TRACE``
    ``1`` (default) enables the deferred task stream with iteration-trace
    capture and replay (``repro.runtime.trace``): the Diffuse layer
    buffers each epoch of the task stream (delimited by the scalar reads
    and flushes the applications already perform), hashes its canonical
    form, records the fully-resolved sequence of fused launches on the
    first steady occurrence, and replays that :class:`ExecutionPlan`
    directly through the task executor on every later occurrence —
    bypassing window buffering, dependence analysis, memoization lookups
    and per-task coherence recomputation.  ``0`` restores the eager
    per-task submission path.

``REPRO_WORKERS``
    Size of the persistent worker pool used by the plan scheduler
    (``repro.runtime.scheduler``) to execute independent steps of a
    captured :class:`ExecutionPlan` concurrently.  Unset defaults to
    ``os.cpu_count()`` bounded to 8; ``1`` restores the serial replay
    path of the trace layer.  Results are bit-identical for every value.

``REPRO_POINT_WORKERS``
    Width of *intra-launch* point-task dispatch: the per-rank point
    tasks of one compiled or opaque launch are partitioned into
    contiguous rank chunks and executed across the shared worker pool
    (write tiles are disjoint by construction; reduction partials and
    per-GPU simulated seconds are folded in recorded rank order at the
    launch's join point, so buffers and simulated time are bit-identical
    for every width).  ``1`` (default) keeps the serial per-rank launch
    loop.

``REPRO_POINT_MIN_RANKS``
    Minimum number of launch ranks per dispatched chunk (default ``1``).
    Bounds how finely a launch is split: a launch of ``R`` ranks
    produces at most ``R // REPRO_POINT_MIN_RANKS`` chunks.

``REPRO_OVERLAP_MODEL``
    ``1`` switches simulated time to overlap-aware accounting: the plan
    scheduler charges each dependence level of a replayed plan the
    maximum over its steps rather than their sum, and the eager path
    charges each greedy group of consecutive pairwise-independent
    launches its maximum.  ``0`` (default) keeps the serial time
    accounting, which is bit-identical to eager execution.

``REPRO_NORMALIZE``
    ``1`` (default) enables the algebraic normalisation pass that runs
    before CSE (bit-exact negation pushing through division and the odd
    ``erf``) together with value-based scalar-parameter deduplication in
    fused kernels.  ``0`` restores the PR-2 kernel shapes (used by the
    wall-clock harness to time the historical trace path).

``REPRO_DISPATCH_BACKEND``
    Substrate that executes dispatched point-task rank chunks.
    ``thread`` (default) runs chunks on the shared in-process thread
    pool; ``process`` runs chunks of *compiled* launches on a persistent
    pool of worker processes (``repro.runtime.procpool``) over
    zero-copy shared-memory region fields (``repro.runtime.shm``),
    removing the GIL ceiling for interpreter-heavy and small-tile
    kernels.  Buffers and simulated seconds are bit-identical between
    the two backends for every worker/width combination.  Opaque
    launches ship too when their operator is registered with a
    chunk-level implementation (``REPRO_OPAQUE_CHUNKS``, below); opaque
    launches without one — and non-shm fields — fall back to the thread
    substrate.

``REPRO_SHM_SEGMENT_BYTES``
    Size of each shared-memory segment the region-field arena carves
    block allocations out of (default 16 MiB; allocations larger than a
    segment get a dedicated segment).  Only meaningful with
    ``REPRO_DISPATCH_BACKEND=process``.

``REPRO_RESIDENT_PLANS``
    ``1`` (default) makes captured execution plans *resident* in the
    worker processes of the process dispatch backend
    (``repro.runtime.procpool``): the first resident replay ships each
    plan's kernel specs, rect tables, shared-memory descriptors and
    calling conventions to each worker once under a parent-assigned plan
    id, and every later replay sends only ``(plan id, step, epoch
    scalars, rank ranges)`` per dispatch — the per-chunk wire traffic of
    a steady epoch collapses to a few dozen bytes per message.  Buffers
    and simulated seconds stay bit-identical to both the per-chunk
    protocol and the thread backend.  ``0`` restores the per-chunk
    protocol; the flag is only meaningful with
    ``REPRO_DISPATCH_BACKEND=process``.

``REPRO_SUPERKERNEL``
    ``1`` (default) enables the plan→super-kernel lowering pass
    (``repro.runtime.superkernel``): contiguous compiled-step runs of a
    captured :class:`ExecutionPlan` are spliced into one generated
    function that executes the whole run — every per-rank launch of
    every constituent step — in a single compiled-closure call, with
    dead cross-launch intermediates folded into locals that skip field
    materialisation entirely.  Buffers, simulated seconds and profiler
    accounting are bit-identical to the unfused replay.  ``0`` restores
    step-by-step plan replay.

``REPRO_OPAQUE_CHUNKS``
    ``1`` (default) executes opaque launches whose operator registers a
    chunk-level implementation (``repro.runtime.opaque``) with one
    library call per contiguous rank chunk — a single merged-span GEMV/
    SpMV/transfer instead of one call per rank — and lets those chunks
    ship to the worker-process pool and ride resident plans (opaque
    operators are importable by name, so workers resolve them from
    their own registry).  Reduction partials and per-rank modelled
    seconds still fold at the launch join in recorded rank order, so
    buffers and simulated time are bit-identical to the per-rank path.
    ``0`` restores the one-call-per-rank execution of every opaque
    launch.

``REPRO_TELEMETRY``
    ``1`` enables the span/event flight recorder
    (``repro.runtime.telemetry``): epoch capture/replay, scheduler
    levels and steps, point chunks, super-kernel and opaque chunk
    calls, wire traffic and shared-memory arena activity are recorded
    as begin/end spans into a preallocated ring buffer, exportable as
    Chrome trace-event JSON (``python -m repro.tools.tracedump``).
    Process-pool workers record into their own recorder and ship spans
    back piggybacked on reply frames.  ``0`` (default) leaves every
    instrumentation site on a module-level no-op fast path; buffers and
    simulated seconds are bit-identical either way.

``REPRO_TELEMETRY_EVENTS``
    Capacity (number of events) of the telemetry ring buffer (default
    65536).  When a run records more events than fit, the oldest are
    overwritten and the export reports the drop count.
"""

from __future__ import annotations

import os
from typing import Callable, List

#: Environment variable selecting the kernel execution backend.
BACKEND_ENV_VAR = "REPRO_KERNEL_BACKEND"

#: Recognised backend names.
BACKENDS = ("codegen", "interpreter", "differential")

#: Environment variable gating the hot-path caches.
HOTPATH_CACHE_ENV_VAR = "REPRO_HOTPATH_CACHE"

#: Environment variable gating trace capture and replay.
TRACE_ENV_VAR = "REPRO_TRACE"

#: Environment variable sizing the plan-scheduler worker pool.
WORKERS_ENV_VAR = "REPRO_WORKERS"

#: Environment variable sizing intra-launch point-task dispatch.
POINT_WORKERS_ENV_VAR = "REPRO_POINT_WORKERS"

#: Environment variable bounding the smallest dispatched rank chunk.
POINT_MIN_RANKS_ENV_VAR = "REPRO_POINT_MIN_RANKS"

#: Environment variable enabling overlap-aware simulated-time accounting.
OVERLAP_MODEL_ENV_VAR = "REPRO_OVERLAP_MODEL"

#: Environment variable gating algebraic normalisation before CSE.
NORMALIZE_ENV_VAR = "REPRO_NORMALIZE"

#: Environment variable selecting the point-dispatch substrate.
DISPATCH_BACKEND_ENV_VAR = "REPRO_DISPATCH_BACKEND"

#: Recognised dispatch backend names.
DISPATCH_BACKENDS = ("thread", "process")

#: Environment variable sizing shared-memory arena segments.
SHM_SEGMENT_ENV_VAR = "REPRO_SHM_SEGMENT_BYTES"

#: Default shared-memory segment size (bytes).
DEFAULT_SHM_SEGMENT_BYTES = 16 * 1024 * 1024

#: Environment variable gating plan→super-kernel lowering.
SUPERKERNEL_ENV_VAR = "REPRO_SUPERKERNEL"

#: Environment variable gating plan-resident process replay.
RESIDENT_PLANS_ENV_VAR = "REPRO_RESIDENT_PLANS"

#: Environment variable gating chunk-level opaque operator execution.
OPAQUE_CHUNKS_ENV_VAR = "REPRO_OPAQUE_CHUNKS"

#: Environment variable gating the span/event flight recorder.
TELEMETRY_ENV_VAR = "REPRO_TELEMETRY"

#: Environment variable sizing the telemetry ring buffer (events).
TELEMETRY_EVENTS_ENV_VAR = "REPRO_TELEMETRY_EVENTS"

#: Default telemetry ring-buffer capacity (events).
DEFAULT_TELEMETRY_EVENTS = 65536

#: Upper bound on the default worker count (explicit settings may exceed it).
MAX_DEFAULT_WORKERS = 8


def default_backend() -> str:
    """The backend selected by the environment (``codegen`` by default)."""
    backend = os.environ.get(BACKEND_ENV_VAR, "codegen").strip().lower()
    return backend or "codegen"


_hotpath_cache_flag: bool | None = None


def hotpath_cache_enabled() -> bool:
    """True unless ``REPRO_HOTPATH_CACHE`` disables the launch caches.

    The flag is read from the environment once and memoized — it sits on
    per-point-task code paths.  Call :func:`reload_flags` after changing
    the environment variable inside a running process (the perf harness
    and the backend tests do).
    """
    global _hotpath_cache_flag
    if _hotpath_cache_flag is None:
        _hotpath_cache_flag = os.environ.get(
            HOTPATH_CACHE_ENV_VAR, "1"
        ).strip().lower() not in ("0", "off", "false")
    return _hotpath_cache_flag


_trace_flag: bool | None = None


def trace_enabled() -> bool:
    """True unless ``REPRO_TRACE`` disables trace capture and replay.

    Memoized like :func:`hotpath_cache_enabled`; the Diffuse layer
    additionally samples it once per engine, so call
    :func:`reload_flags` *and* build a fresh context after changing the
    environment variable inside a running process.
    """
    global _trace_flag
    if _trace_flag is None:
        _trace_flag = os.environ.get(
            TRACE_ENV_VAR, "1"
        ).strip().lower() not in ("0", "off", "false")
    return _trace_flag


def _positive_int_env(env_var: str, default: int) -> int:
    """Parse a positive-integer flag, clamping explicit values to ≥ 1.

    The single parser behind every ``REPRO_*`` worker/width knob, so
    junk values degrade to the serial behaviour consistently.
    """
    raw = os.environ.get(env_var, "").strip()
    if not raw:
        return default
    try:
        return max(1, int(raw))
    except ValueError:
        return 1


_worker_count: int | None = None


def worker_count() -> int:
    """Size of the plan-scheduler worker pool (``REPRO_WORKERS``).

    Unset defaults to ``os.cpu_count()`` bounded to
    :data:`MAX_DEFAULT_WORKERS`; explicit values are clamped to at least
    1.  ``1`` restores the serial trace-replay path.  Memoized like the
    other flags — call :func:`reload_flags` after changing the variable.
    """
    global _worker_count
    if _worker_count is None:
        _worker_count = _positive_int_env(
            WORKERS_ENV_VAR,
            max(1, min(os.cpu_count() or 1, MAX_DEFAULT_WORKERS)),
        )
    return _worker_count


_point_worker_count: int | None = None


def point_worker_count() -> int:
    """Width of intra-launch point dispatch (``REPRO_POINT_WORKERS``).

    ``1`` (the default) keeps the serial per-rank launch loop; larger
    values partition each launch's point tasks into that many contiguous
    rank chunks executed across the shared worker pool.  Results are
    bit-identical for every value.  Memoized like the other flags — call
    :func:`reload_flags` after changing the variable.
    """
    global _point_worker_count
    if _point_worker_count is None:
        _point_worker_count = _positive_int_env(POINT_WORKERS_ENV_VAR, 1)
    return _point_worker_count


_point_min_ranks: int | None = None


def point_min_ranks() -> int:
    """Minimum launch ranks per dispatched chunk (``REPRO_POINT_MIN_RANKS``)."""
    global _point_min_ranks
    if _point_min_ranks is None:
        _point_min_ranks = _positive_int_env(POINT_MIN_RANKS_ENV_VAR, 1)
    return _point_min_ranks


_overlap_model_flag: bool | None = None


def overlap_model_enabled() -> bool:
    """True when ``REPRO_OVERLAP_MODEL`` enables level-max time accounting."""
    global _overlap_model_flag
    if _overlap_model_flag is None:
        _overlap_model_flag = os.environ.get(
            OVERLAP_MODEL_ENV_VAR, "0"
        ).strip().lower() in ("1", "on", "true")
    return _overlap_model_flag


_normalize_flag: bool | None = None


def normalize_enabled() -> bool:
    """True unless ``REPRO_NORMALIZE`` disables algebraic normalisation."""
    global _normalize_flag
    if _normalize_flag is None:
        _normalize_flag = os.environ.get(
            NORMALIZE_ENV_VAR, "1"
        ).strip().lower() not in ("0", "off", "false")
    return _normalize_flag


_dispatch_backend: str | None = None


def dispatch_backend() -> str:
    """The point-dispatch substrate (``REPRO_DISPATCH_BACKEND``).

    ``thread`` (the default) or ``process``; unrecognised values degrade
    to ``thread``.  Memoized like the other flags — call
    :func:`reload_flags` after changing the variable.
    """
    global _dispatch_backend
    if _dispatch_backend is None:
        raw = os.environ.get(DISPATCH_BACKEND_ENV_VAR, "thread").strip().lower()
        _dispatch_backend = raw if raw in DISPATCH_BACKENDS else "thread"
    return _dispatch_backend


_shm_segment_bytes: int | None = None


def shm_segment_bytes() -> int:
    """Shared-memory arena segment size (``REPRO_SHM_SEGMENT_BYTES``)."""
    global _shm_segment_bytes
    if _shm_segment_bytes is None:
        raw = os.environ.get(SHM_SEGMENT_ENV_VAR, "").strip()
        try:
            value = int(raw) if raw else DEFAULT_SHM_SEGMENT_BYTES
        except ValueError:
            value = DEFAULT_SHM_SEGMENT_BYTES
        # Floor of one page: a smaller segment cannot hold anything and
        # SharedMemory rounds up to a page anyway.
        _shm_segment_bytes = max(4096, value)
    return _shm_segment_bytes


_superkernel_flag: bool | None = None


def superkernel_enabled() -> bool:
    """True unless ``REPRO_SUPERKERNEL`` disables super-kernel lowering.

    Memoized like the other flags — call :func:`reload_flags` after
    changing the variable inside a running process.  Lowering is
    additionally skipped (regardless of this flag) for the interpreter
    backend and under ``REPRO_OVERLAP_MODEL=1``; see
    ``repro.runtime.superkernel``.
    """
    global _superkernel_flag
    if _superkernel_flag is None:
        _superkernel_flag = os.environ.get(
            SUPERKERNEL_ENV_VAR, "1"
        ).strip().lower() not in ("0", "off", "false")
    return _superkernel_flag


_resident_plans_flag: bool | None = None


def resident_plans_enabled() -> bool:
    """True unless ``REPRO_RESIDENT_PLANS`` disables plan-resident replay.

    On by default; only consulted by the process dispatch backend (the
    thread backend has no wire protocol to amortise).  Memoized like the
    other flags — call :func:`reload_flags` after changing the variable
    inside a running process.
    """
    global _resident_plans_flag
    if _resident_plans_flag is None:
        _resident_plans_flag = os.environ.get(
            RESIDENT_PLANS_ENV_VAR, "1"
        ).strip().lower() not in ("0", "off", "false")
    return _resident_plans_flag


_opaque_chunks_flag: bool | None = None


def opaque_chunks_enabled() -> bool:
    """True unless ``REPRO_OPAQUE_CHUNKS`` disables chunk-level opaque calls.

    On by default; only takes effect for operators registered with a
    chunk-level implementation.  Memoized like the other flags — call
    :func:`reload_flags` after changing the variable inside a running
    process.
    """
    global _opaque_chunks_flag
    if _opaque_chunks_flag is None:
        _opaque_chunks_flag = os.environ.get(
            OPAQUE_CHUNKS_ENV_VAR, "1"
        ).strip().lower() not in ("0", "off", "false")
    return _opaque_chunks_flag


_telemetry_flag: bool | None = None


def telemetry_enabled() -> bool:
    """True when ``REPRO_TELEMETRY`` enables the span flight recorder.

    Off by default — the instrumentation sites then reduce to one
    module-global read in ``repro.runtime.telemetry``.  Memoized like
    the other flags — call :func:`reload_flags` after changing the
    variable inside a running process.
    """
    global _telemetry_flag
    if _telemetry_flag is None:
        _telemetry_flag = os.environ.get(
            TELEMETRY_ENV_VAR, "0"
        ).strip().lower() in ("1", "on", "true")
    return _telemetry_flag


_telemetry_events: int | None = None


def telemetry_event_capacity() -> int:
    """Telemetry ring-buffer capacity (``REPRO_TELEMETRY_EVENTS``).

    Junk or non-positive values degrade to the default; a floor of 16
    keeps the ring usable for at least a handful of nested spans.
    """
    global _telemetry_events
    if _telemetry_events is None:
        raw = os.environ.get(TELEMETRY_EVENTS_ENV_VAR, "").strip()
        try:
            value = int(raw) if raw else DEFAULT_TELEMETRY_EVENTS
        except ValueError:
            value = DEFAULT_TELEMETRY_EVENTS
        if value <= 0:
            value = DEFAULT_TELEMETRY_EVENTS
        _telemetry_events = max(16, value)
    return _telemetry_events


#: Callbacks invoked by :func:`reload_flags` after the memoized flags are
#: reset.  The worker pools register themselves here so a flag flip
#: (worker counts, dispatch backend) retires a now-stale pool singleton
#: instead of letting the next launch reuse it (``runtime/pool.py`` and
#: ``runtime/procpool.py``).  Registration deduplicates by identity so a
#: re-import cannot double-register.
_RELOAD_CALLBACKS: List[Callable[[], None]] = []


def register_reload_callback(callback: Callable[[], None]) -> None:
    """Run ``callback`` on every :func:`reload_flags` (pool invalidation)."""
    if callback not in _RELOAD_CALLBACKS:
        _RELOAD_CALLBACKS.append(callback)


def reload_flags() -> None:
    """Re-read the memoized environment flags on next access.

    Also notifies the registered reload callbacks (the shared thread
    pool and the process pool) so singletons sized from the old flag
    values are retired rather than reused by the next launch.
    """
    global _hotpath_cache_flag, _trace_flag, _worker_count
    global _overlap_model_flag, _normalize_flag
    global _point_worker_count, _point_min_ranks
    global _dispatch_backend, _shm_segment_bytes, _superkernel_flag
    global _resident_plans_flag, _opaque_chunks_flag
    global _telemetry_flag, _telemetry_events
    _telemetry_flag = None
    _telemetry_events = None
    _superkernel_flag = None
    _resident_plans_flag = None
    _opaque_chunks_flag = None
    _hotpath_cache_flag = None
    _trace_flag = None
    _worker_count = None
    _overlap_model_flag = None
    _normalize_flag = None
    _point_worker_count = None
    _point_min_ranks = None
    _dispatch_backend = None
    _shm_segment_bytes = None
    for callback in _RELOAD_CALLBACKS:
        callback()
