"""Process-level configuration flags for the execution hot path.

Three environment variables tune how the reproduction executes kernels;
all are read lazily so tests and the wall-clock perf harness can flip
them between runs in one process:

``REPRO_KERNEL_BACKEND``
    ``codegen`` (default) executes kernels through NumPy closures
    compiled once per canonical kernel; ``interpreter`` uses the
    tree-walking reference evaluator; ``differential`` runs both on
    every invocation and raises on any bitwise divergence.

``REPRO_HOTPATH_CACHE``
    ``1`` (default) enables the submit→fuse→execute caches: sub-store
    rect memoization, region-field view caching, partition interning,
    per-task canonical signatures and SpMV index-conversion caching.
    ``0`` disables all of them, restoring the seed caching behaviour;
    ``benchmarks/perf_wallclock.py`` uses that as its baseline.  A few
    micro-changes remain unconditional (vectorised reduction folding,
    memoized StoreArgs, lazy hash caching) — the baseline was validated
    within a few percent of a checkout of the actual seed commit.

``REPRO_TRACE``
    ``1`` (default) enables the deferred task stream with iteration-trace
    capture and replay (``repro.runtime.trace``): the Diffuse layer
    buffers each epoch of the task stream (delimited by the scalar reads
    and flushes the applications already perform), hashes its canonical
    form, records the fully-resolved sequence of fused launches on the
    first steady occurrence, and replays that :class:`ExecutionPlan`
    directly through the task executor on every later occurrence —
    bypassing window buffering, dependence analysis, memoization lookups
    and per-task coherence recomputation.  ``0`` restores the eager
    per-task submission path.
"""

from __future__ import annotations

import os

#: Environment variable selecting the kernel execution backend.
BACKEND_ENV_VAR = "REPRO_KERNEL_BACKEND"

#: Recognised backend names.
BACKENDS = ("codegen", "interpreter", "differential")

#: Environment variable gating the hot-path caches.
HOTPATH_CACHE_ENV_VAR = "REPRO_HOTPATH_CACHE"

#: Environment variable gating trace capture and replay.
TRACE_ENV_VAR = "REPRO_TRACE"


def default_backend() -> str:
    """The backend selected by the environment (``codegen`` by default)."""
    backend = os.environ.get(BACKEND_ENV_VAR, "codegen").strip().lower()
    return backend or "codegen"


_hotpath_cache_flag: bool | None = None


def hotpath_cache_enabled() -> bool:
    """True unless ``REPRO_HOTPATH_CACHE`` disables the launch caches.

    The flag is read from the environment once and memoized — it sits on
    per-point-task code paths.  Call :func:`reload_flags` after changing
    the environment variable inside a running process (the perf harness
    and the backend tests do).
    """
    global _hotpath_cache_flag
    if _hotpath_cache_flag is None:
        _hotpath_cache_flag = os.environ.get(
            HOTPATH_CACHE_ENV_VAR, "1"
        ).strip().lower() not in ("0", "off", "false")
    return _hotpath_cache_flag


_trace_flag: bool | None = None


def trace_enabled() -> bool:
    """True unless ``REPRO_TRACE`` disables trace capture and replay.

    Memoized like :func:`hotpath_cache_enabled`; the Diffuse layer
    additionally samples it once per engine, so call
    :func:`reload_flags` *and* build a fresh context after changing the
    environment variable inside a running process.
    """
    global _trace_flag
    if _trace_flag is None:
        _trace_flag = os.environ.get(
            TRACE_ENV_VAR, "1"
        ).strip().lower() not in ("0", "off", "false")
    return _trace_flag


def reload_flags() -> None:
    """Re-read the memoized environment flags on next access."""
    global _hotpath_cache_flag, _trace_flag
    _hotpath_cache_flag = None
    _trace_flag = None
