"""Process-level configuration flags for the execution hot path.

Two environment variables tune how the reproduction executes kernels;
both are read lazily so tests and the wall-clock perf harness can flip
them between runs in one process:

``REPRO_KERNEL_BACKEND``
    ``codegen`` (default) executes kernels through NumPy closures
    compiled once per canonical kernel; ``interpreter`` uses the
    tree-walking reference evaluator; ``differential`` runs both on
    every invocation and raises on any bitwise divergence.

``REPRO_HOTPATH_CACHE``
    ``1`` (default) enables the submit→fuse→execute caches: sub-store
    rect memoization, region-field view caching, partition interning,
    per-task canonical signatures and SpMV index-conversion caching.
    ``0`` disables all of them, restoring the seed caching behaviour;
    ``benchmarks/perf_wallclock.py`` uses that as its baseline.  A few
    micro-changes remain unconditional (vectorised reduction folding,
    memoized StoreArgs, lazy hash caching) — the baseline was validated
    within a few percent of a checkout of the actual seed commit.
"""

from __future__ import annotations

import os

#: Environment variable selecting the kernel execution backend.
BACKEND_ENV_VAR = "REPRO_KERNEL_BACKEND"

#: Recognised backend names.
BACKENDS = ("codegen", "interpreter", "differential")

#: Environment variable gating the hot-path caches.
HOTPATH_CACHE_ENV_VAR = "REPRO_HOTPATH_CACHE"


def default_backend() -> str:
    """The backend selected by the environment (``codegen`` by default)."""
    backend = os.environ.get(BACKEND_ENV_VAR, "codegen").strip().lower()
    return backend or "codegen"


_hotpath_cache_flag: bool | None = None


def hotpath_cache_enabled() -> bool:
    """True unless ``REPRO_HOTPATH_CACHE`` disables the launch caches.

    The flag is read from the environment once and memoized — it sits on
    per-point-task code paths.  Call :func:`reload_flags` after changing
    the environment variable inside a running process (the perf harness
    and the backend tests do).
    """
    global _hotpath_cache_flag
    if _hotpath_cache_flag is None:
        _hotpath_cache_flag = os.environ.get(
            HOTPATH_CACHE_ENV_VAR, "1"
        ).strip().lower() not in ("0", "off", "false")
    return _hotpath_cache_flag


def reload_flags() -> None:
    """Re-read the memoized environment flags on next access."""
    global _hotpath_cache_flag
    _hotpath_cache_flag = None
