"""Baselines the paper compares Diffuse against.

``repro.baselines.petsc`` models the MPI-based PETSc library: explicitly
parallel, with hand-fused vector kernels (``VecAXPY``, ``VecAXPBYPCZ``,
``VecMDot``...).  It executes functionally on NumPy and charges the same
analytic machine model as the Diffuse stack, so the CG/BiCGSTAB
comparisons of paper Figure 11 are apples-to-apples.
"""
