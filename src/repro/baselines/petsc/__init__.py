"""A PETSc-like explicitly-parallel baseline (Vec / Mat / KSP)."""

from repro.baselines.petsc.vec import PetscMachineModel, Vec
from repro.baselines.petsc.mat import AIJMatrix, poisson_2d_aij
from repro.baselines.petsc.ksp import KSP, KSPResult

__all__ = [
    "PetscMachineModel",
    "Vec",
    "AIJMatrix",
    "poisson_2d_aij",
    "KSP",
    "KSPResult",
]
