"""PETSc AIJ (CSR) matrices for the baseline solvers."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.baselines.petsc.vec import PetscMachineModel, Vec


class AIJMatrix:
    """A distributed CSR matrix with 32-bit column indices (MATAIJ).

    PETSc stores coordinates as 32-bit integers (paper footnote 1), which
    is reflected in the modelled memory traffic of MatMult.
    """

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        shape: Tuple[int, int],
        model: PetscMachineModel,
        index_bytes: int = 4,
    ) -> None:
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.data = np.asarray(data, dtype=np.float64)
        self.shape = (int(shape[0]), int(shape[1]))
        self.model = model
        self.index_bytes = index_bytes

    @property
    def nnz(self) -> int:
        """Number of stored non-zeros."""
        return len(self.data)

    def mult(self, x: Vec, y: Vec) -> None:
        """MatMult: y <- A x with a halo gather of x and a streaming SpMV."""
        machine = self.model.machine
        rows_per_rank = -(-self.shape[0] // max(1, machine.num_gpus))
        nnz_per_rank = -(-self.nnz // max(1, machine.num_gpus))
        # Gather of the off-process entries of x needed by the local rows.
        # For the banded Poisson matrices of the evaluation that is one
        # grid row per neighbour per rank.
        if machine.num_gpus > 1:
            halo_bytes = min(len(x.data), 2 * int(np.sqrt(max(1, self.shape[0])))) * 8.0
            self.model.charge_halo_exchange(halo_bytes)
        bytes_moved = nnz_per_rank * (8.0 + self.index_bytes + 8.0) + rows_per_rank * (self.index_bytes + 8.0)
        seconds = max(
            bytes_moved / machine.gpu_memory_bandwidth,
            2.0 * nnz_per_rank / machine.gpu_peak_flops,
        )
        self.model.seconds += machine.kernel_launch_latency + seconds
        # Functional result.
        products = self.data * x.data[self.indices]
        sums = np.add.reduceat(products, self.indptr[:-1]) if len(products) else np.zeros(self.shape[0])
        counts = np.diff(self.indptr)
        y.data = np.where(counts > 0, sums, 0.0)


def poisson_2d_aij(grid_points: int, model: PetscMachineModel) -> AIJMatrix:
    """The 5-point Laplacian as an AIJ matrix (same stencil as the frontends).

    Assembled directly on the host: the baseline must not touch the
    Diffuse runtime, so the band construction is repeated here instead of
    reusing :func:`repro.frontend.sparse.csr.poisson_2d`.
    """
    n = int(grid_points)
    rows = n * n
    grid_i, grid_j = np.divmod(np.arange(rows, dtype=np.int64), n)
    row_blocks, col_blocks, val_blocks = [], [], []

    def add_band(mask: np.ndarray, column_offset: int, value: float) -> None:
        band_rows = np.arange(rows, dtype=np.int64)[mask]
        row_blocks.append(band_rows)
        col_blocks.append(band_rows + column_offset)
        val_blocks.append(np.full(band_rows.shape, value))

    add_band(grid_i > 0, -n, -1.0)
    add_band(grid_j > 0, -1, -1.0)
    add_band(np.ones(rows, dtype=bool), 0, 4.0)
    add_band(grid_j < n - 1, 1, -1.0)
    add_band(grid_i < n - 1, n, -1.0)

    all_rows = np.concatenate(row_blocks)
    all_cols = np.concatenate(col_blocks)
    all_vals = np.concatenate(val_blocks)
    order = np.lexsort((all_cols, all_rows))
    all_rows, all_cols, all_vals = all_rows[order], all_cols[order], all_vals[order]
    indptr = np.zeros(rows + 1, dtype=np.int64)
    np.add.at(indptr, all_rows + 1, 1)
    indptr = np.cumsum(indptr)
    return AIJMatrix(indptr, all_cols, all_vals, (rows, rows), model)
