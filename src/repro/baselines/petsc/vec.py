"""PETSc-style distributed vectors with hand-fused kernels.

PETSc applications are explicitly parallel: every rank owns a block of
each vector and collective operations (dots, norms) pay an MPI
all-reduce.  PETSc also ships hand-fused vector kernels — ``VecAXPY``,
``VecAYPX``, ``VecAXPBYPCZ``, ``VecMAXPY``, fused dot products — which are
exactly the operations its CG and BiCGSTAB implementations are written in
(the paper cites ``VecAXPBYPCZ`` as an example of how esoteric these
become).

The baseline executes functionally on NumPy and charges the same roofline
and alpha-beta machine model used by the Diffuse stack, accumulated on a
per-instance clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.runtime.machine import MachineConfig


@dataclass
class PetscMachineModel:
    """Accumulates the modelled execution time of PETSc operations."""

    machine: MachineConfig
    seconds: float = 0.0
    #: Fixed per-operation host overhead (argument checking, launch).
    call_overhead: float = 5e-6

    def charge_streaming(self, arrays: int, elements_per_rank: int, flops_per_element: float = 1.0) -> None:
        """Charge one pass over ``arrays`` vectors of the local block size."""
        bytes_moved = arrays * elements_per_rank * 8.0
        seconds = max(
            bytes_moved / self.machine.gpu_memory_bandwidth,
            flops_per_element * elements_per_rank / self.machine.gpu_peak_flops,
        )
        self.seconds += self.call_overhead + self.machine.kernel_launch_latency + seconds

    def charge_allreduce(self, values: int = 1) -> None:
        """Charge an MPI all-reduce of a few scalars."""
        self.seconds += self.machine.allreduce_time(values * 8.0)

    def charge_halo_exchange(self, bytes_per_rank: float) -> None:
        """Charge a neighbour halo exchange (SpMV gather)."""
        self.seconds += self.machine.point_to_point_time(bytes_per_rank)


class Vec:
    """A distributed PETSc vector (functionally a NumPy array)."""

    def __init__(self, data: np.ndarray, model: PetscMachineModel) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.model = model

    # ------------------------------------------------------------------
    # Creation helpers.
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, size: int, model: PetscMachineModel, value: float = 0.0) -> "Vec":
        """A vector of the given global size filled with ``value``."""
        return cls(np.full(size, value), model)

    def duplicate(self) -> "Vec":
        """An uninitialised vector with the same layout (VecDuplicate)."""
        return Vec(np.zeros_like(self.data), self.model)

    def copy(self) -> "Vec":
        """A copy of the vector (VecCopy)."""
        self.model.charge_streaming(2, self._local_elements())
        return Vec(self.data.copy(), self.model)

    def _local_elements(self) -> int:
        return -(-len(self.data) // max(1, self.model.machine.num_gpus))

    # ------------------------------------------------------------------
    # Hand-fused vector kernels (each is a single pass over memory).
    # ------------------------------------------------------------------
    def set(self, value: float) -> None:
        """VecSet: fill with a constant."""
        self.data.fill(value)
        self.model.charge_streaming(1, self._local_elements())

    def scale(self, alpha: float) -> None:
        """VecScale: x <- alpha x."""
        self.data *= alpha
        self.model.charge_streaming(2, self._local_elements())

    def axpy(self, alpha: float, x: "Vec") -> None:
        """VecAXPY: y <- alpha x + y."""
        self.data += alpha * x.data
        self.model.charge_streaming(3, self._local_elements(), flops_per_element=2)

    def aypx(self, alpha: float, x: "Vec") -> None:
        """VecAYPX: y <- x + alpha y."""
        self.data = x.data + alpha * self.data
        self.model.charge_streaming(3, self._local_elements(), flops_per_element=2)

    def waxpy(self, alpha: float, x: "Vec", y: "Vec") -> None:
        """VecWAXPY: w <- alpha x + y."""
        self.data = alpha * x.data + y.data
        self.model.charge_streaming(3, self._local_elements(), flops_per_element=2)

    def axpbypcz(self, alpha: float, beta: float, gamma: float, x: "Vec", y: "Vec") -> None:
        """VecAXPBYPCZ: z <- alpha x + beta y + gamma z (a single fused pass)."""
        self.data = alpha * x.data + beta * y.data + gamma * self.data
        self.model.charge_streaming(4, self._local_elements(), flops_per_element=5)

    def dot(self, other: "Vec") -> float:
        """VecDot: a local dot product plus an MPI all-reduce."""
        self.model.charge_streaming(2, self._local_elements(), flops_per_element=2)
        self.model.charge_allreduce(1)
        return float(self.data @ other.data)

    def mdot(self, others: "Vec", *more: "Vec") -> list:
        """VecMDot: several dot products sharing one pass and one all-reduce."""
        vectors = [others, *more]
        self.model.charge_streaming(1 + len(vectors), self._local_elements(), flops_per_element=2 * len(vectors))
        self.model.charge_allreduce(len(vectors))
        return [float(self.data @ v.data) for v in vectors]

    def norm(self) -> float:
        """VecNorm: the 2-norm."""
        self.model.charge_streaming(1, self._local_elements(), flops_per_element=2)
        self.model.charge_allreduce(1)
        return float(np.linalg.norm(self.data))

    def to_numpy(self) -> np.ndarray:
        """A host copy of the vector's contents."""
        return self.data.copy()
