"""PETSc KSP solvers: CG and BiCGSTAB written with hand-fused kernels.

These follow the structure of PETSc's ``KSPCG`` and ``KSPBCGS``
implementations: every vector update uses a fused kernel (``VecAXPY``,
``VecAYPX``, ``VecAXPBYPCZ``) and the dot products pay an MPI all-reduce,
so the baseline represents the "explicitly parallel, hand-optimised"
column of paper Figure 11.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.petsc.mat import AIJMatrix
from repro.baselines.petsc.vec import PetscMachineModel, Vec


@dataclass
class KSPResult:
    """Result of a KSP solve."""

    solution: Vec
    iterations: int
    residual_norm: float
    seconds: float


class KSP:
    """Krylov solver driver over the PETSc-like Vec/Mat objects."""

    def __init__(self, matrix: AIJMatrix, model: PetscMachineModel) -> None:
        self.matrix = matrix
        self.model = model

    # ------------------------------------------------------------------
    # Conjugate gradient (KSPCG).
    # ------------------------------------------------------------------
    def cg(self, rhs: Vec, x0: Vec, iterations: int) -> KSPResult:
        """Unpreconditioned CG with fused vector kernels."""
        start = self.model.seconds
        x = x0.copy()
        r = rhs.duplicate()
        self.matrix.mult(x, r)
        r.aypx(-1.0, rhs)  # r = b - A x
        p = r.copy()
        ap = rhs.duplicate()
        rs_old = r.dot(r)
        performed = 0
        for iteration in range(iterations):
            if abs(rs_old) < _BREAKDOWN:
                break
            self.matrix.mult(p, ap)
            alpha = rs_old / _nonzero(p.dot(ap))
            x.axpy(alpha, p)
            r.axpy(-alpha, ap)
            rs_new = r.dot(r)
            beta = rs_new / _nonzero(rs_old)
            p.aypx(beta, r)  # p = r + beta p
            rs_old = rs_new
            performed = iteration + 1
        return KSPResult(
            solution=x,
            iterations=performed,
            residual_norm=float(np.sqrt(max(rs_old, 0.0))),
            seconds=self.model.seconds - start,
        )

    # ------------------------------------------------------------------
    # BiCGSTAB (KSPBCGS).
    # ------------------------------------------------------------------
    def bicgstab(self, rhs: Vec, x0: Vec, iterations: int) -> KSPResult:
        """Unpreconditioned BiCGSTAB with fused vector kernels."""
        start = self.model.seconds
        x = x0.copy()
        r = rhs.duplicate()
        self.matrix.mult(x, r)
        r.aypx(-1.0, rhs)  # r = b - A x
        r_hat = r.copy()
        p = r.copy()
        v = rhs.duplicate()
        s = rhs.duplicate()
        t = rhs.duplicate()
        rho = r_hat.dot(r)
        residual = rho
        performed = 0
        for iteration in range(iterations):
            if abs(rho) < _BREAKDOWN or abs(residual) < _BREAKDOWN:
                break
            self.matrix.mult(p, v)
            alpha = rho / _nonzero(r_hat.dot(v))
            s.waxpy(-alpha, v, r)  # s = r - alpha v
            self.matrix.mult(s, t)
            ts, tt = t.mdot(s, t)
            omega = ts / _nonzero(tt)
            # x = x + alpha p + omega s  (one fused VecAXPBYPCZ-style pass)
            x.axpbypcz(alpha, omega, 1.0, p, s)
            r.waxpy(-omega, t, s)  # r = s - omega t
            rho_new = r_hat.dot(r)
            beta = (rho_new / _nonzero(rho)) * (alpha / _nonzero(omega))
            # p = r + beta (p - omega v)  (fused as p = beta p - beta*omega v + r)
            p.axpbypcz(1.0, -beta * omega, beta, r, v)
            rho = rho_new
            residual = r.dot(r)
            performed = iteration + 1
        return KSPResult(
            solution=x,
            iterations=performed,
            residual_norm=float(np.sqrt(max(residual, 0.0))),
            seconds=self.model.seconds - start,
        )


#: Residuals below this threshold indicate the solver has converged to
#: machine precision; iterating further only risks numerical breakdown.
_BREAKDOWN = 1e-28


def _nonzero(value: float) -> float:
    """Guard a denominator against exact zero while preserving its sign."""
    if value == 0.0:
        return 1e-300
    return value
