"""Reproduction of Diffuse (ASPLOS 2025).

Diffuse is a middle layer between high-level distributed libraries
(cuPyNumeric, Legate Sparse) and a task-based runtime (Legion).  It fuses
distributed index tasks using a scale-free intermediate representation and
then fuses the kernels inside fused tasks with a JIT compiler.

The top-level package exposes the major subsystems:

``repro.ir``
    The scale-free intermediate representation (stores, partitions,
    privileges, index tasks).
``repro.fusion``
    The distributed task fusion engine (constraints, fusible-prefix
    algorithm, temporary elimination, memoization).
``repro.kernel``
    The kernel IR and JIT compilation pipeline (loop fusion, temporary
    allocation elimination, lowering, cost model).
``repro.runtime``
    The Legion-like runtime substrate (machine model, regions, coherence,
    functional execution, profiling).
``repro.frontend``
    cuPyNumeric-like and Legate-Sparse-like user-facing libraries.
``repro.baselines``
    The PETSc-like hand-fused MPI baseline.
``repro.apps``
    The applications used in the paper's evaluation.
``repro.experiments``
    Weak-scaling and warm-up experiment harnesses for every table/figure.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
