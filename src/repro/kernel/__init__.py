"""Kernel IR and JIT compilation pipeline (paper Section 6).

The paper uses MLIR (affine/memref/arith dialects) as the substrate for
fusing and optimising the kernels inside fused tasks.  This package
provides a purpose-built loop-level kernel IR ("KIR") at the same level of
abstraction, together with the passes the paper relies on:

* composition of task bodies in program order,
* demotion of distributed temporaries to task-local allocations,
* loop fusion,
* elimination (scalarisation) of task-local temporaries,
* common-subexpression and dead-code elimination,
* parallelisation of the fused loops.

Lowering produces two artefacts: a vectorised NumPy executor used for
functional execution, and a roofline cost descriptor used by the runtime's
machine performance model.
"""

from repro.kernel.kir import (
    Alloc,
    Assign,
    BinOp,
    Const,
    Function,
    Load,
    LocalRef,
    Loop,
    Param,
    Reduce,
    ScalarRef,
    UnOp,
)
from repro.kernel.builder import KernelBuilder
from repro.kernel.compiler import CompiledKernel, JITCompiler
from repro.kernel.cost import KernelCost
from repro.kernel.generators import (
    GeneratorRegistry,
    default_registry,
    has_generator,
    register_generator,
)

__all__ = [
    "Alloc",
    "Assign",
    "BinOp",
    "Const",
    "Function",
    "Load",
    "LocalRef",
    "Loop",
    "Param",
    "Reduce",
    "ScalarRef",
    "UnOp",
    "KernelBuilder",
    "CompiledKernel",
    "JITCompiler",
    "KernelCost",
    "GeneratorRegistry",
    "default_registry",
    "register_generator",
    "has_generator",
]
