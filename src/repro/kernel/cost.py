"""Roofline cost model for KIR kernels.

The paper's speedups come from two effects of kernel fusion: fewer kernel
launches, and fewer passes over memory (temporaries held in registers
instead of round-tripping through DRAM).  Both are captured by a simple
roofline model over the optimised KIR:

* every loop is one kernel launch and pays a fixed launch latency,
* every loop moves ``(#distinct buffers touched) x elements x itemsize``
  bytes through memory,
* every loop performs ``flops-per-element x elements`` arithmetic,
* the loop's execution time is the maximum of the bandwidth time and the
  compute time (memory-bound kernels — all of the paper's benchmarks —
  sit on the bandwidth roof).

The cost descriptor is built once at compile time; evaluating it per point
task only needs the element count of each loop, which the runtime executor
knows from the sub-store sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Protocol, Sequence, Tuple

from repro.kernel.kir import Alloc, Assign, Function, Loop, Reduce, count_flops


class MachineLike(Protocol):
    """The subset of the machine model needed by the cost model."""

    gpu_memory_bandwidth: float  # bytes / second
    gpu_peak_flops: float  # flops / second
    kernel_launch_latency: float  # seconds
    reduction_latency: float  # seconds


@dataclass(frozen=True)
class LoopCost:
    """Static cost descriptor of one loop (one kernel launch)."""

    index_buffer: str
    buffers_touched: Tuple[str, ...]
    flops_per_element: int
    has_reduction: bool

    def bytes_moved(self, elements: int, itemsize: int = 8) -> int:
        """Bytes of memory traffic for ``elements`` loop iterations."""
        return len(self.buffers_touched) * elements * itemsize

    def flops(self, elements: int) -> int:
        """Arithmetic operations for ``elements`` loop iterations."""
        return self.flops_per_element * elements


@dataclass(frozen=True)
class KernelCost:
    """Static cost descriptor of a whole kernel."""

    loops: Tuple[LoopCost, ...]
    alloc_like: Tuple[Tuple[str, str], ...] = ()

    @property
    def launches(self) -> int:
        """Number of kernel launches the kernel performs."""
        return len(self.loops)

    def estimate_seconds(
        self,
        element_counts: Dict[str, int],
        machine: MachineLike,
        itemsize: int = 8,
    ) -> float:
        """Execution time of the kernel on one processor.

        ``element_counts`` maps buffer names to the per-point element count
        of the sub-store bound to that buffer.  Allocated temporaries
        inherit the count of their reference buffer.
        """
        counts = dict(element_counts)
        for name, like in self.alloc_like:
            counts.setdefault(name, counts.get(like, 0))
        total = 0.0
        for loop in self.loops:
            elements = counts.get(loop.index_buffer, 0)
            bandwidth_time = loop.bytes_moved(elements, itemsize) / machine.gpu_memory_bandwidth
            compute_time = loop.flops(elements) / machine.gpu_peak_flops
            total += machine.kernel_launch_latency + max(bandwidth_time, compute_time)
            if loop.has_reduction:
                total += machine.reduction_latency
        return total

    def total_bytes(self, element_counts: Dict[str, int], itemsize: int = 8) -> int:
        """Total memory traffic across all loops (for reporting / tests)."""
        counts = dict(element_counts)
        for name, like in self.alloc_like:
            counts.setdefault(name, counts.get(like, 0))
        return sum(
            loop.bytes_moved(counts.get(loop.index_buffer, 0), itemsize) for loop in self.loops
        )


def analyze_kernel(function: Function) -> KernelCost:
    """Build the static cost descriptor of a KIR kernel."""
    loops = []
    for stmt in function.body:
        if not isinstance(stmt, Loop):
            continue
        touched = set()
        flops = 0
        has_reduction = False
        for loop_stmt in stmt.body:
            if isinstance(loop_stmt, Assign):
                flops += count_flops(loop_stmt.expr)
                touched |= loop_stmt.expr.buffers_read()
                if not loop_stmt.is_local:
                    touched.add(loop_stmt.target)
            elif isinstance(loop_stmt, Reduce):
                flops += count_flops(loop_stmt.expr) + 1
                touched |= loop_stmt.expr.buffers_read()
                has_reduction = True
        loops.append(
            LoopCost(
                index_buffer=stmt.index_buffer,
                buffers_touched=tuple(sorted(touched)),
                flops_per_element=flops,
                has_reduction=has_reduction,
            )
        )
    alloc_like = tuple(
        (stmt.name, stmt.like) for stmt in function.body if isinstance(stmt, Alloc)
    )
    return KernelCost(loops=tuple(loops), alloc_like=alloc_like)
