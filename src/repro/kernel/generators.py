"""Task kernel generator functions (paper Section 6.2).

Library developers register, per task type, a *generator function* that
returns the KIR body of the task.  Diffuse invokes the generators of every
task in a fused prefix and composes their bodies in program order.

Conventions
-----------
Generators receive the :class:`~repro.ir.task.IndexTask` and must return a
:class:`~repro.kernel.kir.Function` whose

* buffer parameters are named ``a0, a1, ...`` matching the position of the
  task's store arguments, and
* scalar parameters are named ``s0, s1, ...`` matching the position of the
  task's scalar arguments.

The composition pass renames these positional parameters to per-view names
so that two tasks touching the same ``(store, partition)`` view share a
buffer in the fused kernel.

Tasks without a registered generator (e.g. the CSR SpMV of Legate Sparse)
are *opaque*: they cannot join a fused prefix and execute through their
library-provided implementation instead.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.ir.task import IndexTask
from repro.kernel.builder import KernelBuilder
from repro.kernel.kir import BinOpKind, Function, ReduceKind, UnOpKind

GeneratorFn = Callable[[IndexTask], Function]


class GeneratorRegistry:
    """Registry mapping task names to kernel generator functions."""

    def __init__(self) -> None:
        self._generators: Dict[str, GeneratorFn] = {}

    def register(self, task_name: str, generator: GeneratorFn) -> None:
        """Register (or replace) the generator for a task type."""
        self._generators[task_name] = generator

    def unregister(self, task_name: str) -> None:
        """Remove a generator (used by ablation benchmarks)."""
        self._generators.pop(task_name, None)

    def has(self, task_name: str) -> bool:
        """True when the task type has a registered generator."""
        return task_name in self._generators

    def generate(self, task: IndexTask) -> Optional[Function]:
        """Produce the KIR body of ``task``, or None for opaque tasks."""
        generator = self._generators.get(task.task_name)
        if generator is None:
            return None
        return generator(task)

    def registered_names(self):
        """All task names with generators (for documentation/tests)."""
        return sorted(self._generators)

    def copy(self) -> "GeneratorRegistry":
        """A shallow copy, letting benchmarks customise registration."""
        clone = GeneratorRegistry()
        clone._generators = dict(self._generators)
        return clone


_DEFAULT = GeneratorRegistry()


def default_registry() -> GeneratorRegistry:
    """The process-wide registry used unless a custom one is supplied."""
    return _DEFAULT


def register_generator(task_name: str, registry: Optional[GeneratorRegistry] = None):
    """Decorator registering a generator function for ``task_name``."""

    def decorate(function: GeneratorFn) -> GeneratorFn:
        (registry or _DEFAULT).register(task_name, function)
        return function

    return decorate


def has_generator(task_name: str, registry: Optional[GeneratorRegistry] = None) -> bool:
    """True when a generator exists for the task type."""
    return (registry or _DEFAULT).has(task_name)


# ----------------------------------------------------------------------
# Element-wise binary operators: out = a op b  (args: a0, a1 -> a2)
# ----------------------------------------------------------------------
def _binary(op_name: str, op: BinOpKind) -> None:
    @register_generator(op_name)
    def generate(task: IndexTask, _op=op, _name=op_name) -> Function:
        b = KernelBuilder(_name)
        b.buffers("a0", "a1", "a2")
        b.loop("a2").assign("a2", KernelBuilder.compare(_op, "a0", "a1")).end_loop()
        return b.build()


for _name, _op in [
    ("add", BinOpKind.ADD),
    ("subtract", BinOpKind.SUB),
    ("multiply", BinOpKind.MUL),
    ("divide", BinOpKind.DIV),
    ("power", BinOpKind.POW),
    ("maximum", BinOpKind.MAX),
    ("minimum", BinOpKind.MIN),
    ("greater", BinOpKind.GT),
    ("greater_equal", BinOpKind.GE),
    ("less", BinOpKind.LT),
    ("less_equal", BinOpKind.LE),
    ("equal", BinOpKind.EQ),
]:
    _binary(_name, _op)


# ----------------------------------------------------------------------
# Element-wise binary operators with a scalar operand.
#   <op>_scalar:  out = a op s     (args: a0 -> a1, scalars: s0)
#   r<op>_scalar: out = s op a     (reversed operand order)
# ----------------------------------------------------------------------
def _binary_scalar(op_name: str, op: BinOpKind, reverse: bool) -> None:
    @register_generator(op_name)
    def generate(task: IndexTask, _op=op, _rev=reverse, _name=op_name) -> Function:
        b = KernelBuilder(_name)
        b.buffers("a0", "a1")
        scalar = b.scalar("s0")
        lhs, rhs = (scalar, "a0") if _rev else ("a0", scalar)
        b.loop("a1").assign("a1", KernelBuilder.compare(_op, lhs, rhs)).end_loop()
        return b.build()


for _name, _op, _rev in [
    ("add_scalar", BinOpKind.ADD, False),
    ("subtract_scalar", BinOpKind.SUB, False),
    ("rsubtract_scalar", BinOpKind.SUB, True),
    ("multiply_scalar", BinOpKind.MUL, False),
    ("divide_scalar", BinOpKind.DIV, False),
    ("rdivide_scalar", BinOpKind.DIV, True),
    ("power_scalar", BinOpKind.POW, False),
    ("maximum_scalar", BinOpKind.MAX, False),
    ("minimum_scalar", BinOpKind.MIN, False),
    ("greater_scalar", BinOpKind.GT, False),
    ("less_scalar", BinOpKind.LT, False),
]:
    _binary_scalar(_name, _op, _rev)


# ----------------------------------------------------------------------
# Element-wise unary operators: out = op(a)  (args: a0 -> a1)
# ----------------------------------------------------------------------
def _unary(op_name: str, op: UnOpKind) -> None:
    @register_generator(op_name)
    def generate(task: IndexTask, _op=op, _name=op_name) -> Function:
        b = KernelBuilder(_name)
        b.buffers("a0", "a1")
        b.loop("a1").assign("a1", KernelBuilder.unary(_op, "a0")).end_loop()
        return b.build()


for _name, _op in [
    ("negative", UnOpKind.NEG),
    ("sqrt", UnOpKind.SQRT),
    ("exp", UnOpKind.EXP),
    ("log", UnOpKind.LOG),
    ("absolute", UnOpKind.ABS),
    ("erf", UnOpKind.ERF),
    ("sin", UnOpKind.SIN),
    ("cos", UnOpKind.COS),
    ("tanh", UnOpKind.TANH),
    ("reciprocal", UnOpKind.RECIP),
]:
    _unary(_name, _op)


@register_generator("copy")
def _copy(task: IndexTask) -> Function:
    """COPY(a, b): b[i] = a[i] (paper Figure 1e)."""
    b = KernelBuilder("copy")
    b.buffers("a0", "a1")
    b.loop("a1").assign("a1", "a0").end_loop()
    return b.build()


@register_generator("fill")
def _fill(task: IndexTask) -> Function:
    """fill(out, s): out[i] = s."""
    b = KernelBuilder("fill")
    b.buffers("a0")
    s = b.scalar("s0")
    b.loop("a0").assign("a0", s).end_loop()
    return b.build()


@register_generator("where")
def _where(task: IndexTask) -> Function:
    """where(cond, x, y) -> out: out[i] = cond[i] ? x[i] : y[i]."""
    b = KernelBuilder("where")
    b.buffers("a0", "a1", "a2", "a3")
    b.loop("a3").assign("a3", KernelBuilder.select("a0", "a1", "a2")).end_loop()
    return b.build()


@register_generator("axpy")
def _axpy(task: IndexTask) -> Function:
    """axpy(x, y -> out; alpha): out[i] = alpha * x[i] + y[i].

    Emitted by the hand-optimized ("manually fused") application variants;
    the naturally-written variants express the same computation as separate
    multiply and add tasks and rely on Diffuse to fuse them.
    """
    b = KernelBuilder("axpy")
    b.buffers("a0", "a1", "a2")
    alpha = b.scalar("s0")
    b.loop("a2").assign(
        "a2", KernelBuilder.add(KernelBuilder.mul(alpha, "a0"), "a1")
    ).end_loop()
    return b.build()


@register_generator("aypx")
def _aypx(task: IndexTask) -> Function:
    """aypx(x, y -> out; alpha): out[i] = x[i] + alpha * y[i]."""
    b = KernelBuilder("aypx")
    b.buffers("a0", "a1", "a2")
    alpha = b.scalar("s0")
    b.loop("a2").assign(
        "a2", KernelBuilder.add("a0", KernelBuilder.mul(alpha, "a1"))
    ).end_loop()
    return b.build()


# ----------------------------------------------------------------------
# Reductions: scalar futures produced with the Reduce privilege.
# ----------------------------------------------------------------------
@register_generator("dot")
def _dot(task: IndexTask) -> Function:
    """dot(x, y -> s): s += sum_i x[i] * y[i]."""
    b = KernelBuilder("dot")
    b.buffers("a0", "a1", "a2")
    b.loop("a0").reduce("a2", KernelBuilder.mul("a0", "a1"), ReduceKind.SUM).end_loop()
    return b.build()


@register_generator("sum_reduce")
def _sum_reduce(task: IndexTask) -> Function:
    """sum(x -> s): s += sum_i x[i]."""
    b = KernelBuilder("sum_reduce")
    b.buffers("a0", "a1")
    b.loop("a0").reduce("a1", "a0", ReduceKind.SUM).end_loop()
    return b.build()


@register_generator("max_reduce")
def _max_reduce(task: IndexTask) -> Function:
    """max(x -> s)."""
    b = KernelBuilder("max_reduce")
    b.buffers("a0", "a1")
    b.loop("a0").reduce("a1", "a0", ReduceKind.MAX).end_loop()
    return b.build()


@register_generator("min_reduce")
def _min_reduce(task: IndexTask) -> Function:
    """min(x -> s)."""
    b = KernelBuilder("min_reduce")
    b.buffers("a0", "a1")
    b.loop("a0").reduce("a1", "a0", ReduceKind.MIN).end_loop()
    return b.build()


@register_generator("sum_squares")
def _sum_squares(task: IndexTask) -> Function:
    """sum of squares (x -> s): s += sum_i x[i]^2 (used by norms)."""
    b = KernelBuilder("sum_squares")
    b.buffers("a0", "a1")
    b.loop("a0").reduce("a1", KernelBuilder.mul("a0", "a0"), ReduceKind.SUM).end_loop()
    return b.build()
