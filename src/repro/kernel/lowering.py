"""Lowering of KIR kernels to an executable form.

The paper lowers fused MLIR kernels to GPU launches or OpenMP regions.
Here lowering produces a :class:`KernelExecutor`: a callable that executes
the kernel over NumPy buffers with vectorised statement-at-a-time
semantics.  Because every KIR loop is element-wise (all accesses at the
current loop index), executing each statement over the full index space in
program order is observationally equivalent to the fused loop, so the
executor is a faithful functional model of the generated device code.

Two execution backends implement that contract:

``codegen`` (the default)
    :class:`~repro.kernel.codegen.CodegenExecutor` — the kernel is
    translated to Python/NumPy source, compiled once with the builtin
    ``compile``, and every subsequent invocation (in particular every
    memoized replay round) runs the pre-compiled closure with zero
    per-statement interpretation.

``interpreter``
    :class:`InterpreterExecutor` — the original tree-walking evaluator,
    kept as the executable specification of kernel semantics.

``differential``
    :class:`DifferentialExecutor` — runs *both* backends on every kernel
    invocation and raises :class:`BackendDivergenceError` unless all
    written buffers and reduction partials agree bit-for-bit.  Enabled
    with ``REPRO_KERNEL_BACKEND=differential``; the test suite and
    ``make bench`` use it to certify the codegen backend.

Reductions produce *partial* results per point task; the runtime folds
the partials of all point tasks into the target scalar store using the
argument's reduction operator, mirroring how Legion applies reduction
instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.config import BACKEND_ENV_VAR, BACKENDS, default_backend
from repro.kernel.kir import (
    Alloc,
    Assign,
    Function,
    Loop,
    Reduce,
    ReduceKind,
    combine_reduction,
    evaluate_expr,
    reduce_array,
)
from repro.kernel.passes.compose import KernelBinding

@dataclass
class ReductionPartial:
    """A partial reduction value produced by one point task."""

    kind: ReduceKind
    value: float


class BackendDivergenceError(RuntimeError):
    """Raised when the codegen and interpreter backends disagree."""


class KernelExecutor:
    """Base class of kernel executors.

    ``buffers`` maps kernel buffer-parameter names to the NumPy views of
    the point task's sub-stores; pure reduction targets — which are never
    loaded — are passed as ``None``.  ``scalars`` maps scalar parameter
    names to immediate values.  Executors mutate written buffers in place
    and return the reduction partials keyed by target buffer name.
    """

    backend = "abstract"

    def __init__(self, function: Function, binding: KernelBinding) -> None:
        self.function = function
        self.binding = binding

    def __call__(
        self,
        buffers: Dict[str, Optional[np.ndarray]],
        scalars: Dict[str, float],
    ) -> Dict[str, ReductionPartial]:
        raise NotImplementedError


class InterpreterExecutor(KernelExecutor):
    """Tree-walking reference executor (the semantics specification)."""

    backend = "interpreter"

    def __call__(
        self,
        buffers: Dict[str, Optional[np.ndarray]],
        scalars: Dict[str, float],
    ) -> Dict[str, ReductionPartial]:
        local_buffers: Dict[str, Optional[np.ndarray]] = dict(buffers)
        partials: Dict[str, ReductionPartial] = {}

        for stmt in self.function.body:
            if isinstance(stmt, Alloc):
                reference = local_buffers.get(stmt.like)
                if reference is None:
                    # ``stmt.like`` is missing entirely or was handed to the
                    # executor as None (a pure reduction target, which has
                    # no materialised backing to size the allocation from).
                    raise RuntimeError(
                        f"allocation '{stmt.name}' has no reference buffer "
                        f"'{stmt.like}'"
                    )
                local_buffers[stmt.name] = np.zeros_like(reference)
            elif isinstance(stmt, Loop):
                self._execute_loop(stmt, local_buffers, scalars, partials)
        return partials

    def _execute_loop(
        self,
        loop: Loop,
        buffers: Dict[str, Optional[np.ndarray]],
        scalars: Dict[str, float],
        partials: Dict[str, ReductionPartial],
    ) -> None:
        locals_: Dict[str, np.ndarray] = {}
        index_buffer = buffers.get(loop.index_buffer)
        for stmt in loop.body:
            if isinstance(stmt, Assign):
                value = evaluate_expr(stmt.expr, buffers, scalars, locals_)
                if stmt.is_local:
                    locals_[stmt.target] = value
                else:
                    target = buffers.get(stmt.target)
                    if target is None:
                        raise RuntimeError(
                            f"buffer '{stmt.target}' is not materialised"
                        )
                    target[...] = value
            elif isinstance(stmt, Reduce):
                value = evaluate_expr(stmt.expr, buffers, scalars, locals_)
                value = np.asarray(value)
                if value.ndim == 0 and index_buffer is not None:
                    # Broadcast loop-invariant expressions over the index
                    # space so e.g. summing a constant counts elements.
                    value = np.broadcast_to(value, index_buffer.shape)
                partial = reduce_array(stmt.kind, value)
                existing = partials.get(stmt.target)
                if existing is None:
                    partials[stmt.target] = ReductionPartial(kind=stmt.kind, value=partial)
                else:
                    partials[stmt.target] = ReductionPartial(
                        kind=stmt.kind,
                        value=combine_reduction(stmt.kind, existing.value, partial),
                    )


class DifferentialExecutor(KernelExecutor):
    """Runs interpreter and codegen side by side, asserting bit-equality.

    The interpreter runs on private copies of the buffers so both backends
    observe identical inputs; the codegen backend runs on the real buffers
    so its results are the ones the runtime keeps.
    """

    backend = "differential"

    def __init__(self, function: Function, binding: KernelBinding) -> None:
        super().__init__(function, binding)
        from repro.kernel.codegen import CodegenExecutor

        self.interpreter = InterpreterExecutor(function, binding)
        self.codegen = CodegenExecutor(function, binding)

    def __call__(
        self,
        buffers: Dict[str, Optional[np.ndarray]],
        scalars: Dict[str, float],
    ) -> Dict[str, ReductionPartial]:
        shadow = {
            name: None if array is None else array.copy()
            for name, array in buffers.items()
        }
        expected = self.interpreter(shadow, scalars)
        actual = self.codegen(buffers, scalars)
        self._compare(buffers, shadow, expected, actual)
        return actual

    def _compare(
        self,
        buffers: Dict[str, Optional[np.ndarray]],
        shadow: Dict[str, Optional[np.ndarray]],
        expected: Dict[str, ReductionPartial],
        actual: Dict[str, ReductionPartial],
    ) -> None:
        name = self.function.name
        for buffer, array in buffers.items():
            reference = shadow[buffer]
            if array is None or reference is None:
                continue
            if not np.array_equal(array, reference, equal_nan=True):
                raise BackendDivergenceError(
                    f"kernel '{name}': codegen and interpreter disagree on "
                    f"buffer '{buffer}'"
                )
        if set(expected) != set(actual):
            raise BackendDivergenceError(
                f"kernel '{name}': reduction targets differ "
                f"({sorted(expected)} vs {sorted(actual)})"
            )
        for target, partial in expected.items():
            other = actual[target]
            if partial.kind is not other.kind or not _floats_equal(
                partial.value, other.value
            ):
                raise BackendDivergenceError(
                    f"kernel '{name}': reduction partial '{target}' diverged "
                    f"({partial} vs {other})"
                )


def _floats_equal(a: float, b: float) -> bool:
    return a == b or (np.isnan(a) and np.isnan(b))


def lower(
    function: Function,
    binding: KernelBinding,
    backend: Optional[str] = None,
) -> KernelExecutor:
    """Lower a KIR function to an executor using the selected backend."""
    backend = (backend or default_backend()).strip().lower()
    if backend == "codegen":
        from repro.kernel.codegen import CodegenExecutor

        return CodegenExecutor(function=function, binding=binding)
    if backend == "interpreter":
        return InterpreterExecutor(function=function, binding=binding)
    if backend == "differential":
        return DifferentialExecutor(function=function, binding=binding)
    raise ValueError(
        f"unknown kernel backend '{backend}' (expected one of {BACKENDS}); "
        f"check the {BACKEND_ENV_VAR} environment variable"
    )
