"""Lowering of KIR kernels to an executable form.

The paper lowers fused MLIR kernels to GPU launches or OpenMP regions.
Here lowering produces a :class:`KernelExecutor`: a callable that executes
the kernel over NumPy buffers with vectorised statement-at-a-time
semantics.  Because every KIR loop is element-wise (all accesses at the
current loop index), executing each statement over the full index space in
program order is observationally equivalent to the fused loop, so the
executor is a faithful functional model of the generated device code.

Reductions produce *partial* results per point task; the runtime folds
the partials of all point tasks into the target scalar store using the
argument's reduction operator, mirroring how Legion applies reduction
instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.kernel.kir import (
    Alloc,
    Assign,
    Function,
    Loop,
    Reduce,
    ReduceKind,
    evaluate_expr,
    reduce_array,
)
from repro.kernel.passes.compose import KernelBinding


@dataclass
class ReductionPartial:
    """A partial reduction value produced by one point task."""

    kind: ReduceKind
    value: float


class KernelExecutor:
    """Executes a lowered kernel over NumPy sub-store buffers."""

    def __init__(self, function: Function, binding: KernelBinding) -> None:
        self.function = function
        self.binding = binding

    def __call__(
        self,
        buffers: Dict[str, Optional[np.ndarray]],
        scalars: Dict[str, float],
    ) -> Dict[str, ReductionPartial]:
        """Run the kernel.

        ``buffers`` maps kernel buffer-parameter names to the NumPy views
        of the point task's sub-stores (``None`` for pure reduction
        targets, which are never loaded).  ``scalars`` maps scalar
        parameter names to immediate values.  Returns the reduction
        partials keyed by target buffer name.
        """
        local_buffers: Dict[str, np.ndarray] = dict(buffers)
        partials: Dict[str, ReductionPartial] = {}

        for stmt in self.function.body:
            if isinstance(stmt, Alloc):
                reference = local_buffers.get(stmt.like)
                if reference is None:
                    raise RuntimeError(
                        f"allocation '{stmt.name}' has no reference buffer '{stmt.like}'"
                    )
                local_buffers[stmt.name] = np.zeros_like(reference)
            elif isinstance(stmt, Loop):
                self._execute_loop(stmt, local_buffers, scalars, partials)
        return partials

    def _execute_loop(
        self,
        loop: Loop,
        buffers: Dict[str, np.ndarray],
        scalars: Dict[str, float],
        partials: Dict[str, ReductionPartial],
    ) -> None:
        locals_: Dict[str, np.ndarray] = {}
        index_buffer = buffers.get(loop.index_buffer)
        for stmt in loop.body:
            if isinstance(stmt, Assign):
                value = evaluate_expr(stmt.expr, buffers, scalars, locals_)
                if stmt.is_local:
                    locals_[stmt.target] = value
                else:
                    target = buffers[stmt.target]
                    if target is None:
                        raise RuntimeError(f"buffer '{stmt.target}' is not materialised")
                    target[...] = value
            elif isinstance(stmt, Reduce):
                value = evaluate_expr(stmt.expr, buffers, scalars, locals_)
                value = np.asarray(value)
                if value.ndim == 0 and index_buffer is not None:
                    # Broadcast loop-invariant expressions over the index
                    # space so e.g. summing a constant counts elements.
                    value = np.broadcast_to(value, index_buffer.shape)
                partial = reduce_array(stmt.kind, value)
                existing = partials.get(stmt.target)
                if existing is None:
                    partials[stmt.target] = ReductionPartial(kind=stmt.kind, value=partial)
                else:
                    from repro.kernel.kir import combine_reduction

                    partials[stmt.target] = ReductionPartial(
                        kind=stmt.kind,
                        value=combine_reduction(stmt.kind, existing.value, partial),
                    )


def lower(function: Function, binding: KernelBinding) -> KernelExecutor:
    """Lower a KIR function to an executor."""
    return KernelExecutor(function=function, binding=binding)
