"""KIR: the loop-level kernel intermediate representation.

KIR plays the role of the affine/memref/arith MLIR dialects in the paper.
A kernel is a :class:`Function` with buffer and scalar parameters and a
body consisting of task-local allocations and affine loops.  Every loop
iterates over the index space of one of the kernel's buffers and contains
element-wise assignments and reductions.

The representation deliberately mirrors the structure of the MLIR fragments
in paper Figure 8: generator functions emit one loop per library task, the
composition pass concatenates the loops, and the optimisation passes fuse
the loops and scalarise the task-local temporaries.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

import numpy as np


class BinOpKind(enum.Enum):
    """Binary arithmetic operators available in kernel bodies."""

    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    POW = "pow"
    MAX = "max"
    MIN = "min"
    LT = "lt"
    GT = "gt"
    LE = "le"
    GE = "ge"
    EQ = "eq"


class UnOpKind(enum.Enum):
    """Unary operators available in kernel bodies."""

    NEG = "neg"
    SQRT = "sqrt"
    EXP = "exp"
    LOG = "log"
    ABS = "abs"
    ERF = "erf"
    SIN = "sin"
    COS = "cos"
    TANH = "tanh"
    RECIP = "recip"


class ReduceKind(enum.Enum):
    """Reduction operators for reduction statements."""

    SUM = "sum"
    PROD = "prod"
    MAX = "max"
    MIN = "min"


# ----------------------------------------------------------------------
# Expressions.
# ----------------------------------------------------------------------
class Expr:
    """Base class of kernel expressions."""

    def buffers_read(self) -> Set[str]:
        """Names of buffers loaded anywhere in the expression."""
        raise NotImplementedError

    def locals_read(self) -> Set[str]:
        """Names of loop-local scalars referenced in the expression."""
        raise NotImplementedError


@dataclass(frozen=True)
class Const(Expr):
    """A floating-point literal."""

    value: float

    def buffers_read(self) -> Set[str]:
        return set()

    def locals_read(self) -> Set[str]:
        return set()

    def __str__(self) -> str:
        return f"{self.value}"


@dataclass(frozen=True)
class ScalarRef(Expr):
    """A reference to a scalar parameter of the kernel."""

    name: str

    def buffers_read(self) -> Set[str]:
        return set()

    def locals_read(self) -> Set[str]:
        return set()

    def __str__(self) -> str:
        return f"%{self.name}"


@dataclass(frozen=True)
class Load(Expr):
    """An element-wise load from a buffer at the current loop index."""

    buffer: str

    def buffers_read(self) -> Set[str]:
        return {self.buffer}

    def locals_read(self) -> Set[str]:
        return set()

    def __str__(self) -> str:
        return f"{self.buffer}[i]"


@dataclass(frozen=True)
class LocalRef(Expr):
    """A reference to a loop-local scalar defined earlier in the same loop."""

    name: str

    def buffers_read(self) -> Set[str]:
        return set()

    def locals_read(self) -> Set[str]:
        return {self.name}

    def __str__(self) -> str:
        return f"${self.name}"


@dataclass(frozen=True)
class BinOp(Expr):
    """A binary arithmetic operation."""

    op: BinOpKind
    lhs: Expr
    rhs: Expr

    def buffers_read(self) -> Set[str]:
        return self.lhs.buffers_read() | self.rhs.buffers_read()

    def locals_read(self) -> Set[str]:
        return self.lhs.locals_read() | self.rhs.locals_read()

    def __str__(self) -> str:
        return f"({self.lhs} {self.op.value} {self.rhs})"


@dataclass(frozen=True)
class UnOp(Expr):
    """A unary operation."""

    op: UnOpKind
    operand: Expr

    def buffers_read(self) -> Set[str]:
        return self.operand.buffers_read()

    def locals_read(self) -> Set[str]:
        return self.operand.locals_read()

    def __str__(self) -> str:
        return f"{self.op.value}({self.operand})"


# ----------------------------------------------------------------------
# Loop statements.
# ----------------------------------------------------------------------
class LoopStmt:
    """Base class of statements appearing inside loops."""


@dataclass(frozen=True)
class Assign(LoopStmt):
    """Element-wise assignment ``target[i] = expr`` or ``$local = expr``.

    When ``is_local`` is true the target is a loop-local scalar rather than
    a buffer element; loop-local scalars are the result of temporary
    scalarisation and correspond to register values in generated code.
    """

    target: str
    expr: Expr
    is_local: bool = False

    def buffers_read(self) -> Set[str]:
        return self.expr.buffers_read()

    def buffers_written(self) -> Set[str]:
        return set() if self.is_local else {self.target}

    def __str__(self) -> str:
        lhs = f"${self.target}" if self.is_local else f"{self.target}[i]"
        return f"{lhs} = {self.expr}"


@dataclass(frozen=True)
class Reduce(LoopStmt):
    """Reduction of an element-wise expression into a scalar buffer.

    ``target`` names a rank-0 buffer (a future in Legion terms).  The
    reduction folds ``expr`` over the loop's index space using ``kind``.
    """

    target: str
    kind: ReduceKind
    expr: Expr

    def buffers_read(self) -> Set[str]:
        return self.expr.buffers_read()

    def buffers_written(self) -> Set[str]:
        return {self.target}

    def __str__(self) -> str:
        return f"{self.target} {self.kind.value}= {self.expr}"


# ----------------------------------------------------------------------
# Function-level statements.
# ----------------------------------------------------------------------
class Stmt:
    """Base class of function-level statements."""


@dataclass(frozen=True)
class Alloc(Stmt):
    """A task-local allocation with the same shape as a reference buffer.

    Allocs are produced when the fusion engine demotes a distributed
    temporary store into task-local data (paper Figure 8c); the temporary
    elimination pass later removes allocs that the loop-fusion pass made
    redundant (paper Figure 8d).
    """

    name: str
    like: str

    def __str__(self) -> str:
        return f"{self.name} = alloc(like={self.like})"


@dataclass(frozen=True)
class Loop(Stmt):
    """An affine loop over the index space of ``index_buffer``.

    ``reduction_only`` loops contain only :class:`Reduce` statements; the
    distinction matters for the cost model (a reduction launch has a
    different latency profile than a map launch).
    """

    index_buffer: str
    body: Tuple[LoopStmt, ...]
    parallel: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "body", tuple(self.body))

    def buffers_read(self) -> Set[str]:
        return set().union(*(stmt.buffers_read() for stmt in self.body)) if self.body else set()

    def buffers_written(self) -> Set[str]:
        return (
            set().union(*(stmt.buffers_written() for stmt in self.body))
            if self.body
            else set()
        )

    @property
    def has_reduction(self) -> bool:
        return any(isinstance(stmt, Reduce) for stmt in self.body)

    def __str__(self) -> str:
        keyword = "affine.par" if self.parallel else "affine.for"
        lines = [f"{keyword} %i over {self.index_buffer} {{"]
        lines.extend(f"  {stmt}" for stmt in self.body)
        lines.append("}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Parameters and functions.
# ----------------------------------------------------------------------
class ParamKind(enum.Enum):
    """Kinds of kernel parameters."""

    BUFFER = "buffer"
    SCALAR = "scalar"


@dataclass(frozen=True)
class Param:
    """A kernel parameter: either a memref-like buffer or a scalar."""

    name: str
    kind: ParamKind = ParamKind.BUFFER
    dtype: str = "f64"

    @staticmethod
    def buffer(name: str, dtype: str = "f64") -> "Param":
        return Param(name=name, kind=ParamKind.BUFFER, dtype=dtype)

    @staticmethod
    def scalar(name: str, dtype: str = "f64") -> "Param":
        return Param(name=name, kind=ParamKind.SCALAR, dtype=dtype)

    def __str__(self) -> str:
        prefix = "memref" if self.kind is ParamKind.BUFFER else "scalar"
        return f"%{self.name}: {prefix}<{self.dtype}>"


@dataclass(frozen=True)
class Function:
    """A kernel: parameters plus a body of allocations and loops."""

    name: str
    params: Tuple[Param, ...]
    body: Tuple[Stmt, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", tuple(self.params))
        object.__setattr__(self, "body", tuple(self.body))
        names = [p.name for p in self.params]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate parameter names in kernel {self.name}: {names}")

    # ------------------------------------------------------------------
    # Introspection helpers used by the passes and the cost model.
    # ------------------------------------------------------------------
    @property
    def loops(self) -> Tuple[Loop, ...]:
        """The loops of the function, in program order."""
        return tuple(stmt for stmt in self.body if isinstance(stmt, Loop))

    @property
    def allocs(self) -> Tuple[Alloc, ...]:
        """The task-local allocations of the function."""
        return tuple(stmt for stmt in self.body if isinstance(stmt, Alloc))

    @property
    def buffer_params(self) -> Tuple[Param, ...]:
        """Parameters that are buffers."""
        return tuple(p for p in self.params if p.kind is ParamKind.BUFFER)

    @property
    def scalar_params(self) -> Tuple[Param, ...]:
        """Parameters that are scalars."""
        return tuple(p for p in self.params if p.kind is ParamKind.SCALAR)

    def param_names(self) -> Set[str]:
        """All parameter names."""
        return {p.name for p in self.params}

    def buffers_read(self) -> Set[str]:
        """All buffers read anywhere in the function."""
        return set().union(*(loop.buffers_read() for loop in self.loops)) if self.loops else set()

    def buffers_written(self) -> Set[str]:
        """All buffers written anywhere in the function."""
        return (
            set().union(*(loop.buffers_written() for loop in self.loops))
            if self.loops
            else set()
        )

    def with_body(self, body: Sequence[Stmt]) -> "Function":
        """A copy of the function with a replacement body."""
        return replace(self, body=tuple(body))

    def with_params(self, params: Sequence[Param]) -> "Function":
        """A copy of the function with replacement parameters."""
        return replace(self, params=tuple(params))

    def pretty(self) -> str:
        """A human-readable rendering (loosely MLIR flavoured)."""
        header = ", ".join(str(p) for p in self.params)
        lines = [f"func @{self.name}({header}) {{"]
        for stmt in self.body:
            text = str(stmt)
            lines.extend("  " + line for line in text.splitlines())
        lines.append("}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.pretty()


# ----------------------------------------------------------------------
# Expression and statement rewriting utilities shared by the passes.
# ----------------------------------------------------------------------
def substitute_expr(expr: Expr, mapping: Dict[str, str]) -> Expr:
    """Rename buffer and scalar references in an expression per ``mapping``."""
    if isinstance(expr, Load):
        return Load(mapping.get(expr.buffer, expr.buffer))
    if isinstance(expr, ScalarRef):
        return ScalarRef(mapping.get(expr.name, expr.name))
    if isinstance(expr, BinOp):
        return BinOp(expr.op, substitute_expr(expr.lhs, mapping), substitute_expr(expr.rhs, mapping))
    if isinstance(expr, UnOp):
        return UnOp(expr.op, substitute_expr(expr.operand, mapping))
    return expr


def substitute_stmt(stmt: LoopStmt, mapping: Dict[str, str]) -> LoopStmt:
    """Rename buffer references in a loop statement according to ``mapping``."""
    if isinstance(stmt, Assign):
        target = stmt.target if stmt.is_local else mapping.get(stmt.target, stmt.target)
        return Assign(target=target, expr=substitute_expr(stmt.expr, mapping), is_local=stmt.is_local)
    if isinstance(stmt, Reduce):
        return Reduce(
            target=mapping.get(stmt.target, stmt.target),
            kind=stmt.kind,
            expr=substitute_expr(stmt.expr, mapping),
        )
    raise TypeError(f"unknown loop statement {stmt!r}")


def rename_buffers(function: Function, mapping: Dict[str, str]) -> Function:
    """Rename buffer parameters and references throughout a function."""
    params = []
    for param in function.params:
        params.append(replace(param, name=mapping.get(param.name, param.name)))
    body: List[Stmt] = []
    for stmt in function.body:
        if isinstance(stmt, Alloc):
            body.append(
                Alloc(
                    name=mapping.get(stmt.name, stmt.name),
                    like=mapping.get(stmt.like, stmt.like),
                )
            )
        elif isinstance(stmt, Loop):
            body.append(
                Loop(
                    index_buffer=mapping.get(stmt.index_buffer, stmt.index_buffer),
                    body=tuple(substitute_stmt(s, mapping) for s in stmt.body),
                    parallel=stmt.parallel,
                )
            )
        else:  # pragma: no cover - no other statement kinds exist
            body.append(stmt)
    return Function(name=function.name, params=tuple(params), body=tuple(body))


def replace_load_with_expr(expr: Expr, buffer: str, replacement: Expr) -> Expr:
    """Replace every ``Load(buffer)`` in ``expr`` with ``replacement``."""
    if isinstance(expr, Load) and expr.buffer == buffer:
        return replacement
    if isinstance(expr, BinOp):
        return BinOp(
            expr.op,
            replace_load_with_expr(expr.lhs, buffer, replacement),
            replace_load_with_expr(expr.rhs, buffer, replacement),
        )
    if isinstance(expr, UnOp):
        return UnOp(expr.op, replace_load_with_expr(expr.operand, buffer, replacement))
    return expr


def sole_buffer_assignment(function: Function, target: str) -> Optional[Assign]:
    """The unique element-wise write to ``target``, if that is its only access.

    Returns the single non-local :class:`Assign` whose target is
    ``target`` when the function never loads the buffer, never reduces
    into it and never allocates from or into it — the conditions under
    which the super-kernel lowering (``runtime.superkernel``) may demote
    a dead cross-launch intermediate to a fused-local value.  Returns
    ``None`` otherwise.
    """
    if target in function.buffers_read():
        return None
    found: Optional[Assign] = None
    for stmt in function.body:
        if isinstance(stmt, Alloc):
            if stmt.name == target or stmt.like == target:
                return None
        elif isinstance(stmt, Loop):
            for inner in stmt.body:
                if isinstance(inner, Reduce):
                    if inner.target == target:
                        return None
                elif isinstance(inner, Assign) and not inner.is_local:
                    if inner.target == target:
                        if found is not None:
                            return None
                        found = inner
    return found


def assignment_loads_buffers(function: Function, stmt: Assign) -> bool:
    """True when ``stmt``'s value transitively loads at least one buffer.

    Local scalar references are chased through their defining assignments
    so a value routed through scalarised temporaries still counts.  Used
    by the super-kernel fold analysis: a load-free definition may be
    zero-dimensional, and while broadcasting keeps element-wise consumers
    exact, the conservative lowering only folds full-shape values.
    """
    local_defs: Dict[str, Expr] = {}
    for outer in function.body:
        if not isinstance(outer, Loop):
            continue
        for inner in outer.body:
            if isinstance(inner, Assign) and inner.is_local:
                local_defs[inner.target] = inner.expr
    seen: Set[str] = set()
    frontier = [stmt.expr]
    while frontier:
        expr = frontier.pop()
        if expr.buffers_read():
            return True
        for name in expr.locals_read():
            if name not in seen:
                seen.add(name)
                definition = local_defs.get(name)
                if definition is not None:
                    frontier.append(definition)
    return False


def count_flops(expr: Expr) -> int:
    """Number of arithmetic operations in an expression tree."""
    if isinstance(expr, BinOp):
        return 1 + count_flops(expr.lhs) + count_flops(expr.rhs)
    if isinstance(expr, UnOp):
        # Transcendental unary operations are charged a handful of flops.
        heavy = {UnOpKind.EXP, UnOpKind.LOG, UnOpKind.SQRT, UnOpKind.ERF,
                 UnOpKind.SIN, UnOpKind.COS, UnOpKind.TANH}
        return (8 if expr.op in heavy else 1) + count_flops(expr.operand)
    return 0


# ----------------------------------------------------------------------
# NumPy evaluation of expressions (used by the lowering module).
# ----------------------------------------------------------------------
_BINOP_EVAL = {
    BinOpKind.ADD: lambda a, b: a + b,
    BinOpKind.SUB: lambda a, b: a - b,
    BinOpKind.MUL: lambda a, b: a * b,
    BinOpKind.DIV: lambda a, b: a / b,
    BinOpKind.POW: lambda a, b: np.power(a, b),
    BinOpKind.MAX: np.maximum,
    BinOpKind.MIN: np.minimum,
    BinOpKind.LT: lambda a, b: (a < b).astype(np.float64),
    BinOpKind.GT: lambda a, b: (a > b).astype(np.float64),
    BinOpKind.LE: lambda a, b: (a <= b).astype(np.float64),
    BinOpKind.GE: lambda a, b: (a >= b).astype(np.float64),
    BinOpKind.EQ: lambda a, b: (a == b).astype(np.float64),
}


def _erf(x):
    """Vectorised error function (Abramowitz & Stegun 7.1.26 approximation).

    SciPy is an optional dependency, so the kernel executor carries its own
    erf good to ~1.5e-7 absolute error, which is ample for the
    Black-Scholes benchmark.

    The final ``copysign`` makes the function *exactly* odd for every
    input, zeros and NaNs included (``erf(-0.0) == -0.0``, as IEEE libm
    defines it): for nonzero ``x`` the product already carries ``x``'s
    sign, so the copy is a bitwise no-op, and ``np.sign(±0.0) == 0.0``
    keeps ``erf(±0.0)`` exactly zero.  The normalisation pass relies on
    this to rewrite ``erf(neg(x))`` as ``neg(erf(x))`` bit-exactly.
    """
    x = np.asarray(x, dtype=np.float64)
    sign = np.sign(x)
    ax = np.abs(x)
    t = 1.0 / (1.0 + 0.3275911 * ax)
    poly = t * (
        0.254829592
        + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429)))
    )
    return np.copysign(sign * (1.0 - poly * np.exp(-ax * ax)), x)


_UNOP_EVAL = {
    UnOpKind.NEG: lambda a: -a,
    UnOpKind.SQRT: np.sqrt,
    UnOpKind.EXP: np.exp,
    UnOpKind.LOG: np.log,
    UnOpKind.ABS: np.abs,
    UnOpKind.ERF: _erf,
    UnOpKind.SIN: np.sin,
    UnOpKind.COS: np.cos,
    UnOpKind.TANH: np.tanh,
    UnOpKind.RECIP: lambda a: 1.0 / a,
}

_REDUCE_EVAL = {
    ReduceKind.SUM: np.sum,
    ReduceKind.PROD: np.prod,
    ReduceKind.MAX: np.max,
    ReduceKind.MIN: np.min,
}

_REDUCE_COMBINE = {
    ReduceKind.SUM: lambda a, b: a + b,
    ReduceKind.PROD: lambda a, b: a * b,
    ReduceKind.MAX: max,
    ReduceKind.MIN: min,
}


def evaluate_expr(expr: Expr, buffers: Dict[str, np.ndarray], scalars: Dict[str, float],
                  locals_: Dict[str, np.ndarray]) -> np.ndarray:
    """Evaluate a kernel expression with NumPy array semantics."""
    if isinstance(expr, Const):
        return np.float64(expr.value)
    if isinstance(expr, ScalarRef):
        return np.float64(scalars[expr.name])
    if isinstance(expr, Load):
        return buffers[expr.buffer]
    if isinstance(expr, LocalRef):
        return locals_[expr.name]
    if isinstance(expr, BinOp):
        return _BINOP_EVAL[expr.op](
            evaluate_expr(expr.lhs, buffers, scalars, locals_),
            evaluate_expr(expr.rhs, buffers, scalars, locals_),
        )
    if isinstance(expr, UnOp):
        return _UNOP_EVAL[expr.op](evaluate_expr(expr.operand, buffers, scalars, locals_))
    raise TypeError(f"unknown expression {expr!r}")


def reduce_array(kind: ReduceKind, values: np.ndarray) -> float:
    """Reduce an array of per-element values to a scalar."""
    return float(_REDUCE_EVAL[kind](values))


def combine_reduction(kind: ReduceKind, a: float, b: float) -> float:
    """Combine two partial reduction results."""
    return float(_REDUCE_COMBINE[kind](a, b))
