"""Convenience builder used by kernel generator functions.

Library developers register *generator functions* that return the KIR body
of each task (paper Section 6.2).  The builder keeps those generators
short: a typical element-wise operator is three or four lines.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.kernel.kir import (
    Assign,
    BinOp,
    BinOpKind,
    Const,
    Expr,
    Function,
    Load,
    LocalRef,
    Loop,
    Param,
    Reduce,
    ReduceKind,
    ScalarRef,
    Stmt,
    UnOp,
    UnOpKind,
)

Operand = Union[Expr, str, float, int]


def as_expr(value: Operand) -> Expr:
    """Coerce strings to loads, numbers to constants, and pass exprs through."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, str):
        return Load(value)
    if isinstance(value, (int, float)):
        return Const(float(value))
    raise TypeError(f"cannot convert {value!r} to a kernel expression")


class KernelBuilder:
    """Builds a single-kernel :class:`Function` statement by statement."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._params: List[Param] = []
        self._body: List[Stmt] = []
        self._current_loop: Optional[List] = None
        self._current_index: Optional[str] = None

    # ------------------------------------------------------------------
    # Parameters.
    # ------------------------------------------------------------------
    def buffer(self, name: str) -> str:
        """Declare a buffer parameter and return its name."""
        self._params.append(Param.buffer(name))
        return name

    def buffers(self, *names: str) -> Sequence[str]:
        """Declare several buffer parameters."""
        return tuple(self.buffer(name) for name in names)

    def scalar(self, name: str) -> ScalarRef:
        """Declare a scalar parameter and return a reference to it."""
        self._params.append(Param.scalar(name))
        return ScalarRef(name)

    # ------------------------------------------------------------------
    # Loops.
    # ------------------------------------------------------------------
    def loop(self, index_buffer: str) -> "KernelBuilder":
        """Open a loop over the index space of ``index_buffer``."""
        if self._current_loop is not None:
            raise RuntimeError("nested loops are not supported by the builder")
        self._current_loop = []
        self._current_index = index_buffer
        return self

    def end_loop(self) -> "KernelBuilder":
        """Close the currently open loop."""
        if self._current_loop is None:
            raise RuntimeError("no loop is open")
        self._body.append(Loop(index_buffer=self._current_index, body=tuple(self._current_loop)))
        self._current_loop = None
        self._current_index = None
        return self

    def __enter__(self) -> "KernelBuilder":  # pragma: no cover - sugar
        return self

    def __exit__(self, *exc) -> None:  # pragma: no cover - sugar
        if self._current_loop is not None:
            self.end_loop()

    # ------------------------------------------------------------------
    # Statements.
    # ------------------------------------------------------------------
    def assign(self, target: str, expr: Operand) -> "KernelBuilder":
        """Element-wise store ``target[i] = expr`` inside the open loop."""
        self._require_loop()
        self._current_loop.append(Assign(target=target, expr=as_expr(expr)))
        return self

    def let(self, name: str, expr: Operand) -> LocalRef:
        """Define a loop-local scalar and return a reference to it."""
        self._require_loop()
        self._current_loop.append(Assign(target=name, expr=as_expr(expr), is_local=True))
        return LocalRef(name)

    def reduce(self, target: str, expr: Operand, kind: ReduceKind = ReduceKind.SUM) -> "KernelBuilder":
        """Reduce ``expr`` over the loop into the scalar buffer ``target``."""
        self._require_loop()
        self._current_loop.append(Reduce(target=target, kind=kind, expr=as_expr(expr)))
        return self

    def _require_loop(self) -> None:
        if self._current_loop is None:
            raise RuntimeError("statement emitted outside of a loop")

    # ------------------------------------------------------------------
    # Expression helpers.
    # ------------------------------------------------------------------
    @staticmethod
    def add(lhs: Operand, rhs: Operand) -> Expr:
        return BinOp(BinOpKind.ADD, as_expr(lhs), as_expr(rhs))

    @staticmethod
    def sub(lhs: Operand, rhs: Operand) -> Expr:
        return BinOp(BinOpKind.SUB, as_expr(lhs), as_expr(rhs))

    @staticmethod
    def mul(lhs: Operand, rhs: Operand) -> Expr:
        return BinOp(BinOpKind.MUL, as_expr(lhs), as_expr(rhs))

    @staticmethod
    def div(lhs: Operand, rhs: Operand) -> Expr:
        return BinOp(BinOpKind.DIV, as_expr(lhs), as_expr(rhs))

    @staticmethod
    def pow(lhs: Operand, rhs: Operand) -> Expr:
        return BinOp(BinOpKind.POW, as_expr(lhs), as_expr(rhs))

    @staticmethod
    def maximum(lhs: Operand, rhs: Operand) -> Expr:
        return BinOp(BinOpKind.MAX, as_expr(lhs), as_expr(rhs))

    @staticmethod
    def minimum(lhs: Operand, rhs: Operand) -> Expr:
        return BinOp(BinOpKind.MIN, as_expr(lhs), as_expr(rhs))

    @staticmethod
    def compare(op: BinOpKind, lhs: Operand, rhs: Operand) -> Expr:
        return BinOp(op, as_expr(lhs), as_expr(rhs))

    @staticmethod
    def unary(op: UnOpKind, operand: Operand) -> Expr:
        return UnOp(op, as_expr(operand))

    @staticmethod
    def neg(operand: Operand) -> Expr:
        return UnOp(UnOpKind.NEG, as_expr(operand))

    @staticmethod
    def sqrt(operand: Operand) -> Expr:
        return UnOp(UnOpKind.SQRT, as_expr(operand))

    @staticmethod
    def exp(operand: Operand) -> Expr:
        return UnOp(UnOpKind.EXP, as_expr(operand))

    @staticmethod
    def log(operand: Operand) -> Expr:
        return UnOp(UnOpKind.LOG, as_expr(operand))

    @staticmethod
    def erf(operand: Operand) -> Expr:
        return UnOp(UnOpKind.ERF, as_expr(operand))

    @staticmethod
    def select(condition: Operand, if_true: Operand, if_false: Operand) -> Expr:
        """``condition * if_true + (1 - condition) * if_false``.

        Conditions are 0/1-valued expressions (comparisons), so selection
        can be expressed arithmetically without a dedicated op.
        """
        cond = as_expr(condition)
        return BinOp(
            BinOpKind.ADD,
            BinOp(BinOpKind.MUL, cond, as_expr(if_true)),
            BinOp(BinOpKind.MUL, BinOp(BinOpKind.SUB, Const(1.0), cond), as_expr(if_false)),
        )

    # ------------------------------------------------------------------
    # Finalisation.
    # ------------------------------------------------------------------
    def build(self) -> Function:
        """Finish the kernel and return the KIR function."""
        if self._current_loop is not None:
            self.end_loop()
        return Function(name=self.name, params=tuple(self._params), body=tuple(self._body))
