"""The JIT compiler driver: compose, optimise, lower, cache.

The compiler is invoked by the fusion engine whenever it builds a fused
task (and, lazily, for single tasks executed through their generated
kernels).  It runs the pass pipeline, lowers the result to an executor,
derives the roofline cost descriptor, and caches the compiled kernel
under the canonical task-stream key provided by the memoization analysis
(paper Section 5.2).

Compilation *time* is part of the paper's evaluation (Figure 13).  We do
not run a real MLIR/LLVM backend, so the compiler charges an analytic
compile-time estimate — a fixed overhead per kernel plus a per-statement
cost — which the experiment harness uses to reproduce the warm-up and
break-even analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional, Tuple

from repro.ir.task import FusedTask, IndexTask
from repro.kernel.cost import KernelCost, analyze_kernel
from repro.kernel.generators import GeneratorRegistry, default_registry
from repro.kernel.kir import Assign, Function, Loop, Reduce
from repro.kernel.lowering import KernelExecutor, lower
from repro.kernel.passes.compose import (
    CompositionError,
    KernelBinding,
    compose_fused_task,
    compose_task,
)
from repro.kernel.passes.pipeline import PassPipeline, default_pipeline


@dataclass(frozen=True)
class CompileTimeModel:
    """Analytic model of JIT compilation latency.

    Calibrated so that applications with a few hundred fusible operations
    per iteration (TorchSWE) pay several seconds of warm-up compilation
    while micro-benchmarks pay tens of milliseconds, matching the orders
    of magnitude in paper Figure 13.
    """

    base_seconds: float = 0.020
    per_statement_seconds: float = 0.004
    per_loop_seconds: float = 0.010

    def estimate(self, function: Function) -> float:
        """Compile time of a composed (pre-optimisation) kernel."""
        statements = 0
        loops = 0
        for stmt in function.body:
            if isinstance(stmt, Loop):
                loops += 1
                statements += len(stmt.body)
        return self.base_seconds + self.per_statement_seconds * statements + self.per_loop_seconds * loops


@dataclass
class CompiledKernel:
    """A compiled kernel ready for execution by the runtime."""

    function: Function
    binding: KernelBinding
    executor: KernelExecutor
    cost: KernelCost
    compile_seconds: float
    fused_count: int
    cache_key: Optional[Hashable] = None

    @property
    def launches(self) -> int:
        """Kernel launches per point task."""
        return self.cost.launches


@dataclass
class CompilerStats:
    """Counters describing compiler activity (used by Figure 13).

    ``codegen_compilations`` counts invocations of the builtin ``compile``
    on freshly-generated kernel source; ``codegen_reuses`` counts kernels
    whose source matched an already-compiled closure (process-wide cache
    in :mod:`repro.kernel.codegen`).  Together with ``cache_hits`` they
    let tests assert that a canonical kernel key is compiled at most once
    across an entire sweep.
    """

    compilations: int = 0
    cache_hits: int = 0
    codegen_compilations: int = 0
    codegen_reuses: int = 0
    total_compile_seconds: float = 0.0

    def reset(self) -> None:
        self.compilations = 0
        self.cache_hits = 0
        self.codegen_compilations = 0
        self.codegen_reuses = 0
        self.total_compile_seconds = 0.0


class JITCompiler:
    """Compiles (fused) index tasks into executable kernels."""

    def __init__(
        self,
        registry: Optional[GeneratorRegistry] = None,
        pipeline: Optional[PassPipeline] = None,
        compile_time_model: Optional[CompileTimeModel] = None,
        backend: Optional[str] = None,
    ) -> None:
        self.registry = registry or default_registry()
        self.pipeline = pipeline or default_pipeline()
        self.compile_time_model = compile_time_model or CompileTimeModel()
        #: Kernel execution backend; None defers to REPRO_KERNEL_BACKEND.
        self.backend = backend
        self.stats = CompilerStats()
        self._cache: Dict[Hashable, CompiledKernel] = {}

    # ------------------------------------------------------------------
    # Compilation entry points.
    # ------------------------------------------------------------------
    def can_compile(self, task: IndexTask) -> bool:
        """True when every constituent of the task has a kernel generator."""
        if isinstance(task, FusedTask):
            return all(self.can_compile(t) for t in task.constituents)
        return self.registry.has(task.task_name)

    def compile(
        self,
        task: IndexTask,
        cache_key: Optional[Hashable] = None,
        charge_compile_time: bool = True,
    ) -> CompiledKernel:
        """Compile ``task`` (fused or not) into an executable kernel.

        ``cache_key`` is the canonical task-stream key from the
        memoization analysis; compilation is skipped entirely on a cache
        hit.  ``charge_compile_time`` is False for the per-task kernels of
        the unfused execution path, which correspond to the libraries'
        pre-compiled task variants rather than JIT output.
        """
        if cache_key is not None and cache_key in self._cache:
            self.stats.cache_hits += 1
            return self._cache[cache_key]

        if isinstance(task, FusedTask):
            composed, binding = compose_fused_task(task, self.registry)
            fused_count = task.constituent_count()
        else:
            composed, binding = compose_task(task, self.registry)
            fused_count = 1

        compile_seconds = (
            self.compile_time_model.estimate(composed) if charge_compile_time else 0.0
        )
        optimized = self.pipeline.run(composed, binding)
        # The passes may scalarise or eliminate buffers; derive the access
        # metadata from the function that actually executes.
        binding.attach_function_metadata(optimized)
        executor = lower(optimized, binding, backend=self.backend)
        # The differential executor wraps a codegen executor; count the
        # inner one so the compile-once invariant is visible in any mode.
        codegen_executor = getattr(executor, "codegen", executor)
        if getattr(codegen_executor, "freshly_compiled", False):
            self.stats.codegen_compilations += 1
        elif codegen_executor.backend == "codegen":
            self.stats.codegen_reuses += 1
        kernel = CompiledKernel(
            function=optimized,
            binding=binding,
            executor=executor,
            cost=analyze_kernel(optimized),
            compile_seconds=compile_seconds,
            fused_count=fused_count,
            cache_key=cache_key,
        )
        self.stats.compilations += 1
        self.stats.total_compile_seconds += compile_seconds
        if cache_key is not None:
            self._cache[cache_key] = kernel
        return kernel

    # ------------------------------------------------------------------
    # Cache management.
    # ------------------------------------------------------------------
    @property
    def cache_size(self) -> int:
        """Number of cached compiled kernels."""
        return len(self._cache)

    def clear_cache(self) -> None:
        """Drop all cached kernels (used between benchmark configurations)."""
        self._cache.clear()
