"""Dead-code elimination for fused kernels.

Removes:

* assignments to loop-local scalars that are never read afterwards,
* assignments to task-local allocations that are never read at all, and
* task-local allocations that are no longer referenced.

Writes to kernel *parameters* are never dead — the stores behind them are
visible to the application or to downstream tasks by construction of the
fused task's argument list.
"""

from __future__ import annotations

from typing import List, Set

from repro.kernel.kir import Alloc, Assign, Function, Loop, LoopStmt, Reduce, Stmt


def eliminate_dead_code(function: Function) -> Function:
    """Iteratively remove dead statements and unused allocations."""
    current = function
    while True:
        rewritten = _single_pass(current)
        if rewritten is current:
            return rewritten
        current = rewritten


def _single_pass(function: Function) -> Function:
    param_names = function.param_names()
    alloc_names = {stmt.name for stmt in function.body if isinstance(stmt, Alloc)}

    # Buffers read anywhere in the function (allocs used as loop index
    # spaces also count as live so their defining writes are preserved).
    buffers_read: Set[str] = set()
    for loop in function.loops:
        buffers_read |= loop.buffers_read()

    changed = False
    body: List[Stmt] = []
    for stmt in function.body:
        if isinstance(stmt, Loop):
            new_loop = _dce_loop(stmt, param_names, buffers_read)
            if new_loop is not stmt:
                changed = True
            if new_loop.body:
                body.append(new_loop)
            else:
                changed = True
        else:
            body.append(stmt)

    # Drop allocations that are no longer referenced by any surviving loop.
    referenced: Set[str] = set()
    for stmt in body:
        if isinstance(stmt, Loop):
            referenced |= stmt.buffers_read() | stmt.buffers_written() | {stmt.index_buffer}
    final_body: List[Stmt] = []
    for stmt in body:
        if isinstance(stmt, Alloc) and stmt.name not in referenced:
            changed = True
            continue
        final_body.append(stmt)

    if not changed:
        return function
    return function.with_body(final_body)


def _dce_loop(loop: Loop, param_names: Set[str], buffers_read: Set[str]) -> Loop:
    """Remove dead statements from a loop, scanning backwards."""
    live_locals: Set[str] = set()
    kept_reversed: List[LoopStmt] = []
    changed = False
    for stmt in reversed(loop.body):
        if isinstance(stmt, Assign) and stmt.is_local:
            if stmt.target not in live_locals:
                changed = True
                continue
            live_locals.discard(stmt.target)
            live_locals |= stmt.expr.locals_read()
            kept_reversed.append(stmt)
            continue
        if isinstance(stmt, Assign):
            is_param = stmt.target in param_names
            is_read = stmt.target in buffers_read
            if not is_param and not is_read:
                changed = True
                continue
            live_locals |= stmt.expr.locals_read()
            kept_reversed.append(stmt)
            continue
        if isinstance(stmt, Reduce):
            live_locals |= stmt.expr.locals_read()
            kept_reversed.append(stmt)
            continue
        kept_reversed.append(stmt)  # pragma: no cover - defensive

    if not changed:
        return loop
    return Loop(
        index_buffer=loop.index_buffer,
        body=tuple(reversed(kept_reversed)),
        parallel=loop.parallel,
    )
