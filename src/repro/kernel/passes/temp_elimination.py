"""Scalarisation of task-local temporaries (paper Figure 8c -> 8d).

After loop fusion, a task-local allocation whose producer and consumers
all ended up inside the *same* loop is redundant: each element is written
and then read at the same loop index, so the value can live in a register
(a loop-local scalar in KIR terms).  This pass rewrites such allocations
away, which is the step that actually removes the memory traffic of
distributed temporaries — demotion alone (paper Figure 8c) only moved the
traffic from a distributed store to a task-local buffer.

Allocations that are still referenced from more than one loop (because
loop fusion could not merge their producer and consumers) are kept as
task-local buffers, exactly as in the paper.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.kernel.kir import (
    Alloc,
    Assign,
    Expr,
    Function,
    LocalRef,
    Loop,
    LoopStmt,
    Reduce,
    Stmt,
    replace_load_with_expr,
)
from repro.kernel.passes.compose import KernelBinding


def _loops_touching(function: Function, buffer: str) -> List[int]:
    touching = []
    for index, stmt in enumerate(function.body):
        if not isinstance(stmt, Loop):
            continue
        reads = stmt.buffers_read()
        writes = stmt.buffers_written()
        if buffer in reads or buffer in writes or stmt.index_buffer == buffer:
            touching.append(index)
    return touching


def scalarize_temporaries(function: Function, binding: KernelBinding) -> Function:
    """Replace single-loop task-local allocations with loop-local scalars."""
    alloc_names = [stmt.name for stmt in function.body if isinstance(stmt, Alloc)]
    if not alloc_names:
        return function

    scalarizable: Set[str] = set()
    for name in alloc_names:
        touching = _loops_touching(function, name)
        if len(touching) == 1:
            loop = function.body[touching[0]]
            assert isinstance(loop, Loop)
            if _writes_precede_reads(loop, name) and loop.index_buffer != name:
                scalarizable.add(name)

    if not scalarizable:
        return function

    body: List[Stmt] = []
    for stmt in function.body:
        if isinstance(stmt, Alloc) and stmt.name in scalarizable:
            continue
        if isinstance(stmt, Loop):
            body.append(_rewrite_loop(stmt, scalarizable))
        else:
            body.append(stmt)
    return function.with_body(body)


def _writes_precede_reads(loop: Loop, buffer: str) -> bool:
    """True when every read of ``buffer`` in the loop follows a write to it."""
    written = False
    for stmt in loop.body:
        if buffer in stmt.buffers_read() and not written:
            return False
        if buffer in stmt.buffers_written():
            written = True
    return written


def _rewrite_loop(loop: Loop, scalarizable: Set[str]) -> Loop:
    """Turn writes to scalarizable buffers into local defs and reads into refs."""
    new_body: List[LoopStmt] = []
    for stmt in loop.body:
        if isinstance(stmt, Assign):
            expr = _replace_reads(stmt.expr, scalarizable)
            if not stmt.is_local and stmt.target in scalarizable:
                new_body.append(Assign(target=_local_name(stmt.target), expr=expr, is_local=True))
            else:
                new_body.append(Assign(target=stmt.target, expr=expr, is_local=stmt.is_local))
        elif isinstance(stmt, Reduce):
            new_body.append(
                Reduce(target=stmt.target, kind=stmt.kind, expr=_replace_reads(stmt.expr, scalarizable))
            )
        else:  # pragma: no cover - no other loop statement kinds exist
            new_body.append(stmt)
    return Loop(index_buffer=loop.index_buffer, body=tuple(new_body), parallel=loop.parallel)


def _replace_reads(expr: Expr, scalarizable: Set[str]) -> Expr:
    for name in scalarizable:
        expr = replace_load_with_expr(expr, name, LocalRef(_local_name(name)))
    return expr


def _local_name(buffer: str) -> str:
    return f"{buffer}_val"
