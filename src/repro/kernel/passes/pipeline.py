"""The kernel optimisation pass pipeline (paper Section 6.3).

The default pipeline mirrors the order described in the paper: compose
(performed by the compiler before the pipeline runs), then loop fusion,
temporary scalarisation, algebraic normalisation, CSE, DCE, and
parallelisation.  Individual passes can be disabled for the ablation
benchmarks; normalisation is additionally gated by ``REPRO_NORMALIZE``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import normalize_enabled
from repro.kernel.kir import Function
from repro.kernel.passes.compose import KernelBinding
from repro.kernel.passes.cse import eliminate_common_subexpressions
from repro.kernel.passes.dce import eliminate_dead_code
from repro.kernel.passes.loop_fusion import fuse_loops
from repro.kernel.passes.normalize import normalize_function
from repro.kernel.passes.parallelize import parallelize_loops
from repro.kernel.passes.temp_elimination import scalarize_temporaries


@dataclass
class PassPipeline:
    """Configuration of the kernel optimisation pipeline."""

    enable_loop_fusion: bool = True
    enable_temporary_elimination: bool = True
    enable_normalize: bool = True
    enable_cse: bool = True
    enable_dce: bool = True
    enable_parallelize: bool = True

    def run(self, function: Function, binding: KernelBinding) -> Function:
        """Run the enabled passes over a composed kernel."""
        if self.enable_loop_fusion:
            function = fuse_loops(function, binding)
        if self.enable_temporary_elimination:
            function = scalarize_temporaries(function, binding)
        if self.enable_normalize and normalize_enabled():
            function = normalize_function(function)
        if self.enable_cse:
            function = eliminate_common_subexpressions(function)
        if self.enable_dce:
            function = eliminate_dead_code(function)
        if self.enable_parallelize:
            function = parallelize_loops(function)
        return function


def default_pipeline() -> PassPipeline:
    """The pipeline used by Diffuse unless a benchmark overrides it."""
    return PassPipeline()
