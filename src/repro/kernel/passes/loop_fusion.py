"""Loop fusion over composed kernel bodies (paper Figure 8b -> 8d).

After composition, a fused task's body is a sequence of single loops — one
per constituent library task.  This pass merges adjacent loops that
provably iterate over the same index space into a single loop, which is
what creates the data reuse the paper's speedups come from: a value loaded
(or computed) by one constituent is consumed by the next without a round
trip through memory.

Legality
--------
All KIR loops are element-wise: every access inside a loop touches the
current loop index only.  Two adjacent same-space loops can therefore be
fused regardless of which buffers they share — the composed per-iteration
statement order preserves every flow of values, and there are no
loop-carried dependencies to violate.  The only question is whether the
index spaces are provably equal, which is answered symbolically with the
``index_spaces`` recorded by the composition pass (store shape +
partition); the check never inspects actual data sizes, keeping the
compiler scale free like the task-level analysis.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.kernel.kir import Alloc, Function, Loop, Stmt
from repro.kernel.passes.compose import IndexSpaceKey, KernelBinding


def _space_of(loop: Loop, binding: KernelBinding) -> Optional[IndexSpaceKey]:
    return binding.index_spaces.get(loop.index_buffer)


def _same_space(a: Loop, b: Loop, binding: KernelBinding) -> bool:
    space_a = _space_of(a, binding)
    space_b = _space_of(b, binding)
    if space_a is None or space_b is None:
        return False
    shape_a, part_a = space_a
    shape_b, part_b = space_b
    return shape_a == shape_b and part_a == part_b


def fuse_loops(function: Function, binding: KernelBinding) -> Function:
    """Fuse adjacent loops with provably-equal iteration spaces."""
    # Hoist allocations to the top so they never separate fusible loops.
    allocs: List[Stmt] = [stmt for stmt in function.body if isinstance(stmt, Alloc)]
    loops: List[Stmt] = [stmt for stmt in function.body if isinstance(stmt, Loop)]

    temp_names = set(binding.temporaries)
    fused: List[Loop] = []
    for loop in loops:
        if fused and _same_space(fused[-1], loop, binding):
            previous = fused[-1]
            # Prefer a non-temporary index buffer for the merged loop so
            # that the temporary-scalarisation pass can later remove the
            # temporary entirely (paper Figure 8d).
            index_buffer = previous.index_buffer
            if index_buffer in temp_names and loop.index_buffer not in temp_names:
                index_buffer = loop.index_buffer
            fused[-1] = Loop(
                index_buffer=index_buffer,
                body=previous.body + loop.body,
                parallel=previous.parallel and loop.parallel,
            )
        else:
            fused.append(loop)
    return function.with_body(tuple(allocs) + tuple(fused))


def count_loops(function: Function) -> int:
    """Number of loops (kernel launches) in the function."""
    return len(function.loops)
