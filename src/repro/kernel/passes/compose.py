"""Composition of constituent kernel bodies into a fused kernel.

Given a fused task and its constituent tasks, this pass calls each
constituent's generator, renames the positional parameters (``a0``,
``a1``, ...) to per-view names shared across constituents, concatenates
the loop nests in program order, and prepends task-local allocations for
every distributed temporary (paper Figures 8b and 8c).

The result is a single :class:`~repro.kernel.kir.Function` plus a
:class:`KernelBinding` that records how the kernel's parameters map back
onto the fused task's arguments — the runtime executor needs that mapping
to hand the right sub-store slices to the kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ir.partition import Partition
from repro.ir.store import Store
from repro.ir.task import FusedTask, IndexTask, scalar_bits
from repro.kernel.generators import GeneratorRegistry
from repro.kernel.kir import (
    Alloc,
    Function,
    Loop,
    Param,
    ParamKind,
    Stmt,
    substitute_stmt,
)

#: A symbolic description of a loop's iteration space: the shape of the
#: store being iterated plus the partition slicing it.  Two loops with
#: equal index-space keys provably iterate over identically-shaped tiles
#: on every launch point, which is the legality condition for loop fusion.
IndexSpaceKey = Tuple[Tuple[int, ...], Partition]


@dataclass
class KernelBinding:
    """Mapping from kernel parameter names back to task arguments."""

    #: buffer parameter name -> index into the task's ``args`` tuple.
    buffer_args: Dict[str, int] = field(default_factory=dict)
    #: scalar parameter name -> index into the task's ``scalar_args`` tuple.
    scalar_args: Dict[str, int] = field(default_factory=dict)
    #: task-local allocation name -> the demoted temporary store.
    temporaries: Dict[str, Store] = field(default_factory=dict)
    #: buffer or alloc name -> symbolic iteration-space key.
    index_spaces: Dict[str, IndexSpaceKey] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Derived metadata, attached once per compiled kernel (after the pass
    # pipeline ran) so the runtime executor's launch loop iterates plain
    # tuples instead of rebuilding dict views per launch.
    # ------------------------------------------------------------------
    #: ``buffer_args`` items in declaration order (hot-loop iteration).
    buffer_order: Tuple[Tuple[str, int], ...] = ()
    #: ``scalar_args`` items in declaration order.
    scalar_order: Tuple[Tuple[str, int], ...] = ()

    def arg_index_for(self, param_name: str) -> Optional[int]:
        """The task argument index backing a kernel parameter, if any."""
        return self.buffer_args.get(param_name)

    def attach_function_metadata(self, function: Function) -> None:
        """Freeze the parameter ordering of the function that executes.

        The snapshot is filtered against the function's parameter list so
        that a pass which drops a parameter also drops it from the hot
        launch loop (no rect tables or views for dead buffers).
        """
        names = function.param_names()
        self.buffer_order = tuple(
            item for item in self.buffer_args.items() if item[0] in names
        )
        self.scalar_order = tuple(
            item for item in self.scalar_args.items() if item[0] in names
        )


class CompositionError(RuntimeError):
    """Raised when a constituent task has no registered kernel generator."""


def _view_key(store: Store, partition: Partition) -> Tuple[int, Partition]:
    return (store.uid, partition)


def compose_task(
    task: IndexTask,
    registry: GeneratorRegistry,
) -> Tuple[Function, KernelBinding]:
    """Build the kernel for a single (unfused) task.

    Scalar parameters are never deduplicated here: single-task kernels
    are cached by the runtime's task-variant cache, whose key does not
    include scalar values.
    """
    return _compose(task, [task], temporaries=(), registry=registry)


def compose_fused_task(
    fused: FusedTask,
    registry: GeneratorRegistry,
) -> Tuple[Function, KernelBinding]:
    """Build the kernel for a fused task from its constituents.

    Scalar parameters carrying bit-identical values are deduplicated
    into one kernel parameter (bound to the first flat scalar position).
    This is sound because both the memoization key and the trace key
    embed the window's scalar *equality pattern* — a stream whose scalar
    equalities differ compiles (and replays) a different kernel.
    """
    from repro.config import normalize_enabled

    return _compose(
        fused,
        fused.constituents,
        fused.temporary_stores,
        registry,
        dedupe_scalars=normalize_enabled(),
    )


def _compose(
    target: IndexTask,
    constituents: Sequence[IndexTask],
    temporaries: Sequence[Store],
    registry: GeneratorRegistry,
    dedupe_scalars: bool = False,
) -> Tuple[Function, KernelBinding]:
    binding = KernelBinding()
    temp_ids = {store.uid for store in temporaries}

    # 1. Name the fused kernel's buffer parameters after the target task's
    #    argument views, in argument order.
    view_names: Dict[Tuple[int, Partition], str] = {}
    params: List[Param] = []
    for index, arg in enumerate(target.args):
        key = _view_key(arg.store, arg.partition)
        if key in view_names:
            continue
        name = f"v{len(view_names)}"
        view_names[key] = name
        params.append(Param.buffer(name))
        binding.buffer_args[name] = index
        binding.index_spaces[name] = (arg.store.shape, arg.partition)

    # 2. Name temporaries; their partition is taken from the first
    #    constituent argument that references them.
    temp_names: Dict[int, str] = {}
    for store in temporaries:
        name = f"tmp{store.uid}"
        temp_names[store.uid] = name
        binding.temporaries[name] = store
        for task in constituents:
            arg = next((a for a in task.args if a.store.uid == store.uid), None)
            if arg is not None:
                binding.index_spaces[name] = (store.shape, arg.partition)
                break

    # 3. Generate, rename and concatenate each constituent's body.
    body: List[Stmt] = []
    scalar_params: List[Param] = []
    scalar_names: Dict[bytes, str] = {}
    scalar_cursor = 0
    for task in constituents:
        fragment = registry.generate(task)
        if fragment is None:
            raise CompositionError(
                f"task '{task.task_name}' has no registered kernel generator"
            )
        mapping: Dict[str, str] = {}
        for position, arg in enumerate(task.args):
            positional = f"a{position}"
            if arg.store.uid in temp_ids:
                mapping[positional] = temp_names[arg.store.uid]
            else:
                mapping[positional] = view_names[_view_key(arg.store, arg.partition)]
        for position, value in enumerate(task.scalar_args):
            flat_index = scalar_cursor + position
            mapping_name = None
            if dedupe_scalars:
                bits = scalar_bits(value)
                mapping_name = scalar_names.get(bits)
                if mapping_name is None:
                    mapping_name = f"s{flat_index}"
                    scalar_names[bits] = mapping_name
                    scalar_params.append(Param.scalar(mapping_name))
                    binding.scalar_args[mapping_name] = flat_index
            else:
                mapping_name = f"s{flat_index}"
                scalar_params.append(Param.scalar(mapping_name))
                binding.scalar_args[mapping_name] = flat_index
            mapping[f"s{position}"] = mapping_name
        scalar_cursor += len(task.scalar_args)

        # Rename the fragment's body in place.  The fragment's parameter
        # list is discarded (the fused function declares its own params),
        # so duplicate names caused by two positional arguments mapping to
        # the same view are harmless here.
        for stmt in fragment.body:
            if isinstance(stmt, Loop):
                body.append(
                    Loop(
                        index_buffer=mapping.get(stmt.index_buffer, stmt.index_buffer),
                        body=tuple(substitute_stmt(s, mapping) for s in stmt.body),
                        parallel=stmt.parallel,
                    )
                )
            elif isinstance(stmt, Alloc):
                body.append(
                    Alloc(
                        name=mapping.get(stmt.name, stmt.name),
                        like=mapping.get(stmt.like, stmt.like),
                    )
                )
            else:  # pragma: no cover - no other statement kinds exist
                body.append(stmt)

    # 4. Prepend allocations for the temporaries.  Each allocation is
    #    shaped "like" a non-temporary buffer that shares its iteration
    #    space, so the executor can size it per point task.
    allocs: List[Stmt] = []
    for store in temporaries:
        name = temp_names[store.uid]
        like = _pick_alloc_reference(name, body, binding, set(temp_names.values()))
        allocs.append(Alloc(name=name, like=like))

    function = Function(
        name=target.task_name,
        params=tuple(params) + tuple(scalar_params),
        body=tuple(allocs) + tuple(body),
    )
    return function, binding


def _pick_alloc_reference(
    temp_name: str,
    body: Sequence[Stmt],
    binding: KernelBinding,
    temp_names: set,
) -> str:
    """Choose the buffer whose per-point shape the allocation should copy.

    Preference order: a non-temporary buffer appearing in the first loop
    that writes the temporary (same iteration space by construction), then
    any non-temporary buffer with the same symbolic index space, then the
    first buffer parameter of the kernel.
    """
    temp_space = binding.index_spaces.get(temp_name)
    for stmt in body:
        if not isinstance(stmt, Loop):
            continue
        if temp_name not in stmt.buffers_written():
            continue
        candidates = (stmt.buffers_read() | stmt.buffers_written() | {stmt.index_buffer})
        for candidate in candidates:
            if candidate not in temp_names and candidate in binding.buffer_args:
                return candidate
        break
    if temp_space is not None:
        for name, space in binding.index_spaces.items():
            if name in binding.buffer_args and space[0] == temp_space[0]:
                return name
    for name in binding.buffer_args:
        return name
    raise CompositionError(
        f"could not find a reference buffer to size temporary '{temp_name}'"
    )
