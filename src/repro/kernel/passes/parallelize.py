"""Parallelisation of fused loops (paper Figure 8d, ``affine.par``).

Every KIR loop is element-wise and therefore trivially parallel; this pass
marks loops as parallel so that the lowering and the cost model treat them
as single device-wide kernel launches (GPU grid launches / OpenMP parallel
regions in the paper).  Loops containing reductions remain parallel — the
reduction is performed as a parallel tree reduction, which the cost model
accounts for with a small additional latency term.
"""

from __future__ import annotations

from repro.kernel.kir import Function, Loop


def parallelize_loops(function: Function) -> Function:
    """Mark every loop of the function as parallel."""
    body = []
    for stmt in function.body:
        if isinstance(stmt, Loop) and not stmt.parallel:
            body.append(Loop(index_buffer=stmt.index_buffer, body=stmt.body, parallel=True))
        else:
            body.append(stmt)
    return function.with_body(body)
