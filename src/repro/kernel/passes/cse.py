"""Local value numbering inside fused loops.

Fusing library operators frequently exposes repeated subexpressions — the
Black-Scholes kernel, for example, rebuilds ``d1`` several times once its
constituent tasks are concatenated.  This pass performs a conservative,
statement-ordered common-subexpression elimination within each loop: any
non-trivial expression that appears more than once (and whose inputs are
not redefined in between) is computed once into a loop-local scalar and
reused.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.kernel.kir import (
    Assign,
    BinOp,
    Expr,
    Function,
    LocalRef,
    Loop,
    LoopStmt,
    Reduce,
    UnOp,
)


def _expr_key(expr: Expr) -> Tuple:
    """A structural key for an expression (dataclasses are hashable)."""
    return ("expr", expr)


def _is_trivial(expr: Expr) -> bool:
    return not isinstance(expr, (BinOp, UnOp))


def _count_occurrences(expr: Expr, counts: Dict[Expr, int]) -> None:
    if isinstance(expr, (BinOp, UnOp)):
        counts[expr] = counts.get(expr, 0) + 1
    if isinstance(expr, BinOp):
        _count_occurrences(expr.lhs, counts)
        _count_occurrences(expr.rhs, counts)
    elif isinstance(expr, UnOp):
        _count_occurrences(expr.operand, counts)


def _rewrite(expr: Expr, replacements: Dict[Expr, LocalRef]) -> Expr:
    if expr in replacements:
        return replacements[expr]
    if isinstance(expr, BinOp):
        return BinOp(expr.op, _rewrite(expr.lhs, replacements), _rewrite(expr.rhs, replacements))
    if isinstance(expr, UnOp):
        return UnOp(expr.op, _rewrite(expr.operand, replacements))
    return expr


def _invalidated_by(expr: Expr, written_buffers: Set[str], written_locals: Set[str]) -> bool:
    return bool(expr.buffers_read() & written_buffers) or bool(expr.locals_read() & written_locals)


def eliminate_common_subexpressions(function: Function) -> Function:
    """Apply local value numbering to every loop of the function."""
    body = []
    counter = [0]
    for stmt in function.body:
        if isinstance(stmt, Loop):
            body.append(_cse_loop(stmt, counter))
        else:
            body.append(stmt)
    return function.with_body(body)


def _cse_loop(loop: Loop, counter: List[int]) -> Loop:
    # First pass: count structurally-identical non-trivial subexpressions.
    counts: Dict[Expr, int] = {}
    for stmt in loop.body:
        if isinstance(stmt, (Assign, Reduce)):
            _count_occurrences(stmt.expr, counts)
    repeated = {expr for expr, count in counts.items() if count > 1 and not _is_trivial(expr)}
    if not repeated:
        return loop

    # Second pass: the first time a repeated expression is evaluated, hoist
    # it into a loop-local scalar; later occurrences read the scalar.  The
    # replacement is invalidated when any buffer or local it reads is
    # subsequently written.
    new_body: List[LoopStmt] = []
    replacements: Dict[Expr, LocalRef] = {}
    for stmt in loop.body:
        expr = stmt.expr if isinstance(stmt, (Assign, Reduce)) else None
        if expr is not None:
            candidates = _collect_repeated(expr, repeated, replacements)
            for candidate in candidates:
                name = f"cse{counter[0]}"
                counter[0] += 1
                rewritten = _rewrite(candidate, replacements)
                new_body.append(Assign(target=name, expr=rewritten, is_local=True))
                replacements[candidate] = LocalRef(name)
            expr = _rewrite(expr, replacements)

        if isinstance(stmt, Assign):
            new_stmt = Assign(target=stmt.target, expr=expr, is_local=stmt.is_local)
        elif isinstance(stmt, Reduce):
            new_stmt = Reduce(target=stmt.target, kind=stmt.kind, expr=expr)
        else:  # pragma: no cover - no other loop statement kinds exist
            new_stmt = stmt
        new_body.append(new_stmt)

        # Invalidate replacements whose inputs this statement redefined.
        written_buffers = new_stmt.buffers_written() if isinstance(new_stmt, (Assign, Reduce)) else set()
        written_locals = {new_stmt.target} if isinstance(new_stmt, Assign) and new_stmt.is_local else set()
        if written_buffers or written_locals:
            stale = [
                expr_
                for expr_ in replacements
                if _invalidated_by(expr_, written_buffers, written_locals)
            ]
            for expr_ in stale:
                del replacements[expr_]

    return Loop(index_buffer=loop.index_buffer, body=tuple(new_body), parallel=loop.parallel)


def _collect_repeated(
    expr: Expr, repeated: Set[Expr], replacements: Dict[Expr, LocalRef]
) -> List[Expr]:
    """Repeated subexpressions of ``expr`` not yet hoisted, outermost first."""
    found: List[Expr] = []

    def visit(node: Expr) -> None:
        if node in repeated and node not in replacements and node not in found:
            found.append(node)
            return  # hoisting the outermost occurrence covers its children
        if isinstance(node, BinOp):
            visit(node.lhs)
            visit(node.rhs)
        elif isinstance(node, UnOp):
            visit(node.operand)

    visit(expr)
    return found
