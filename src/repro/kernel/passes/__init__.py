"""Optimisation passes over KIR kernels (paper Section 6.3).

The pipeline mirrors the MLIR pass sequence described in the paper:

1. :mod:`compose` — concatenate the bodies of the fused tasks in program
   order, unifying buffers that refer to the same distributed view.
2. :mod:`temp_demotion` — turn distributed temporaries into task-local
   allocations (paper Figure 8c).
3. :mod:`loop_fusion` — fuse adjacent loops over provably-equal index
   spaces.
4. :mod:`temp_elimination` — scalarise task-local allocations whose
   producer and consumers ended up in the same fused loop (paper
   Figure 8d).
5. :mod:`cse` / :mod:`dce` — local value numbering and dead-code
   elimination.
6. :mod:`parallelize` — mark the surviving loops as parallel.
"""

from repro.kernel.passes.pipeline import PassPipeline, default_pipeline

__all__ = ["PassPipeline", "default_pipeline"]
