"""Algebraic normalisation of kernel bodies (runs before CSE).

Fused kernels frequently compute a value and its negation through
separate constituent chains — Black-Scholes prices its put leg from
``erf(-d1/√2)`` while the call leg already computed ``erf(d1/√2)``.
Structural CSE cannot see through the sign difference, so the pair costs
two transcendental evaluations.  This pass rewrites each loop body into
a sign-normal form using only *bit-exact* identities, after which CSE
deduplicates the shared core:

* ``neg(neg(x)) == x``
* ``neg(x) / y == x / neg(y) == neg(x / y)`` (IEEE-754 division derives
  the sign by xor; the magnitude rounding is sign-independent)
* ``neg(x) * y == x * neg(y) == neg(x * y)`` (same argument)
* ``recip(neg(x)) == neg(recip(x))``
* ``abs(neg(x)) == abs(x)``
* ``erf(neg(x)) == neg(erf(x))`` (the executor's polynomial ``erf`` is
  computed as ``sign(x) * f(|x|)`` with a final ``copysign`` on the
  input, so it is odd bit-for-bit for every input — zeros included)

One caveat bounds "bit-exact": when a division/multiplication *invalidly*
produces a NaN (``0/0``, ``inf/inf``, ``0*inf``), the hardware returns
the default quiet NaN irrespective of operand signs, so pulling the
negation out can flip the NaN's sign bit.  Every equality predicate in
this repository — ``np.array_equal(..., equal_nan=True)`` in the
differential executor, the isnan-pair scalar comparison, checksum
equality (which any NaN already poisons regardless of sign) — is blind
to NaN sign and payload, so the rewrite is unobservable there; kernels
whose *finite* results must stay bit-identical are exactly preserved.

Three statement-level rewrites make the expression rules effective
across the locals produced by temporary scalarisation:

* *Copy propagation*: a single-assignment local defined as a bare local,
  scalar or constant reference is substituted into its uses.
* *Negation propagation*: a single-assignment local defined as
  ``neg(core)`` stores ``core`` instead, and every use reads
  ``neg(local)`` — the sign then keeps bubbling outward through the
  rules above.  Locals are private to the kernel, so flipping a local's
  stored sign is unobservable as long as every use is rewritten.
* *Sign-aware local value numbering*: when a single-assignment local's
  (sign-normalised) defining expression is structurally identical to an
  earlier local's, later uses read the earlier local (negated when the
  signs differ) and the duplicate definition is left dead for DCE.
  This is what actually deduplicates the ``erf(±d1/√2)`` pair: the two
  chains differ only in intermediate local names, which structural CSE
  cannot see through.

All rewrites are restricted to loop-local scalars: buffer elements are
kernel outputs (or inputs whose loads must observe interleaved writes),
so their stored values are never altered.  Value-numbering entries whose
expressions read a buffer are invalidated when that buffer is written.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.kernel.kir import (
    Assign,
    BinOp,
    BinOpKind,
    Const,
    Expr,
    Function,
    LocalRef,
    Loop,
    LoopStmt,
    Reduce,
    ScalarRef,
    UnOp,
    UnOpKind,
)

#: Binary operators through which a negation factors bit-exactly.
_SIGN_XOR_BINOPS = (BinOpKind.DIV, BinOpKind.MUL)

#: Unary operators that commute with negation bit-exactly.
_ODD_UNOPS = (UnOpKind.ERF, UnOpKind.RECIP)


def normalize_function(function: Function) -> Function:
    """Apply algebraic normalisation to every loop of the function."""
    body = []
    for stmt in function.body:
        if isinstance(stmt, Loop):
            body.append(_normalize_loop(stmt))
        else:
            body.append(stmt)
    return function.with_body(body)


def _normalize_loop(loop: Loop) -> Loop:
    assign_counts: Dict[str, int] = {}
    for stmt in loop.body:
        if isinstance(stmt, Assign) and stmt.is_local:
            assign_counts[stmt.target] = assign_counts.get(stmt.target, 0) + 1

    substitutions: Dict[str, Expr] = {}
    #: Sign-normalised defining expression -> name of the local holding it.
    value_numbers: Dict[Expr, str] = {}
    new_body: List[LoopStmt] = []
    for stmt in loop.body:
        if not isinstance(stmt, (Assign, Reduce)):  # pragma: no cover
            new_body.append(stmt)
            continue
        expr = _substitute(stmt.expr, substitutions)
        core, negated = _pull_negations(expr)
        if (
            isinstance(stmt, Assign)
            and stmt.is_local
            and assign_counts.get(stmt.target) == 1
        ):
            if _is_propagatable_copy(core, assign_counts):
                # Copy propagation: uses read the source directly (under
                # the sign, if any); the dead copy is left for DCE.
                substitutions[stmt.target] = _materialize(core, negated)
                new_body.append(Assign(target=stmt.target, expr=core, is_local=True))
                continue
            existing = value_numbers.get(core)
            if existing is not None:
                # Value numbering: reuse the earlier local computing the
                # same core, reconciling the sign difference at the uses.
                substitutions[stmt.target] = _materialize(LocalRef(existing), negated)
                new_body.append(
                    Assign(target=stmt.target, expr=LocalRef(existing), is_local=True)
                )
                continue
            value_numbers[core] = stmt.target
            if negated:
                # Store the positive core; later uses read ``neg(local)``
                # and keep pushing the sign outward.
                substitutions[stmt.target] = UnOp(UnOpKind.NEG, LocalRef(stmt.target))
            new_body.append(Assign(target=stmt.target, expr=core, is_local=True))
            continue
        materialized = _materialize(core, negated)
        if isinstance(stmt, Assign):
            new_stmt: LoopStmt = Assign(
                target=stmt.target, expr=materialized, is_local=stmt.is_local
            )
        else:
            new_stmt = Reduce(target=stmt.target, kind=stmt.kind, expr=materialized)
        new_body.append(new_stmt)
        # A buffer write — or a redefinition of a multi-assigned local —
        # invalidates value numbers that read it.
        written = new_stmt.buffers_written()
        if written:
            stale = [e for e in value_numbers if e.buffers_read() & written]
            for e in stale:
                del value_numbers[e]
        if isinstance(new_stmt, Assign) and new_stmt.is_local:
            stale = [e for e in value_numbers if new_stmt.target in e.locals_read()]
            for e in stale:
                del value_numbers[e]

    return Loop(index_buffer=loop.index_buffer, body=tuple(new_body), parallel=loop.parallel)


def _is_propagatable_copy(expr: Expr, assign_counts: Dict[str, int]) -> bool:
    """True when substituting ``expr`` for a local is always sound.

    Buffer loads are excluded: an interleaved write to the buffer between
    the copy and a use would change the observed value.  Local references
    are only propagated when the source local is itself single-assignment.
    """
    if isinstance(expr, (ScalarRef, Const)):
        return True
    if isinstance(expr, LocalRef):
        return assign_counts.get(expr.name) == 1
    return False


def _substitute(expr: Expr, substitutions: Dict[str, Expr]) -> Expr:
    if not substitutions:
        return expr
    if isinstance(expr, LocalRef):
        return substitutions.get(expr.name, expr)
    if isinstance(expr, BinOp):
        return BinOp(
            expr.op,
            _substitute(expr.lhs, substitutions),
            _substitute(expr.rhs, substitutions),
        )
    if isinstance(expr, UnOp):
        return UnOp(expr.op, _substitute(expr.operand, substitutions))
    return expr


def _pull_negations(expr: Expr) -> Tuple[Expr, bool]:
    """Rewrite ``expr`` as ``(core, sign)`` with negations pulled outward.

    ``sign`` is True when the expression's value is ``neg(core)``.  Only
    the bit-exact identities listed in the module docstring are applied.
    """
    if isinstance(expr, UnOp):
        if expr.op is UnOpKind.NEG:
            core, negated = _pull_negations(expr.operand)
            return core, not negated
        if expr.op in _ODD_UNOPS:
            core, negated = _pull_negations(expr.operand)
            return UnOp(expr.op, core), negated
        if expr.op is UnOpKind.ABS:
            core, _ = _pull_negations(expr.operand)
            return UnOp(UnOpKind.ABS, core), False
        return UnOp(expr.op, _materialize(*_pull_negations(expr.operand))), False
    if isinstance(expr, BinOp):
        if expr.op in _SIGN_XOR_BINOPS:
            lhs_core, lhs_neg = _pull_negations(expr.lhs)
            rhs_core, rhs_neg = _pull_negations(expr.rhs)
            return BinOp(expr.op, lhs_core, rhs_core), lhs_neg != rhs_neg
        return (
            BinOp(
                expr.op,
                _materialize(*_pull_negations(expr.lhs)),
                _materialize(*_pull_negations(expr.rhs)),
            ),
            False,
        )
    return expr, False


def _materialize(core: Expr, negated: bool) -> Expr:
    return UnOp(UnOpKind.NEG, core) if negated else core
