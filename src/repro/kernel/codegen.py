"""Code generation: KIR kernels compiled to straight-line NumPy closures.

The paper's Diffuse JIT-compiles fused MLIR kernels to real device code so
that a memoized replay round executes pre-compiled kernels with no
per-statement interpretation.  This module plays that role for the
reproduction: a KIR :class:`~repro.kernel.kir.Function` is translated to
Python source whose statements are vectorised NumPy expressions, compiled
with the builtin ``compile`` exactly once, and wrapped in a
:class:`CodegenExecutor` with the same calling convention as the
tree-walking interpreter.

The emitted code mirrors the interpreter operation for operation — the
same NumPy calls in the same order — so results are bit-identical, which
the differential backend (``REPRO_KERNEL_BACKEND=differential``) asserts
on every kernel invocation.

Compiled functions are cached by source text at module level.  Two
kernels with the same canonical form produce identical source, so a
memoization hit anywhere in the process (even from a different
:class:`~repro.kernel.compiler.JITCompiler` instance of a weak-scaling
sweep) reuses the already-compiled closure instead of invoking
``compile`` again.  :func:`codegen_stats` exposes the counters that the
regression tests assert on.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.kernel.kir import (
    Alloc,
    Assign,
    BinOp,
    BinOpKind,
    Const,
    Expr,
    Function,
    Load,
    LocalRef,
    Loop,
    Param,
    ParamKind,
    Reduce,
    ReduceKind,
    ScalarRef,
    UnOp,
    UnOpKind,
    _erf,
)
from repro.kernel.lowering import KernelExecutor, ReductionPartial
from repro.kernel.passes.compose import KernelBinding


class CodegenError(RuntimeError):
    """Raised when a kernel cannot be translated to Python source."""


# ----------------------------------------------------------------------
# Operator spellings.  Each entry mirrors the corresponding lambda in
# ``kir._BINOP_EVAL`` / ``kir._UNOP_EVAL`` so the generated code performs
# the exact same NumPy calls as the interpreter.
# ----------------------------------------------------------------------
_BINOP_FMT: Dict[BinOpKind, str] = {
    BinOpKind.ADD: "({lhs} + {rhs})",
    BinOpKind.SUB: "({lhs} - {rhs})",
    BinOpKind.MUL: "({lhs} * {rhs})",
    BinOpKind.DIV: "({lhs} / {rhs})",
    BinOpKind.POW: "np.power({lhs}, {rhs})",
    BinOpKind.MAX: "np.maximum({lhs}, {rhs})",
    BinOpKind.MIN: "np.minimum({lhs}, {rhs})",
    BinOpKind.LT: "({lhs} < {rhs}).astype(np.float64)",
    BinOpKind.GT: "({lhs} > {rhs}).astype(np.float64)",
    BinOpKind.LE: "({lhs} <= {rhs}).astype(np.float64)",
    BinOpKind.GE: "({lhs} >= {rhs}).astype(np.float64)",
    BinOpKind.EQ: "({lhs} == {rhs}).astype(np.float64)",
}

_UNOP_FMT: Dict[UnOpKind, str] = {
    UnOpKind.NEG: "(-{operand})",
    UnOpKind.SQRT: "np.sqrt({operand})",
    UnOpKind.EXP: "np.exp({operand})",
    UnOpKind.LOG: "np.log({operand})",
    UnOpKind.ABS: "np.abs({operand})",
    UnOpKind.ERF: "_erf({operand})",
    UnOpKind.SIN: "np.sin({operand})",
    UnOpKind.COS: "np.cos({operand})",
    UnOpKind.TANH: "np.tanh({operand})",
    UnOpKind.RECIP: "(1.0 / {operand})",
}

_REDUCE_FMT: Dict[ReduceKind, str] = {
    ReduceKind.SUM: "float(np.sum({value}))",
    ReduceKind.PROD: "float(np.prod({value}))",
    ReduceKind.MAX: "float(np.max({value}))",
    ReduceKind.MIN: "float(np.min({value}))",
}

# Spellings of ``kir.combine_reduction`` for repeated reductions into the
# same target.
_COMBINE_FMT: Dict[ReduceKind, str] = {
    ReduceKind.SUM: "float({acc} + {new})",
    ReduceKind.PROD: "float({acc} * {new})",
    ReduceKind.MAX: "float(max({acc}, {new}))",
    ReduceKind.MIN: "float(min({acc}, {new}))",
}

#: Globals shared by every generated kernel function.
_KERNEL_ENV: Dict[str, object] = {
    "np": np,
    "_erf": _erf,
    "ReductionPartial": ReductionPartial,
    "ReduceKind": ReduceKind,
}

#: Source text -> compiled kernel entry point.  Keyed on the full module
#: source so that two structurally-identical kernels (the same canonical
#: form) share one compiled closure process-wide.
_FUNCTION_CACHE: Dict[str, Callable] = {}


@dataclass
class CodegenCounters:
    """Process-wide codegen activity counters (asserted by tests)."""

    source_compilations: int = 0
    source_cache_hits: int = 0

    def reset(self) -> None:
        self.source_compilations = 0
        self.source_cache_hits = 0


_COUNTERS = CodegenCounters()


def codegen_stats() -> CodegenCounters:
    """The process-wide codegen counters."""
    return _COUNTERS


def clear_function_cache() -> None:
    """Drop all compiled closures and reset counters (tests only)."""
    _FUNCTION_CACHE.clear()
    _COUNTERS.reset()


_IDENT_RE = re.compile(r"\W")


# ----------------------------------------------------------------------
# Single-use temporary folding.
#
# The composed kernels materialise every intermediate value: scalarised
# temporaries become one generated statement each and surviving
# task-local allocations become ``np.zeros_like`` + a full-array copy.
# A temporary that is assigned once and consumed once can instead be
# folded into its consumer's expression — the same NumPy operations run
# in the same order on the same operands, so results stay bit-identical
# (asserted by the differential backend on every invocation), while the
# kernel executes fewer statements and, for folded allocations, skips
# the zero-fill and the copy pass entirely.
# ----------------------------------------------------------------------
def _count_expr_refs(expr: Expr, buffer_loads, local_refs) -> None:
    """Count Load/LocalRef occurrences (with multiplicity) in ``expr``."""
    if isinstance(expr, Load):
        buffer_loads[expr.buffer] = buffer_loads.get(expr.buffer, 0) + 1
    elif isinstance(expr, LocalRef):
        local_refs[expr.name] = local_refs.get(expr.name, 0) + 1
    elif isinstance(expr, BinOp):
        _count_expr_refs(expr.lhs, buffer_loads, local_refs)
        _count_expr_refs(expr.rhs, buffer_loads, local_refs)
    elif isinstance(expr, UnOp):
        _count_expr_refs(expr.operand, buffer_loads, local_refs)


def _transitive_refs(
    expr: Expr, plan: Dict[Tuple[str, str], Expr]
) -> Tuple[Set[str], Set[str]]:
    """(buffers, locals) the expression reads once folded temps are inlined.

    Folded names resolve recursively through their defining expressions;
    the returned sets contain only names that will actually be evaluated
    at the fold site, which is what the hazard analysis must guard.
    """
    loads: Dict[str, int] = {}
    locals_: Dict[str, int] = {}
    _count_expr_refs(expr, loads, locals_)
    buffers: Set[str] = set()
    local_refs: Set[str] = set()
    for name in loads:
        if ("b", name) in plan:
            inner_buffers, inner_locals = _transitive_refs(plan[("b", name)], plan)
            buffers |= inner_buffers
            local_refs |= inner_locals
        else:
            buffers.add(name)
    for name in locals_:
        if ("l", name) in plan:
            inner_buffers, inner_locals = _transitive_refs(plan[("l", name)], plan)
            buffers |= inner_buffers
            local_refs |= inner_locals
        else:
            local_refs.add(name)
    return buffers, local_refs


def _statement_refs(stmt) -> Tuple[Dict[str, int], Dict[str, int]]:
    """(buffer loads, local refs) of one loop statement's expression."""
    loads: Dict[str, int] = {}
    locals_: Dict[str, int] = {}
    _count_expr_refs(stmt.expr, loads, locals_)
    return loads, locals_


def _fold_plan(function: Function, buffer_params: Set[str]) -> Dict[Tuple[str, str], Expr]:
    """Decide which single-use temporaries fold into their consumer.

    Returns ``(kind, name) -> defining expression`` where ``kind`` is
    ``"l"`` for loop-local scalars and ``"b"`` for task-local (alloc'd)
    buffers.  A temporary folds when it is defined exactly once, used
    exactly once *after* its definition in the same loop, and no buffer
    its (transitively folded) definition loads is written between the
    definition and the use — folding moves evaluation to the use site,
    so intervening writes would change the observed values.
    """
    alloc_names = {s.name for s in function.body if isinstance(s, Alloc)}
    alloc_likes = {s.like for s in function.body if isinstance(s, Alloc)}

    buffer_writes: Dict[str, int] = {}
    buffer_loads: Dict[str, int] = {}
    local_defs: Dict[str, int] = {}
    local_uses: Dict[str, int] = {}
    reduce_targets: Set[str] = set()
    index_buffers: Set[str] = set()
    loops = [stmt for stmt in function.body if isinstance(stmt, Loop)]
    for loop in loops:
        index_buffers.add(loop.index_buffer)
        for inner in loop.body:
            if isinstance(inner, Assign):
                if inner.is_local:
                    local_defs[inner.target] = local_defs.get(inner.target, 0) + 1
                else:
                    buffer_writes[inner.target] = buffer_writes.get(inner.target, 0) + 1
                _count_expr_refs(inner.expr, buffer_loads, local_uses)
            elif isinstance(inner, Reduce):
                reduce_targets.add(inner.target)
                _count_expr_refs(inner.expr, buffer_loads, local_uses)

    plan: Dict[Tuple[str, str], Expr] = {}
    for loop in loops:
        body = loop.body
        for index, stmt in enumerate(body):
            if not isinstance(stmt, Assign):
                continue
            name = stmt.target
            if stmt.is_local:
                if local_defs.get(name) != 1 or local_uses.get(name) != 1:
                    continue
                kind = "l"
            else:
                if name not in alloc_names or name in buffer_params:
                    continue
                if buffer_writes.get(name) != 1 or buffer_loads.get(name) != 1:
                    continue
                if name in alloc_likes or name in index_buffers or name in reduce_targets:
                    continue
                kind = "b"

            use_at = None
            for later in range(index + 1, len(body)):
                loads, locals_ = _statement_refs(body[later])
                refs = locals_ if kind == "l" else loads
                if name in refs:
                    use_at = later
                    break
            if use_at is None:
                continue

            loaded, local_refs = _transitive_refs(stmt.expr, plan)
            if kind == "b" and not loaded:
                # A load-free definition may be zero-dimensional; the
                # materialised buffer would have the allocation's full
                # shape, so folding could change reduction semantics.
                continue
            hazard = False
            for between in range(index + 1, use_at):
                other = body[between]
                if not isinstance(other, Assign):
                    continue
                # Folding moves evaluation to the use site: a write to
                # any buffer — or a reassignment of any (unfolded) local
                # — that the expression reads would change its value.
                if other.is_local:
                    if other.target in local_refs:
                        hazard = True
                        break
                elif other.target in loaded:
                    hazard = True
                    break
            if not hazard:
                plan[(kind, name)] = stmt.expr
    return plan


class _NameTable:
    """Deterministic mapping from KIR names to Python identifiers."""

    def __init__(self) -> None:
        self._names: Dict[Tuple[str, str], str] = {}

    def get(self, kind: str, name: str) -> str:
        key = (kind, name)
        ident = self._names.get(key)
        if ident is None:
            ident = f"_{kind}{len(self._names)}_{_IDENT_RE.sub('_', name)}"
            self._names[key] = ident
        return ident


class _SourceWriter:
    """Accumulates indented Python source lines."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.indent = 0

    def emit(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


def _emit_expr(
    expr: Expr,
    names: _NameTable,
    folded: Optional[Dict[Tuple[str, str], Expr]] = None,
) -> str:
    """Render an expression tree as Python source.

    References to folded single-use temporaries are replaced by their
    (recursively rendered) defining expressions; every rendered form is
    self-delimiting, so substitution needs no extra parentheses.
    """
    if isinstance(expr, Const):
        # repr() round-trips doubles exactly; np.float64 mirrors the
        # interpreter's Const evaluation.
        return f"np.float64({expr.value!r})"
    if isinstance(expr, ScalarRef):
        return names.get("s", expr.name)
    if isinstance(expr, Load):
        if folded is not None and ("b", expr.buffer) in folded:
            return _emit_expr(folded[("b", expr.buffer)], names, folded)
        return names.get("b", expr.buffer)
    if isinstance(expr, LocalRef):
        if folded is not None and ("l", expr.name) in folded:
            return _emit_expr(folded[("l", expr.name)], names, folded)
        return names.get("l", expr.name)
    if isinstance(expr, BinOp):
        return _BINOP_FMT[expr.op].format(
            lhs=_emit_expr(expr.lhs, names, folded),
            rhs=_emit_expr(expr.rhs, names, folded),
        )
    if isinstance(expr, UnOp):
        return _UNOP_FMT[expr.op].format(
            operand=_emit_expr(expr.operand, names, folded)
        )
    raise CodegenError(f"unknown expression {expr!r}")


def generate_source(function: Function) -> str:
    """Translate a KIR function into the source of ``__kernel__``.

    The generated function takes the executor's ``(buffers, scalars)``
    dictionaries and returns the reduction partials, exactly like the
    interpreter.  Statement order, operation order and operand spellings
    all match the interpreter so results are bit-identical.
    """
    names = _NameTable()
    out = _SourceWriter()
    out.emit(f"def __kernel__(buffers, scalars):  # kernel {function.name!r}")
    out.indent += 1

    buffer_names: Set[str] = set()
    for param in function.params:
        if param.kind is ParamKind.BUFFER:
            ident = names.get("b", param.name)
            out.emit(f"{ident} = buffers[{param.name!r}]")
            buffer_names.add(param.name)
        else:
            ident = names.get("s", param.name)
            out.emit(f"{ident} = np.float64(scalars[{param.name!r}])")

    # Single-use temporaries folded into their consumer expressions:
    # their definitions are never emitted and folded allocations skip
    # materialisation (no zero-fill, no copy pass).
    folded = _fold_plan(function, buffer_names)
    folded_allocs = {name for kind, name in folded if kind == "b"}

    # Task-local allocations.  The reference buffer must be materialised
    # (reduction targets are handed to the executor as None).
    for stmt in function.body:
        if not isinstance(stmt, Alloc):
            continue
        if stmt.name in folded_allocs:
            continue
        if stmt.like not in buffer_names:
            raise CodegenError(
                f"allocation '{stmt.name}' references unknown buffer '{stmt.like}' "
                f"in kernel '{function.name}'"
            )
        like = names.get("b", stmt.like)
        out.emit(f"if {like} is None:")
        out.indent += 1
        out.emit(
            "raise RuntimeError("
            f"\"allocation '{stmt.name}' has no reference buffer '{stmt.like}'\")"
        )
        out.indent -= 1
        out.emit(f"{names.get('b', stmt.name)} = np.zeros_like({like})")
        buffer_names.add(stmt.name)

    unknown_loads = function.buffers_read() - buffer_names - folded_allocs
    if unknown_loads:
        raise CodegenError(
            f"kernel '{function.name}' loads undeclared buffers "
            f"{sorted(unknown_loads)}"
        )

    #: Buffers already guarded against a missing materialisation.
    guarded: Set[str] = set()
    #: Reduction partial accumulators: target -> (ident, last ReduceKind).
    partials: Dict[str, Tuple[str, ReduceKind]] = {}
    temp_counter = 0

    for stmt in function.body:
        if isinstance(stmt, Alloc):
            continue
        if not isinstance(stmt, Loop):  # pragma: no cover - no other kinds
            raise CodegenError(f"unknown statement {stmt!r}")
        index_ident = (
            names.get("b", stmt.index_buffer)
            if stmt.index_buffer in buffer_names
            else None
        )
        for inner in stmt.body:
            if isinstance(inner, Assign):
                fold_key = ("l" if inner.is_local else "b", inner.target)
                if fold_key in folded:
                    # Deferred: the expression is rendered inline at the
                    # temporary's single use site.
                    continue
                value = _emit_expr(inner.expr, names, folded)
                if inner.is_local:
                    out.emit(f"{names.get('l', inner.target)} = {value}")
                    continue
                if inner.target not in buffer_names:
                    raise CodegenError(
                        f"assignment to unknown buffer '{inner.target}' in "
                        f"kernel '{function.name}'"
                    )
                target = names.get("b", inner.target)
                if inner.target not in guarded:
                    guarded.add(inner.target)
                    out.emit(f"if {target} is None:")
                    out.indent += 1
                    out.emit(
                        "raise RuntimeError("
                        f"\"buffer '{inner.target}' is not materialised\")"
                    )
                    out.indent -= 1
                out.emit(f"{target}[...] = {value}")
            elif isinstance(inner, Reduce):
                value = _emit_expr(inner.expr, names, folded)
                if index_ident:
                    # Mirror the interpreter's runtime broadcast exactly:
                    # a 0-d value (loop-invariant expression, or a load
                    # from a rank-0 buffer) is broadcast over the index
                    # space so e.g. summing a constant counts elements.
                    tmp = f"_r{temp_counter}"
                    temp_counter += 1
                    out.emit(f"{tmp} = np.asarray({value})")
                    out.emit(f"if {tmp}.ndim == 0 and {index_ident} is not None:")
                    out.indent += 1
                    out.emit(f"{tmp} = np.broadcast_to({tmp}, {index_ident}.shape)")
                    out.indent -= 1
                    value = tmp
                reduced = _REDUCE_FMT[inner.kind].format(value=value)
                existing = partials.get(inner.target)
                if existing is None:
                    acc = f"_p{len(partials)}"
                    partials[inner.target] = (acc, inner.kind)
                    out.emit(f"{acc} = {reduced}")
                else:
                    acc, _ = existing
                    partials[inner.target] = (acc, inner.kind)
                    tmp = f"_r{temp_counter}"
                    temp_counter += 1
                    out.emit(f"{tmp} = {reduced}")
                    out.emit(
                        f"{acc} = "
                        + _COMBINE_FMT[inner.kind].format(acc=acc, new=tmp)
                    )
            else:  # pragma: no cover - no other loop statement kinds
                raise CodegenError(f"unknown loop statement {inner!r}")

    if partials:
        items = ", ".join(
            f"{target!r}: ReductionPartial(kind=ReduceKind.{kind.name}, value={acc})"
            for target, (acc, kind) in partials.items()
        )
        out.emit(f"return {{{items}}}")
    else:
        out.emit("return {}")
    return out.source()


def _compile_source(source: str, kernel_name: str) -> Tuple[Callable, bool]:
    """Compile kernel source, reusing the process-wide closure cache."""
    fn = _FUNCTION_CACHE.get(source)
    if fn is not None:
        _COUNTERS.source_cache_hits += 1
        return fn, False
    code = compile(source, f"<kir-codegen:{kernel_name}>", "exec")
    namespace = dict(_KERNEL_ENV)
    exec(code, namespace)
    fn = namespace["__kernel__"]
    _FUNCTION_CACHE[source] = fn
    _COUNTERS.source_compilations += 1
    return fn, True


class CodegenExecutor(KernelExecutor):
    """Executes a kernel through its compiled NumPy closure."""

    backend = "codegen"

    def __init__(self, function: Function, binding: KernelBinding) -> None:
        super().__init__(function, binding)
        self.source = generate_source(function)
        self._fn, self.freshly_compiled = _compile_source(self.source, function.name)

    def __call__(
        self,
        buffers: Dict[str, Optional[np.ndarray]],
        scalars: Dict[str, float],
    ) -> Dict[str, ReductionPartial]:
        return self._fn(buffers, scalars)
