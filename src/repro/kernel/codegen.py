"""Code generation: KIR kernels compiled to straight-line NumPy closures.

The paper's Diffuse JIT-compiles fused MLIR kernels to real device code so
that a memoized replay round executes pre-compiled kernels with no
per-statement interpretation.  This module plays that role for the
reproduction: a KIR :class:`~repro.kernel.kir.Function` is translated to
Python source whose statements are vectorised NumPy expressions, compiled
with the builtin ``compile`` exactly once, and wrapped in a
:class:`CodegenExecutor` with the same calling convention as the
tree-walking interpreter.

The emitted code mirrors the interpreter operation for operation — the
same NumPy calls in the same order — so results are bit-identical, which
the differential backend (``REPRO_KERNEL_BACKEND=differential``) asserts
on every kernel invocation.

Compiled functions are cached by source text at module level.  Two
kernels with the same canonical form produce identical source, so a
memoization hit anywhere in the process (even from a different
:class:`~repro.kernel.compiler.JITCompiler` instance of a weak-scaling
sweep) reuses the already-compiled closure instead of invoking
``compile`` again.  :func:`codegen_stats` exposes the counters that the
regression tests assert on.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.kernel.kir import (
    Alloc,
    Assign,
    BinOp,
    BinOpKind,
    Const,
    Expr,
    Function,
    Load,
    LocalRef,
    Loop,
    Param,
    ParamKind,
    Reduce,
    ReduceKind,
    ScalarRef,
    UnOp,
    UnOpKind,
    _erf,
)
from repro.kernel.lowering import KernelExecutor, ReductionPartial
from repro.kernel.passes.compose import KernelBinding


class CodegenError(RuntimeError):
    """Raised when a kernel cannot be translated to Python source."""


# ----------------------------------------------------------------------
# Operator spellings.  Each entry mirrors the corresponding lambda in
# ``kir._BINOP_EVAL`` / ``kir._UNOP_EVAL`` so the generated code performs
# the exact same NumPy calls as the interpreter.
# ----------------------------------------------------------------------
_BINOP_FMT: Dict[BinOpKind, str] = {
    BinOpKind.ADD: "({lhs} + {rhs})",
    BinOpKind.SUB: "({lhs} - {rhs})",
    BinOpKind.MUL: "({lhs} * {rhs})",
    BinOpKind.DIV: "({lhs} / {rhs})",
    BinOpKind.POW: "np.power({lhs}, {rhs})",
    BinOpKind.MAX: "np.maximum({lhs}, {rhs})",
    BinOpKind.MIN: "np.minimum({lhs}, {rhs})",
    BinOpKind.LT: "({lhs} < {rhs}).astype(np.float64)",
    BinOpKind.GT: "({lhs} > {rhs}).astype(np.float64)",
    BinOpKind.LE: "({lhs} <= {rhs}).astype(np.float64)",
    BinOpKind.GE: "({lhs} >= {rhs}).astype(np.float64)",
    BinOpKind.EQ: "({lhs} == {rhs}).astype(np.float64)",
}

_UNOP_FMT: Dict[UnOpKind, str] = {
    UnOpKind.NEG: "(-{operand})",
    UnOpKind.SQRT: "np.sqrt({operand})",
    UnOpKind.EXP: "np.exp({operand})",
    UnOpKind.LOG: "np.log({operand})",
    UnOpKind.ABS: "np.abs({operand})",
    UnOpKind.ERF: "_erf({operand})",
    UnOpKind.SIN: "np.sin({operand})",
    UnOpKind.COS: "np.cos({operand})",
    UnOpKind.TANH: "np.tanh({operand})",
    UnOpKind.RECIP: "(1.0 / {operand})",
}

_REDUCE_FMT: Dict[ReduceKind, str] = {
    ReduceKind.SUM: "float(np.sum({value}))",
    ReduceKind.PROD: "float(np.prod({value}))",
    ReduceKind.MAX: "float(np.max({value}))",
    ReduceKind.MIN: "float(np.min({value}))",
}

#: Direct ``ufunc.reduce`` spellings used inside super-kernel rank loops.
#: For array operands ``np.sum``/``np.prod``/``np.max``/``np.min`` all
#: dispatch to exactly these calls (``fromnumeric._wrapreduction`` with
#: ``axis=None``), so the reduced values are bit-identical while the
#: Python dispatch wrapper — paid once per rank inside the fused loop —
#: is skipped.
_REDUCE_FMT_DIRECT: Dict[ReduceKind, str] = {
    ReduceKind.SUM: "float(np.add.reduce({value}, axis=None))",
    ReduceKind.PROD: "float(np.multiply.reduce({value}, axis=None))",
    ReduceKind.MAX: "float(np.maximum.reduce({value}, axis=None))",
    ReduceKind.MIN: "float(np.minimum.reduce({value}, axis=None))",
}

# Spellings of ``kir.combine_reduction`` for repeated reductions into the
# same target.
_COMBINE_FMT: Dict[ReduceKind, str] = {
    ReduceKind.SUM: "float({acc} + {new})",
    ReduceKind.PROD: "float({acc} * {new})",
    ReduceKind.MAX: "float(max({acc}, {new}))",
    ReduceKind.MIN: "float(min({acc}, {new}))",
}

#: Globals shared by every generated kernel function.
_KERNEL_ENV: Dict[str, object] = {
    "np": np,
    "_erf": _erf,
    "ReductionPartial": ReductionPartial,
    "ReduceKind": ReduceKind,
}

#: Source text -> compiled kernel entry point.  Keyed on the full module
#: source so that two structurally-identical kernels (the same canonical
#: form) share one compiled closure process-wide.
_FUNCTION_CACHE: Dict[str, Callable] = {}


@dataclass
class CodegenCounters:
    """Process-wide codegen activity counters (asserted by tests)."""

    source_compilations: int = 0
    source_cache_hits: int = 0

    def reset(self) -> None:
        self.source_compilations = 0
        self.source_cache_hits = 0


_COUNTERS = CodegenCounters()


def codegen_stats() -> CodegenCounters:
    """The process-wide codegen counters."""
    return _COUNTERS


def clear_function_cache() -> None:
    """Drop all compiled closures and reset counters (tests only)."""
    _FUNCTION_CACHE.clear()
    _COUNTERS.reset()


_IDENT_RE = re.compile(r"\W")


# ----------------------------------------------------------------------
# Single-use temporary folding.
#
# The composed kernels materialise every intermediate value: scalarised
# temporaries become one generated statement each and surviving
# task-local allocations become ``np.zeros_like`` + a full-array copy.
# A temporary that is assigned once and consumed once can instead be
# folded into its consumer's expression — the same NumPy operations run
# in the same order on the same operands, so results stay bit-identical
# (asserted by the differential backend on every invocation), while the
# kernel executes fewer statements and, for folded allocations, skips
# the zero-fill and the copy pass entirely.
# ----------------------------------------------------------------------
def _count_expr_refs(expr: Expr, buffer_loads, local_refs) -> None:
    """Count Load/LocalRef occurrences (with multiplicity) in ``expr``."""
    if isinstance(expr, Load):
        buffer_loads[expr.buffer] = buffer_loads.get(expr.buffer, 0) + 1
    elif isinstance(expr, LocalRef):
        local_refs[expr.name] = local_refs.get(expr.name, 0) + 1
    elif isinstance(expr, BinOp):
        _count_expr_refs(expr.lhs, buffer_loads, local_refs)
        _count_expr_refs(expr.rhs, buffer_loads, local_refs)
    elif isinstance(expr, UnOp):
        _count_expr_refs(expr.operand, buffer_loads, local_refs)


def _transitive_refs(
    expr: Expr, plan: Dict[Tuple[str, str], Expr]
) -> Tuple[Set[str], Set[str]]:
    """(buffers, locals) the expression reads once folded temps are inlined.

    Folded names resolve recursively through their defining expressions;
    the returned sets contain only names that will actually be evaluated
    at the fold site, which is what the hazard analysis must guard.
    """
    loads: Dict[str, int] = {}
    locals_: Dict[str, int] = {}
    _count_expr_refs(expr, loads, locals_)
    buffers: Set[str] = set()
    local_refs: Set[str] = set()
    for name in loads:
        if ("b", name) in plan:
            inner_buffers, inner_locals = _transitive_refs(plan[("b", name)], plan)
            buffers |= inner_buffers
            local_refs |= inner_locals
        else:
            buffers.add(name)
    for name in locals_:
        if ("l", name) in plan:
            inner_buffers, inner_locals = _transitive_refs(plan[("l", name)], plan)
            buffers |= inner_buffers
            local_refs |= inner_locals
        else:
            local_refs.add(name)
    return buffers, local_refs


def _statement_refs(stmt) -> Tuple[Dict[str, int], Dict[str, int]]:
    """(buffer loads, local refs) of one loop statement's expression."""
    loads: Dict[str, int] = {}
    locals_: Dict[str, int] = {}
    _count_expr_refs(stmt.expr, loads, locals_)
    return loads, locals_


def _fold_plan(function: Function, buffer_params: Set[str]) -> Dict[Tuple[str, str], Expr]:
    """Decide which single-use temporaries fold into their consumer.

    Returns ``(kind, name) -> defining expression`` where ``kind`` is
    ``"l"`` for loop-local scalars and ``"b"`` for task-local (alloc'd)
    buffers.  A temporary folds when it is defined exactly once, used
    exactly once *after* its definition in the same loop, and no buffer
    its (transitively folded) definition loads is written between the
    definition and the use — folding moves evaluation to the use site,
    so intervening writes would change the observed values.
    """
    alloc_names = {s.name for s in function.body if isinstance(s, Alloc)}
    alloc_likes = {s.like for s in function.body if isinstance(s, Alloc)}

    buffer_writes: Dict[str, int] = {}
    buffer_loads: Dict[str, int] = {}
    local_defs: Dict[str, int] = {}
    local_uses: Dict[str, int] = {}
    reduce_targets: Set[str] = set()
    index_buffers: Set[str] = set()
    loops = [stmt for stmt in function.body if isinstance(stmt, Loop)]
    for loop in loops:
        index_buffers.add(loop.index_buffer)
        for inner in loop.body:
            if isinstance(inner, Assign):
                if inner.is_local:
                    local_defs[inner.target] = local_defs.get(inner.target, 0) + 1
                else:
                    buffer_writes[inner.target] = buffer_writes.get(inner.target, 0) + 1
                _count_expr_refs(inner.expr, buffer_loads, local_uses)
            elif isinstance(inner, Reduce):
                reduce_targets.add(inner.target)
                _count_expr_refs(inner.expr, buffer_loads, local_uses)

    plan: Dict[Tuple[str, str], Expr] = {}
    for loop in loops:
        body = loop.body
        for index, stmt in enumerate(body):
            if not isinstance(stmt, Assign):
                continue
            name = stmt.target
            if stmt.is_local:
                if local_defs.get(name) != 1 or local_uses.get(name) != 1:
                    continue
                kind = "l"
            else:
                if name not in alloc_names or name in buffer_params:
                    continue
                if buffer_writes.get(name) != 1 or buffer_loads.get(name) != 1:
                    continue
                if name in alloc_likes or name in index_buffers or name in reduce_targets:
                    continue
                kind = "b"

            use_at = None
            for later in range(index + 1, len(body)):
                loads, locals_ = _statement_refs(body[later])
                refs = locals_ if kind == "l" else loads
                if name in refs:
                    use_at = later
                    break
            if use_at is None:
                continue

            loaded, local_refs = _transitive_refs(stmt.expr, plan)
            if kind == "b" and not loaded:
                # A load-free definition may be zero-dimensional; the
                # materialised buffer would have the allocation's full
                # shape, so folding could change reduction semantics.
                continue
            hazard = False
            for between in range(index + 1, use_at):
                other = body[between]
                if not isinstance(other, Assign):
                    continue
                # Folding moves evaluation to the use site: a write to
                # any buffer — or a reassignment of any (unfolded) local
                # — that the expression reads would change its value.
                if other.is_local:
                    if other.target in local_refs:
                        hazard = True
                        break
                elif other.target in loaded:
                    hazard = True
                    break
            if not hazard:
                plan[(kind, name)] = stmt.expr
    return plan


class _NameTable:
    """Deterministic mapping from KIR names to Python identifiers."""

    def __init__(self) -> None:
        self._names: Dict[Tuple[str, str], str] = {}

    def get(self, kind: str, name: str) -> str:
        key = (kind, name)
        ident = self._names.get(key)
        if ident is None:
            ident = f"_{kind}{len(self._names)}_{_IDENT_RE.sub('_', name)}"
            self._names[key] = ident
        return ident

    def seed(self, kind: str, name: str, ident: str) -> None:
        """Pin a name to an existing identifier (cross-section aliasing)."""
        self._names[(kind, name)] = ident


class _PrefixedNames:
    """A section-scoped view of a shared name table.

    Super-kernel sections concatenate several kernels into one generated
    function; prefixing every KIR name with the section's ``k{i}:`` tag
    keeps the sections' namespaces disjoint while cross-section folds can
    still alias two prefixed names to one identifier via ``seed``.
    """

    def __init__(self, base: _NameTable, prefix: str) -> None:
        self._base = base
        self._prefix = prefix

    def get(self, kind: str, name: str) -> str:
        return self._base.get(kind, self._prefix + name)


class _SourceWriter:
    """Accumulates indented Python source lines."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.indent = 0

    def emit(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


def _emit_expr(
    expr: Expr,
    names: _NameTable,
    folded: Optional[Dict[Tuple[str, str], Expr]] = None,
) -> str:
    """Render an expression tree as Python source.

    References to folded single-use temporaries are replaced by their
    (recursively rendered) defining expressions; every rendered form is
    self-delimiting, so substitution needs no extra parentheses.
    """
    if isinstance(expr, Const):
        # repr() round-trips doubles exactly; np.float64 mirrors the
        # interpreter's Const evaluation.
        return f"np.float64({expr.value!r})"
    if isinstance(expr, ScalarRef):
        return names.get("s", expr.name)
    if isinstance(expr, Load):
        if folded is not None and ("b", expr.buffer) in folded:
            return _emit_expr(folded[("b", expr.buffer)], names, folded)
        return names.get("b", expr.buffer)
    if isinstance(expr, LocalRef):
        if folded is not None and ("l", expr.name) in folded:
            return _emit_expr(folded[("l", expr.name)], names, folded)
        return names.get("l", expr.name)
    if isinstance(expr, BinOp):
        return _BINOP_FMT[expr.op].format(
            lhs=_emit_expr(expr.lhs, names, folded),
            rhs=_emit_expr(expr.rhs, names, folded),
        )
    if isinstance(expr, UnOp):
        return _UNOP_FMT[expr.op].format(
            operand=_emit_expr(expr.operand, names, folded)
        )
    raise CodegenError(f"unknown expression {expr!r}")


def generate_source(function: Function) -> str:
    """Translate a KIR function into the source of ``__kernel__``.

    The generated function takes the executor's ``(buffers, scalars)``
    dictionaries and returns the reduction partials, exactly like the
    interpreter.  Statement order, operation order and operand spellings
    all match the interpreter so results are bit-identical.
    """
    names = _NameTable()
    out = _SourceWriter()
    out.emit(f"def __kernel__(buffers, scalars):  # kernel {function.name!r}")
    out.indent += 1

    buffer_names: Set[str] = set()
    for param in function.params:
        if param.kind is ParamKind.BUFFER:
            ident = names.get("b", param.name)
            out.emit(f"{ident} = buffers[{param.name!r}]")
            buffer_names.add(param.name)
        else:
            ident = names.get("s", param.name)
            out.emit(f"{ident} = np.float64(scalars[{param.name!r}])")

    # Single-use temporaries folded into their consumer expressions:
    # their definitions are never emitted and folded allocations skip
    # materialisation (no zero-fill, no copy pass).
    folded = _fold_plan(function, buffer_names)
    folded_allocs = {name for kind, name in folded if kind == "b"}

    # Task-local allocations.  The reference buffer must be materialised
    # (reduction targets are handed to the executor as None).
    for stmt in function.body:
        if not isinstance(stmt, Alloc):
            continue
        if stmt.name in folded_allocs:
            continue
        if stmt.like not in buffer_names:
            raise CodegenError(
                f"allocation '{stmt.name}' references unknown buffer '{stmt.like}' "
                f"in kernel '{function.name}'"
            )
        like = names.get("b", stmt.like)
        out.emit(f"if {like} is None:")
        out.indent += 1
        out.emit(
            "raise RuntimeError("
            f"\"allocation '{stmt.name}' has no reference buffer '{stmt.like}'\")"
        )
        out.indent -= 1
        out.emit(f"{names.get('b', stmt.name)} = np.zeros_like({like})")
        buffer_names.add(stmt.name)

    unknown_loads = function.buffers_read() - buffer_names - folded_allocs
    if unknown_loads:
        raise CodegenError(
            f"kernel '{function.name}' loads undeclared buffers "
            f"{sorted(unknown_loads)}"
        )

    #: Buffers already guarded against a missing materialisation.
    guarded: Set[str] = set()
    #: Reduction partial accumulators: target -> (ident, last ReduceKind).
    partials: Dict[str, Tuple[str, ReduceKind]] = {}
    temp_counter = 0

    for stmt in function.body:
        if isinstance(stmt, Alloc):
            continue
        if not isinstance(stmt, Loop):  # pragma: no cover - no other kinds
            raise CodegenError(f"unknown statement {stmt!r}")
        index_ident = (
            names.get("b", stmt.index_buffer)
            if stmt.index_buffer in buffer_names
            else None
        )
        for inner in stmt.body:
            if isinstance(inner, Assign):
                fold_key = ("l" if inner.is_local else "b", inner.target)
                if fold_key in folded:
                    # Deferred: the expression is rendered inline at the
                    # temporary's single use site.
                    continue
                value = _emit_expr(inner.expr, names, folded)
                if inner.is_local:
                    out.emit(f"{names.get('l', inner.target)} = {value}")
                    continue
                if inner.target not in buffer_names:
                    raise CodegenError(
                        f"assignment to unknown buffer '{inner.target}' in "
                        f"kernel '{function.name}'"
                    )
                target = names.get("b", inner.target)
                if inner.target not in guarded:
                    guarded.add(inner.target)
                    out.emit(f"if {target} is None:")
                    out.indent += 1
                    out.emit(
                        "raise RuntimeError("
                        f"\"buffer '{inner.target}' is not materialised\")"
                    )
                    out.indent -= 1
                out.emit(f"{target}[...] = {value}")
            elif isinstance(inner, Reduce):
                value = _emit_expr(inner.expr, names, folded)
                if index_ident:
                    # Mirror the interpreter's runtime broadcast exactly:
                    # a 0-d value (loop-invariant expression, or a load
                    # from a rank-0 buffer) is broadcast over the index
                    # space so e.g. summing a constant counts elements.
                    tmp = f"_r{temp_counter}"
                    temp_counter += 1
                    out.emit(f"{tmp} = np.asarray({value})")
                    out.emit(f"if {tmp}.ndim == 0 and {index_ident} is not None:")
                    out.indent += 1
                    out.emit(f"{tmp} = np.broadcast_to({tmp}, {index_ident}.shape)")
                    out.indent -= 1
                    value = tmp
                reduced = _REDUCE_FMT[inner.kind].format(value=value)
                existing = partials.get(inner.target)
                if existing is None:
                    acc = f"_p{len(partials)}"
                    partials[inner.target] = (acc, inner.kind)
                    out.emit(f"{acc} = {reduced}")
                else:
                    acc, _ = existing
                    partials[inner.target] = (acc, inner.kind)
                    tmp = f"_r{temp_counter}"
                    temp_counter += 1
                    out.emit(f"{tmp} = {reduced}")
                    out.emit(
                        f"{acc} = "
                        + _COMBINE_FMT[inner.kind].format(acc=acc, new=tmp)
                    )
            else:  # pragma: no cover - no other loop statement kinds
                raise CodegenError(f"unknown loop statement {inner!r}")

    if partials:
        items = ", ".join(
            f"{target!r}: ReductionPartial(kind=ReduceKind.{kind.name}, value={acc})"
            for target, (acc, kind) in partials.items()
        )
        out.emit(f"return {{{items}}}")
    else:
        out.emit("return {}")
    return out.source()


# ----------------------------------------------------------------------
# Super-kernel emission: several captured kernels spliced into one
# generated function (``runtime.superkernel`` decides what to splice).
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SuperKernelSection:
    """One constituent kernel of a super-kernel, ready for emission.

    ``mode`` selects the calling convention of the section's buffers:

    ``merged``
        The step was captured element-wise; ``buffers[prefix+name]`` is a
        single merged view spanning the chunk's contiguous tiles and the
        body is emitted once, straight-line (identical to the per-step
        merged call).

    ``ranked``
        ``buffers[prefix+name]`` is the list of per-rank views (``None``
        for reduction targets) and the body is emitted inside an internal
        rank loop — the per-rank closure calls of step-by-step replay
        collapse into one call per chunk.

    ``fold_writes``/``fold_reads`` alias dead cross-section intermediates
    to shared locals: the writer assigns the local instead of a buffer
    view and readers load it, so the intermediate's region field is never
    materialised.
    """

    prefix: str
    function: Function
    mode: str
    #: Parameter names bound with REDUCE privilege (handed in as None).
    reduction_params: Tuple[str, ...] = ()
    #: (param name, shared local identifier) written by this section.
    fold_writes: Tuple[Tuple[str, str], ...] = ()
    #: (param name, shared local identifier) read by this section.
    fold_reads: Tuple[Tuple[str, str], ...] = ()


def generate_superkernel_source(
    sections: Sequence[SuperKernelSection], name: str
) -> str:
    """Emit one ``__kernel__`` running every section in recorded order.

    Statement order, operation order and operand spellings within each
    section match :func:`generate_source` exactly (same `_emit_expr`,
    same fold plan, same guard and partial-accumulator emission), so the
    fused function is bit-identical to running the constituent kernels
    back to back.  Reduction partials are returned as
    ``{prefixed target: [per-rank ReductionPartial, ...]}`` with keys in
    section (and within a section, first-occurrence) order — the same
    order the scheduler's per-step fold loop would observe.
    """
    names = _NameTable()
    out = _SourceWriter()
    out.emit(f"def __kernel__(buffers, scalars):  # super-kernel {name!r}")
    out.indent += 1
    out.emit("_partials = {}")

    partial_list_count = 0
    for section_index, section in enumerate(sections):
        function = section.function
        prefix = section.prefix
        pnames = _PrefixedNames(names, prefix)
        fold_write_map = dict(section.fold_writes)
        fold_read_map = dict(section.fold_reads)
        for param, ident in section.fold_writes:
            names.seed("b", prefix + param, ident)
        for param, ident in section.fold_reads:
            names.seed("b", prefix + param, ident)

        out.emit(f"# section {section_index}: kernel {function.name!r}")
        for param in function.params:
            if param.kind is ParamKind.SCALAR:
                ident = pnames.get("s", param.name)
                out.emit(
                    f"{ident} = np.float64(scalars[{prefix + param.name!r}])"
                )

        ranked = section.mode == "ranked"
        buffer_names: Set[str] = {
            p.name for p in function.params if p.kind is ParamKind.BUFFER
        }
        folded = _fold_plan(function, set(buffer_names))
        folded_allocs = {n for kind, n in folded if kind == "b"}

        unknown_loads = (
            function.buffers_read()
            - buffer_names
            - {s.name for s in function.body if isinstance(s, Alloc)}
        )
        if unknown_loads:
            raise CodegenError(
                f"super-kernel section '{function.name}' loads undeclared "
                f"buffers {sorted(unknown_loads)}"
            )

        if ranked:
            # Per-rank view lists arrive under the prefixed buffer names;
            # the section's reduction partials accumulate per rank into
            # lists registered (in first-occurrence order) up front.
            length_ident = None
            for param in function.buffer_params:
                if param.name in fold_write_map or param.name in fold_read_map:
                    raise CodegenError(
                        f"super-kernel section '{function.name}': folded "
                        f"parameter '{param.name}' in a ranked section"
                    )
                list_ident = names.get("v", prefix + param.name)
                out.emit(f"{list_ident} = buffers[{prefix + param.name!r}]")
                if length_ident is None and param.name not in section.reduction_params:
                    length_ident = list_ident
            if length_ident is None:
                raise CodegenError(
                    f"super-kernel section '{function.name}' has no "
                    "non-reduction buffer to derive its rank count from"
                )
            reduce_lists: Dict[str, str] = {}
            for stmt in function.body:
                if not isinstance(stmt, Loop):
                    continue
                for inner in stmt.body:
                    if (
                        isinstance(inner, Reduce)
                        and inner.target in section.reduction_params
                        and inner.target not in reduce_lists
                    ):
                        list_ident = f"_pl{partial_list_count}"
                        partial_list_count += 1
                        reduce_lists[inner.target] = list_ident
                        out.emit(f"{list_ident} = []")
                        out.emit(
                            f"_partials[{prefix + inner.target!r}] = {list_ident}"
                        )
            rank_ident = f"_rk{section_index}"
            # Reduction parameters bind to ``None`` for the whole call —
            # their results come back through ``_partials`` — so they are
            # hoisted out of the rank loop.  Every other parameter arrives
            # as a per-rank view list that is never ``None``, so the loop
            # body indexes it unconditionally.
            for param in function.buffer_params:
                if param.name in section.reduction_params:
                    out.emit(f"{pnames.get('b', param.name)} = None")
            out.emit(f"for {rank_ident} in range(len({length_ident})):")
            out.indent += 1
            for param in function.buffer_params:
                if param.name in section.reduction_params:
                    continue
                list_ident = names.get("v", prefix + param.name)
                ident = pnames.get("b", param.name)
                out.emit(f"{ident} = {list_ident}[{rank_ident}]")
        else:
            reduce_lists = {}
            if any(loop.has_reduction for loop in function.loops):
                raise CodegenError(
                    f"super-kernel section '{function.name}': reductions "
                    "in a merged section"
                )
            for param in function.buffer_params:
                if param.name in fold_write_map or param.name in fold_read_map:
                    continue
                ident = pnames.get("b", param.name)
                out.emit(f"{ident} = buffers[{prefix + param.name!r}]")

        for stmt in function.body:
            if not isinstance(stmt, Alloc):
                continue
            if stmt.name in folded_allocs:
                continue
            if stmt.like not in buffer_names:
                raise CodegenError(
                    f"allocation '{stmt.name}' references unknown buffer "
                    f"'{stmt.like}' in super-kernel section '{function.name}'"
                )
            like = pnames.get("b", stmt.like)
            # Ranked sections bind every non-reduction parameter to a real
            # view, so the missing-reference guard only matters when the
            # reference could legitimately be ``None``.
            if not ranked or stmt.like in section.reduction_params:
                out.emit(f"if {like} is None:")
                out.indent += 1
                out.emit(
                    "raise RuntimeError("
                    f"\"allocation '{stmt.name}' has no reference buffer "
                    f"'{stmt.like}'\")"
                )
                out.indent -= 1
            out.emit(f"{pnames.get('b', stmt.name)} = np.zeros_like({like})")
            buffer_names.add(stmt.name)

        guarded: Set[str] = set()
        partials: Dict[str, Tuple[str, ReduceKind]] = {}
        temp_counter = 0
        for stmt in function.body:
            if isinstance(stmt, Alloc):
                continue
            if not isinstance(stmt, Loop):  # pragma: no cover - no other kinds
                raise CodegenError(f"unknown statement {stmt!r}")
            index_ident = (
                pnames.get("b", stmt.index_buffer)
                if stmt.index_buffer in buffer_names
                else None
            )
            for inner in stmt.body:
                if isinstance(inner, Assign):
                    fold_key = ("l" if inner.is_local else "b", inner.target)
                    if fold_key in folded:
                        continue
                    value = _emit_expr(inner.expr, pnames, folded)
                    if inner.is_local:
                        out.emit(f"{pnames.get('l', inner.target)} = {value}")
                        continue
                    if inner.target not in buffer_names:
                        raise CodegenError(
                            f"assignment to unknown buffer '{inner.target}' "
                            f"in super-kernel section '{function.name}'"
                        )
                    target = pnames.get("b", inner.target)
                    if inner.target in fold_write_map:
                        # The dead intermediate lives only as this local:
                        # operator results are fresh arrays, a bare load
                        # is copied so later writes to the source buffer
                        # cannot alias through the fold.
                        if isinstance(inner.expr, (BinOp, UnOp)):
                            out.emit(f"{target} = {value}")
                        else:
                            out.emit(
                                f"{target} = np.array({value}, dtype=np.float64)"
                            )
                        continue
                    # Ranked sections never bind a writable parameter to
                    # ``None`` (only reduction targets are, and those are
                    # reduced, not assigned), so the per-rank guard of the
                    # step-by-step emission is dead there.
                    if not ranked and inner.target not in guarded:
                        guarded.add(inner.target)
                        out.emit(f"if {target} is None:")
                        out.indent += 1
                        out.emit(
                            "raise RuntimeError("
                            f"\"buffer '{inner.target}' is not materialised\")"
                        )
                        out.indent -= 1
                    out.emit(f"{target}[...] = {value}")
                elif isinstance(inner, Reduce):
                    value = _emit_expr(inner.expr, pnames, folded)
                    if index_ident:
                        tmp = f"_r{section_index}_{temp_counter}"
                        temp_counter += 1
                        out.emit(f"{tmp} = np.asarray({value})")
                        out.emit(
                            f"if {tmp}.ndim == 0 and {index_ident} is not None:"
                        )
                        out.indent += 1
                        out.emit(
                            f"{tmp} = np.broadcast_to({tmp}, {index_ident}.shape)"
                        )
                        out.indent -= 1
                        value = tmp
                    reduced = _REDUCE_FMT_DIRECT[inner.kind].format(value=value)
                    existing = partials.get(inner.target)
                    if existing is None:
                        acc = f"_p{section_index}_{len(partials)}"
                        partials[inner.target] = (acc, inner.kind)
                        out.emit(f"{acc} = {reduced}")
                    else:
                        acc, _ = existing
                        partials[inner.target] = (acc, inner.kind)
                        tmp = f"_r{section_index}_{temp_counter}"
                        temp_counter += 1
                        out.emit(f"{tmp} = {reduced}")
                        out.emit(
                            f"{acc} = "
                            + _COMBINE_FMT[inner.kind].format(acc=acc, new=tmp)
                        )
                else:  # pragma: no cover - no other loop statement kinds
                    raise CodegenError(f"unknown loop statement {inner!r}")

        if ranked:
            for target, (acc, kind) in partials.items():
                list_ident = reduce_lists.get(target)
                if list_ident is not None:
                    out.emit(
                        f"{list_ident}.append(ReductionPartial("
                        f"kind=ReduceKind.{kind.name}, value={acc}))"
                    )
            out.indent -= 1
        elif partials:  # pragma: no cover - merged sections reject reductions
            raise CodegenError(
                f"super-kernel section '{function.name}' produced partials "
                "in merged mode"
            )

    out.emit("return _partials")
    return out.source()


def _compile_source(source: str, kernel_name: str) -> Tuple[Callable, bool]:
    """Compile kernel source, reusing the process-wide closure cache."""
    fn = _FUNCTION_CACHE.get(source)
    if fn is not None:
        _COUNTERS.source_cache_hits += 1
        return fn, False
    code = compile(source, f"<kir-codegen:{kernel_name}>", "exec")
    namespace = dict(_KERNEL_ENV)
    exec(code, namespace)
    fn = namespace["__kernel__"]
    _FUNCTION_CACHE[source] = fn
    _COUNTERS.source_compilations += 1
    return fn, True


class CodegenExecutor(KernelExecutor):
    """Executes a kernel through its compiled NumPy closure."""

    backend = "codegen"

    def __init__(self, function: Function, binding: KernelBinding) -> None:
        super().__init__(function, binding)
        self.source = generate_source(function)
        self._fn, self.freshly_compiled = _compile_source(self.source, function.name)

    def __call__(
        self,
        buffers: Dict[str, Optional[np.ndarray]],
        scalars: Dict[str, float],
    ) -> Dict[str, ReductionPartial]:
        return self._fn(buffers, scalars)
