"""Code generation: KIR kernels compiled to straight-line NumPy closures.

The paper's Diffuse JIT-compiles fused MLIR kernels to real device code so
that a memoized replay round executes pre-compiled kernels with no
per-statement interpretation.  This module plays that role for the
reproduction: a KIR :class:`~repro.kernel.kir.Function` is translated to
Python source whose statements are vectorised NumPy expressions, compiled
with the builtin ``compile`` exactly once, and wrapped in a
:class:`CodegenExecutor` with the same calling convention as the
tree-walking interpreter.

The emitted code mirrors the interpreter operation for operation — the
same NumPy calls in the same order — so results are bit-identical, which
the differential backend (``REPRO_KERNEL_BACKEND=differential``) asserts
on every kernel invocation.

Compiled functions are cached by source text at module level.  Two
kernels with the same canonical form produce identical source, so a
memoization hit anywhere in the process (even from a different
:class:`~repro.kernel.compiler.JITCompiler` instance of a weak-scaling
sweep) reuses the already-compiled closure instead of invoking
``compile`` again.  :func:`codegen_stats` exposes the counters that the
regression tests assert on.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.kernel.kir import (
    Alloc,
    Assign,
    BinOp,
    BinOpKind,
    Const,
    Expr,
    Function,
    Load,
    LocalRef,
    Loop,
    Param,
    ParamKind,
    Reduce,
    ReduceKind,
    ScalarRef,
    UnOp,
    UnOpKind,
    _erf,
)
from repro.kernel.lowering import KernelExecutor, ReductionPartial
from repro.kernel.passes.compose import KernelBinding


class CodegenError(RuntimeError):
    """Raised when a kernel cannot be translated to Python source."""


# ----------------------------------------------------------------------
# Operator spellings.  Each entry mirrors the corresponding lambda in
# ``kir._BINOP_EVAL`` / ``kir._UNOP_EVAL`` so the generated code performs
# the exact same NumPy calls as the interpreter.
# ----------------------------------------------------------------------
_BINOP_FMT: Dict[BinOpKind, str] = {
    BinOpKind.ADD: "({lhs} + {rhs})",
    BinOpKind.SUB: "({lhs} - {rhs})",
    BinOpKind.MUL: "({lhs} * {rhs})",
    BinOpKind.DIV: "({lhs} / {rhs})",
    BinOpKind.POW: "np.power({lhs}, {rhs})",
    BinOpKind.MAX: "np.maximum({lhs}, {rhs})",
    BinOpKind.MIN: "np.minimum({lhs}, {rhs})",
    BinOpKind.LT: "({lhs} < {rhs}).astype(np.float64)",
    BinOpKind.GT: "({lhs} > {rhs}).astype(np.float64)",
    BinOpKind.LE: "({lhs} <= {rhs}).astype(np.float64)",
    BinOpKind.GE: "({lhs} >= {rhs}).astype(np.float64)",
    BinOpKind.EQ: "({lhs} == {rhs}).astype(np.float64)",
}

_UNOP_FMT: Dict[UnOpKind, str] = {
    UnOpKind.NEG: "(-{operand})",
    UnOpKind.SQRT: "np.sqrt({operand})",
    UnOpKind.EXP: "np.exp({operand})",
    UnOpKind.LOG: "np.log({operand})",
    UnOpKind.ABS: "np.abs({operand})",
    UnOpKind.ERF: "_erf({operand})",
    UnOpKind.SIN: "np.sin({operand})",
    UnOpKind.COS: "np.cos({operand})",
    UnOpKind.TANH: "np.tanh({operand})",
    UnOpKind.RECIP: "(1.0 / {operand})",
}

_REDUCE_FMT: Dict[ReduceKind, str] = {
    ReduceKind.SUM: "float(np.sum({value}))",
    ReduceKind.PROD: "float(np.prod({value}))",
    ReduceKind.MAX: "float(np.max({value}))",
    ReduceKind.MIN: "float(np.min({value}))",
}

# Spellings of ``kir.combine_reduction`` for repeated reductions into the
# same target.
_COMBINE_FMT: Dict[ReduceKind, str] = {
    ReduceKind.SUM: "float({acc} + {new})",
    ReduceKind.PROD: "float({acc} * {new})",
    ReduceKind.MAX: "float(max({acc}, {new}))",
    ReduceKind.MIN: "float(min({acc}, {new}))",
}

#: Globals shared by every generated kernel function.
_KERNEL_ENV: Dict[str, object] = {
    "np": np,
    "_erf": _erf,
    "ReductionPartial": ReductionPartial,
    "ReduceKind": ReduceKind,
}

#: Source text -> compiled kernel entry point.  Keyed on the full module
#: source so that two structurally-identical kernels (the same canonical
#: form) share one compiled closure process-wide.
_FUNCTION_CACHE: Dict[str, Callable] = {}


@dataclass
class CodegenCounters:
    """Process-wide codegen activity counters (asserted by tests)."""

    source_compilations: int = 0
    source_cache_hits: int = 0

    def reset(self) -> None:
        self.source_compilations = 0
        self.source_cache_hits = 0


_COUNTERS = CodegenCounters()


def codegen_stats() -> CodegenCounters:
    """The process-wide codegen counters."""
    return _COUNTERS


def clear_function_cache() -> None:
    """Drop all compiled closures and reset counters (tests only)."""
    _FUNCTION_CACHE.clear()
    _COUNTERS.reset()


_IDENT_RE = re.compile(r"\W")


class _NameTable:
    """Deterministic mapping from KIR names to Python identifiers."""

    def __init__(self) -> None:
        self._names: Dict[Tuple[str, str], str] = {}

    def get(self, kind: str, name: str) -> str:
        key = (kind, name)
        ident = self._names.get(key)
        if ident is None:
            ident = f"_{kind}{len(self._names)}_{_IDENT_RE.sub('_', name)}"
            self._names[key] = ident
        return ident


class _SourceWriter:
    """Accumulates indented Python source lines."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.indent = 0

    def emit(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


def _emit_expr(expr: Expr, names: _NameTable) -> str:
    """Render an expression tree as Python source."""
    if isinstance(expr, Const):
        # repr() round-trips doubles exactly; np.float64 mirrors the
        # interpreter's Const evaluation.
        return f"np.float64({expr.value!r})"
    if isinstance(expr, ScalarRef):
        return names.get("s", expr.name)
    if isinstance(expr, Load):
        return names.get("b", expr.buffer)
    if isinstance(expr, LocalRef):
        return names.get("l", expr.name)
    if isinstance(expr, BinOp):
        return _BINOP_FMT[expr.op].format(
            lhs=_emit_expr(expr.lhs, names), rhs=_emit_expr(expr.rhs, names)
        )
    if isinstance(expr, UnOp):
        return _UNOP_FMT[expr.op].format(operand=_emit_expr(expr.operand, names))
    raise CodegenError(f"unknown expression {expr!r}")


def generate_source(function: Function) -> str:
    """Translate a KIR function into the source of ``__kernel__``.

    The generated function takes the executor's ``(buffers, scalars)``
    dictionaries and returns the reduction partials, exactly like the
    interpreter.  Statement order, operation order and operand spellings
    all match the interpreter so results are bit-identical.
    """
    names = _NameTable()
    out = _SourceWriter()
    out.emit(f"def __kernel__(buffers, scalars):  # kernel {function.name!r}")
    out.indent += 1

    buffer_names: Set[str] = set()
    for param in function.params:
        if param.kind is ParamKind.BUFFER:
            ident = names.get("b", param.name)
            out.emit(f"{ident} = buffers[{param.name!r}]")
            buffer_names.add(param.name)
        else:
            ident = names.get("s", param.name)
            out.emit(f"{ident} = np.float64(scalars[{param.name!r}])")

    # Task-local allocations.  The reference buffer must be materialised
    # (reduction targets are handed to the executor as None).
    for stmt in function.body:
        if not isinstance(stmt, Alloc):
            continue
        if stmt.like not in buffer_names:
            raise CodegenError(
                f"allocation '{stmt.name}' references unknown buffer '{stmt.like}' "
                f"in kernel '{function.name}'"
            )
        like = names.get("b", stmt.like)
        out.emit(f"if {like} is None:")
        out.indent += 1
        out.emit(
            "raise RuntimeError("
            f"\"allocation '{stmt.name}' has no reference buffer '{stmt.like}'\")"
        )
        out.indent -= 1
        out.emit(f"{names.get('b', stmt.name)} = np.zeros_like({like})")
        buffer_names.add(stmt.name)

    unknown_loads = function.buffers_read() - buffer_names
    if unknown_loads:
        raise CodegenError(
            f"kernel '{function.name}' loads undeclared buffers "
            f"{sorted(unknown_loads)}"
        )

    #: Buffers already guarded against a missing materialisation.
    guarded: Set[str] = set()
    #: Reduction partial accumulators: target -> (ident, last ReduceKind).
    partials: Dict[str, Tuple[str, ReduceKind]] = {}
    temp_counter = 0

    for stmt in function.body:
        if isinstance(stmt, Alloc):
            continue
        if not isinstance(stmt, Loop):  # pragma: no cover - no other kinds
            raise CodegenError(f"unknown statement {stmt!r}")
        index_ident = (
            names.get("b", stmt.index_buffer)
            if stmt.index_buffer in buffer_names
            else None
        )
        for inner in stmt.body:
            if isinstance(inner, Assign):
                value = _emit_expr(inner.expr, names)
                if inner.is_local:
                    out.emit(f"{names.get('l', inner.target)} = {value}")
                    continue
                if inner.target not in buffer_names:
                    raise CodegenError(
                        f"assignment to unknown buffer '{inner.target}' in "
                        f"kernel '{function.name}'"
                    )
                target = names.get("b", inner.target)
                if inner.target not in guarded:
                    guarded.add(inner.target)
                    out.emit(f"if {target} is None:")
                    out.indent += 1
                    out.emit(
                        "raise RuntimeError("
                        f"\"buffer '{inner.target}' is not materialised\")"
                    )
                    out.indent -= 1
                out.emit(f"{target}[...] = {value}")
            elif isinstance(inner, Reduce):
                value = _emit_expr(inner.expr, names)
                if index_ident:
                    # Mirror the interpreter's runtime broadcast exactly:
                    # a 0-d value (loop-invariant expression, or a load
                    # from a rank-0 buffer) is broadcast over the index
                    # space so e.g. summing a constant counts elements.
                    tmp = f"_r{temp_counter}"
                    temp_counter += 1
                    out.emit(f"{tmp} = np.asarray({value})")
                    out.emit(f"if {tmp}.ndim == 0 and {index_ident} is not None:")
                    out.indent += 1
                    out.emit(f"{tmp} = np.broadcast_to({tmp}, {index_ident}.shape)")
                    out.indent -= 1
                    value = tmp
                folded = _REDUCE_FMT[inner.kind].format(value=value)
                existing = partials.get(inner.target)
                if existing is None:
                    acc = f"_p{len(partials)}"
                    partials[inner.target] = (acc, inner.kind)
                    out.emit(f"{acc} = {folded}")
                else:
                    acc, _ = existing
                    partials[inner.target] = (acc, inner.kind)
                    tmp = f"_r{temp_counter}"
                    temp_counter += 1
                    out.emit(f"{tmp} = {folded}")
                    out.emit(
                        f"{acc} = "
                        + _COMBINE_FMT[inner.kind].format(acc=acc, new=tmp)
                    )
            else:  # pragma: no cover - no other loop statement kinds
                raise CodegenError(f"unknown loop statement {inner!r}")

    if partials:
        items = ", ".join(
            f"{target!r}: ReductionPartial(kind=ReduceKind.{kind.name}, value={acc})"
            for target, (acc, kind) in partials.items()
        )
        out.emit(f"return {{{items}}}")
    else:
        out.emit("return {}")
    return out.source()


def _compile_source(source: str, kernel_name: str) -> Tuple[Callable, bool]:
    """Compile kernel source, reusing the process-wide closure cache."""
    fn = _FUNCTION_CACHE.get(source)
    if fn is not None:
        _COUNTERS.source_cache_hits += 1
        return fn, False
    code = compile(source, f"<kir-codegen:{kernel_name}>", "exec")
    namespace = dict(_KERNEL_ENV)
    exec(code, namespace)
    fn = namespace["__kernel__"]
    _FUNCTION_CACHE[source] = fn
    _COUNTERS.source_compilations += 1
    return fn, True


class CodegenExecutor(KernelExecutor):
    """Executes a kernel through its compiled NumPy closure."""

    backend = "codegen"

    def __init__(self, function: Function, binding: KernelBinding) -> None:
        super().__init__(function, binding)
        self.source = generate_source(function)
        self._fn, self.freshly_compiled = _compile_source(self.source, function.name)

    def __call__(
        self,
        buffers: Dict[str, Optional[np.ndarray]],
        scalars: Dict[str, float],
    ) -> Dict[str, ReductionPartial]:
        return self._fn(buffers, scalars)
