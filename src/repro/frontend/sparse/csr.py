"""Distributed CSR matrices and the opaque SpMV task.

A CSR matrix is stored as three stores — ``indptr``, ``indices`` and
``data`` — mirroring Legate Sparse.  Row coordinates may be stored as
32-bit values, matching the optimisation the paper applies to Legate
Sparse for a fair comparison with PETSc (footnote 1 in Section 7.1); the
choice only affects the modelled memory traffic of SpMV.

The SpMV kernel is opaque (no KIR generator), so it never joins a fused
kernel, but it participates in the task stream and its dense vector
arguments interact with fusion exactly as in the paper: the surrounding
AXPY/dot-product tasks of the Krylov solvers fuse around it.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.ir.privilege import Privilege
from repro.ir.task import IndexTask, StoreArg
from repro.frontend.cunumeric.array import ndarray
from repro.frontend.legate.context import RuntimeContext, get_context
from repro.config import hotpath_cache_enabled
from repro.runtime.machine import MachineConfig
from repro.runtime.opaque import register_opaque_task


# ----------------------------------------------------------------------
# Opaque SpMV task: y = A @ x over the rows owned by each point task.
# Argument order: indptr, indices, data, x, y.
# ----------------------------------------------------------------------
def _evict_oldest(cache: Dict, limit: int) -> None:
    """Drop oldest-first entries until the cache is below its limit.

    Dicts iterate in insertion order, so evicting ``next(iter(cache))``
    is FIFO — live matrices (re-inserted on attach) keep their entries.
    Tolerates concurrent plan-scheduler workers evicting the same key
    (``pop`` with a default never raises; ``StopIteration`` from a
    just-emptied cache ends the sweep).
    """
    while len(cache) >= limit:
        try:
            cache.pop(next(iter(cache)), None)
        except (StopIteration, RuntimeError):
            break


#: (partition, point, store shape) -> row range.  Mirrors the executor's
#: sub-store rect cache for the SpMV-internal row-range queries.
_SPMV_ROWS_CACHE: Dict[Tuple, Tuple[int, int]] = {}
_SPMV_ROWS_CACHE_LIMIT = 65536


def _spmv_rows(task: IndexTask, point) -> Tuple[int, int]:
    """The half-open row range owned by ``point`` (from y's partition)."""
    y_arg = task.args[4]
    if not hotpath_cache_enabled():
        rect = y_arg.partition.sub_store_rect(point, y_arg.store.shape)
        return rect.lo[0], rect.hi[0]
    key = (y_arg.partition, point, y_arg.store.shape)
    rows = _SPMV_ROWS_CACHE.get(key)
    if rows is None:
        rect = y_arg.partition.sub_store_rect(point, y_arg.store.shape)
        rows = (rect.lo[0], rect.hi[0])
        _evict_oldest(_SPMV_ROWS_CACHE, _SPMV_ROWS_CACHE_LIMIT)
        _SPMV_ROWS_CACHE[key] = rows
    return rows


#: id(float64 coordinate array) -> (pinning reference, int64 conversion).
#: Stores are float64-only, so SpMV must convert ``indptr``/``indices``
#: to integers; the coordinate arrays of a matrix never change after
#: attach, and the region-field view cache hands back the same array
#: object on every launch, so the conversion is computed once per matrix
#: instead of once per point task.  Keeping the source array in the value
#: pins its id, making the key collision-free.
_INT_INDEX_CACHE: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
_INT_INDEX_CACHE_LIMIT = 256


def _as_int_indices(array: np.ndarray) -> np.ndarray:
    """The int64 conversion of a CSR coordinate array, memoized."""
    entry = _INT_INDEX_CACHE.get(id(array))
    if entry is not None and entry[0] is array:
        return entry[1]
    converted = array.astype(np.int64)
    _evict_oldest(_INT_INDEX_CACHE, _INT_INDEX_CACHE_LIMIT)
    _INT_INDEX_CACHE[id(array)] = (array, converted)
    return converted


#: (id(indptr array), row range) -> pinned row-block execution plan.
#: The sparsity pattern of a matrix never changes after attach, so the
#: integer row offsets, gather columns and empty-row mask of each row
#: block are computed once and replayed on every launch (the region-field
#: view cache keeps the keyed array object stable).
_ROW_PLAN_CACHE: Dict[Tuple[int, int, int], Tuple] = {}
_ROW_PLAN_CACHE_LIMIT = 1024


def _row_plan(indptr: np.ndarray, indices: np.ndarray, row_lo: int, row_hi: int):
    """The cached ``(lo, hi, cols, offsets, empty_row_mask)`` of a row block."""
    key = (id(indptr), row_lo, row_hi)
    entry = _ROW_PLAN_CACHE.get(key)
    if entry is not None and entry[0] is indptr:
        return entry[1]
    starts = _as_int_indices(indptr)[row_lo : row_hi + 1]
    lo, hi = int(starts[0]), int(starts[-1])
    cols = _as_int_indices(indices)[lo:hi]
    offsets = starts[:-1] - lo
    counts = np.diff(starts)
    # reduceat assigns the value at position offsets[i] for empty rows;
    # those rows must be patched back to zero afterwards.  The mask is
    # None for the common all-rows-populated case so execution can skip
    # the fix-up entirely.
    empty_mask = None if bool(np.all(counts > 0)) else (counts > 0)
    # Trailing empty rows make offsets[-1] == hi - lo, which reduceat
    # rejects as out of bounds; execution pads the products with one
    # zero so those offsets become valid (the rows are zeroed by the
    # mask anyway, and the last real row's sum only gains + 0.0).
    pad_products = bool(len(offsets)) and int(offsets[-1]) >= hi - lo > 0
    plan = (lo, hi, cols, offsets, empty_mask, pad_products)
    _evict_oldest(_ROW_PLAN_CACHE, _ROW_PLAN_CACHE_LIMIT)
    _ROW_PLAN_CACHE[key] = (indptr, plan)
    return plan


def _spmv_row_block(indptr, indices, data, x, row_lo: int, row_hi: int):
    """The y values of rows ``[row_lo, row_hi)`` — one merged reduceat.

    ``reduceat`` sums each row's segment sequentially and the products
    are an element-wise multiply, so the block's per-row sums are
    bit-identical whether the block covers one rank or a whole chunk of
    contiguous ranks.  Shared by the per-rank execute and the chunk
    implementation.
    """
    if hotpath_cache_enabled():
        lo, hi, cols, offsets, empty_mask, pad_products = _row_plan(
            indptr, indices, row_lo, row_hi
        )
        values = data[lo:hi]
        products = values * x[cols]
        if len(products):
            if pad_products:
                products = np.concatenate((products, np.zeros(1)))
            sums = np.add.reduceat(products, offsets)
        else:
            sums = np.zeros(row_hi - row_lo)
        if empty_mask is not None:
            sums = np.where(empty_mask, sums, 0.0)
        return sums
    starts = indptr[row_lo : row_hi + 1].astype(np.int64)
    lo, hi = starts[0], starts[-1]
    cols = indices[lo:hi].astype(np.int64)
    values = data[lo:hi]
    products = values * x[cols]
    offsets = starts[:-1] - lo
    # reduceat assigns the value at position offsets[i] for empty rows;
    # patch those rows back to zero afterwards.  Trailing empty rows
    # would put offsets[-1] past the end, which reduceat rejects; pad
    # the products with one zero so those offsets stay in bounds.
    if len(products):
        if len(offsets) and int(offsets[-1]) >= len(products):
            products = np.concatenate((products, np.zeros(1)))
        sums = np.add.reduceat(products, offsets)
    else:
        sums = np.zeros(row_hi - row_lo)
    counts = np.diff(starts)
    return np.where(counts > 0, sums, 0.0)


def _spmv_execute(task: IndexTask, point, buffers: Dict[int, Optional[np.ndarray]]):
    indptr, indices, data, x, y = (buffers[i] for i in range(5))
    if y is None:
        return None
    # The x argument is partitioned by blocks (its halo gather is modelled
    # analytically in the cost function); the kernel needs the gathered
    # vector, which in the single-address-space simulator is simply the
    # view's base array.
    if x is not None and x.base is not None:
        x = x.base
    row_lo, row_hi = _spmv_rows(task, point)
    if row_hi <= row_lo:
        return None
    y[...] = _spmv_row_block(indptr, indices, data, x, row_lo, row_hi)
    return None


#: (id(indptr array), row range, index bytes, total rows, machine) ->
#: pinned analytic SpMV cost.  Everything the cost depends on is in the
#: key, so replayed launches skip the roofline arithmetic entirely.
_SPMV_COST_CACHE: Dict[Tuple, Tuple[np.ndarray, float]] = {}
_SPMV_COST_CACHE_LIMIT = 4096


def _spmv_cost(task: IndexTask, point, buffers, machine: MachineConfig) -> float:
    indptr = buffers[0]
    row_lo, row_hi = _spmv_rows(task, point)
    rows = max(0, row_hi - row_lo)
    if indptr is None or rows == 0:
        return machine.kernel_launch_latency
    if hotpath_cache_enabled():
        index_bytes_key = task.scalar_args[0] if task.scalar_args else None
        total_rows_key = task.args[4].store.shape[0]
        key = (id(indptr), row_lo, row_hi, index_bytes_key, total_rows_key, machine)
        entry = _SPMV_COST_CACHE.get(key)
        if entry is not None and entry[0] is indptr:
            return entry[1]
        seconds = _spmv_cost_uncached(task, indptr, row_lo, row_hi, rows, machine)
        _evict_oldest(_SPMV_COST_CACHE, _SPMV_COST_CACHE_LIMIT)
        _SPMV_COST_CACHE[key] = (indptr, seconds)
        return seconds
    return _spmv_cost_uncached(task, indptr, row_lo, row_hi, rows, machine)


def _spmv_cost_uncached(
    task: IndexTask,
    indptr: np.ndarray,
    row_lo: int,
    row_hi: int,
    rows: int,
    machine: MachineConfig,
) -> float:
    nnz = float(indptr[row_hi] - indptr[row_lo])
    index_bytes = float(task.scalar_args[0]) if task.scalar_args else 8.0
    # Per non-zero: a value (8B), a column index, and the gathered x value;
    # per row: an indptr entry and the y write.
    bytes_moved = nnz * (8.0 + index_bytes + 8.0) + rows * (index_bytes + 8.0)
    flops = 2.0 * nnz
    seconds = machine.kernel_launch_latency + max(
        bytes_moved / machine.gpu_memory_bandwidth, flops / machine.gpu_peak_flops
    )
    # Halo gather of the off-processor entries of x needed by the local
    # rows.  For the banded matrices of the evaluation this is about one
    # grid row per neighbour per GPU (the same model as the PETSc
    # baseline's MatMult), not a full allgather of x.
    if machine.num_gpus > 1:
        total_rows = task.args[4].store.shape[0]
        halo_bytes = min(total_rows, 2 * int(np.sqrt(max(1, total_rows)))) * 8.0
        seconds += machine.point_to_point_time(halo_bytes)
    return seconds


def _spmv_chunk_execute(bases, rects, scalars):
    """One SpMV over the merged row span of a contiguous rank chunk.

    The chunk contract hands full base arrays, so x needs no
    ``.base`` unwrap; the y row span comes from the chunk's y rects
    (argument 4), merged when the ranks tile contiguously (block
    partitions always do) and computed per rank otherwise.
    """
    indptr, indices, data, x, y = (bases[index] for index in range(5))
    y_rects = rects[4]
    if all(
        y_rects[index][1][0] == y_rects[index + 1][0][0]
        for index in range(len(y_rects) - 1)
    ):
        row_lo, row_hi = y_rects[0][0][0], y_rects[-1][1][0]
        if row_hi > row_lo:
            y[row_lo:row_hi] = _spmv_row_block(
                indptr, indices, data, x, row_lo, row_hi
            )
    else:  # pragma: no cover - block partitions are always contiguous
        for lo, hi in y_rects:
            if hi[0] > lo[0]:
                y[lo[0] : hi[0]] = _spmv_row_block(
                    indptr, indices, data, x, lo[0], hi[0]
                )
    return None


def _spmv_chunk_cost(bases, rects, scalars, machine: MachineConfig):
    """Per-rank modelled seconds of an SpMV chunk (mirrors ``_spmv_cost``).

    Reads only the sparsity structure (``indptr`` values, which the
    chunk never writes) and y's shape, so running after the chunk's
    execute observes the same state the interleaved per-rank loop does.
    """
    indptr = bases[0]
    total_rows = bases[4].shape[0]
    index_bytes = float(scalars[0]) if scalars else 8.0
    seconds = []
    for lo, hi in rects[4]:
        row_lo, row_hi = lo[0], hi[0]
        rows = max(0, row_hi - row_lo)
        if rows == 0:
            seconds.append(machine.kernel_launch_latency)
            continue
        nnz = float(indptr[row_hi] - indptr[row_lo])
        bytes_moved = nnz * (8.0 + index_bytes + 8.0) + rows * (index_bytes + 8.0)
        flops = 2.0 * nnz
        rank_seconds = machine.kernel_launch_latency + max(
            bytes_moved / machine.gpu_memory_bandwidth,
            flops / machine.gpu_peak_flops,
        )
        if machine.num_gpus > 1:
            halo_bytes = min(total_rows, 2 * int(np.sqrt(max(1, total_rows)))) * 8.0
            rank_seconds += machine.point_to_point_time(halo_bytes)
        seconds.append(rank_seconds)
    return seconds


register_opaque_task(
    "spmv_csr",
    _spmv_execute,
    _spmv_cost,
    chunk_execute=_spmv_chunk_execute,
    chunk_cost_seconds=_spmv_chunk_cost,
)


class csr_matrix:  # noqa: N801 - mirrors the SciPy class name
    """A distributed sparse matrix in CSR format."""

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        shape: Tuple[int, int],
        index_bytes: int = 4,
        context: Optional[RuntimeContext] = None,
    ) -> None:
        self.context = context or get_context()
        self.shape = (int(shape[0]), int(shape[1]))
        self.nnz = int(len(data))
        #: Bytes per stored coordinate (4 matches the PETSc-style 32-bit
        #: optimisation described in the paper; 8 models 64-bit indices).
        self.index_bytes = int(index_bytes)
        self._indptr_store = self.context.create_store((self.shape[0] + 1,), name="csr_indptr")
        self._indices_store = self.context.create_store((self.nnz,), name="csr_indices")
        self._data_store = self.context.create_store((self.nnz,), name="csr_data")
        self.context.attach(self._indptr_store, np.asarray(indptr, dtype=np.float64))
        self.context.attach(self._indices_store, np.asarray(indices, dtype=np.float64))
        self.context.attach(self._data_store, np.asarray(data, dtype=np.float64))
        self._host_diagonal = self._compute_diagonal(indptr, indices, data)

    # ------------------------------------------------------------------
    # Construction helpers.
    # ------------------------------------------------------------------
    @staticmethod
    def _compute_diagonal(indptr, indices, data) -> np.ndarray:
        rows = len(indptr) - 1
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        data = np.asarray(data, dtype=np.float64)
        # Row id of every stored entry, then pick the entries on the diagonal.
        row_of_entry = np.repeat(np.arange(rows, dtype=np.int64), np.diff(indptr))
        diagonal = np.zeros(rows)
        on_diagonal = row_of_entry == indices
        diagonal[row_of_entry[on_diagonal]] = data[on_diagonal]
        return diagonal

    @property
    def nrows(self) -> int:
        """Number of rows."""
        return self.shape[0]

    @property
    def ncols(self) -> int:
        """Number of columns."""
        return self.shape[1]

    def diagonal(self) -> ndarray:
        """The matrix diagonal as a dense distributed vector."""
        from repro.frontend.cunumeric.creation import array

        return array(self._host_diagonal, name="csr_diag")

    # ------------------------------------------------------------------
    # SpMV.
    # ------------------------------------------------------------------
    def dot(self, x: ndarray) -> ndarray:
        """Sparse mat-vec product ``A @ x`` (an opaque SpMV task)."""
        if x.ndim != 1 or x.shape[0] != self.ncols:
            raise ValueError(f"cannot multiply {self.shape} matrix by {x.shape} vector")
        out_store = self.context.create_store((self.nrows,), name="spmv_out")
        out = ndarray(out_store, context=self.context)
        replication = self.context.replication()
        # x is read through its natural block partition plus a halo gather
        # (modelled inside the SpMV cost function), mirroring how Legate
        # Sparse gathers only the columns its local rows touch rather than
        # replicating the whole vector.
        args = [
            StoreArg(self._indptr_store, replication, Privilege.READ),
            StoreArg(self._indices_store, replication, Privilege.READ),
            StoreArg(self._data_store, replication, Privilege.READ),
            x.read_arg(),
            out.write_arg(),
        ]
        self.context.submit(
            "spmv_csr",
            out.launch_domain(),
            args,
            scalar_args=(float(self.index_bytes),),
        )
        return out

    def __matmul__(self, x: ndarray) -> ndarray:
        return self.dot(x)

    def to_dense(self) -> np.ndarray:
        """The matrix as a dense host array (tests only)."""
        indptr = self.context.read_array(self._indptr_store).astype(np.int64)
        indices = self.context.read_array(self._indices_store).astype(np.int64)
        data = self.context.read_array(self._data_store)
        dense = np.zeros(self.shape)
        for row in range(self.nrows):
            for position in range(indptr[row], indptr[row + 1]):
                dense[row, indices[position]] = data[position]
        return dense


def csr_from_dense(dense: np.ndarray, index_bytes: int = 4) -> csr_matrix:
    """Build a CSR matrix from a dense host array."""
    dense = np.asarray(dense, dtype=np.float64)
    rows, cols = dense.shape
    indptr = [0]
    indices = []
    data = []
    for row in range(rows):
        nonzero = np.nonzero(dense[row])[0]
        indices.extend(int(c) for c in nonzero)
        data.extend(float(v) for v in dense[row, nonzero])
        indptr.append(len(indices))
    return csr_matrix(
        np.asarray(indptr), np.asarray(indices), np.asarray(data), (rows, cols),
        index_bytes=index_bytes,
    )


def poisson_2d(grid_points: int, index_bytes: int = 4) -> csr_matrix:
    """The standard 5-point finite-difference Laplacian on a square grid.

    This is the matrix family used by the paper's Krylov-solver and
    multigrid benchmarks: ``grid_points`` is the number of points along
    one side, the matrix is ``grid_points**2`` square with at most five
    non-zeros per row.
    """
    n = int(grid_points)
    rows = n * n
    grid_i, grid_j = np.divmod(np.arange(rows, dtype=np.int64), n)

    # Build the five diagonals as (row, column, value) triples, mask out the
    # entries that fall off the grid, and sort by (row, column).
    row_blocks = []
    col_blocks = []
    val_blocks = []

    def add_band(mask: np.ndarray, column_offset: int, value: float) -> None:
        band_rows = np.arange(rows, dtype=np.int64)[mask]
        row_blocks.append(band_rows)
        col_blocks.append(band_rows + column_offset)
        val_blocks.append(np.full(band_rows.shape, value))

    add_band(grid_i > 0, -n, -1.0)
    add_band(grid_j > 0, -1, -1.0)
    add_band(np.ones(rows, dtype=bool), 0, 4.0)
    add_band(grid_j < n - 1, 1, -1.0)
    add_band(grid_i < n - 1, n, -1.0)

    all_rows = np.concatenate(row_blocks)
    all_cols = np.concatenate(col_blocks)
    all_vals = np.concatenate(val_blocks)
    order = np.lexsort((all_cols, all_rows))
    all_rows, all_cols, all_vals = all_rows[order], all_cols[order], all_vals[order]

    indptr = np.zeros(rows + 1, dtype=np.int64)
    np.add.at(indptr, all_rows + 1, 1)
    indptr = np.cumsum(indptr)
    return csr_matrix(
        indptr, all_cols, all_vals, (rows, rows), index_bytes=index_bytes
    )
