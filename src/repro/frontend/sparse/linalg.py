"""Sparse iterative solver helpers mirroring ``scipy.sparse.linalg``.

These are the "naturally written" solver implementations the paper's
evaluation runs through Diffuse: every vector operation is an ordinary
cuPyNumeric expression (separate multiply/add/dot tasks), and the SpMV is
the opaque task of :mod:`repro.frontend.sparse.csr`.  The functions are
also reused by the application drivers in :mod:`repro.apps`.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.frontend.cunumeric.array import ndarray
from repro.frontend.sparse.csr import csr_matrix


def cg(
    matrix: csr_matrix,
    rhs: ndarray,
    x0: ndarray,
    iterations: int,
    tolerance: float = 0.0,
    check_interval: int = 0,
    on_iteration: Optional[Callable[[int], None]] = None,
) -> Tuple[ndarray, float]:
    """Naturally-written conjugate gradient (paper Section 7.1).

    ``check_interval`` controls how often the residual norm is converted
    to a host value (forcing a flush); 0 keeps everything deferred, which
    lets Diffuse fuse AXPYs and dot products across iteration boundaries
    exactly as described in the paper.
    Returns the solution and the final residual 2-norm squared.
    """
    x = x0
    r = rhs - matrix.dot(x)
    p = r.copy()
    rs_old = r.dot(r)
    rs_value = float(rs_old)
    for iteration in range(iterations):
        if on_iteration is not None:
            on_iteration(iteration)
        ap = matrix.dot(p)
        alpha = rs_value / _nonzero(float(p.dot(ap)))
        x = x + alpha * p
        r = r - alpha * ap
        rs_new = r.dot(r)
        rs_value_new = float(rs_new)
        beta = rs_value_new / _nonzero(rs_value)
        p = r + beta * p
        rs_value = rs_value_new
        if check_interval and (iteration + 1) % check_interval == 0:
            if tolerance and rs_value < tolerance * tolerance:
                break
    return x, rs_value


def bicgstab(
    matrix: csr_matrix,
    rhs: ndarray,
    x0: ndarray,
    iterations: int,
    on_iteration: Optional[Callable[[int], None]] = None,
) -> Tuple[ndarray, float]:
    """Naturally-written BiCGSTAB (paper Section 7.1).

    Returns the solution and the final residual 2-norm squared.
    """
    x = x0
    r = rhs - matrix.dot(x)
    r_hat = r.copy()
    p = r.copy()
    rho = float(r_hat.dot(r))
    residual = rho
    for iteration in range(iterations):
        if on_iteration is not None:
            on_iteration(iteration)
        v = matrix.dot(p)
        alpha = rho / _nonzero(float(r_hat.dot(v)))
        s = r - alpha * v
        t = matrix.dot(s)
        omega = float(t.dot(s)) / _nonzero(float(t.dot(t)))
        x = x + alpha * p + omega * s
        r = s - omega * t
        rho_new = float(r_hat.dot(r))
        beta = (rho_new / _nonzero(rho)) * (alpha / _nonzero(omega))
        p = r + beta * (p - omega * v)
        rho = rho_new
        residual = float(r.dot(r))
    return x, residual


def _nonzero(value: float) -> float:
    """Guard a denominator against exact zero while preserving its sign."""
    if value == 0.0:
        return 1e-300
    return value
