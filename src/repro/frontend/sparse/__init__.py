"""A Legate-Sparse-like distributed sparse linear algebra frontend.

The central object is :class:`~repro.frontend.sparse.csr.csr_matrix`, a
distributed CSR matrix whose sparse mat-vec product is an opaque task
(like the CUDA SpMV kernels of Legate Sparse).  Dense vectors produced and
consumed by the sparse operations are ordinary
:class:`repro.frontend.cunumeric.ndarray` objects, so programs freely mix
the two libraries and Diffuse optimises across the library boundary —
the property the paper's Krylov-solver benchmarks exercise.
"""

from repro.frontend.sparse.csr import csr_matrix, csr_from_dense, poisson_2d
from repro.frontend.sparse import linalg

__all__ = ["csr_matrix", "csr_from_dense", "poisson_2d", "linalg"]
