"""The deferred distributed ndarray.

An :class:`ndarray` is a *view descriptor* over a store: the store plus an
offset and a shape.  Slicing creates new views of the same store — the
aliasing views that drive the paper's motivating example — and every
operation emits index tasks whose partitions carry the view's offset and
bounds, so Diffuse sees exactly the aliasing structure the paper's fusion
constraints reason about.

Only ``float64`` data and step-1 slicing are supported; that is all the
paper's applications need.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.ir.domain import Domain
from repro.ir.partition import Partition
from repro.ir.privilege import Privilege, ReductionOp
from repro.ir.store import Store
from repro.ir.task import StoreArg
from repro.frontend.legate.context import RuntimeContext, get_context

Scalar = Union[int, float]


class ndarray:  # noqa: N801 - mirrors the NumPy class name
    """A distributed, deferred array (possibly a view of another array)."""

    def __init__(
        self,
        store: Store,
        offset: Optional[Tuple[int, ...]] = None,
        shape: Optional[Tuple[int, ...]] = None,
        context: Optional[RuntimeContext] = None,
    ) -> None:
        self._context = context or get_context()
        self._store = store
        self._offset = tuple(offset) if offset is not None else (0,) * store.ndim
        self._shape = tuple(shape) if shape is not None else store.shape
        self._store.add_application_reference()
        # StoreArgs are immutable values fixed by (store, view, privilege);
        # memoize them so repeated task submissions against the same view
        # skip partition lookup and argument validation.
        self._read_arg: Optional[StoreArg] = None
        self._write_arg: Optional[StoreArg] = None

    def __del__(self) -> None:
        try:
            self._store.remove_application_reference()
        except Exception:  # pragma: no cover - interpreter shutdown
            pass

    # ------------------------------------------------------------------
    # Basic properties.
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        """Logical shape of the (view of the) array."""
        return self._shape

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return len(self._shape)

    @property
    def size(self) -> int:
        """Number of elements."""
        size = 1
        for extent in self._shape:
            size *= extent
        return size

    @property
    def dtype(self) -> np.dtype:
        """Element type (always float64)."""
        return self._store.dtype

    @property
    def store(self) -> Store:
        """The backing store (for tests and the experiment harness)."""
        return self._store

    @property
    def context(self) -> RuntimeContext:
        """The runtime context that owns this array."""
        return self._context

    def __len__(self) -> int:
        if self.ndim == 0:
            raise TypeError("len() of unsized object")
        return self._shape[0]

    def __repr__(self) -> str:
        return f"ndarray(shape={self._shape}, store={self._store.name})"

    # ------------------------------------------------------------------
    # Partitions and task plumbing.
    # ------------------------------------------------------------------
    def partition(self) -> Partition:
        """The partition used when this view is a task argument."""
        return self._context.natural_partition(self._store, self._offset, self._shape)

    def launch_domain(self) -> Domain:
        """The launch domain used for element-wise tasks on this view."""
        if self.ndim == 0:
            return Domain((1,))
        return self._context.launch_domain(self.ndim)

    def read_arg(self) -> StoreArg:
        """A Read argument for this view."""
        arg = self._read_arg
        if arg is None:
            arg = StoreArg(self._store, self.partition(), Privilege.READ)
            self._read_arg = arg
        return arg

    def write_arg(self) -> StoreArg:
        """A Write argument for this view."""
        arg = self._write_arg
        if arg is None:
            arg = StoreArg(self._store, self.partition(), Privilege.WRITE)
            self._write_arg = arg
        return arg

    def reduce_arg(self, redop: ReductionOp = ReductionOp.ADD) -> StoreArg:
        """A Reduce argument for this view."""
        return StoreArg(self._store, self.partition(), Privilege.REDUCE, redop=redop)

    def _fresh_like(self, shape: Optional[Tuple[int, ...]] = None, name: str = "tmp") -> "ndarray":
        shape = shape if shape is not None else self._shape
        store = self._context.create_store(shape, name=name)
        return ndarray(store, context=self._context)

    # ------------------------------------------------------------------
    # Slicing: views share the store and carry offsets/bounds.
    # ------------------------------------------------------------------
    def __getitem__(self, key) -> "ndarray":
        offsets, shape = self._resolve_slices(key)
        absolute = tuple(o + rel for o, rel in zip(self._offset, offsets))
        return ndarray(self._store, offset=absolute, shape=shape, context=self._context)

    def _resolve_slices(self, key) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        if not isinstance(key, tuple):
            key = (key,)
        if len(key) > self.ndim:
            raise IndexError(f"too many indices for a {self.ndim}-D array")
        key = key + (slice(None),) * (self.ndim - len(key))
        offsets = []
        shape = []
        for index, extent in zip(key, self._shape):
            if isinstance(index, slice):
                start, stop, step = index.indices(extent)
                if step != 1:
                    raise NotImplementedError("only step-1 slices are supported")
                offsets.append(start)
                shape.append(max(0, stop - start))
            elif isinstance(index, (int, np.integer)):
                raise NotImplementedError(
                    "integer indexing is not supported; use slices to keep "
                    "the result distributed"
                )
            else:
                raise TypeError(f"unsupported index {index!r}")
        return tuple(offsets), tuple(shape)

    def __setitem__(self, key, value) -> None:
        target = self if key is Ellipsis else self[key]
        if isinstance(value, ndarray):
            if value.shape != target.shape:
                raise ValueError(
                    f"cannot assign shape {value.shape} into shape {target.shape}"
                )
            self._context.submit(
                "copy",
                target.launch_domain(),
                [value.read_arg(), target.write_arg()],
            )
        else:
            self._context.submit(
                "fill",
                target.launch_domain(),
                [target.write_arg()],
                scalar_args=(float(value),),
            )

    # ------------------------------------------------------------------
    # Element-wise operator helpers.
    # ------------------------------------------------------------------
    def _binary(self, other, op: str, scalar_op: str, reverse: bool = False) -> "ndarray":
        if isinstance(other, ndarray) and other.ndim == 0:
            other = float(other)
        if isinstance(other, ndarray):
            if other.shape != self.shape:
                raise ValueError(f"shape mismatch: {self.shape} vs {other.shape}")
            out = self._fresh_like()
            lhs, rhs = (other, self) if reverse else (self, other)
            self._context.submit(
                op,
                out.launch_domain(),
                [lhs.read_arg(), rhs.read_arg(), out.write_arg()],
            )
            return out
        out = self._fresh_like()
        task = f"r{scalar_op}" if reverse and scalar_op in ("subtract_scalar", "divide_scalar") else scalar_op
        self._context.submit(
            task,
            out.launch_domain(),
            [self.read_arg(), out.write_arg()],
            scalar_args=(float(other),),
        )
        return out

    def _unary(self, op: str) -> "ndarray":
        out = self._fresh_like()
        self._context.submit(op, out.launch_domain(), [self.read_arg(), out.write_arg()])
        return out

    def _inplace(self, other, op: str, scalar_op: str) -> "ndarray":
        if isinstance(other, ndarray) and other.ndim == 0:
            other = float(other)
        if isinstance(other, ndarray):
            if other.shape != self.shape:
                raise ValueError(f"shape mismatch: {self.shape} vs {other.shape}")
            self._context.submit(
                op,
                self.launch_domain(),
                [self.read_arg(), other.read_arg(), self.write_arg()],
            )
        else:
            self._context.submit(
                scalar_op,
                self.launch_domain(),
                [self.read_arg(), self.write_arg()],
                scalar_args=(float(other),),
            )
        return self

    # Arithmetic dunders -------------------------------------------------
    def __add__(self, other):
        return self._binary(other, "add", "add_scalar")

    def __radd__(self, other):
        return self._binary(other, "add", "add_scalar", reverse=True)

    def __sub__(self, other):
        return self._binary(other, "subtract", "subtract_scalar")

    def __rsub__(self, other):
        return self._binary(other, "subtract", "subtract_scalar", reverse=True)

    def __mul__(self, other):
        return self._binary(other, "multiply", "multiply_scalar")

    def __rmul__(self, other):
        return self._binary(other, "multiply", "multiply_scalar", reverse=True)

    def __truediv__(self, other):
        return self._binary(other, "divide", "divide_scalar")

    def __rtruediv__(self, other):
        return self._binary(other, "divide", "divide_scalar", reverse=True)

    def __pow__(self, other):
        if isinstance(other, ndarray):
            return self._binary(other, "power", "power_scalar")
        return self._binary(float(other), "power", "power_scalar")

    def __neg__(self):
        return self._unary("negative")

    def __iadd__(self, other):
        return self._inplace(other, "add", "add_scalar")

    def __isub__(self, other):
        return self._inplace(other, "subtract", "subtract_scalar")

    def __imul__(self, other):
        return self._inplace(other, "multiply", "multiply_scalar")

    def __itruediv__(self, other):
        return self._inplace(other, "divide", "divide_scalar")

    # Comparisons produce 0/1-valued arrays used with ``where``.
    def __gt__(self, other):
        return self._compare(other, "greater", "greater_scalar")

    def __lt__(self, other):
        return self._compare(other, "less", "less_scalar")

    def __ge__(self, other):
        return self._compare(other, "greater_equal", None)

    def __le__(self, other):
        return self._compare(other, "less_equal", None)

    def _compare(self, other, op: str, scalar_op: Optional[str]):
        if isinstance(other, (int, float)) and scalar_op is not None:
            return self._binary(other, op, scalar_op)
        if isinstance(other, (int, float)):
            other = _full_like(self, float(other))
        return self._binary(other, op, op)

    # ------------------------------------------------------------------
    # Reductions.
    # ------------------------------------------------------------------
    def _reduce(self, task_name: str, redop: ReductionOp, identity: float) -> "ndarray":
        result_store = self._context.create_scalar_store(name=f"{task_name}_result")
        self._context.legion.write_scalar(result_store, identity)
        result = ndarray(result_store, context=self._context)
        self._context.submit(
            task_name,
            self.launch_domain(),
            [self.read_arg(), result.reduce_arg(redop)],
        )
        return result

    def sum(self) -> "ndarray":
        """Sum of all elements (a deferred scalar)."""
        return self._reduce("sum_reduce", ReductionOp.ADD, 0.0)

    def max(self) -> "ndarray":
        """Maximum element (a deferred scalar)."""
        return self._reduce("max_reduce", ReductionOp.MAX, float("-inf"))

    def min(self) -> "ndarray":
        """Minimum element (a deferred scalar)."""
        return self._reduce("min_reduce", ReductionOp.MIN, float("inf"))

    def dot(self, other: "ndarray") -> "ndarray":
        """Inner product with another array of the same shape."""
        if not isinstance(other, ndarray) or other.shape != self.shape:
            raise ValueError("dot requires another array of the same shape")
        result_store = self._context.create_scalar_store(name="dot_result")
        self._context.legion.write_scalar(result_store, 0.0)
        result = ndarray(result_store, context=self._context)
        self._context.submit(
            "dot",
            self.launch_domain(),
            [self.read_arg(), other.read_arg(), result.reduce_arg(ReductionOp.ADD)],
        )
        return result

    # ------------------------------------------------------------------
    # Materialisation.
    # ------------------------------------------------------------------
    def item(self) -> float:
        """Blocking read of a scalar array's value."""
        if self.size != 1:
            raise ValueError("item() requires a single-element array")
        return self._context.read_scalar(self._store)

    def __float__(self) -> float:
        return self.item()

    def to_numpy(self) -> np.ndarray:
        """Blocking copy of the view's contents into a NumPy array."""
        full = self._context.read_array(self._store)
        slices = tuple(
            slice(o, o + s) for o, s in zip(self._offset, self._shape)
        )
        return np.array(full[slices], copy=True)

    __array__ = to_numpy

    def fill(self, value: float) -> None:
        """Fill the view with a constant (emits a fill task)."""
        self.__setitem__(Ellipsis, float(value))

    def copy(self) -> "ndarray":
        """A freshly-allocated copy of the view."""
        out = self._fresh_like(name="copy")
        self._context.submit(
            "copy", out.launch_domain(), [self.read_arg(), out.write_arg()]
        )
        return out


def _full_like(template: ndarray, value: float) -> ndarray:
    out = template._fresh_like(name="const")
    template.context.submit(
        "fill", out.launch_domain(), [out.write_arg()], scalar_args=(value,)
    )
    return out
