"""Reduction functions producing deferred scalar futures."""

from __future__ import annotations

from repro.frontend.cunumeric.array import ndarray


def sum(a: ndarray) -> ndarray:  # noqa: A001 - mirrors the NumPy name
    """Sum of all elements (deferred scalar)."""
    return a.sum()


def amax(a: ndarray) -> ndarray:
    """Maximum element (deferred scalar)."""
    return a.max()


def amin(a: ndarray) -> ndarray:
    """Minimum element (deferred scalar)."""
    return a.min()


def dot(a: ndarray, b: ndarray) -> ndarray:
    """Inner product of two equally-shaped arrays (deferred scalar)."""
    return a.dot(b)
