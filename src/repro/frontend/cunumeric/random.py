"""Random array creation.

cuPyNumeric generates random numbers on the GPUs; here the values are
generated on the host and attached to the store.  Generation is part of
application set-up in every benchmark and is never timed, so modelling it
as an attach keeps the measured task streams identical to the paper's.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.frontend.cunumeric.array import ndarray
from repro.frontend.cunumeric.creation import array

_rng = np.random.default_rng(0)


def seed(value: int) -> None:
    """Seed the host-side generator (for reproducible examples/tests)."""
    global _rng
    _rng = np.random.default_rng(value)


def rand(*shape: int) -> ndarray:
    """Uniform random values in ``[0, 1)`` with the given shape."""
    if len(shape) == 1 and isinstance(shape[0], tuple):
        shape = shape[0]
    host = _rng.random(tuple(int(s) for s in shape))
    return array(host, name="rand")


def uniform(low: float, high: float, size) -> ndarray:
    """Uniform random values in ``[low, high)``."""
    if isinstance(size, int):
        size = (size,)
    host = _rng.uniform(low, high, tuple(int(s) for s in size))
    return array(host, name="uniform")
