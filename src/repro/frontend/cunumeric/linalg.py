"""Dense linear algebra: mat-vec products and norms.

The dense matrix-vector product is an *opaque* task (no KIR generator):
like cuPyNumeric's cuBLAS-backed GEMV it executes through a library kernel
and therefore never joins a fused kernel, exactly as in the paper's Jacobi
benchmark where the matrix-vector multiply dominates and fusion only
touches the surrounding vector operations.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

from repro.ir.privilege import Privilege
from repro.ir.task import IndexTask, StoreArg
from repro.frontend.cunumeric.array import ndarray
from repro.frontend.legate.context import get_context
from repro.runtime.machine import MachineConfig
from repro.runtime.opaque import register_opaque_task


# ----------------------------------------------------------------------
# Opaque GEMV task registration.
# ----------------------------------------------------------------------
def _gemv_execute(task: IndexTask, point, buffers: Dict[int, Optional[np.ndarray]]):
    matrix = buffers[0]
    vector = buffers[1]
    output = buffers[2]
    if output is None or matrix is None or vector is None:
        return None
    output[...] = matrix @ vector
    return None


def _gemv_cost(task: IndexTask, point, buffers, machine: MachineConfig) -> float:
    matrix = buffers[0]
    if matrix is None:
        return machine.kernel_launch_latency
    rows, cols = matrix.shape
    bytes_moved = rows * cols * 8 + cols * 8 + rows * 8
    flops = 2.0 * rows * cols
    return machine.kernel_launch_latency + max(
        bytes_moved / machine.gpu_memory_bandwidth, flops / machine.gpu_peak_flops
    )


register_opaque_task("gemv", _gemv_execute, _gemv_cost)


def matvec(matrix: ndarray, vector: ndarray) -> ndarray:
    """Dense mat-vec product ``matrix @ vector`` (an opaque GEMV task)."""
    if matrix.ndim != 2 or vector.ndim != 1:
        raise ValueError("matvec expects a 2-D matrix and a 1-D vector")
    rows, cols = matrix.shape
    if cols != vector.shape[0]:
        raise ValueError(f"shape mismatch: {matrix.shape} @ {vector.shape}")
    context = get_context()
    out_store = context.create_store((rows,), name="gemv_out")
    out = ndarray(out_store, context=context)
    args = [
        StoreArg(matrix.store, context.row_partition(matrix.store, rows), Privilege.READ),
        StoreArg(vector.store, context.replication(), Privilege.READ),
        out.write_arg(),
    ]
    context.submit("gemv", out.launch_domain(), args)
    return out


def norm(vector: ndarray) -> float:
    """The 2-norm of a vector.

    Reading the norm synchronises with the runtime (a Legion future read),
    so programs that want to keep execution deferred use ``dot`` on the
    vector with itself instead, as the paper's solvers do.
    """
    squared = vector.dot(vector)
    return math.sqrt(max(0.0, float(squared)))
