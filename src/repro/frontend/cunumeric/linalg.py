"""Dense linear algebra: mat-vec products and norms.

The dense matrix-vector product is an *opaque* task (no KIR generator):
like cuPyNumeric's cuBLAS-backed GEMV it executes through a library kernel
and therefore never joins a fused kernel, exactly as in the paper's Jacobi
benchmark where the matrix-vector multiply dominates and fusion only
touches the surrounding vector operations.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

from repro.ir.privilege import Privilege
from repro.ir.task import IndexTask, StoreArg
from repro.frontend.cunumeric.array import ndarray
from repro.frontend.legate.context import get_context
from repro.runtime.machine import MachineConfig
from repro.runtime.opaque import register_opaque_task


# ----------------------------------------------------------------------
# Opaque GEMV task registration.
# ----------------------------------------------------------------------
def _gemv_execute(task: IndexTask, point, buffers: Dict[int, Optional[np.ndarray]]):
    matrix = buffers[0]
    vector = buffers[1]
    output = buffers[2]
    if output is None or matrix is None or vector is None:
        return None
    # einsum rather than ``matrix @ vector``: BLAS GEMV selects kernels by
    # row count, so its last-bit results change with the row-block size —
    # einsum reduces each row independently, making per-rank and merged
    # chunk-level calls bit-identical (the differential hammer checks it).
    output[...] = np.einsum("ij,j->i", matrix, vector)
    return None


def _gemv_cost(task: IndexTask, point, buffers, machine: MachineConfig) -> float:
    matrix = buffers[0]
    if matrix is None:
        return machine.kernel_launch_latency
    rows, cols = matrix.shape
    bytes_moved = rows * cols * 8 + cols * 8 + rows * 8
    flops = 2.0 * rows * cols
    return machine.kernel_launch_latency + max(
        bytes_moved / machine.gpu_memory_bandwidth, flops / machine.gpu_peak_flops
    )


def _gemv_chunk_execute(bases, rects, scalars):
    """One GEMV over the merged row block of a contiguous rank chunk.

    The row partition tiles ranks in ascending contiguous row order, so
    the chunk collapses to a single GEMV over the merged row block; a
    non-contiguous chunk (never produced by ``row_partition``) degrades
    to one call per rank.  The einsum formulation reduces each output
    row independently of the block's row count, so the merged call
    computes every element with the exact floating-point operations of
    the per-rank call that owns it (see ``_gemv_execute``).
    """
    matrix = bases[0]
    vector = bases[1]
    output = bases[2]
    row_rects = rects[0]
    if all(
        row_rects[index][1][0] == row_rects[index + 1][0][0]
        for index in range(len(row_rects) - 1)
    ):
        lo, hi = row_rects[0][0][0], row_rects[-1][1][0]
        output[lo:hi] = np.einsum("ij,j->i", matrix[lo:hi], vector)
    else:  # pragma: no cover - row partitions are always contiguous
        for lo_point, hi_point in row_rects:
            output[lo_point[0] : hi_point[0]] = np.einsum(
                "ij,j->i", matrix[lo_point[0] : hi_point[0]], vector
            )
    return None


def _gemv_chunk_cost(bases, rects, scalars, machine: MachineConfig):
    """Per-rank modelled seconds of a GEMV chunk (mirrors ``_gemv_cost``)."""
    cols = bases[0].shape[1]
    seconds = []
    for lo, hi in rects[0]:
        rows = hi[0] - lo[0]
        bytes_moved = rows * cols * 8 + cols * 8 + rows * 8
        flops = 2.0 * rows * cols
        seconds.append(
            machine.kernel_launch_latency
            + max(
                bytes_moved / machine.gpu_memory_bandwidth,
                flops / machine.gpu_peak_flops,
            )
        )
    return seconds


register_opaque_task(
    "gemv",
    _gemv_execute,
    _gemv_cost,
    chunk_execute=_gemv_chunk_execute,
    chunk_cost_seconds=_gemv_chunk_cost,
)


def matvec(matrix: ndarray, vector: ndarray) -> ndarray:
    """Dense mat-vec product ``matrix @ vector`` (an opaque GEMV task)."""
    if matrix.ndim != 2 or vector.ndim != 1:
        raise ValueError("matvec expects a 2-D matrix and a 1-D vector")
    rows, cols = matrix.shape
    if cols != vector.shape[0]:
        raise ValueError(f"shape mismatch: {matrix.shape} @ {vector.shape}")
    context = get_context()
    out_store = context.create_store((rows,), name="gemv_out")
    out = ndarray(out_store, context=context)
    args = [
        StoreArg(matrix.store, context.row_partition(matrix.store, rows), Privilege.READ),
        StoreArg(vector.store, context.replication(), Privilege.READ),
        out.write_arg(),
    ]
    context.submit("gemv", out.launch_domain(), args)
    return out


def norm(vector: ndarray) -> float:
    """The 2-norm of a vector.

    Reading the norm synchronises with the runtime (a Legion future read),
    so programs that want to keep execution deferred use ``dot`` on the
    vector with itself instead, as the paper's solvers do.
    """
    squared = vector.dot(vector)
    return math.sqrt(max(0.0, float(squared)))
