"""Element-wise module-level functions (the NumPy ufunc surface)."""

from __future__ import annotations

from typing import Union

from repro.frontend.cunumeric.array import ndarray, _full_like

ArrayOrScalar = Union[ndarray, int, float]


def _as_array(value: ArrayOrScalar, template: ndarray) -> ndarray:
    if isinstance(value, ndarray):
        return value
    return _full_like(template, float(value))


# ----------------------------------------------------------------------
# Binary functions.
# ----------------------------------------------------------------------
def add(a: ndarray, b: ArrayOrScalar) -> ndarray:
    """Element-wise addition."""
    return a + b


def subtract(a: ndarray, b: ArrayOrScalar) -> ndarray:
    """Element-wise subtraction."""
    return a - b


def multiply(a: ndarray, b: ArrayOrScalar) -> ndarray:
    """Element-wise multiplication."""
    return a * b


def divide(a: ndarray, b: ArrayOrScalar) -> ndarray:
    """Element-wise division."""
    return a / b


def power(a: ndarray, b: ArrayOrScalar) -> ndarray:
    """Element-wise exponentiation."""
    return a ** b


def maximum(a: ndarray, b: ArrayOrScalar) -> ndarray:
    """Element-wise maximum."""
    if isinstance(b, ndarray):
        return a._binary(b, "maximum", "maximum_scalar")
    return a._binary(float(b), "maximum", "maximum_scalar")


def minimum(a: ndarray, b: ArrayOrScalar) -> ndarray:
    """Element-wise minimum."""
    if isinstance(b, ndarray):
        return a._binary(b, "minimum", "minimum_scalar")
    return a._binary(float(b), "minimum", "minimum_scalar")


def where(condition: ndarray, if_true: ArrayOrScalar, if_false: ArrayOrScalar) -> ndarray:
    """Element-wise selection: ``condition ? if_true : if_false``."""
    if_true = _as_array(if_true, condition)
    if_false = _as_array(if_false, condition)
    out = condition._fresh_like(name="where")
    condition.context.submit(
        "where",
        out.launch_domain(),
        [condition.read_arg(), if_true.read_arg(), if_false.read_arg(), out.write_arg()],
    )
    return out


def axpy(alpha: float, x: ndarray, y: ndarray) -> ndarray:
    """The hand-fused ``alpha * x + y`` kernel.

    Naturally-written programs express this as a multiply followed by an
    add and rely on Diffuse to fuse them; the "manually fused" baselines
    call this function directly.
    """
    out = x._fresh_like(name="axpy")
    x.context.submit(
        "axpy",
        out.launch_domain(),
        [x.read_arg(), y.read_arg(), out.write_arg()],
        scalar_args=(float(alpha),),
    )
    return out


# ----------------------------------------------------------------------
# Unary functions.
# ----------------------------------------------------------------------
def negative(a: ndarray) -> ndarray:
    """Element-wise negation."""
    return a._unary("negative")


def sqrt(a: ndarray) -> ndarray:
    """Element-wise square root."""
    return a._unary("sqrt")


def exp(a: ndarray) -> ndarray:
    """Element-wise exponential."""
    return a._unary("exp")


def log(a: ndarray) -> ndarray:
    """Element-wise natural logarithm."""
    return a._unary("log")


def absolute(a: ndarray) -> ndarray:
    """Element-wise absolute value."""
    return a._unary("absolute")


def erf(a: ndarray) -> ndarray:
    """Element-wise error function (used by Black-Scholes)."""
    return a._unary("erf")


def sin(a: ndarray) -> ndarray:
    """Element-wise sine."""
    return a._unary("sin")


def cos(a: ndarray) -> ndarray:
    """Element-wise cosine."""
    return a._unary("cos")


def tanh(a: ndarray) -> ndarray:
    """Element-wise hyperbolic tangent."""
    return a._unary("tanh")
