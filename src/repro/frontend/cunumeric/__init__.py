"""A cuPyNumeric-like distributed NumPy frontend.

The module mirrors (a useful subset of) the NumPy API.  Arrays are
deferred: every operation emits Diffuse index tasks over partitioned
stores instead of computing eagerly, and values only materialise when the
program reads them (``float(x)``, ``x.to_numpy()``), exactly like the
cuPyNumeric library the paper evaluates.

>>> from repro.frontend.legate import runtime_context
>>> import repro.frontend.cunumeric as np
>>> with runtime_context(num_gpus=4):
...     x = np.full(1024, 2.0)
...     y = np.full(1024, 3.0)
...     z = 2.0 * x + y
...     assert abs(float(z.sum()) - 1024 * 7.0) < 1e-9
"""

from repro.frontend.cunumeric.array import ndarray
from repro.frontend.cunumeric.creation import (
    arange,
    array,
    empty,
    full,
    ones,
    zeros,
    zeros_like,
)
from repro.frontend.cunumeric.ufuncs import (
    absolute,
    add,
    axpy,
    cos,
    divide,
    erf,
    exp,
    log,
    maximum,
    minimum,
    multiply,
    negative,
    power,
    sin,
    sqrt,
    subtract,
    tanh,
    where,
)
from repro.frontend.cunumeric.reductions import amax, amin, dot, sum  # noqa: A004
from repro.frontend.cunumeric import linalg, random

__all__ = [
    "ndarray",
    "array",
    "arange",
    "empty",
    "full",
    "ones",
    "zeros",
    "zeros_like",
    "absolute",
    "add",
    "axpy",
    "cos",
    "divide",
    "erf",
    "exp",
    "log",
    "maximum",
    "minimum",
    "multiply",
    "negative",
    "power",
    "sin",
    "sqrt",
    "subtract",
    "tanh",
    "where",
    "amax",
    "amin",
    "dot",
    "sum",
    "linalg",
    "random",
]
