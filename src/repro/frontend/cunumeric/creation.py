"""Array creation routines."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.frontend.cunumeric.array import ndarray
from repro.frontend.legate.context import get_context

ShapeLike = Union[int, Sequence[int]]


def _normalize_shape(shape: ShapeLike) -> Tuple[int, ...]:
    if isinstance(shape, (int, np.integer)):
        return (int(shape),)
    return tuple(int(s) for s in shape)


def empty(shape: ShapeLike, name: Optional[str] = None) -> ndarray:
    """An uninitialised distributed array (contents are zero in practice)."""
    context = get_context()
    store = context.create_store(_normalize_shape(shape), name=name or "empty")
    return ndarray(store, context=context)


def zeros(shape: ShapeLike, name: Optional[str] = None) -> ndarray:
    """A distributed array of zeros (emits a deferred fill task)."""
    out = empty(shape, name=name or "zeros")
    out.fill(0.0)
    return out


def ones(shape: ShapeLike, name: Optional[str] = None) -> ndarray:
    """A distributed array of ones (emits a deferred fill task)."""
    out = empty(shape, name=name or "ones")
    out.fill(1.0)
    return out


def full(shape: ShapeLike, value: float, name: Optional[str] = None) -> ndarray:
    """A distributed array filled with ``value``."""
    out = empty(shape, name=name or "full")
    out.fill(float(value))
    return out


def zeros_like(template: ndarray) -> ndarray:
    """A zero array with the same shape as ``template``."""
    return zeros(template.shape)


def array(data, name: Optional[str] = None) -> ndarray:
    """Create a distributed array from host data (attached, not a task)."""
    context = get_context()
    host = np.asarray(data, dtype=np.float64)
    store = context.create_store(host.shape, name=name or "array")
    context.attach(store, host)
    return ndarray(store, context=context)


def arange(stop: float, name: Optional[str] = None) -> ndarray:
    """The sequence ``0, 1, ..., stop-1`` as a distributed array."""
    return array(np.arange(stop, dtype=np.float64), name=name or "arange")
