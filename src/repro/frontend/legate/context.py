"""The runtime context connecting frontends to Diffuse and the runtime.

The context plays the role of the Legate core runtime in the paper's
software stack: it owns the store manager, decides launch domains, and
routes the index tasks emitted by the frontends either through the
Diffuse fusion layer (the "Fused" configuration) or directly to the
Legion-like runtime (the "Unfused" baseline).
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, replace
from typing import Dict, Optional, Sequence

import numpy as np

from repro.config import hotpath_cache_enabled
from repro.ir.domain import Domain, Rect, factor_domain, tile_shape_for
from repro.ir.partition import Partition, Replication, Tiling
from repro.ir.projection import promote_dimension
from repro.ir.store import Store, StoreManager
from repro.ir.task import IndexTask, StoreArg
from repro.fusion.engine import DiffuseRuntime, FusionConfig
from repro.kernel.generators import GeneratorRegistry, default_registry
from repro.runtime.machine import MachineConfig
from repro.runtime.opaque import OpaqueTaskRegistry, default_opaque_registry
from repro.runtime.runtime import LegionRuntime


class RuntimeContext:
    """Owns the runtime stack and issues index tasks for the frontends."""

    def __init__(
        self,
        num_gpus: int = 1,
        fusion: bool = True,
        machine: Optional[MachineConfig] = None,
        fusion_config: Optional[FusionConfig] = None,
        generator_registry: Optional[GeneratorRegistry] = None,
        opaque_registry: Optional[OpaqueTaskRegistry] = None,
    ) -> None:
        self.machine = machine or MachineConfig(num_gpus=num_gpus)
        self.stores = StoreManager()
        self.legion = LegionRuntime(
            machine=self.machine,
            generator_registry=generator_registry,
            opaque_registry=opaque_registry,
        )
        self.fusion_enabled = fusion
        # Copy the caller's config: mutating it in place would alias
        # fusion state across every context sharing the object (e.g. the
        # fused and unfused runs of a benchmark sweep).
        if fusion_config is not None:
            config = replace(fusion_config, enable_fusion=fusion)
        else:
            config = FusionConfig(enable_fusion=fusion)
        self.diffuse = DiffuseRuntime(
            runtime=self.legion,
            config=config,
            generator_registry=generator_registry,
        )
        # Partition descriptions are pure values derived from (shape,
        # offset, launch domain); intern them so the thousands of array
        # ops an application issues per iteration share one object per
        # distinct tiling instead of rebuilding it on every task.
        # REPRO_HOTPATH_CACHE=0 restores the seed behaviour (see
        # repro.config), sampled once per context like the executor does.
        self._intern_partitions = hotpath_cache_enabled()
        self._partition_cache: Dict[tuple, Partition] = {}
        self._launch_domain_cache: Dict[int, Domain] = {}

    # ------------------------------------------------------------------
    # Launch-domain and partition policy (mirrors cuPyNumeric's blocking).
    # ------------------------------------------------------------------
    @property
    def num_gpus(self) -> int:
        """Number of GPUs the context launches tasks over."""
        return self.machine.num_gpus

    def launch_domain(self, ndim: int) -> Domain:
        """The launch domain used for arrays of the given dimensionality."""
        if not self._intern_partitions:
            return Domain((1,)) if ndim == 0 else factor_domain(self.num_gpus, ndim)
        domain = self._launch_domain_cache.get(ndim)
        if domain is None:
            domain = Domain((1,)) if ndim == 0 else factor_domain(self.num_gpus, ndim)
            self._launch_domain_cache[ndim] = domain
        return domain

    def natural_partition(
        self,
        store: Store,
        view_offset: Optional[Sequence[int]] = None,
        view_shape: Optional[Sequence[int]] = None,
    ) -> Partition:
        """The blocked tiling cuPyNumeric would use for a (view of a) store.

        For a view that covers the whole store the partition is the plain
        natural tiling; for an offset view the tiling carries the view's
        offset and bounds so aliasing views of the same store compare
        unequal (which is what the fusion constraints key on).
        """
        shape = tuple(view_shape) if view_shape is not None else store.shape
        offset = tuple(view_offset) if view_offset is not None else (0,) * store.ndim
        if store.ndim == 0 or store.volume <= 1:
            return Replication()
        key = ("natural", store.shape, shape, offset)
        partition = self._partition_cache.get(key) if self._intern_partitions else None
        if partition is None:
            launch = self.launch_domain(len(shape))
            tile = tile_shape_for(shape, launch)
            if offset == (0,) * store.ndim and shape == store.shape:
                partition = Tiling.create(tile)
            else:
                bounds = Rect(offset, tuple(o + s for o, s in zip(offset, shape)))
                partition = Tiling.create(tile, offset=offset, bounds=bounds)
            if self._intern_partitions:
                self._partition_cache[key] = partition
        return partition

    def row_partition(self, store: Store, rows: int) -> Partition:
        """Partition a 2-D store by blocks of rows over a 1-D launch domain.

        Used for dense matrices in mat-vec products, where the launch
        domain is that of the 1-D result vector.
        """
        key = ("rows", store.shape, rows)
        partition = self._partition_cache.get(key) if self._intern_partitions else None
        if partition is None:
            launch = self.launch_domain(1)
            row_tile = -(-rows // launch.shape[0])
            tile = (row_tile,) + store.shape[1:]
            partition = Tiling.create(tile, projection=promote_dimension(0, store.ndim))
            if self._intern_partitions:
                self._partition_cache[key] = partition
        return partition

    def replication(self) -> Partition:
        """A replication partition (every GPU sees the whole store)."""
        return Replication()

    # ------------------------------------------------------------------
    # Store management.
    # ------------------------------------------------------------------
    def create_store(self, shape: Sequence[int], name: Optional[str] = None) -> Store:
        """Create a distributed store."""
        return self.stores.create_store(shape, name=name)

    def create_scalar_store(self, name: Optional[str] = None) -> Store:
        """Create a scalar (future-like) store."""
        return self.stores.create_scalar_store(name=name)

    def attach(self, store: Store, data: np.ndarray) -> None:
        """Attach host data to a store (not a task launch)."""
        self.diffuse.notify_host_write(store)
        self.legion.attach_array(store, data)

    # ------------------------------------------------------------------
    # Task issue.
    # ------------------------------------------------------------------
    def submit(
        self,
        task_name: str,
        launch_domain: Domain,
        args: Sequence[StoreArg],
        scalar_args: Sequence[float] = (),
    ) -> IndexTask:
        """Create and submit an index task in program order."""
        task = IndexTask(
            task_name=task_name,
            launch_domain=launch_domain,
            args=args,
            scalar_args=scalar_args,
        )
        self.diffuse.submit(task)
        return task

    def flush(self) -> None:
        """Flush the Diffuse task window."""
        self.diffuse.flush_window()

    def read_scalar(self, store: Store) -> float:
        """Blocking read of a scalar store (forces a flush)."""
        return self.diffuse.read_scalar(store)

    def read_array(self, store: Store) -> np.ndarray:
        """Blocking read of a full store (forces a flush)."""
        return self.diffuse.read_array(store)

    def begin_iteration(self) -> None:
        """Mark an application iteration boundary for profiling."""
        self.diffuse.begin_iteration()

    # ------------------------------------------------------------------
    # Profiling access for the experiment harness.
    # ------------------------------------------------------------------
    @property
    def profiler(self):
        """The runtime profiler."""
        return self.legion.profiler

    @property
    def simulated_seconds(self) -> float:
        """Total simulated execution time so far."""
        return self.legion.simulated_seconds


# ----------------------------------------------------------------------
# Module-level current context (cuPyNumeric-style implicit runtime).
# ----------------------------------------------------------------------
_current_context: Optional[RuntimeContext] = None


def set_context(context: Optional[RuntimeContext]) -> None:
    """Install ``context`` as the current runtime context."""
    global _current_context
    _current_context = context


def get_context() -> RuntimeContext:
    """The current runtime context (created on demand with defaults)."""
    global _current_context
    if _current_context is None:
        _current_context = RuntimeContext()
    return _current_context


@contextlib.contextmanager
def runtime_context(**kwargs):
    """Context manager installing a fresh runtime context.

    >>> with runtime_context(num_gpus=4, fusion=True) as ctx:
    ...     ...
    """
    previous = _current_context
    context = RuntimeContext(**kwargs)
    set_context(context)
    try:
        yield context
    finally:
        set_context(previous)
