"""The Legate-like runtime context shared by all frontends."""

from repro.frontend.legate.context import (
    RuntimeContext,
    get_context,
    runtime_context,
    set_context,
)

__all__ = ["RuntimeContext", "get_context", "set_context", "runtime_context"]
