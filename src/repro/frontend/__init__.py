"""User-facing distributed libraries built on Diffuse's IR.

``repro.frontend.cunumeric`` is a deferred-execution, NumPy-like array
library (the paper's cuPyNumeric) and ``repro.frontend.sparse`` a
SciPy-Sparse-like CSR library (the paper's Legate Sparse).  Both map their
operations onto Diffuse index tasks through the shared
:mod:`repro.frontend.legate` runtime context, so programs composed from
the two libraries are optimised across library boundaries exactly as in
the paper.
"""
