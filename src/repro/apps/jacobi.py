"""Dense Jacobi iteration (paper Section 7.1, Figure 10b).

Each iteration is a dense matrix-vector product followed by two small
vector operations.  The mat-vec is an opaque GEMV task and dominates the
runtime, so fusion has almost nothing to win — the paper uses Jacobi to
show that Diffuse's analyses do not hurt when no fusion is available.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

import repro.frontend.cunumeric as cn
from repro.frontend.cunumeric import linalg
from repro.apps.base import Application, register_application
from repro.frontend.legate.context import RuntimeContext


@register_application("jacobi")
class JacobiIteration(Application):
    """Jacobi iteration for a dense diagonally-dominant system."""

    def __init__(
        self,
        rows_per_gpu: int = 64,
        context: Optional[RuntimeContext] = None,
        seed: int = 11,
    ) -> None:
        super().__init__(context)
        # Weak scaling keeps the *matrix elements* per GPU constant, so the
        # number of rows grows with the square root of the GPU count.
        gpus = self.context.num_gpus
        rows = int(np.ceil(float(rows_per_gpu) * np.sqrt(gpus)))
        rows = max(gpus, (rows // gpus) * gpus)
        rng = np.random.default_rng(seed)
        matrix = rng.uniform(0.0, 1.0, (rows, rows))
        # Make the matrix strongly diagonally dominant so Jacobi converges.
        np.fill_diagonal(matrix, matrix.sum(axis=1) + 1.0)
        self._matrix_host = matrix
        self._rhs_host = rng.uniform(0.0, 1.0, rows)
        self.matrix = cn.array(matrix, name="jacobi_A")
        self.rhs = cn.array(self._rhs_host, name="jacobi_b")
        self.diagonal = cn.array(np.diag(matrix).copy(), name="jacobi_diag")
        self.x = cn.zeros(rows, name="jacobi_x")
        self.rows = rows

    def step(self) -> None:
        """One Jacobi sweep: ``x <- x + (b - A x) / diag``."""
        ax = linalg.matvec(self.matrix, self.x)
        residual = self.rhs - ax
        self.x = self.x + residual / self.diagonal

    def checksum(self) -> float:
        """Sum of the current iterate."""
        return float(self.x.sum())

    def reference_checksum(self, iterations: int) -> float:
        """The same sweeps with plain NumPy (for the tests)."""
        x = np.zeros(self.rows)
        diag = np.diag(self._matrix_host)
        for _ in range(iterations):
            x = x + (self._rhs_host - self._matrix_host @ x) / diag
        return float(x.sum())
