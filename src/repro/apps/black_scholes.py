"""Black-Scholes option pricing (paper Section 7.1, Figure 10a).

A trivially-parallel micro-benchmark: every iteration re-prices a batch of
European call and put options with the closed-form Black-Scholes formula.
Written naturally, the formula decomposes into a long chain (~67) of
element-wise cuPyNumeric operations, all of which are fusible — the paper
uses it as the upper bound on what fusion can deliver.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

import repro.frontend.cunumeric as cn
from repro.apps.base import Application, register_application
from repro.frontend.legate.context import RuntimeContext

_SQRT_TWO = float(np.sqrt(2.0))


def _cdf(values):
    """Standard normal CDF built from the error function."""
    return 0.5 * (cn.erf(values / _SQRT_TWO) + 1.0)


@register_application("black-scholes")
class BlackScholes(Application):
    """Batched European option pricing."""

    def __init__(
        self,
        elements_per_gpu: int = 65536,
        risk_free_rate: float = 0.02,
        volatility: float = 0.30,
        context: Optional[RuntimeContext] = None,
        seed: int = 7,
    ) -> None:
        super().__init__(context)
        total = int(elements_per_gpu) * self.context.num_gpus
        rng = np.random.default_rng(seed)
        self._spot_host = rng.uniform(10.0, 100.0, total)
        self._strike_host = rng.uniform(10.0, 100.0, total)
        self._expiry_host = rng.uniform(0.1, 2.0, total)
        self.spot = cn.array(self._spot_host, name="spot")
        self.strike = cn.array(self._strike_host, name="strike")
        self.expiry = cn.array(self._expiry_host, name="expiry")
        self.rate = float(risk_free_rate)
        self.volatility = float(volatility)
        self.call = cn.zeros(total, name="call")
        self.put = cn.zeros(total, name="put")

    def step(self) -> None:
        """Re-price the whole batch (one long fusible chain of tasks)."""
        rate = self.rate
        vol = self.volatility
        spot, strike, expiry = self.spot, self.strike, self.expiry

        sqrt_t = cn.sqrt(expiry)
        vol_sqrt_t = vol * sqrt_t
        log_moneyness = cn.log(spot / strike)
        drift = (rate + 0.5 * vol * vol) * expiry
        d1 = (log_moneyness + drift) / vol_sqrt_t
        d2 = d1 - vol_sqrt_t

        cdf_d1 = _cdf(d1)
        cdf_d2 = _cdf(d2)
        cdf_neg_d1 = _cdf(-d1)
        cdf_neg_d2 = _cdf(-d2)

        discount = cn.exp(-rate * expiry)
        discounted_strike = strike * discount

        call = spot * cdf_d1 - discounted_strike * cdf_d2
        put = discounted_strike * cdf_neg_d2 - spot * cdf_neg_d1

        # Clamp tiny negative values caused by round-off, as the original
        # benchmark does, and store the results.
        self.call[...] = cn.maximum(call, 0.0)
        self.put[...] = cn.maximum(put, 0.0)

    def checksum(self) -> float:
        """Mean call plus mean put price."""
        total = float(self.call.sum()) + float(self.put.sum())
        return total / self.call.size

    def reference_checksum(self) -> float:
        """The same computation with plain NumPy (for the tests)."""
        spot, strike, expiry = self._spot_host, self._strike_host, self._expiry_host
        rate, vol = self.rate, self.volatility
        sqrt_t = np.sqrt(expiry)
        d1 = (np.log(spot / strike) + (rate + 0.5 * vol * vol) * expiry) / (vol * sqrt_t)
        d2 = d1 - vol * sqrt_t

        def cdf(values):
            from math import erf

            return 0.5 * (np.vectorize(erf)(values / _SQRT_TWO) + 1.0)

        discounted = strike * np.exp(-rate * expiry)
        call = np.maximum(spot * cdf(d1) - discounted * cdf(d2), 0.0)
        put = np.maximum(discounted * cdf(-d2) - spot * cdf(-d1), 0.0)
        return float(np.sum(call) + np.sum(put)) / len(call)
