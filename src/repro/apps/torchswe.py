"""TorchSWE-style shallow-water equation solver (paper Figure 12c).

A cuPyNumeric port of the structure of the TorchSWE solver the paper
evaluates: conserved variables ``h`` (water depth), ``hu`` and ``hv``
(momenta) on a 2-D grid, advanced with a Lax-Friedrichs finite-volume
scheme.  Each time step computes per-cell velocities, physical fluxes in
both directions, and neighbour-averaged updates — a long stream of
element-wise operations over aliasing shifted views, interrupted only by
the boundary-condition writes.

Two variants are provided, mirroring the paper's comparison:

* :class:`ShallowWater` — the naturally-written port.
* :class:`ManuallyFusedShallowWater` — the developer-optimised variant
  (the paper's ``numpy.vectorize`` version): scalar factors are
  pre-combined and hand-fused AXPY-style tasks replace some of the
  separate multiply/add pairs, reducing the task count but not reaching
  what Diffuse achieves automatically.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

import repro.frontend.cunumeric as cn
from repro.apps.base import Application, register_application
from repro.frontend.cunumeric.ufuncs import axpy
from repro.frontend.legate.context import RuntimeContext

_GRAVITY = 9.81


@register_application("torchswe")
class ShallowWater(Application):
    """Naturally-written shallow-water solver."""

    def __init__(
        self,
        points_per_gpu: int = 128,
        dt: float = 1e-4,
        context: Optional[RuntimeContext] = None,
        seed: int = 3,
    ) -> None:
        super().__init__(context)
        gpus = self.context.num_gpus
        side = int(np.ceil(np.sqrt(float(points_per_gpu) ** 2 * gpus)))
        self.n = side + 2
        self.dx = 1.0 / self.n
        self.dt = float(dt)
        rng = np.random.default_rng(seed)
        # A smooth random initial water column over a flat bed.
        base = 1.0 + 0.1 * rng.random((self.n, self.n))
        self._initial_h = base
        self.h = cn.array(base, name="swe_h")
        self.hu = cn.zeros((self.n, self.n), name="swe_hu")
        self.hv = cn.zeros((self.n, self.n), name="swe_hv")

    # ------------------------------------------------------------------
    # Shifted interior views.
    # ------------------------------------------------------------------
    @staticmethod
    def _views(field):
        center = field[1:-1, 1:-1]
        north = field[2:, 1:-1]
        south = field[0:-2, 1:-1]
        east = field[1:-1, 2:]
        west = field[1:-1, 0:-2]
        return center, north, south, east, west

    def _fluxes(self, h, hu, hv):
        """Physical fluxes of the shallow-water system for given views."""
        u = hu / h
        v = hv / h
        pressure = 0.5 * _GRAVITY * (h * h)
        flux_h_x = hu
        flux_hu_x = hu * u + pressure
        flux_hv_x = hu * v
        flux_h_y = hv
        flux_hu_y = hv * u
        flux_hv_y = hv * v + pressure
        return (flux_h_x, flux_hu_x, flux_hv_x, flux_h_y, flux_hu_y, flux_hv_y)

    def step(self) -> None:
        """One Lax-Friedrichs time step."""
        lam = self.dt / (2.0 * self.dx)
        hc, hn, hs, he, hw = self._views(self.h)
        huc, hun, hus, hue, huw = self._views(self.hu)
        hvc, hvn, hvs, hve, hvw = self._views(self.hv)

        # Fluxes at the four neighbours of every interior cell.
        fe = self._fluxes(he, hue, hve)
        fw = self._fluxes(hw, huw, hvw)
        fn = self._fluxes(hn, hun, hvn)
        fs = self._fluxes(hs, hus, hvs)

        # Lax-Friedrichs update: neighbour average minus flux differences.
        new_h = 0.25 * (he + hw + hn + hs) - lam * ((fe[0] - fw[0]) + (fn[3] - fs[3]))
        new_hu = 0.25 * (hue + huw + hun + hus) - lam * ((fe[1] - fw[1]) + (fn[4] - fs[4]))
        new_hv = 0.25 * (hve + hvw + hvn + hvs) - lam * ((fe[2] - fw[2]) + (fn[5] - fs[5]))

        self.h[1:-1, 1:-1] = new_h
        self.hu[1:-1, 1:-1] = new_hu
        self.hv[1:-1, 1:-1] = new_hv
        self._apply_boundaries()

    def _apply_boundaries(self) -> None:
        """Reflective boundaries: copy the first interior row/column outward."""
        self.h[0:1, :] = self.h[1:2, :]
        self.h[-1:, :] = self.h[-2:-1, :]
        self.h[:, 0:1] = self.h[:, 1:2]
        self.h[:, -1:] = self.h[:, -2:-1]
        for momentum in (self.hu, self.hv):
            momentum[0:1, :] = momentum[1:2, :]
            momentum[-1:, :] = momentum[-2:-1, :]
            momentum[:, 0:1] = momentum[:, 1:2]
            momentum[:, -1:] = momentum[:, -2:-1]

    def checksum(self) -> float:
        """Total water volume plus momentum magnitudes."""
        return float(self.h.sum()) + float(self.hu.sum()) + float(self.hv.sum())

    # ------------------------------------------------------------------
    # NumPy reference for the correctness tests.
    # ------------------------------------------------------------------
    def reference_checksum(self, iterations: int) -> float:
        """Run the same scheme with plain NumPy."""
        h = self._initial_h.copy()
        hu = np.zeros_like(h)
        hv = np.zeros_like(h)
        lam = self.dt / (2.0 * self.dx)

        def views(f):
            return f[1:-1, 1:-1], f[2:, 1:-1], f[0:-2, 1:-1], f[1:-1, 2:], f[1:-1, 0:-2]

        def fluxes(hh, hhu, hhv):
            u = hhu / hh
            v = hhv / hh
            pr = 0.5 * _GRAVITY * hh * hh
            return (hhu, hhu * u + pr, hhu * v, hhv, hhv * u, hhv * v + pr)

        for _ in range(iterations):
            hc, hn, hs, he, hw = views(h)
            huc, hun, hus, hue, huw = views(hu)
            hvc, hvn, hvs, hve, hvw = views(hv)
            fe = fluxes(he, hue, hve)
            fw = fluxes(hw, huw, hvw)
            fn = fluxes(hn, hun, hvn)
            fs = fluxes(hs, hus, hvs)
            new_h = 0.25 * (he + hw + hn + hs) - lam * ((fe[0] - fw[0]) + (fn[3] - fs[3]))
            new_hu = 0.25 * (hue + huw + hun + hus) - lam * ((fe[1] - fw[1]) + (fn[4] - fs[4]))
            new_hv = 0.25 * (hve + hvw + hvn + hvs) - lam * ((fe[2] - fw[2]) + (fn[5] - fs[5]))
            h[1:-1, 1:-1] = new_h
            hu[1:-1, 1:-1] = new_hu
            hv[1:-1, 1:-1] = new_hv
            for f in (h, hu, hv):
                f[0, :] = f[1, :]
                f[-1, :] = f[-2, :]
                f[:, 0] = f[:, 1]
                f[:, -1] = f[:, -2]
        return float(np.sum(h) + np.sum(hu) + np.sum(hv))


@register_application("torchswe-manual")
class ManuallyFusedShallowWater(ShallowWater):
    """Developer-optimised variant with pre-combined constants.

    The optimisation mirrors what the TorchSWE developers did with
    ``numpy.vectorize``: repeated sub-expressions are computed once,
    scalar factors are folded together, and AXPY-style fused tasks are
    used for the accumulation — fewer tasks than the natural version, but
    still short of a single fused kernel.
    """

    def step(self) -> None:
        lam = self.dt / (2.0 * self.dx)
        hc, hn, hs, he, hw = self._views(self.h)
        huc, hun, hus, hue, huw = self._views(self.hu)
        hvc, hvn, hvs, hve, hvw = self._views(self.hv)

        # Pre-computed inverse depths are shared by all flux expressions.
        inv_he, inv_hw = 1.0 / he, 1.0 / hw
        inv_hn, inv_hs = 1.0 / hn, 1.0 / hs

        pressure_diff_x = (0.5 * _GRAVITY) * (he * he - hw * hw)
        pressure_diff_y = (0.5 * _GRAVITY) * (hn * hn - hs * hs)

        flux_h = (hue - huw) + (hvn - hvs)
        flux_hu = (hue * (hue * inv_he) - huw * (huw * inv_hw)) + pressure_diff_x + (
            hvn * (hun * inv_hn) - hvs * (hus * inv_hs)
        )
        flux_hv = (hue * (hve * inv_he) - huw * (hvw * inv_hw)) + (
            hvn * (hvn * inv_hn) - hvs * (hvs * inv_hs)
        ) + pressure_diff_y

        avg_h = 0.25 * (he + hw + hn + hs)
        avg_hu = 0.25 * (hue + huw + hun + hus)
        avg_hv = 0.25 * (hve + hvw + hvn + hvs)

        self.h[1:-1, 1:-1] = axpy(-lam, flux_h, avg_h)
        self.hu[1:-1, 1:-1] = axpy(-lam, flux_hu, avg_hu)
        self.hv[1:-1, 1:-1] = axpy(-lam, flux_hv, avg_hv)
        self._apply_boundaries()
