"""TorchSWE-style shallow-water equation solver (paper Figure 12c).

A cuPyNumeric port of the structure of the TorchSWE solver the paper
evaluates: conserved variables ``h`` (water depth), ``hu`` and ``hv``
(momenta) on a 2-D grid, advanced with a Lax-Friedrichs finite-volume
scheme.  Each time step computes per-cell velocities, physical fluxes in
both directions, and neighbour-averaged updates — a long stream of
element-wise operations over aliasing shifted views, interrupted only by
the boundary-condition writes.

Two variants are provided, mirroring the paper's comparison:

* :class:`ShallowWater` — the naturally-written port.
* :class:`ManuallyFusedShallowWater` — the developer-optimised variant
  (the paper's ``numpy.vectorize`` version): scalar factors are
  pre-combined and hand-fused AXPY-style tasks replace some of the
  separate multiply/add pairs, reducing the task count but not reaching
  what Diffuse achieves automatically.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

import repro.frontend.cunumeric as cn
from repro.apps.base import Application, register_application
from repro.frontend.cunumeric.array import ndarray
from repro.frontend.legate.context import RuntimeContext
from repro.ir.domain import Domain
from repro.ir.privilege import Privilege
from repro.ir.task import IndexTask, StoreArg
from repro.runtime.machine import MachineConfig
from repro.runtime.opaque import register_opaque_task

_GRAVITY = 9.81


# ----------------------------------------------------------------------
# Opaque Lax-Friedrichs update operators (the manually-vectorised
# library routines of the paper's TorchSWE baseline).  Argument order:
# h, hu, hv (Replication, READ), conserved-variable output (natural
# tiling, WRITE).  Scalar: alpha = -dt / (2 dx), the AXPY factor.
#
# The three updates are *block-invariant*: every output element is a
# fixed gather of its global 4-neighbourhood from the replicated inputs,
# so any sub-block performs the exact per-element float operations of
# the full-interior expression — which licenses the chunk-level
# implementations (one vectorised call per rank tile, no reduction
# partials).  The boundary reflection below is *not* block-invariant
# (its edge copies are sequentially dependent through the corners), so
# it registers without a chunk implementation and stays on the
# documented per-rank fallback.
# ----------------------------------------------------------------------
def _edge_views(field, lo, hi):
    """East/west/north/south neighbour views for output block [lo, hi).

    Output index ``(i, j)`` corresponds to interior grid point
    ``(i + 1, j + 1)`` of the full fields.
    """
    r0, c0 = lo[0], lo[1]
    r1, c1 = hi[0], hi[1]
    east = field[r0 + 1:r1 + 1, c0 + 2:c1 + 2]
    west = field[r0 + 1:r1 + 1, c0:c1]
    north = field[r0 + 2:r1 + 2, c0 + 1:c1 + 1]
    south = field[r0:r1, c0 + 1:c1 + 1]
    return east, west, north, south


def _update_h_block(h, hu, hv, out, lo, hi, alpha) -> None:
    he, hw, hn, hs = _edge_views(h, lo, hi)
    hue, huw, _hun, _hus = _edge_views(hu, lo, hi)
    _hve, _hvw, hvn, hvs = _edge_views(hv, lo, hi)
    flux = (hue - huw) + (hvn - hvs)
    avg = 0.25 * (he + hw + hn + hs)
    out[...] = alpha * flux + avg


def _update_hu_block(h, hu, hv, out, lo, hi, alpha) -> None:
    he, hw, hn, hs = _edge_views(h, lo, hi)
    hue, huw, hun, hus = _edge_views(hu, lo, hi)
    _hve, _hvw, hvn, hvs = _edge_views(hv, lo, hi)
    inv_he, inv_hw = 1.0 / he, 1.0 / hw
    inv_hn, inv_hs = 1.0 / hn, 1.0 / hs
    pressure_diff_x = (0.5 * _GRAVITY) * (he * he - hw * hw)
    flux = (hue * (hue * inv_he) - huw * (huw * inv_hw)) + pressure_diff_x + (
        hvn * (hun * inv_hn) - hvs * (hus * inv_hs)
    )
    avg = 0.25 * (hue + huw + hun + hus)
    out[...] = alpha * flux + avg


def _update_hv_block(h, hu, hv, out, lo, hi, alpha) -> None:
    he, hw, hn, hs = _edge_views(h, lo, hi)
    hue, huw, _hun, _hus = _edge_views(hu, lo, hi)
    hve, hvw, hvn, hvs = _edge_views(hv, lo, hi)
    inv_he, inv_hw = 1.0 / he, 1.0 / hw
    inv_hn, inv_hs = 1.0 / hn, 1.0 / hs
    pressure_diff_y = (0.5 * _GRAVITY) * (hn * hn - hs * hs)
    flux = (hue * (hve * inv_he) - huw * (hvw * inv_hw)) + (
        hvn * (hvn * inv_hn) - hvs * (hvs * inv_hs)
    ) + pressure_diff_y
    avg = 0.25 * (hve + hvw + hvn + hvs)
    out[...] = alpha * flux + avg


def _swe_update_execute(block_fn):
    """Per-rank execute for one conserved-variable update operator."""

    def execute(task: IndexTask, point, buffers):
        h, hu, hv, out = buffers[0], buffers[1], buffers[2], buffers[3]
        if out is None:
            return None
        rect = task.args[3].partition.sub_store_rect(
            point, task.args[3].store.shape
        )
        block_fn(h, hu, hv, out, tuple(rect.lo), tuple(rect.hi), task.scalar_args[0])
        return None

    return execute


def _swe_update_chunk(block_fn):
    """Chunk execute: one vectorised call per rank tile of the chunk."""

    def chunk_execute(bases, rects, scalars):
        h, hu, hv, out = bases[0], bases[1], bases[2], bases[3]
        alpha = scalars[0]
        for lo, hi in rects[3]:
            block_fn(h, hu, hv, out[lo[0]:hi[0], lo[1]:hi[1]], lo, hi, alpha)
        return None

    return chunk_execute


# Vectorised-op counts of the three update operators: each NumPy
# binary/unary op in the block functions above is one pass of the
# hand-vectorised port this operator models — one kernel launch that
# reads two operand arrays and materialises one temporary.  Costing
# the operator as the sum of those passes (rather than one fused
# 13-gather stencil) keeps the Figure 12c story honest: the manually
# vectorised port still pays multi-pass memory traffic and per-op
# launch latency, which Diffuse's fused natural variant does not.
_H_UPDATE_OPS = 9.0
_HU_UPDATE_OPS = 26.0
_HV_UPDATE_OPS = 26.0


def _swe_update_cost(n_ops: float):
    """Per-rank cost of one update: `n_ops` vectorised three-pass ops."""

    def cost(task: IndexTask, point, buffers, machine: MachineConfig) -> float:
        out = buffers[3]
        elements = 0 if out is None else out.size
        bytes_moved = 3.0 * n_ops * elements * 8.0
        return (
            n_ops * machine.kernel_launch_latency
            + bytes_moved / machine.gpu_memory_bandwidth
        )

    return cost


def _swe_update_chunk_cost(n_ops: float):
    """Per-rank modelled seconds of an update chunk (mirrors the per-rank cost)."""

    def chunk_cost(bases, rects, scalars, machine: MachineConfig):
        seconds = []
        for lo, hi in rects[3]:
            elements = max(0, hi[0] - lo[0]) * max(0, hi[1] - lo[1])
            bytes_moved = 3.0 * n_ops * elements * 8.0
            seconds.append(
                n_ops * machine.kernel_launch_latency
                + bytes_moved / machine.gpu_memory_bandwidth
            )
        return seconds

    return chunk_cost


def _reflect_execute(task: IndexTask, point, buffers):
    """In-place reflective boundaries: the exact sequential edge copies.

    The column copies read the corner values the row copies just wrote,
    so the operator is not block-invariant — it registers without a
    chunk implementation and always runs per rank (a single-point
    launch over the replicated field).
    """
    field = buffers[0]
    if field is None:
        return None
    field[0:1, :] = field[1:2, :]
    field[-1:, :] = field[-2:-1, :]
    field[:, 0:1] = field[:, 1:2]
    field[:, -1:] = field[:, -2:-1]
    return None


def _reflect_cost(task: IndexTask, point, buffers, machine: MachineConfig) -> float:
    field = buffers[0]
    if field is None:
        return 0.0
    edge_elements = 2.0 * (field.shape[0] + field.shape[1])
    bytes_moved = 2.0 * edge_elements * 8.0
    return machine.kernel_launch_latency + bytes_moved / machine.gpu_memory_bandwidth


register_opaque_task(
    "swe_update_h",
    _swe_update_execute(_update_h_block),
    _swe_update_cost(_H_UPDATE_OPS),
    chunk_execute=_swe_update_chunk(_update_h_block),
    chunk_cost_seconds=_swe_update_chunk_cost(_H_UPDATE_OPS),
)
register_opaque_task(
    "swe_update_hu",
    _swe_update_execute(_update_hu_block),
    _swe_update_cost(_HU_UPDATE_OPS),
    chunk_execute=_swe_update_chunk(_update_hu_block),
    chunk_cost_seconds=_swe_update_chunk_cost(_HU_UPDATE_OPS),
)
register_opaque_task(
    "swe_update_hv",
    _swe_update_execute(_update_hv_block),
    _swe_update_cost(_HV_UPDATE_OPS),
    chunk_execute=_swe_update_chunk(_update_hv_block),
    chunk_cost_seconds=_swe_update_chunk_cost(_HV_UPDATE_OPS),
)
register_opaque_task(
    "swe_reflect_edges",
    _reflect_execute,
    _reflect_cost,
)


@register_application("torchswe")
class ShallowWater(Application):
    """Naturally-written shallow-water solver."""

    def __init__(
        self,
        points_per_gpu: int = 128,
        dt: float = 1e-4,
        context: Optional[RuntimeContext] = None,
        seed: int = 3,
    ) -> None:
        super().__init__(context)
        gpus = self.context.num_gpus
        side = int(np.ceil(np.sqrt(float(points_per_gpu) ** 2 * gpus)))
        self.n = side + 2
        self.dx = 1.0 / self.n
        self.dt = float(dt)
        rng = np.random.default_rng(seed)
        # A smooth random initial water column over a flat bed.
        base = 1.0 + 0.1 * rng.random((self.n, self.n))
        self._initial_h = base
        self.h = cn.array(base, name="swe_h")
        self.hu = cn.zeros((self.n, self.n), name="swe_hu")
        self.hv = cn.zeros((self.n, self.n), name="swe_hv")

    # ------------------------------------------------------------------
    # Shifted interior views.
    # ------------------------------------------------------------------
    @staticmethod
    def _views(field):
        center = field[1:-1, 1:-1]
        north = field[2:, 1:-1]
        south = field[0:-2, 1:-1]
        east = field[1:-1, 2:]
        west = field[1:-1, 0:-2]
        return center, north, south, east, west

    def _fluxes(self, h, hu, hv):
        """Physical fluxes of the shallow-water system for given views."""
        u = hu / h
        v = hv / h
        pressure = 0.5 * _GRAVITY * (h * h)
        flux_h_x = hu
        flux_hu_x = hu * u + pressure
        flux_hv_x = hu * v
        flux_h_y = hv
        flux_hu_y = hv * u
        flux_hv_y = hv * v + pressure
        return (flux_h_x, flux_hu_x, flux_hv_x, flux_h_y, flux_hu_y, flux_hv_y)

    def step(self) -> None:
        """One Lax-Friedrichs time step."""
        lam = self.dt / (2.0 * self.dx)
        hc, hn, hs, he, hw = self._views(self.h)
        huc, hun, hus, hue, huw = self._views(self.hu)
        hvc, hvn, hvs, hve, hvw = self._views(self.hv)

        # Fluxes at the four neighbours of every interior cell.
        fe = self._fluxes(he, hue, hve)
        fw = self._fluxes(hw, huw, hvw)
        fn = self._fluxes(hn, hun, hvn)
        fs = self._fluxes(hs, hus, hvs)

        # Lax-Friedrichs update: neighbour average minus flux differences.
        new_h = 0.25 * (he + hw + hn + hs) - lam * ((fe[0] - fw[0]) + (fn[3] - fs[3]))
        new_hu = 0.25 * (hue + huw + hun + hus) - lam * ((fe[1] - fw[1]) + (fn[4] - fs[4]))
        new_hv = 0.25 * (hve + hvw + hvn + hvs) - lam * ((fe[2] - fw[2]) + (fn[5] - fs[5]))

        self.h[1:-1, 1:-1] = new_h
        self.hu[1:-1, 1:-1] = new_hu
        self.hv[1:-1, 1:-1] = new_hv
        self._apply_boundaries()

    def _apply_boundaries(self) -> None:
        """Reflective boundaries: copy the first interior row/column outward."""
        self.h[0:1, :] = self.h[1:2, :]
        self.h[-1:, :] = self.h[-2:-1, :]
        self.h[:, 0:1] = self.h[:, 1:2]
        self.h[:, -1:] = self.h[:, -2:-1]
        for momentum in (self.hu, self.hv):
            momentum[0:1, :] = momentum[1:2, :]
            momentum[-1:, :] = momentum[-2:-1, :]
            momentum[:, 0:1] = momentum[:, 1:2]
            momentum[:, -1:] = momentum[:, -2:-1]

    def checksum(self) -> float:
        """Total water volume plus momentum magnitudes."""
        return float(self.h.sum()) + float(self.hu.sum()) + float(self.hv.sum())

    # ------------------------------------------------------------------
    # NumPy reference for the correctness tests.
    # ------------------------------------------------------------------
    def reference_checksum(self, iterations: int) -> float:
        """Run the same scheme with plain NumPy."""
        h = self._initial_h.copy()
        hu = np.zeros_like(h)
        hv = np.zeros_like(h)
        lam = self.dt / (2.0 * self.dx)

        def views(f):
            return f[1:-1, 1:-1], f[2:, 1:-1], f[0:-2, 1:-1], f[1:-1, 2:], f[1:-1, 0:-2]

        def fluxes(hh, hhu, hhv):
            u = hhu / hh
            v = hhv / hh
            pr = 0.5 * _GRAVITY * hh * hh
            return (hhu, hhu * u + pr, hhu * v, hhv, hhv * u, hhv * v + pr)

        for _ in range(iterations):
            hc, hn, hs, he, hw = views(h)
            huc, hun, hus, hue, huw = views(hu)
            hvc, hvn, hvs, hve, hvw = views(hv)
            fe = fluxes(he, hue, hve)
            fw = fluxes(hw, huw, hvw)
            fn = fluxes(hn, hun, hvn)
            fs = fluxes(hs, hus, hvs)
            new_h = 0.25 * (he + hw + hn + hs) - lam * ((fe[0] - fw[0]) + (fn[3] - fs[3]))
            new_hu = 0.25 * (hue + huw + hun + hus) - lam * ((fe[1] - fw[1]) + (fn[4] - fs[4]))
            new_hv = 0.25 * (hve + hvw + hvn + hvs) - lam * ((fe[2] - fw[2]) + (fn[5] - fs[5]))
            h[1:-1, 1:-1] = new_h
            hu[1:-1, 1:-1] = new_hu
            hv[1:-1, 1:-1] = new_hv
            for f in (h, hu, hv):
                f[0, :] = f[1, :]
                f[-1, :] = f[-2, :]
                f[:, 0] = f[:, 1]
                f[:, -1] = f[:, -2]
        return float(np.sum(h) + np.sum(hu) + np.sum(hv))


@register_application("torchswe-manual")
class ManuallyFusedShallowWater(ShallowWater):
    """Developer-optimised variant with pre-combined constants.

    The optimisation mirrors what the TorchSWE developers did with
    ``numpy.vectorize``: each conserved variable's whole Lax-Friedrichs
    update is one hand-vectorised library call — an opaque task the
    runtime cannot fuse into, computing exactly the pre-combined
    flux/average/AXPY expressions the earlier hand-fused task stream
    produced — and the reflective boundaries are one library call per
    field.  Fewer tasks than the natural version, but opaque to Diffuse.
    The three update operators are mutually independent, which is what
    gives this app its width-3 dependence levels.
    """

    def step(self) -> None:
        alpha = -(self.dt / (2.0 * self.dx))
        # All three updates read the *current* h/hu/hv, so they are
        # submitted before any interior write — program order makes the
        # writes depend on every read.
        new_h = self._submit_update("swe_update_h", alpha)
        new_hu = self._submit_update("swe_update_hu", alpha)
        new_hv = self._submit_update("swe_update_hv", alpha)
        self.h[1:-1, 1:-1] = new_h
        self.hu[1:-1, 1:-1] = new_hu
        self.hv[1:-1, 1:-1] = new_hv
        self._apply_boundaries()

    def _submit_update(self, name: str, alpha: float):
        """Submit one opaque conserved-variable update, returning its output."""
        out_store = self.context.create_store(
            (self.n - 2, self.n - 2), name=name
        )
        out = ndarray(out_store, context=self.context)
        self.context.submit(
            name,
            out.launch_domain(),
            [
                StoreArg(self.h.store, self.context.replication(), Privilege.READ),
                StoreArg(self.hu.store, self.context.replication(), Privilege.READ),
                StoreArg(self.hv.store, self.context.replication(), Privilege.READ),
                out.write_arg(),
            ],
            scalar_args=(float(alpha),),
        )
        return out

    def _apply_boundaries(self) -> None:
        """Reflective boundaries as one opaque library call per field."""
        for field in (self.h, self.hu, self.hv):
            self.context.submit(
                "swe_reflect_edges",
                Domain((1,)),
                [
                    StoreArg(
                        field.store,
                        self.context.replication(),
                        Privilege.READ_WRITE,
                    )
                ],
            )
