"""Two independent mat-vec chains (a width-2 dependence DAG).

Unlike the paper's flagship solvers — whose captured plans are pure
dependence chains — each iteration here runs two *independent* dense
mat-vecs followed by two independent vector updates.  The captured plan
has width 2 at every level, so the benchmark exercises the plan
scheduler's wide-level dispatch, the opaque-step fallback of the epoch
super-kernel pass (GEMV stays opaque), and horizontal fusion of the two
independent element-wise updates into a single super-kernel section.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

import repro.frontend.cunumeric as cn
from repro.frontend.cunumeric import linalg
from repro.apps.base import Application, register_application
from repro.frontend.legate.context import RuntimeContext


@register_application("two-matvec")
class TwoMatVec(Application):
    """Two decoupled iterated mat-vec recurrences, ``x += A x / 2n``."""

    def __init__(
        self,
        rows_per_gpu: int = 32,
        context: Optional[RuntimeContext] = None,
        seed: int = 7,
    ) -> None:
        super().__init__(context)
        # Weak scaling keeps matrix elements per GPU constant, as in the
        # Jacobi benchmark.
        gpus = self.context.num_gpus
        rows = int(np.ceil(float(rows_per_gpu) * np.sqrt(gpus)))
        rows = max(gpus, (rows // gpus) * gpus)
        rng = np.random.default_rng(seed)
        self._a_host = rng.uniform(1.0, 2.0, (rows, rows))
        self._b_host = rng.uniform(1.0, 2.0, (rows, rows))
        self._x0_host = rng.uniform(0.0, 1.0, rows)
        self._y0_host = rng.uniform(0.0, 1.0, rows)
        self.a = cn.array(self._a_host, name="tmv_A")
        self.b = cn.array(self._b_host, name="tmv_B")
        self.x = cn.array(self._x0_host, name="tmv_x")
        self.y = cn.array(self._y0_host, name="tmv_y")
        self.rows = rows
        #: Damping keeps the iterates bounded in float64 over any
        #: realistic iteration count while leaving them seed-dependent.
        self._scale = 1.0 / (2.0 * rows)

    def step(self) -> None:
        """Two independent recurrences sharing one epoch."""
        u = linalg.matvec(self.a, self.x)
        v = linalg.matvec(self.b, self.y)
        self.x = self.x + u * self._scale
        self.y = self.y + v * self._scale

    def checksum(self) -> float:
        """Sum of both iterates."""
        return float(self.x.sum()) + float(self.y.sum())

    def reference_checksum(self, iterations: int) -> float:
        """The same recurrences with plain NumPy (for the tests)."""
        x = self._x0_host.copy()
        y = self._y0_host.copy()
        for _ in range(iterations):
            x = x + (self._a_host @ x) * self._scale
            y = y + (self._b_host @ y) * self._scale
        return float(x.sum()) + float(y.sum())
