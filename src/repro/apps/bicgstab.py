"""BiCGSTAB solver benchmark (paper Section 7.1, Figure 11b).

The naturally-written BiCGSTAB of the paper: roughly twice the work of CG
per iteration (two SpMVs, four dot products and a dozen vector
operations), all expressed as separate cuPyNumeric tasks around the opaque
Legate Sparse SpMV.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

import repro.frontend.cunumeric as cn
from repro.apps.base import register_application
from repro.apps.cg import _KrylovSetup


def _nonzero(value: float) -> float:
    """Guard a denominator against exact zero while preserving its sign."""
    if value == 0.0:
        return 1e-300
    return value


@register_application("bicgstab")
class BiCGSTAB(_KrylovSetup):
    """Naturally-written BiCGSTAB over cuPyNumeric + Legate Sparse."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.reset()

    def reset(self) -> None:
        """(Re-)initialise the solver state."""
        self.x = cn.zeros(self.rows, name="bicgstab_x")
        self.r = self.rhs - self.matrix.dot(self.x)
        self.r_hat = self.r.copy()
        self.p = self.r.copy()
        self.rho = float(self.r_hat.dot(self.r))

    def step(self) -> None:
        """One BiCGSTAB iteration written as separate tasks."""
        if abs(self.rho) < 1e-28:
            # Converged to machine precision; re-initialise so that fixed
            # iteration-count benchmark runs keep doing representative work.
            self.reset()
        v = self.matrix.dot(self.p)
        alpha = self.rho / _nonzero(float(self.r_hat.dot(v)))
        s = self.r - alpha * v
        t = self.matrix.dot(s)
        omega = float(t.dot(s)) / _nonzero(float(t.dot(t)))
        self.x = self.x + alpha * self.p + omega * s
        self.r = s - omega * t
        rho_new = float(self.r_hat.dot(self.r))
        beta = (rho_new / _nonzero(self.rho)) * (alpha / _nonzero(omega))
        self.p = self.r + beta * (self.p - omega * v)
        self.rho = rho_new

    def checksum(self) -> float:
        """Sum of the current iterate."""
        return float(self.x.sum())
