"""The applications of the paper's evaluation (Section 7).

Each module defines one benchmark application written against the
cuPyNumeric / Legate Sparse frontends exactly as an end user would write
it.  Applications expose a uniform interface (:class:`~repro.apps.base.
Application`): a constructor taking the per-GPU problem size, a ``step``
method emitting one iteration's tasks, and a ``checksum`` used by the
correctness tests.

Applications never import the fusion machinery — whether they run fused or
unfused is decided entirely by the runtime context they are instantiated
under, mirroring the paper's claim that no application changes are needed
to benefit from Diffuse.
"""

from repro.apps.base import Application, build_application
from repro.apps.black_scholes import BlackScholes
from repro.apps.jacobi import JacobiIteration
from repro.apps.cg import ConjugateGradient, ManuallyFusedConjugateGradient
from repro.apps.bicgstab import BiCGSTAB
from repro.apps.gmg import GeometricMultigrid
from repro.apps.cfd import ChannelFlow
from repro.apps.torchswe import ManuallyFusedShallowWater, ShallowWater
from repro.apps.two_matvec import TwoMatVec

__all__ = [
    "Application",
    "build_application",
    "BlackScholes",
    "JacobiIteration",
    "ConjugateGradient",
    "ManuallyFusedConjugateGradient",
    "BiCGSTAB",
    "GeometricMultigrid",
    "ChannelFlow",
    "ShallowWater",
    "ManuallyFusedShallowWater",
    "TwoMatVec",
]
