"""2-D incompressible Navier-Stokes channel flow (paper Figure 12b).

A cuPyNumeric port of the "CFD Python: 12 steps to Navier-Stokes" channel
flow application the paper benchmarks: velocity fields ``u``/``v`` and a
pressure field ``p`` on a 2-D grid, advanced with finite differences.
Every update is an element-wise expression over *aliasing shifted views*
of the distributed grids (``field[1:-1, 0:-2]`` and friends), which is
precisely the access pattern that limits fusion across the writes at the
end of each sub-step — the behaviour the paper analyses for this
benchmark.

The paper's application uses periodic boundaries in x; periodic slicing
(``numpy.roll``) is not expressible with this frontend's contiguous
views, so the port uses a lid-driven-cavity-style set of Dirichlet
boundary conditions from the same lesson series.  The interior update —
the part that dominates the task stream and the fusion behaviour — is
unchanged.  See DESIGN.md, "Deviations".
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

import repro.frontend.cunumeric as cn
from repro.apps.base import Application, register_application
from repro.frontend.legate.context import RuntimeContext


@register_application("cfd")
class ChannelFlow(Application):
    """Navier-Stokes solver on a 2-D grid with pressure-Poisson coupling."""

    def __init__(
        self,
        points_per_gpu: int = 128,
        pressure_iterations: int = 8,
        reynolds_viscosity: float = 0.1,
        density: float = 1.0,
        dt: float = 0.0001,
        context: Optional[RuntimeContext] = None,
    ) -> None:
        super().__init__(context)
        gpus = self.context.num_gpus
        # Weak scaling: grow the grid area with the GPU count.
        side = int(np.ceil(np.sqrt(float(points_per_gpu) ** 2 * gpus)))
        self.nx = self.ny = side + 2
        self.dx = 2.0 / (self.nx - 1)
        self.dy = 2.0 / (self.ny - 1)
        self.dt = float(dt)
        self.rho = float(density)
        self.nu = float(reynolds_viscosity)
        self.pressure_iterations = int(pressure_iterations)
        self.u = cn.zeros((self.ny, self.nx), name="cfd_u")
        self.v = cn.zeros((self.ny, self.nx), name="cfd_v")
        self.p = cn.zeros((self.ny, self.nx), name="cfd_p")
        # Lid velocity along the top boundary drives the flow.
        self.u[-1:, :] = 1.0

    # ------------------------------------------------------------------
    # Shifted interior views of a field.
    # ------------------------------------------------------------------
    @staticmethod
    def _views(field):
        center = field[1:-1, 1:-1]
        north = field[2:, 1:-1]
        south = field[0:-2, 1:-1]
        east = field[1:-1, 2:]
        west = field[1:-1, 0:-2]
        return center, north, south, east, west

    def _build_rhs(self):
        """The source term of the pressure Poisson equation."""
        dx, dy, dt, rho = self.dx, self.dy, self.dt, self.rho
        uc, un, us, ue, uw = self._views(self.u)
        vc, vn, vs, ve, vw = self._views(self.v)
        dudx = (ue - uw) / (2.0 * dx)
        dvdy = (vn - vs) / (2.0 * dy)
        dudy = (un - us) / (2.0 * dy)
        dvdx = (ve - vw) / (2.0 * dx)
        return rho * (
            (dudx + dvdy) / dt - dudx * dudx - 2.0 * (dudy * dvdx) - dvdy * dvdy
        )

    def _pressure_poisson(self, rhs) -> None:
        dx2, dy2 = self.dx * self.dx, self.dy * self.dy
        denominator = 2.0 * (dx2 + dy2)
        for _ in range(self.pressure_iterations):
            pc, pn, ps, pe, pw = self._views(self.p)
            interior = ((pe + pw) * dy2 + (pn + ps) * dx2) / denominator - (
                dx2 * dy2 / denominator
            ) * rhs
            self.p[1:-1, 1:-1] = interior
            # Dirichlet/Neumann-style boundary conditions.
            self.p[:, -1:] = self.p[:, -2:-1]
            self.p[0:1, :] = self.p[1:2, :]
            self.p[:, 0:1] = self.p[:, 1:2]
            self.p[-1:, :] = 0.0

    def step(self) -> None:
        """Advance the velocity and pressure fields by one time step."""
        dx, dy, dt, rho, nu = self.dx, self.dy, self.dt, self.rho, self.nu
        rhs = self._build_rhs()
        self._pressure_poisson(rhs)

        uc, un, us, ue, uw = self._views(self.u)
        vc, vn, vs, ve, vw = self._views(self.v)
        pc, pn, ps, pe, pw = self._views(self.p)

        new_u = (
            uc
            - uc * (dt / dx) * (uc - uw)
            - vc * (dt / dy) * (uc - us)
            - (dt / (2.0 * rho * dx)) * (pe - pw)
            + nu * ((dt / (dx * dx)) * (ue - 2.0 * uc + uw) + (dt / (dy * dy)) * (un - 2.0 * uc + us))
        )
        new_v = (
            vc
            - uc * (dt / dx) * (vc - vw)
            - vc * (dt / dy) * (vc - vs)
            - (dt / (2.0 * rho * dy)) * (pn - ps)
            + nu * ((dt / (dx * dx)) * (ve - 2.0 * vc + vw) + (dt / (dy * dy)) * (vn - 2.0 * vc + vs))
        )

        self.u[1:-1, 1:-1] = new_u
        self.v[1:-1, 1:-1] = new_v

        # Boundary conditions: no-slip walls, moving lid at the top.
        self.u[0:1, :] = 0.0
        self.u[:, 0:1] = 0.0
        self.u[:, -1:] = 0.0
        self.u[-1:, :] = 1.0
        self.v[0:1, :] = 0.0
        self.v[-1:, :] = 0.0
        self.v[:, 0:1] = 0.0
        self.v[:, -1:] = 0.0

    def checksum(self) -> float:
        """Sum of the velocity magnitudes (forces a flush)."""
        return float((self.u * self.u + self.v * self.v).sum())

    # ------------------------------------------------------------------
    # NumPy reference for the correctness tests.
    # ------------------------------------------------------------------
    def reference_checksum(self, iterations: int) -> float:
        """Run the same scheme in plain NumPy and return the checksum."""
        ny, nx = self.ny, self.nx
        dx, dy, dt, rho, nu = self.dx, self.dy, self.dt, self.rho, self.nu
        u = np.zeros((ny, nx))
        v = np.zeros((ny, nx))
        p = np.zeros((ny, nx))
        u[-1, :] = 1.0
        for _ in range(iterations):
            uc, un, us, ue, uw = (
                u[1:-1, 1:-1], u[2:, 1:-1], u[0:-2, 1:-1], u[1:-1, 2:], u[1:-1, 0:-2]
            )
            vc, vn, vs, ve, vw = (
                v[1:-1, 1:-1], v[2:, 1:-1], v[0:-2, 1:-1], v[1:-1, 2:], v[1:-1, 0:-2]
            )
            dudx = (ue - uw) / (2 * dx)
            dvdy = (vn - vs) / (2 * dy)
            dudy = (un - us) / (2 * dy)
            dvdx = (ve - vw) / (2 * dx)
            rhs = rho * ((dudx + dvdy) / dt - dudx**2 - 2 * dudy * dvdx - dvdy**2)
            dx2, dy2 = dx * dx, dy * dy
            den = 2 * (dx2 + dy2)
            for _q in range(self.pressure_iterations):
                pe, pw = p[1:-1, 2:], p[1:-1, 0:-2]
                pn, ps = p[2:, 1:-1], p[0:-2, 1:-1]
                p[1:-1, 1:-1] = ((pe + pw) * dy2 + (pn + ps) * dx2) / den - (dx2 * dy2 / den) * rhs
                p[:, -1] = p[:, -2]
                p[0, :] = p[1, :]
                p[:, 0] = p[:, 1]
                p[-1, :] = 0.0
            uc, un, us, ue, uw = (
                u[1:-1, 1:-1], u[2:, 1:-1], u[0:-2, 1:-1], u[1:-1, 2:], u[1:-1, 0:-2]
            )
            vc, vn, vs, ve, vw = (
                v[1:-1, 1:-1], v[2:, 1:-1], v[0:-2, 1:-1], v[1:-1, 2:], v[1:-1, 0:-2]
            )
            pe, pw, pn, ps = p[1:-1, 2:], p[1:-1, 0:-2], p[2:, 1:-1], p[0:-2, 1:-1]
            new_u = (
                uc - uc * (dt / dx) * (uc - uw) - vc * (dt / dy) * (uc - us)
                - (dt / (2 * rho * dx)) * (pe - pw)
                + nu * ((dt / dx2) * (ue - 2 * uc + uw) + (dt / dy2) * (un - 2 * uc + us))
            )
            new_v = (
                vc - uc * (dt / dx) * (vc - vw) - vc * (dt / dy) * (vc - vs)
                - (dt / (2 * rho * dy)) * (pn - ps)
                + nu * ((dt / dx2) * (ve - 2 * vc + vw) + (dt / dy2) * (vn - 2 * vc + vs))
            )
            u[1:-1, 1:-1] = new_u
            v[1:-1, 1:-1] = new_v
            u[0, :] = 0.0
            u[:, 0] = 0.0
            u[:, -1] = 0.0
            u[-1, :] = 1.0
            v[0, :] = 0.0
            v[-1, :] = 0.0
            v[:, 0] = 0.0
            v[:, -1] = 0.0
        return float(np.sum(u * u + v * v))
