"""2-D incompressible Navier-Stokes channel flow (paper Figure 12b).

A cuPyNumeric port of the "CFD Python: 12 steps to Navier-Stokes" channel
flow application the paper benchmarks: velocity fields ``u``/``v`` and a
pressure field ``p`` on a 2-D grid, advanced with finite differences.
Every update is an element-wise expression over *aliasing shifted views*
of the distributed grids (``field[1:-1, 0:-2]`` and friends), which is
precisely the access pattern that limits fusion across the writes at the
end of each sub-step — the behaviour the paper analyses for this
benchmark.

The paper's application uses periodic boundaries in x; periodic slicing
(``numpy.roll``) is not expressible with this frontend's contiguous
views, so the port uses a lid-driven-cavity-style set of Dirichlet
boundary conditions from the same lesson series.  The interior update —
the part that dominates the task stream and the fusion behaviour — is
unchanged.  See DESIGN.md, "Deviations".
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

import repro.frontend.cunumeric as cn
from repro.apps.base import Application, register_application
from repro.frontend.cunumeric.array import ndarray
from repro.frontend.legate.context import RuntimeContext
from repro.ir.privilege import Privilege
from repro.ir.task import IndexTask, StoreArg
from repro.runtime.machine import MachineConfig
from repro.runtime.opaque import register_opaque_task


# ----------------------------------------------------------------------
# Opaque pressure-RHS stencil (the paper's "library" task of this app).
# Argument order: u (Replication, READ), v (Replication, READ), rhs
# output (natural tiling, WRITE).  Scalars: dx, dy, dt, rho.
#
# The operator is *block-invariant*: every output element is a fixed
# gather of its global 5-point neighbourhood from the replicated inputs,
# so computing any sub-block — one rank's tile or a chunk's merged tiles
# — performs the exact per-element float operations of the full-grid
# expression.  That is what licenses the chunk-level implementation
# below (``REPRO_OPAQUE_CHUNKS``): one vectorised call per rank tile of
# the chunk, no reduction partials to fold.
# ----------------------------------------------------------------------
def _rhs_block(u, v, out, lo, hi, scalars) -> None:
    """Write the Poisson RHS for output block ``[lo, hi)`` into ``out``.

    Output index ``(i, j)`` corresponds to interior grid point
    ``(i + 1, j + 1)`` of the full fields.
    """
    dx, dy, dt, rho = scalars
    r0, c0 = lo[0], lo[1]
    r1, c1 = hi[0], hi[1]
    un = u[r0 + 2:r1 + 2, c0 + 1:c1 + 1]
    us = u[r0:r1, c0 + 1:c1 + 1]
    ue = u[r0 + 1:r1 + 1, c0 + 2:c1 + 2]
    uw = u[r0 + 1:r1 + 1, c0:c1]
    vn = v[r0 + 2:r1 + 2, c0 + 1:c1 + 1]
    vs = v[r0:r1, c0 + 1:c1 + 1]
    ve = v[r0 + 1:r1 + 1, c0 + 2:c1 + 2]
    vw = v[r0 + 1:r1 + 1, c0:c1]
    dudx = (ue - uw) / (2.0 * dx)
    dvdy = (vn - vs) / (2.0 * dy)
    dudy = (un - us) / (2.0 * dy)
    dvdx = (ve - vw) / (2.0 * dx)
    out[...] = rho * (
        (dudx + dvdy) / dt - dudx * dudx - 2.0 * (dudy * dvdx) - dvdy * dvdy
    )


def _rhs_execute(task: IndexTask, point, buffers):
    u, v, out = buffers[0], buffers[1], buffers[2]
    if out is None:
        return None
    rect = task.args[2].partition.sub_store_rect(point, task.args[2].store.shape)
    _rhs_block(u, v, out, tuple(rect.lo), tuple(rect.hi), task.scalar_args)
    return None


def _rhs_cost(task: IndexTask, point, buffers, machine: MachineConfig) -> float:
    out = buffers[2]
    elements = 0 if out is None else out.size
    # Eight neighbour gathers plus one write per output element.
    bytes_moved = 9.0 * elements * 8.0
    return machine.kernel_launch_latency + bytes_moved / machine.gpu_memory_bandwidth


def _rhs_chunk_execute(bases, rects, scalars):
    """One vectorised stencil call per rank tile of the chunk."""
    u, v, out = bases[0], bases[1], bases[2]
    for lo, hi in rects[2]:
        _rhs_block(u, v, out[lo[0]:hi[0], lo[1]:hi[1]], lo, hi, scalars)
    return None


def _rhs_chunk_cost(bases, rects, scalars, machine: MachineConfig):
    """Per-rank modelled seconds of an RHS chunk (mirrors ``_rhs_cost``)."""
    seconds = []
    for lo, hi in rects[2]:
        elements = max(0, hi[0] - lo[0]) * max(0, hi[1] - lo[1])
        bytes_moved = 9.0 * elements * 8.0
        seconds.append(
            machine.kernel_launch_latency
            + bytes_moved / machine.gpu_memory_bandwidth
        )
    return seconds


register_opaque_task(
    "cfd_rhs_stencil",
    _rhs_execute,
    _rhs_cost,
    chunk_execute=_rhs_chunk_execute,
    chunk_cost_seconds=_rhs_chunk_cost,
)


@register_application("cfd")
class ChannelFlow(Application):
    """Navier-Stokes solver on a 2-D grid with pressure-Poisson coupling."""

    def __init__(
        self,
        points_per_gpu: int = 128,
        pressure_iterations: int = 8,
        reynolds_viscosity: float = 0.1,
        density: float = 1.0,
        dt: float = 0.0001,
        context: Optional[RuntimeContext] = None,
    ) -> None:
        super().__init__(context)
        gpus = self.context.num_gpus
        # Weak scaling: grow the grid area with the GPU count.
        side = int(np.ceil(np.sqrt(float(points_per_gpu) ** 2 * gpus)))
        self.nx = self.ny = side + 2
        self.dx = 2.0 / (self.nx - 1)
        self.dy = 2.0 / (self.ny - 1)
        self.dt = float(dt)
        self.rho = float(density)
        self.nu = float(reynolds_viscosity)
        self.pressure_iterations = int(pressure_iterations)
        self.u = cn.zeros((self.ny, self.nx), name="cfd_u")
        self.v = cn.zeros((self.ny, self.nx), name="cfd_v")
        self.p = cn.zeros((self.ny, self.nx), name="cfd_p")
        # Lid velocity along the top boundary drives the flow.
        self.u[-1:, :] = 1.0

    # ------------------------------------------------------------------
    # Shifted interior views of a field.
    # ------------------------------------------------------------------
    @staticmethod
    def _views(field):
        center = field[1:-1, 1:-1]
        north = field[2:, 1:-1]
        south = field[0:-2, 1:-1]
        east = field[1:-1, 2:]
        west = field[1:-1, 0:-2]
        return center, north, south, east, west

    def _build_rhs(self):
        """The source term of the pressure Poisson equation.

        Submitted as the opaque ``cfd_rhs_stencil`` library task (the
        paper's CUDA task variant without an MLIR generator): one gather
        over the replicated velocity fields into a fresh interior-shaped
        store.  The rest of the step remains a fusible element-wise
        stream.
        """
        out_store = self.context.create_store(
            (self.ny - 2, self.nx - 2), name="cfd_rhs"
        )
        out = ndarray(out_store, context=self.context)
        self.context.submit(
            "cfd_rhs_stencil",
            out.launch_domain(),
            [
                StoreArg(self.u.store, self.context.replication(), Privilege.READ),
                StoreArg(self.v.store, self.context.replication(), Privilege.READ),
                out.write_arg(),
            ],
            scalar_args=(self.dx, self.dy, self.dt, self.rho),
        )
        return out

    def _pressure_poisson(self, rhs) -> None:
        dx2, dy2 = self.dx * self.dx, self.dy * self.dy
        denominator = 2.0 * (dx2 + dy2)
        for _ in range(self.pressure_iterations):
            pc, pn, ps, pe, pw = self._views(self.p)
            interior = ((pe + pw) * dy2 + (pn + ps) * dx2) / denominator - (
                dx2 * dy2 / denominator
            ) * rhs
            self.p[1:-1, 1:-1] = interior
            # Dirichlet/Neumann-style boundary conditions.
            self.p[:, -1:] = self.p[:, -2:-1]
            self.p[0:1, :] = self.p[1:2, :]
            self.p[:, 0:1] = self.p[:, 1:2]
            self.p[-1:, :] = 0.0

    def step(self) -> None:
        """Advance the velocity and pressure fields by one time step."""
        dx, dy, dt, rho, nu = self.dx, self.dy, self.dt, self.rho, self.nu
        rhs = self._build_rhs()
        self._pressure_poisson(rhs)

        uc, un, us, ue, uw = self._views(self.u)
        vc, vn, vs, ve, vw = self._views(self.v)
        pc, pn, ps, pe, pw = self._views(self.p)

        new_u = (
            uc
            - uc * (dt / dx) * (uc - uw)
            - vc * (dt / dy) * (uc - us)
            - (dt / (2.0 * rho * dx)) * (pe - pw)
            + nu * ((dt / (dx * dx)) * (ue - 2.0 * uc + uw) + (dt / (dy * dy)) * (un - 2.0 * uc + us))
        )
        new_v = (
            vc
            - uc * (dt / dx) * (vc - vw)
            - vc * (dt / dy) * (vc - vs)
            - (dt / (2.0 * rho * dy)) * (pn - ps)
            + nu * ((dt / (dx * dx)) * (ve - 2.0 * vc + vw) + (dt / (dy * dy)) * (vn - 2.0 * vc + vs))
        )

        self.u[1:-1, 1:-1] = new_u
        self.v[1:-1, 1:-1] = new_v

        # Boundary conditions: no-slip walls, moving lid at the top.
        self.u[0:1, :] = 0.0
        self.u[:, 0:1] = 0.0
        self.u[:, -1:] = 0.0
        self.u[-1:, :] = 1.0
        self.v[0:1, :] = 0.0
        self.v[-1:, :] = 0.0
        self.v[:, 0:1] = 0.0
        self.v[:, -1:] = 0.0

    def checksum(self) -> float:
        """Sum of the velocity magnitudes (forces a flush)."""
        return float((self.u * self.u + self.v * self.v).sum())

    # ------------------------------------------------------------------
    # NumPy reference for the correctness tests.
    # ------------------------------------------------------------------
    def reference_checksum(self, iterations: int) -> float:
        """Run the same scheme in plain NumPy and return the checksum."""
        ny, nx = self.ny, self.nx
        dx, dy, dt, rho, nu = self.dx, self.dy, self.dt, self.rho, self.nu
        u = np.zeros((ny, nx))
        v = np.zeros((ny, nx))
        p = np.zeros((ny, nx))
        u[-1, :] = 1.0
        for _ in range(iterations):
            uc, un, us, ue, uw = (
                u[1:-1, 1:-1], u[2:, 1:-1], u[0:-2, 1:-1], u[1:-1, 2:], u[1:-1, 0:-2]
            )
            vc, vn, vs, ve, vw = (
                v[1:-1, 1:-1], v[2:, 1:-1], v[0:-2, 1:-1], v[1:-1, 2:], v[1:-1, 0:-2]
            )
            dudx = (ue - uw) / (2 * dx)
            dvdy = (vn - vs) / (2 * dy)
            dudy = (un - us) / (2 * dy)
            dvdx = (ve - vw) / (2 * dx)
            rhs = rho * ((dudx + dvdy) / dt - dudx**2 - 2 * dudy * dvdx - dvdy**2)
            dx2, dy2 = dx * dx, dy * dy
            den = 2 * (dx2 + dy2)
            for _q in range(self.pressure_iterations):
                pe, pw = p[1:-1, 2:], p[1:-1, 0:-2]
                pn, ps = p[2:, 1:-1], p[0:-2, 1:-1]
                p[1:-1, 1:-1] = ((pe + pw) * dy2 + (pn + ps) * dx2) / den - (dx2 * dy2 / den) * rhs
                p[:, -1] = p[:, -2]
                p[0, :] = p[1, :]
                p[:, 0] = p[:, 1]
                p[-1, :] = 0.0
            uc, un, us, ue, uw = (
                u[1:-1, 1:-1], u[2:, 1:-1], u[0:-2, 1:-1], u[1:-1, 2:], u[1:-1, 0:-2]
            )
            vc, vn, vs, ve, vw = (
                v[1:-1, 1:-1], v[2:, 1:-1], v[0:-2, 1:-1], v[1:-1, 2:], v[1:-1, 0:-2]
            )
            pe, pw, pn, ps = p[1:-1, 2:], p[1:-1, 0:-2], p[2:, 1:-1], p[0:-2, 1:-1]
            new_u = (
                uc - uc * (dt / dx) * (uc - uw) - vc * (dt / dy) * (uc - us)
                - (dt / (2 * rho * dx)) * (pe - pw)
                + nu * ((dt / dx2) * (ue - 2 * uc + uw) + (dt / dy2) * (un - 2 * uc + us))
            )
            new_v = (
                vc - uc * (dt / dx) * (vc - vw) - vc * (dt / dy) * (vc - vs)
                - (dt / (2 * rho * dy)) * (pn - ps)
                + nu * ((dt / dx2) * (ve - 2 * vc + vw) + (dt / dy2) * (vn - 2 * vc + vs))
            )
            u[1:-1, 1:-1] = new_u
            v[1:-1, 1:-1] = new_v
            u[0, :] = 0.0
            u[:, 0] = 0.0
            u[:, -1] = 0.0
            u[-1, :] = 1.0
            v[0, :] = 0.0
            v[-1, :] = 0.0
            v[:, 0] = 0.0
            v[:, -1] = 0.0
        return float(np.sum(u * u + v * v))
