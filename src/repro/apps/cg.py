"""Conjugate-gradient solver benchmark (paper Section 7.1, Figure 11a).

Two variants are provided:

* :class:`ConjugateGradient` — the naturally-written CG of
  :func:`repro.frontend.sparse.linalg.cg`: every AXPY is a separate
  multiply and add task and every dot product a separate reduction, the
  style the paper argues users actually write.
* :class:`ManuallyFusedConjugateGradient` — the hand-optimised variant the
  original Legate Sparse authors wrote, using the fused ``axpy``/``aypx``
  tasks directly.  The paper shows Diffuse makes the natural version beat
  this one.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

import repro.frontend.cunumeric as cn
from repro.apps.base import Application, register_application
from repro.frontend.cunumeric.ufuncs import axpy
from repro.frontend.legate.context import RuntimeContext
from repro.frontend.sparse import poisson_2d


class _KrylovSetup(Application):
    """Shared set-up for the sparse Krylov benchmarks."""

    def __init__(
        self,
        grid_points_per_gpu: int = 64,
        context: Optional[RuntimeContext] = None,
        index_bytes: int = 4,
    ) -> None:
        super().__init__(context)
        # Weak scaling grows the grid with the GPU count while keeping the
        # number of rows per GPU constant.
        gpus = self.context.num_gpus
        self.grid_points = int(np.ceil(np.sqrt(float(grid_points_per_gpu) ** 2 * gpus)))
        self.matrix = poisson_2d(self.grid_points, index_bytes=index_bytes)
        self.rows = self.matrix.nrows
        self.rhs = cn.ones(self.rows, name="krylov_b")

    def reference_solution(self) -> np.ndarray:
        """Dense NumPy solve of the same system (small tests only)."""
        dense = self.matrix.to_dense()
        return np.linalg.solve(dense, np.ones(self.rows))


@register_application("cg")
class ConjugateGradient(_KrylovSetup):
    """Naturally-written CG over cuPyNumeric + Legate Sparse."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.reset()

    def reset(self) -> None:
        """(Re-)initialise the solver state."""
        self.x = cn.zeros(self.rows, name="cg_x")
        self.r = self.rhs - self.matrix.dot(self.x)
        self.p = self.r.copy()
        self.rs_old = float(self.r.dot(self.r))

    def step(self) -> None:
        """One CG iteration written as separate multiply/add/dot tasks."""
        ap = self.matrix.dot(self.p)
        alpha = self.rs_old / max(float(self.p.dot(ap)), 1e-300)
        self.x = self.x + alpha * self.p
        self.r = self.r - alpha * ap
        rs_new = float(self.r.dot(self.r))
        beta = rs_new / max(self.rs_old, 1e-300)
        self.p = self.r + beta * self.p
        self.rs_old = rs_new

    def checksum(self) -> float:
        """Sum of the current iterate."""
        return float(self.x.sum())


@register_application("cg-manual")
class ManuallyFusedConjugateGradient(ConjugateGradient):
    """Hand-optimised CG using the fused axpy/aypx tasks."""

    def step(self) -> None:
        """One CG iteration written with hand-fused vector kernels."""
        ap = self.matrix.dot(self.p)
        alpha = self.rs_old / max(float(self.p.dot(ap)), 1e-300)
        self.x = axpy(alpha, self.p, self.x)
        self.r = axpy(-alpha, ap, self.r)
        rs_new = float(self.r.dot(self.r))
        beta = rs_new / max(self.rs_old, 1e-300)
        # p = r + beta p expressed with the fused aypx task.
        out = self.p._fresh_like(name="aypx")
        self.context.submit(
            "aypx",
            out.launch_domain(),
            [self.r.read_arg(), self.p.read_arg(), out.write_arg()],
            scalar_args=(beta,),
        )
        self.p = out
        self.rs_old = rs_new
