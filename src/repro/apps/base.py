"""Common interface shared by all benchmark applications."""

from __future__ import annotations

from typing import Callable, Dict, Optional, Type

from repro.frontend.legate.context import RuntimeContext, get_context


class Application:
    """Base class of the paper's benchmark applications.

    Subclasses build their distributed state in ``__init__`` (set-up is
    never timed), emit one iteration's worth of index tasks in ``step``,
    and return a scalar ``checksum`` that the correctness tests compare
    against a NumPy reference implementation.
    """

    #: Short name used by the experiment harness and in reports.
    name: str = "application"

    def __init__(self, context: Optional[RuntimeContext] = None) -> None:
        self.context = context or get_context()

    def step(self) -> None:
        """Emit the index tasks of one application iteration."""
        raise NotImplementedError

    def run(self, iterations: int, mark_iterations: bool = True) -> None:
        """Run several iterations, marking iteration boundaries for profiling.

        The task window is flushed at every iteration boundary.  Real
        applications synchronise at least this often (convergence checks,
        time-step control, I/O), and flushing here keeps each iteration's
        task stream isomorphic to the previous one so the memoized fusion
        analysis and kernel cache reach steady state after the first
        (warm-up) iteration.
        """
        for _ in range(iterations):
            if mark_iterations:
                self.context.begin_iteration()
            self.step()
            self.context.flush()

    def checksum(self) -> float:
        """A scalar summary of the application state (forces a flush)."""
        raise NotImplementedError


#: Registry used by the experiment harness to construct applications by name.
_APPLICATIONS: Dict[str, Callable[..., Application]] = {}


def register_application(name: str):
    """Class decorator registering an application under ``name``."""

    def decorate(cls: Type[Application]) -> Type[Application]:
        cls.name = name
        _APPLICATIONS[name] = cls
        return cls

    return decorate


def build_application(name: str, **kwargs) -> Application:
    """Instantiate a registered application by name."""
    try:
        factory = _APPLICATIONS[name]
    except KeyError as error:
        raise KeyError(
            f"unknown application '{name}'; known: {sorted(_APPLICATIONS)}"
        ) from error
    return factory(**kwargs)


def registered_applications():
    """Names of all registered applications."""
    return sorted(_APPLICATIONS)
