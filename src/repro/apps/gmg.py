"""Geometric multigrid solver (paper Section 7.1, Figure 12a).

A CG solver preconditioned with a two-level V-cycle: weighted-Jacobi
smoothing on the fine grid, injection restriction of the residual, a few
smoothing sweeps as the coarse "solve", and piecewise-constant
prolongation back to the fine grid.  The smoother and the CG update are
fusible element-wise chains; the SpMVs and the grid-transfer operators are
opaque tasks, so the task stream interleaves fusible and unfusible work
exactly like the paper's GMG benchmark.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

import repro.frontend.cunumeric as cn
from repro.apps.base import register_application
from repro.apps.cg import _KrylovSetup
from repro.frontend.cunumeric.array import ndarray
from repro.frontend.sparse import poisson_2d
from repro.ir.privilege import Privilege
from repro.ir.task import IndexTask, StoreArg
from repro.runtime.machine import MachineConfig
from repro.runtime.opaque import register_opaque_task


# ----------------------------------------------------------------------
# Opaque grid-transfer tasks (injection restriction, constant prolongation).
# Argument order: fine vector (Replication, READ), coarse/fine output
# (natural tiling, WRITE).  The fine/coarse grid sizes travel as scalars.
# ----------------------------------------------------------------------
def _restrict_execute(task: IndexTask, point, buffers):
    fine, coarse = buffers[0], buffers[1]
    if coarse is None:
        return None
    fine_n = int(task.scalar_args[0])
    coarse_n = int(task.scalar_args[1])
    rect = task.args[1].partition.sub_store_rect(point, task.args[1].store.shape)
    rows = np.arange(rect.lo[0], rect.hi[0], dtype=np.int64)
    ci, cj = np.divmod(rows, coarse_n)
    coarse[...] = fine[(2 * ci) * fine_n + 2 * cj]
    return None


def _prolong_execute(task: IndexTask, point, buffers):
    coarse, fine = buffers[0], buffers[1]
    if fine is None:
        return None
    fine_n = int(task.scalar_args[0])
    coarse_n = int(task.scalar_args[1])
    rect = task.args[1].partition.sub_store_rect(point, task.args[1].store.shape)
    rows = np.arange(rect.lo[0], rect.hi[0], dtype=np.int64)
    fi, fj = np.divmod(rows, fine_n)
    ci = np.minimum(fi // 2, coarse_n - 1)
    cj = np.minimum(fj // 2, coarse_n - 1)
    fine[...] = coarse[ci * coarse_n + cj]
    return None


def _transfer_cost(task: IndexTask, point, buffers, machine: MachineConfig) -> float:
    output = buffers[1]
    elements = 0 if output is None else output.size
    bytes_moved = 2.0 * elements * 8.0
    return machine.kernel_launch_latency + bytes_moved / machine.gpu_memory_bandwidth


def _restrict_chunk_execute(bases, rects, scalars):
    """Injection restriction over a chunk's merged output row span.

    A pure element-wise gather (no reductions), so computing the merged
    row range in one vectorised expression performs the exact
    per-element operations of the per-rank calls.
    """
    fine, coarse = bases[0], bases[1]
    fine_n = int(scalars[0])
    coarse_n = int(scalars[1])
    for lo, hi in _merged_row_spans(rects[1]):
        rows = np.arange(lo, hi, dtype=np.int64)
        ci, cj = np.divmod(rows, coarse_n)
        coarse[lo:hi] = fine[(2 * ci) * fine_n + 2 * cj]
    return None


def _prolong_chunk_execute(bases, rects, scalars):
    """Constant prolongation over a chunk's merged output row span."""
    coarse, fine = bases[0], bases[1]
    fine_n = int(scalars[0])
    coarse_n = int(scalars[1])
    for lo, hi in _merged_row_spans(rects[1]):
        rows = np.arange(lo, hi, dtype=np.int64)
        fi, fj = np.divmod(rows, fine_n)
        ci = np.minimum(fi // 2, coarse_n - 1)
        cj = np.minimum(fj // 2, coarse_n - 1)
        fine[lo:hi] = coarse[ci * coarse_n + cj]
    return None


def _merged_row_spans(row_rects):
    """Coalesce contiguous per-rank ``(lo, hi)`` rects into maximal spans."""
    spans = []
    for lo, hi in row_rects:
        if spans and spans[-1][1] == lo[0]:
            spans[-1][1] = hi[0]
        else:
            spans.append([lo[0], hi[0]])
    return [(lo, hi) for lo, hi in spans]


def _transfer_chunk_cost(bases, rects, scalars, machine: MachineConfig):
    """Per-rank modelled seconds of a transfer chunk (mirrors ``_transfer_cost``)."""
    seconds = []
    for lo, hi in rects[1]:
        elements = max(0, hi[0] - lo[0])
        bytes_moved = 2.0 * elements * 8.0
        seconds.append(
            machine.kernel_launch_latency
            + bytes_moved / machine.gpu_memory_bandwidth
        )
    return seconds


register_opaque_task(
    "gmg_restrict",
    _restrict_execute,
    _transfer_cost,
    chunk_execute=_restrict_chunk_execute,
    chunk_cost_seconds=_transfer_chunk_cost,
)
register_opaque_task(
    "gmg_prolong",
    _prolong_execute,
    _transfer_cost,
    chunk_execute=_prolong_chunk_execute,
    chunk_cost_seconds=_transfer_chunk_cost,
)


@register_application("gmg")
class GeometricMultigrid(_KrylovSetup):
    """CG preconditioned with a two-level V-cycle."""

    def __init__(
        self,
        grid_points_per_gpu: int = 64,
        smoother_weight: float = 0.8,
        pre_smooth: int = 2,
        post_smooth: int = 2,
        coarse_sweeps: int = 4,
        context=None,
        index_bytes: int = 4,
    ) -> None:
        super().__init__(grid_points_per_gpu, context, index_bytes)
        # Coarse grid: half the resolution in each dimension.
        self.coarse_points = max(2, self.grid_points // 2)
        self.coarse_matrix = poisson_2d(self.coarse_points, index_bytes=index_bytes)
        self.fine_diag = self.matrix.diagonal()
        self.coarse_diag = self.coarse_matrix.diagonal()
        self.weight = float(smoother_weight)
        self.pre_smooth = int(pre_smooth)
        self.post_smooth = int(post_smooth)
        self.coarse_sweeps = int(coarse_sweeps)
        self.reset()

    # ------------------------------------------------------------------
    # Grid transfer helpers.
    # ------------------------------------------------------------------
    def _restrict(self, fine: ndarray) -> ndarray:
        coarse_rows = self.coarse_points * self.coarse_points
        out_store = self.context.create_store((coarse_rows,), name="gmg_coarse")
        out = ndarray(out_store, context=self.context)
        self.context.submit(
            "gmg_restrict",
            out.launch_domain(),
            [
                StoreArg(fine.store, self.context.replication(), Privilege.READ),
                out.write_arg(),
            ],
            scalar_args=(float(self.grid_points), float(self.coarse_points)),
        )
        return out

    def _prolong(self, coarse: ndarray) -> ndarray:
        fine_rows = self.rows
        out_store = self.context.create_store((fine_rows,), name="gmg_fine")
        out = ndarray(out_store, context=self.context)
        self.context.submit(
            "gmg_prolong",
            out.launch_domain(),
            [
                StoreArg(coarse.store, self.context.replication(), Privilege.READ),
                out.write_arg(),
            ],
            scalar_args=(float(self.grid_points), float(self.coarse_points)),
        )
        return out

    def _smooth(self, matrix, diagonal, x: ndarray, rhs: ndarray, sweeps: int) -> ndarray:
        """Weighted-Jacobi sweeps: ``x <- x + w (b - A x) / diag``."""
        for _ in range(sweeps):
            residual = rhs - matrix.dot(x)
            x = x + self.weight * (residual / diagonal)
        return x

    def _vcycle(self, rhs: ndarray) -> ndarray:
        """One two-level V-cycle applied to ``rhs`` (initial guess zero)."""
        x = cn.zeros(self.rows, name="gmg_z")
        x = self._smooth(self.matrix, self.fine_diag, x, rhs, self.pre_smooth)
        residual = rhs - self.matrix.dot(x)
        coarse_rhs = self._restrict(residual)
        coarse_x = cn.zeros(self.coarse_points * self.coarse_points, name="gmg_cx")
        coarse_x = self._smooth(
            self.coarse_matrix, self.coarse_diag, coarse_x, coarse_rhs, self.coarse_sweeps
        )
        correction = self._prolong(coarse_x)
        x = x + correction
        x = self._smooth(self.matrix, self.fine_diag, x, rhs, self.post_smooth)
        return x

    # ------------------------------------------------------------------
    # Preconditioned CG driver.
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """(Re-)initialise the PCG state."""
        self.x = cn.zeros(self.rows, name="gmg_x")
        self.r = self.rhs - self.matrix.dot(self.x)
        self.z = self._vcycle(self.r)
        self.p = self.z.copy()
        self.rz_old = float(self.r.dot(self.z))

    def step(self) -> None:
        """One preconditioned-CG iteration."""
        ap = self.matrix.dot(self.p)
        alpha = self.rz_old / max(float(self.p.dot(ap)), 1e-300)
        self.x = self.x + alpha * self.p
        self.r = self.r - alpha * ap
        self.z = self._vcycle(self.r)
        rz_new = float(self.r.dot(self.z))
        beta = rz_new / max(self.rz_old, 1e-300)
        self.p = self.z + beta * self.p
        self.rz_old = rz_new

    def checksum(self) -> float:
        """Sum of the current iterate."""
        return float(self.x.sum())

    def residual_norm(self) -> float:
        """2-norm of the current residual (for convergence tests)."""
        residual = self.rhs - self.matrix.dot(self.x)
        return float(residual.dot(residual)) ** 0.5
