"""Memoization of the fusion analysis (paper Section 5.2).

Iterative applications issue the same *pattern* of tasks every iteration,
but over fresh temporary stores with fresh ids, so the raw task streams
are never identical.  Diffuse therefore memoizes the fusion analysis on a
canonical, alpha-equivalent representation of the task window: store ids
are replaced by De-Bruijn-style indices in order of first appearance, and
partitions by indices into the sequence of distinct partitions seen so
far.  Two windows with the same canonical form are isomorphic and receive
the same fusion decision (and the same compiled kernel, via the compiler
cache keyed by the same canonical form).

The canonical form also records, per store, whether the application holds
live references at analysis time — temporary-store elimination depends on
that liveness, so two windows that differ only in liveness must not share
a cached decision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.ir.partition import Partition
from repro.ir.task import IndexTask


@dataclass(frozen=True)
class FusionDecision:
    """A memoized outcome of analysing one task window."""

    #: Number of leading tasks that fused (1 means the head task runs alone).
    prefix_length: int
    #: Canonical store indices of the stores demoted to temporaries.
    temporary_indices: Tuple[int, ...]
    #: Whether the prefix is executed as a fused task (False when the head
    #: task is opaque or the prefix degenerated to a single task).
    fused: bool


def canonicalize_window(tasks: Sequence[IndexTask]) -> Tuple[Hashable, Dict[int, int]]:
    """The canonical form of a task window.

    Returns ``(key, store_index_map)`` where ``key`` is hashable and
    ``store_index_map`` maps store uids to their canonical indices (needed
    to translate a cached decision's temporary set back to real stores).
    """
    store_indices: Dict[int, int] = {}
    partition_list: List[Partition] = []
    store_liveness: List[bool] = []

    def store_index(store) -> int:
        index = store_indices.get(store.uid)
        if index is None:
            index = len(store_indices)
            store_indices[store.uid] = index
            store_liveness.append(store.has_live_application_references)
        return index

    def partition_index(partition: Partition) -> int:
        for index, existing in enumerate(partition_list):
            if existing == partition:
                return index
        partition_list.append(partition)
        return len(partition_list) - 1

    canonical_tasks = []
    for task in tasks:
        canonical_args = tuple(
            (
                store_index(arg.store),
                arg.store.shape,
                partition_index(arg.partition),
                arg.privilege.value,
                arg.redop.value if arg.redop is not None else None,
            )
            for arg in task.args
        )
        canonical_tasks.append(
            (
                task.task_name,
                task.launch_domain.shape,
                canonical_args,
                len(task.scalar_args),
            )
        )
    key = (tuple(canonical_tasks), tuple(store_liveness))
    return key, store_indices


class MemoizationCache:
    """Maps canonical window forms to fusion decisions."""

    def __init__(self) -> None:
        self._decisions: Dict[Hashable, FusionDecision] = {}
        self.hits = 0
        self.misses = 0

    def lookup(self, key: Hashable) -> Optional[FusionDecision]:
        """The cached decision for a canonical window, if any."""
        decision = self._decisions.get(key)
        if decision is None:
            self.misses += 1
        else:
            self.hits += 1
        return decision

    def store(self, key: Hashable, decision: FusionDecision) -> None:
        """Record the decision for a canonical window."""
        self._decisions[key] = decision

    def __len__(self) -> int:
        return len(self._decisions)

    def clear(self) -> None:
        """Drop all cached decisions."""
        self._decisions.clear()
        self.hits = 0
        self.misses = 0


def resolve_temporaries(
    tasks: Sequence[IndexTask],
    store_index_map: Dict[int, int],
    temporary_indices: Sequence[int],
):
    """Translate canonical temporary indices back to store objects."""
    wanted = set(temporary_indices)
    reverse: Dict[int, int] = {index: uid for uid, index in store_index_map.items()}
    stores = []
    seen = set()
    for task in tasks:
        for store in task.stores():
            index = store_index_map.get(store.uid)
            if index in wanted and store.uid not in seen:
                seen.add(store.uid)
                stores.append(store)
    # Preserve canonical ordering for determinism.
    stores.sort(key=lambda store: store_index_map[store.uid])
    return stores
