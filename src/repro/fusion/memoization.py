"""Memoization of the fusion analysis (paper Section 5.2).

Iterative applications issue the same *pattern* of tasks every iteration,
but over fresh temporary stores with fresh ids, so the raw task streams
are never identical.  Diffuse therefore memoizes the fusion analysis on a
canonical, alpha-equivalent representation of the task window: store ids
are replaced by De-Bruijn-style indices in order of first appearance, and
partitions by indices into the sequence of distinct partitions seen so
far.  Two windows with the same canonical form are isomorphic and receive
the same fusion decision (and the same compiled kernel, via the compiler
cache keyed by the same canonical form).

The canonical form also records, per store, whether the application holds
live references at analysis time — temporary-store elimination depends on
that liveness, so two windows that differ only in liveness must not share
a cached decision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.config import hotpath_cache_enabled as _hotpath_cache_enabled
from repro.ir.partition import Partition
from repro.ir.task import IndexTask, stream_scalar_pattern


@dataclass(frozen=True)
class FusionDecision:
    """A memoized outcome of analysing one task window."""

    #: Number of leading tasks that fused (1 means the head task runs alone).
    prefix_length: int
    #: Canonical store indices of the stores demoted to temporaries.
    temporary_indices: Tuple[int, ...]
    #: Whether the prefix is executed as a fused task (False when the head
    #: task is opaque or the prefix degenerated to a single task).
    fused: bool


#: Attribute under which a task's canonical signature is cached.  A
#: task's arguments are immutable after construction, so the signature is
#: computed once per task no matter how many analysis rounds replay it
#: (store *liveness* is deliberately excluded — it changes over time and
#: is re-read on every canonicalisation).
_SIGNATURE_ATTR = "_memo_signature"

#: One cached argument: (store, store shape, partition, privilege value,
#: redop value or None).  The store and partition objects are kept so the
#: window canonicalisation can translate them to De-Bruijn indices and
#: query liveness without touching the task again.
TaskSignature = Tuple[str, Tuple[int, ...], Tuple[Tuple, ...], int]


def task_signature(task: IndexTask) -> TaskSignature:
    """The window-independent part of a task's canonical form, cached."""
    signature = getattr(task, _SIGNATURE_ATTR, None)
    if signature is None:
        signature = (
            task.task_name,
            task.launch_domain.shape,
            tuple(
                (
                    arg.store,
                    arg.store.shape,
                    arg.partition,
                    arg.privilege.value,
                    arg.redop.value if arg.redop is not None else None,
                )
                for arg in task.args
            ),
            len(task.scalar_args),
        )
        setattr(task, _SIGNATURE_ATTR, signature)
    return signature


def canonicalize_window(tasks: Sequence[IndexTask]) -> Tuple[Hashable, Dict[int, int]]:
    """The canonical form of a task window.

    Returns ``(key, store_index_map)`` where ``key`` is hashable and
    ``store_index_map`` maps store uids to their canonical indices (needed
    to translate a cached decision's temporary set back to real stores).

    Store uids are replaced by indices in order of first appearance and
    partitions by indices into a hash-keyed table of distinct partitions —
    partitions are small frozen value objects, so dict lookup replaces the
    quadratic equality scan without changing which partitions dedup.
    Per-task signatures are cached on the tasks themselves, so a replay
    round only pays for the window-dependent index translation.  Setting
    ``REPRO_HOTPATH_CACHE=0`` restores the seed canonicalisation path
    (used as the baseline by ``benchmarks/perf_wallclock.py``).
    """
    if not _hotpath_cache_enabled():
        return _canonicalize_window_uncached(tasks)
    store_indices: Dict[int, int] = {}
    partition_indices: Dict[Partition, int] = {}
    store_liveness: List[bool] = []

    canonical_tasks = []
    for task in tasks:
        name, domain_shape, args, scalar_count = task_signature(task)
        canonical_args = []
        for store, shape, partition, privilege, redop in args:
            index = store_indices.get(store.uid)
            if index is None:
                index = len(store_indices)
                store_indices[store.uid] = index
                store_liveness.append(store.has_live_application_references)
            partition_index = partition_indices.get(partition)
            if partition_index is None:
                partition_index = len(partition_indices)
                partition_indices[partition] = partition_index
            canonical_args.append((index, shape, partition_index, privilege, redop))
        canonical_tasks.append((name, domain_shape, tuple(canonical_args), scalar_count))
    # The *equality pattern* of the window's scalar operands (not the
    # values) is part of the key: fused-kernel composition deduplicates
    # scalar parameters that carry bit-identical values, so a cached
    # decision/kernel is only valid for windows with the same pattern.
    key = (
        tuple(canonical_tasks),
        tuple(store_liveness),
        stream_scalar_pattern(tasks),
    )
    return key, store_indices


def _canonicalize_window_uncached(
    tasks: Sequence[IndexTask],
) -> Tuple[Hashable, Dict[int, int]]:
    """The seed canonicalisation: no signature cache, linear-scan dedup."""
    store_indices: Dict[int, int] = {}
    partition_list: List[Partition] = []
    store_liveness: List[bool] = []

    def store_index(store) -> int:
        index = store_indices.get(store.uid)
        if index is None:
            index = len(store_indices)
            store_indices[store.uid] = index
            store_liveness.append(store.has_live_application_references)
        return index

    def partition_index(partition: Partition) -> int:
        for index, existing in enumerate(partition_list):
            if existing == partition:
                return index
        partition_list.append(partition)
        return len(partition_list) - 1

    canonical_tasks = []
    for task in tasks:
        canonical_args = tuple(
            (
                store_index(arg.store),
                arg.store.shape,
                partition_index(arg.partition),
                arg.privilege.value,
                arg.redop.value if arg.redop is not None else None,
            )
            for arg in task.args
        )
        canonical_tasks.append(
            (
                task.task_name,
                task.launch_domain.shape,
                canonical_args,
                len(task.scalar_args),
            )
        )
    key = (
        tuple(canonical_tasks),
        tuple(store_liveness),
        stream_scalar_pattern(tasks),
    )
    return key, store_indices


class MemoizationCache:
    """Maps canonical window forms to fusion decisions."""

    def __init__(self) -> None:
        self._decisions: Dict[Hashable, FusionDecision] = {}
        self.hits = 0
        self.misses = 0

    def lookup(self, key: Hashable) -> Optional[FusionDecision]:
        """The cached decision for a canonical window, if any."""
        decision = self._decisions.get(key)
        if decision is None:
            self.misses += 1
        else:
            self.hits += 1
        return decision

    def store(self, key: Hashable, decision: FusionDecision) -> None:
        """Record the decision for a canonical window."""
        self._decisions[key] = decision

    def __len__(self) -> int:
        return len(self._decisions)

    def clear(self) -> None:
        """Drop all cached decisions."""
        self._decisions.clear()
        self.hits = 0
        self.misses = 0


def resolve_temporaries(
    tasks: Sequence[IndexTask],
    store_index_map: Dict[int, int],
    temporary_indices: Sequence[int],
):
    """Translate canonical temporary indices back to store objects."""
    if not temporary_indices:
        return []
    wanted = set(temporary_indices)
    stores = []
    seen = set()
    for task in tasks:
        for store, _, _, _, _ in task_signature(task)[2]:
            index = store_index_map.get(store.uid)
            if index in wanted and store.uid not in seen:
                seen.add(store.uid)
                stores.append(store)
    # Preserve canonical ordering for determinism.
    stores.sort(key=lambda store: store_index_map[store.uid])
    return stores
