"""The four fusion constraints (paper Figure 5) and their incremental form.

The constraints identify, in constant time per task argument, whether a
candidate sequence of index tasks might require cross-processor
communication — i.e. whether some dependence map entry could escape the
point-wise set.  They rely only on partition equality (a constant-time
structural check thanks to the scale-free IR) and never enumerate point
tasks or sub-stores.

Two implementations are provided:

* :func:`check_sequence` — a direct transcription of the universally
  quantified definitions in Figure 5, used for documentation and as a
  cross-check in the tests.
* :class:`FusionConstraintChecker` — the incremental, forwards-dataflow
  form the fusion algorithm actually uses: tasks are offered one at a time
  and per-store effect summaries are updated as tasks are accepted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.ir.domain import Domain
from repro.ir.partition import Partition
from repro.ir.privilege import Privilege, ReductionOp
from repro.ir.task import IndexTask


@dataclass(frozen=True)
class ConstraintViolation:
    """A record of which constraint rejected a candidate task."""

    constraint: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.constraint}: {self.detail}"


# ----------------------------------------------------------------------
# Direct (whole-sequence) form of Figure 5.
# ----------------------------------------------------------------------
def launch_domain_equivalence(tasks: Sequence[IndexTask]) -> bool:
    """All tasks share the first task's launch domain."""
    if not tasks:
        return True
    domain = tasks[0].launch_domain
    return all(task.launch_domain == domain for task in tasks)


def _pointwise_safe(written: Partition, accessed: Partition) -> bool:
    """True when a write through ``written`` followed (or preceded) by an
    access through ``accessed`` has at most point-wise dependencies.

    This is the case exactly when the two accesses use the *same* partition
    and that partition maps distinct launch points to disjoint sub-stores.
    Writes through replicated or projected (aliasing) partitions conflict
    with every other access to the store, even through an equal partition.
    """
    return written == accessed and written.is_disjoint()


def true_dependence(tasks: Sequence[IndexTask]) -> bool:
    """No later task reads or writes a store written earlier via an aliasing view."""
    for i, earlier in enumerate(tasks):
        for store, partition, privilege in earlier.views():
            if not privilege.writes:
                continue
            for later in tasks[i + 1 :]:
                for store2, partition2, privilege2 in later.views():
                    if store2 != store:
                        continue
                    if not (privilege2.reads or privilege2.writes):
                        continue
                    if not _pointwise_safe(partition, partition2):
                        return False
    return True


def anti_dependence(tasks: Sequence[IndexTask]) -> bool:
    """No later task writes a store read earlier via an aliasing view."""
    for i, earlier in enumerate(tasks):
        for store, partition, privilege in earlier.views():
            if not privilege.reads:
                continue
            for later in tasks[i + 1 :]:
                for store2, partition2, privilege2 in later.views():
                    if store2 != store:
                        continue
                    if not privilege2.writes:
                        continue
                    if not _pointwise_safe(partition2, partition):
                        return False
    return True


def reduction(tasks: Sequence[IndexTask]) -> bool:
    """No task reads or writes a store that any other task reduces to."""
    for i, reducer in enumerate(tasks):
        for store, partition, privilege in reducer.views():
            if not privilege.reduces:
                continue
            for j, other in enumerate(tasks):
                if i == j:
                    continue
                for store2, _partition2, privilege2 in other.views():
                    if store2 != store:
                        continue
                    if privilege2.reads or privilege2.writes:
                        return False
    return True


def check_sequence(tasks: Sequence[IndexTask]) -> Optional[ConstraintViolation]:
    """Check all four constraints; returns the first violation or None."""
    if not launch_domain_equivalence(tasks):
        return ConstraintViolation("launch-domain-equivalence", "launch domains differ")
    if not true_dependence(tasks):
        return ConstraintViolation("true-dependence", "write followed by aliasing access")
    if not anti_dependence(tasks):
        return ConstraintViolation("anti-dependence", "read followed by aliasing write")
    if not reduction(tasks):
        return ConstraintViolation("reduction", "reduction target is read or written")
    return None


# ----------------------------------------------------------------------
# Incremental (forwards-dataflow) form used by the fusion algorithm.
# ----------------------------------------------------------------------
@dataclass
class _StoreEffects:
    """Summary of how the accepted prefix has accessed one store."""

    written_partitions: List[Partition] = field(default_factory=list)
    read_partitions: List[Partition] = field(default_factory=list)
    reduced: bool = False
    reduction_op: Optional[ReductionOp] = None
    read_or_written: bool = False


class FusionConstraintChecker:
    """Incrementally decides whether the next task may join the prefix.

    The checker maintains, per store touched by the accepted prefix, the
    partitions it has been written and read through and whether it has
    been reduced to.  Offering a task costs time proportional to the
    task's argument count — independent of the machine size and of the
    prefix length — which is the scalability property the paper's IR is
    designed for.
    """

    def __init__(self) -> None:
        self._domain: Optional[Domain] = None
        self._effects: Dict[int, _StoreEffects] = {}
        self._accepted: List[IndexTask] = []

    @property
    def accepted(self) -> List[IndexTask]:
        """Tasks accepted into the prefix so far."""
        return list(self._accepted)

    def _effects_for(self, store_uid: int) -> _StoreEffects:
        effects = self._effects.get(store_uid)
        if effects is None:
            effects = _StoreEffects()
            self._effects[store_uid] = effects
        return effects

    # ------------------------------------------------------------------
    # The constraint checks.
    # ------------------------------------------------------------------
    def violation(self, task: IndexTask) -> Optional[ConstraintViolation]:
        """The constraint the task would violate if added, or None."""
        if self._domain is not None and task.launch_domain != self._domain:
            return ConstraintViolation(
                "launch-domain-equivalence",
                f"{task.task_name} launches over {task.launch_domain.shape}, "
                f"prefix launches over {self._domain.shape}",
            )
        for store, partition, privilege in task.views():
            effects = self._effects.get(store.uid)
            if effects is None:
                continue
            if (privilege.reads or privilege.writes) and effects.reduced:
                return ConstraintViolation(
                    "reduction",
                    f"{task.task_name} reads/writes {store.name}, which an "
                    "earlier task reduces to",
                )
            if privilege.reduces and effects.read_or_written:
                return ConstraintViolation(
                    "reduction",
                    f"{task.task_name} reduces to {store.name}, which an "
                    "earlier task reads or writes",
                )
            if privilege.reads or privilege.writes:
                for written in effects.written_partitions:
                    if not _pointwise_safe(written, partition):
                        return ConstraintViolation(
                            "true-dependence",
                            f"{task.task_name} accesses {store.name} through a "
                            "partition aliasing an earlier write",
                        )
            if privilege.writes:
                for read in effects.read_partitions:
                    if not _pointwise_safe(partition, read):
                        return ConstraintViolation(
                            "anti-dependence",
                            f"{task.task_name} writes {store.name} through a "
                            "partition aliasing an earlier read",
                        )
        return None

    def can_add(self, task: IndexTask) -> bool:
        """True when the task may join the prefix."""
        return self.violation(task) is None

    def add(self, task: IndexTask) -> None:
        """Accept a task into the prefix and update the effect summaries."""
        violation = self.violation(task)
        if violation is not None:
            raise ValueError(f"cannot add task: {violation}")
        if self._domain is None:
            self._domain = task.launch_domain
        self._accepted.append(task)
        for store, partition, privilege in task.views():
            effects = self._effects_for(store.uid)
            if privilege.reads:
                if all(existing != partition for existing in effects.read_partitions):
                    effects.read_partitions.append(partition)
                effects.read_or_written = True
            if privilege.writes:
                if all(existing != partition for existing in effects.written_partitions):
                    effects.written_partitions.append(partition)
                effects.read_or_written = True
            if privilege.reduces:
                effects.reduced = True
