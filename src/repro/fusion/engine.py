"""The Diffuse middle layer (paper Figure architecture, Sections 4–6).

:class:`DiffuseRuntime` sits between the frontends (cuPyNumeric / Legate
Sparse) and the Legion-like runtime substrate.  Libraries submit index
tasks to it; Diffuse buffers them into a window, finds fusible prefixes,
eliminates temporaries, JIT-compiles fused kernels (with memoization), and
forwards the optimised tasks downstream.

Setting ``FusionConfig.enable_fusion`` to False turns the layer into a
pass-through, which is the "Unfused" baseline of every benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Set

from repro.ir.store import Store
from repro.ir.task import IndexTask
from repro.ir.window import TaskWindow
from repro.fusion.algorithm import build_fused_task, plan_window
from repro.fusion.memoization import (
    FusionDecision,
    MemoizationCache,
    canonicalize_window,
    resolve_temporaries,
)
from repro.config import trace_enabled
from repro.kernel.compiler import JITCompiler
from repro.kernel.generators import GeneratorRegistry, default_registry
from repro.kernel.passes.pipeline import PassPipeline
from repro.runtime.runtime import LegionRuntime
from repro.runtime.trace import TraceController, TraceRecorder


@dataclass
class FusionConfig:
    """Configuration of the Diffuse layer (benchmarks toggle these)."""

    #: Master switch: False forwards every task unchanged (the baseline).
    enable_fusion: bool = True
    #: False restricts Diffuse to task fusion only — constituent kernels
    #: are concatenated but not loop-fused and temporaries are kept as
    #: distributed data (the ablation discussed in paper Section 7).
    enable_kernel_fusion: bool = True
    #: Demote stores satisfying Definition 4 into task-local allocations.
    enable_temporary_elimination: bool = True
    #: Memoize the fusion analysis on canonical task streams.
    enable_memoization: bool = True
    #: Defer the task stream into epochs and capture/replay execution
    #: plans for repeated epochs (also gated by the ``REPRO_TRACE``
    #: environment variable; requires fusion and memoization).
    enable_tracing: bool = True
    #: Task-window sizing (paper Figure 9 reports the adaptive result).
    initial_window_size: int = 5
    max_window_size: int = 256
    adaptive_window: bool = True

    #: Analysis cost model: seconds per analysed task on a memoization
    #: miss, and per replayed task on a hit.
    analysis_seconds_per_task: float = 25e-6
    replay_seconds_per_task: float = 3e-6


@dataclass
class FusionStatistics:
    """Counters describing what the engine did (used by the experiments)."""

    submitted_tasks: int = 0
    forwarded_tasks: int = 0
    fused_tasks: int = 0
    fused_constituents: int = 0
    temporaries_eliminated: int = 0


class DiffuseRuntime:
    """Buffers, fuses and forwards index tasks."""

    def __init__(
        self,
        runtime: Optional[LegionRuntime] = None,
        config: Optional[FusionConfig] = None,
        generator_registry: Optional[GeneratorRegistry] = None,
    ) -> None:
        self.runtime = runtime or LegionRuntime()
        self.config = config or FusionConfig()
        self.registry = generator_registry or default_registry()
        pipeline = PassPipeline(
            enable_loop_fusion=self.config.enable_kernel_fusion,
            enable_temporary_elimination=self.config.enable_kernel_fusion,
            enable_normalize=self.config.enable_kernel_fusion,
            enable_cse=self.config.enable_kernel_fusion,
        )
        self.compiler = JITCompiler(registry=self.registry, pipeline=pipeline)
        self.window = TaskWindow(
            initial_size=self.config.initial_window_size,
            max_size=self.config.max_window_size,
            adaptive=self.config.adaptive_window,
        )
        self.cache = MemoizationCache()
        self.stats = FusionStatistics()
        self._charged_compile_keys: Set[Hashable] = set()
        #: Deferred task stream with trace capture/replay, or None when
        #: tracing is disabled (flag sampled once per engine, like the
        #: hot-path caches are sampled once per context).
        self.trace: Optional[TraceController] = None
        if (
            self.config.enable_fusion
            and self.config.enable_memoization
            and self.config.enable_tracing
            and trace_enabled()
        ):
            self.trace = TraceController(self)
        self._recorder: Optional[TraceRecorder] = None

    # ------------------------------------------------------------------
    # Task submission (the library-facing API).
    # ------------------------------------------------------------------
    def submit(self, task: IndexTask) -> None:
        """Submit one index task in program order."""
        self.stats.submitted_tasks += 1
        if not self.config.enable_fusion:
            self.stats.forwarded_tasks += 1
            self.runtime.submit(task)
            return
        if self.trace is not None:
            self.trace.add(task)
            return
        self.window_submit(task)

    def window_submit(self, task: IndexTask) -> None:
        """Feed one task into the fusion window (the eager pipeline)."""
        self.window.add(task)
        if self.window.full:
            self._process_round()

    def flush_window(self) -> None:
        """Send all pending tasks through fusion to the runtime.

        With tracing enabled this is an epoch boundary: the deferred
        stream is either replayed from a captured plan or recorded while
        it runs through the eager pipeline.
        """
        if self.trace is not None:
            self.trace.boundary()
            return
        self.drain_window()

    def drain_window(self) -> None:
        """Process window rounds until the window is empty."""
        while not self.window.empty:
            self._process_round()

    # Alias matching the paper's pseudocode.
    flush = flush_window

    # ------------------------------------------------------------------
    # Trace capture hooks (driven by the TraceController).
    # ------------------------------------------------------------------
    def begin_capture(self, recorder: TraceRecorder) -> None:
        """Route launches and charges of the current epoch to ``recorder``."""
        self._recorder = recorder
        self.runtime.trace_recorder = recorder

    def end_capture(self) -> None:
        """Stop routing launches to the epoch recorder."""
        self._recorder = None
        self.runtime.trace_recorder = None

    # ------------------------------------------------------------------
    # Future / scalar access (forces a flush like Legion futures do).
    # ------------------------------------------------------------------
    def read_scalar(self, store: Store) -> float:
        """Read a scalar store, flushing pending tasks first."""
        self.flush_window()
        return self.runtime.read_scalar(store)

    def read_array(self, store: Store):
        """Read a full store, flushing pending tasks first."""
        self.flush_window()
        return self.runtime.read_array(store)

    def begin_iteration(self) -> None:
        """Mark an application iteration boundary in the profiler.

        A pending eager overlap group is charged to the ending iteration
        first, so group accounting never leaks across the boundary.
        """
        self.runtime.flush_overlap_accounting()
        self.runtime.profiler.begin_iteration()

    def notify_host_write(self, store: Store) -> None:
        """A host-side write to ``store`` is about to happen.

        With the deferred task stream a host write to a store referenced
        by a buffered task would be reordered ahead of that task; force
        an epoch boundary in that case (the eager pipeline needs no such
        check because it never defers past a host interaction that the
        applications perform).
        """
        if self.trace is not None and self.trace.references(store):
            self.trace.boundary()

    # ------------------------------------------------------------------
    # One round of window processing.
    # ------------------------------------------------------------------
    def _process_round(self) -> None:
        tasks = self.window.tasks
        if not tasks:
            return
        window_length = len(tasks)

        if self.config.enable_memoization:
            key, store_map = canonicalize_window(tasks)
            decision = self.cache.lookup(key)
            if decision is not None:
                temporaries = resolve_temporaries(tasks, store_map, decision.temporary_indices)
                prefix_length = decision.prefix_length
                self._charge_analysis(window_length, replay=True)
            else:
                result, temporaries = plan_window(
                    tasks,
                    can_kernel_fuse=self.compiler.can_compile,
                    eliminate_temporaries=self.config.enable_temporary_elimination,
                )
                prefix_length = result.prefix_length
                temp_indices = tuple(
                    sorted(store_map[store.uid] for store in temporaries)
                )
                self.cache.store(
                    key,
                    FusionDecision(
                        prefix_length=prefix_length,
                        temporary_indices=temp_indices,
                        fused=prefix_length >= 2,
                    ),
                )
                self._charge_analysis(window_length, replay=False)
        else:
            key = None
            result, temporaries = plan_window(
                tasks,
                can_kernel_fuse=self.compiler.can_compile,
                eliminate_temporaries=self.config.enable_temporary_elimination,
            )
            prefix_length = result.prefix_length
            self._charge_analysis(window_length, replay=False)

        prefix = self.window.drain(prefix_length)
        self.window.record_fusion_result(window_length, prefix_length)

        if prefix_length < 2:
            self.stats.forwarded_tasks += 1
            self.runtime.submit(prefix[0])
            return

        fused = build_fused_task(prefix, temporaries)
        compiled = self.compiler.compile(fused, cache_key=key)
        self._charge_compile_time(key, compiled.compile_seconds)
        self.stats.fused_tasks += 1
        self.stats.fused_constituents += fused.constituent_count()
        self.stats.temporaries_eliminated += len(temporaries)
        self.runtime.submit(fused, compiled=compiled)

    # ------------------------------------------------------------------
    # Cost accounting for analysis and compilation.
    # ------------------------------------------------------------------
    def _charge_analysis(self, analyzed_tasks: int, replay: bool) -> None:
        per_task = (
            self.config.replay_seconds_per_task
            if replay
            else self.config.analysis_seconds_per_task
        )
        seconds = per_task * analyzed_tasks
        if self._recorder is not None:
            self._recorder.note_analysis(seconds, replay)
        self.runtime.add_simulated_seconds(seconds)
        self.runtime.profiler.record_analysis_time(seconds)
        self.runtime.profiler.add_iteration_seconds(seconds)

    def _charge_compile_time(self, key: Optional[Hashable], seconds: float) -> None:
        if seconds <= 0.0:
            return
        if key is not None:
            if key in self._charged_compile_keys:
                return
            self._charged_compile_keys.add(key)
        if self._recorder is not None:
            self._recorder.note_compile(seconds)
        self.runtime.add_simulated_seconds(seconds)
        self.runtime.profiler.record_compile_time(seconds)
        self.runtime.profiler.add_iteration_seconds(seconds)
